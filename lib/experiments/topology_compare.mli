(** Topology extension study (the paper's Sec. 7).

    The paper notes EAS only requires a regular topology with
    deterministic routing and names the honeycomb as an example where
    [E_bit] is no longer determined by Manhattan distance. We schedule
    the same applications over a mesh, a torus and a honeycomb carrying
    identical PE arrays and compare energy — communication energy and
    average hop counts track each topology's route lengths, while
    computation energy stays put. *)

type row = {
  topology : Noc_noc.Topology.t;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = { seed : int; n_tasks : int; rows : row list }

val run : ?jobs:int -> ?seed:int -> ?n_tasks:int -> unit -> result
(** Defaults: seed 0, 120 tasks, 4x4-sized topologies. Topologies fan
    out over a {!Noc_util.Pool} of [jobs] domains; rows are identical
    at every job count. *)

val render : result -> string
