(** Topology extension study (the paper's Sec. 7) and the big-mesh
    mapping Pareto sweep.

    The paper notes EAS only requires a regular topology with
    deterministic routing and names the honeycomb as an example where
    [E_bit] is no longer determined by Manhattan distance. We schedule
    the same applications over a mesh, a torus and a honeycomb carrying
    identical PE arrays and compare energy — communication energy and
    average hop counts track each topology's route lengths, while
    computation energy stays put.

    {!pareto} goes past the paper's 4x4 scale: category-III graphs
    (~2000 tasks, {!Noc_tgff.Category}) on 8x8 and 16x16 meshes, with
    the annealed mapping search ([Noc_map.Search]) run once per
    balance-weight setting. Each weight trades Eq.-3 energy against
    makespan, so the resulting points sketch the energy/latency front
    reachable by placement alone; the identity mapping is the
    naive-placement reference, and at weight 0 the annealed point can
    never cost more energy than it. *)

type row = {
  topology : Noc_noc.Topology.t;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
  mapped : Runner.evaluation option;
      (** Pinned-EAS evaluation of the mapping-search winner; [None]
          unless [map_search] was set. *)
}

type result = { seed : int; n_tasks : int; rows : row list }

val run :
  ?jobs:int -> ?seed:int -> ?n_tasks:int -> ?map_search:bool -> unit -> result
(** Defaults: seed 0, 120 tasks, 4x4-sized topologies, no mapping
    search. Topologies fan out over a {!Noc_util.Pool} of [jobs]
    domains; rows are identical at every job count. With
    [map_search:true] each row also anneals a task-to-tile mapping
    (default [Noc_map.Search] parameters) and reports the winner's
    pinned-EAS evaluation. *)

val render : result -> string

(** {1 Big-mesh Pareto sweep} *)

type point = {
  label : string;  (** ["identity"] or ["sa/balance=<frac>"]. *)
  balance_frac : float;
      (** Balance weight in units of the mean (task, PE) energy. *)
  static_value : float;
  energy : float;  (** Pinned-EAS Eq.-3 total (nJ). *)
  makespan : float;
  misses : int;
  cert_errors : int;
}

type pareto_row = {
  mesh : int * int;
  pareto_n_tasks : int;
  n_edges : int;
  points : point list;  (** Identity first, then one point per weight. *)
}

type pareto = { index : int; scale : float; rows : pareto_row list }

val default_meshes : (int * int) list
(** [[(8, 8); (16, 16)]]. *)

val default_balance_fracs : float list
(** [[0.; 0.1; 0.5; 2.]] — pure energy, then increasing load-spread
    pressure. *)

val pareto :
  ?jobs:int ->
  ?index:int ->
  ?meshes:(int * int) list ->
  ?balance_fracs:float list ->
  ?scale:float ->
  unit ->
  pareto
(** Runs the sweep on category-III benchmark [index] (default 1) of
    each mesh, one annealed search per balance weight (fanned out over
    [jobs]; one shared kernel per mesh), [scale] (default 1) shrinking
    the graph for quick runs. Deterministic in every argument and
    bit-identical at every job count. *)

val render_pareto : pareto -> string

val pareto_to_json : pareto -> string
(** The persisted energy/latency Pareto table (one object per mesh,
    one entry per point) — the payload BENCH_mapping.json embeds. *)
