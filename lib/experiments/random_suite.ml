type row = {
  index : int;
  eas_base : Runner.evaluation;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = {
  kind : Noc_tgff.Category.kind;
  rows : row list;
  average_edf_excess : float;
}

let run ?jobs ?(indices = List.init 10 Fun.id) ?scale kind =
  let platform = Noc_tgff.Category.platform in
  (* The suite shares one platform across the pool: fill its route memo
     before fanning out so the worker domains only read it. *)
  Noc_noc.Platform.warm_routes platform;
  let params =
    match scale with
    | None -> Noc_tgff.Category.params kind
    | Some scale -> Noc_tgff.Category.scaled_params kind ~scale
  in
  let rows =
    Noc_util.Pool.map_list ?jobs
      (fun index ->
        let seed = Noc_tgff.Category.seed_of kind index in
        Runner.traced ~label:(Printf.sprintf "random_suite/%s/seed=%d" (match kind with
          | Noc_tgff.Category.Category_i -> "cat_i"
          | Noc_tgff.Category.Category_ii -> "cat_ii"
          | Noc_tgff.Category.Category_iii -> "cat_iii") seed)
        @@ fun () ->
        let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
        {
          index;
          eas_base = Runner.evaluate Runner.Eas_base platform ctg;
          eas = Runner.evaluate Runner.Eas platform ctg;
          edf = Runner.evaluate Runner.Edf platform ctg;
        })
      indices
  in
  let average_edf_excess =
    let excesses =
      List.map
        (fun r ->
          (r.edf.Runner.metrics.Noc_sched.Metrics.total_energy
          /. r.eas.Runner.metrics.Noc_sched.Metrics.total_energy)
          -. 1.)
        rows
    in
    List.fold_left ( +. ) 0. excesses /. float_of_int (List.length excesses)
  in
  { kind; rows; average_edf_excess }

let kind_name = function
  | Noc_tgff.Category.Category_i -> "category I"
  | Noc_tgff.Category.Category_ii -> "category II"
  | Noc_tgff.Category.Category_iii -> "category III"

let render result =
  let cell = Noc_util.Text_table.float_cell ~decimals:0 in
  let header =
    [
      "benchmark"; "EAS-base (nJ)"; "EAS (nJ)"; "EDF (nJ)"; "base miss"; "EAS miss";
      "EDF miss"; "base t(s)"; "EAS t(s)";
    ]
  in
  let row_of r =
    let energy (e : Runner.evaluation) = cell e.metrics.Noc_sched.Metrics.total_energy in
    let miss (e : Runner.evaluation) =
      string_of_int (Noc_sched.Metrics.miss_count e.metrics)
    in
    [
      string_of_int r.index;
      energy r.eas_base;
      energy r.eas;
      energy r.edf;
      miss r.eas_base;
      miss r.eas;
      miss r.edf;
      Printf.sprintf "%.2f" r.eas_base.runtime_seconds;
      Printf.sprintf "%.2f" r.eas.runtime_seconds;
    ]
  in
  let table = Noc_util.Text_table.render ~header (List.map row_of result.rows) in
  Printf.sprintf "%s\n%s\nEDF consumes on average %.1f%% more energy than EAS.\n"
    (kind_name result.kind) table
    (100. *. result.average_edf_excess)
