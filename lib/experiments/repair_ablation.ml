type attempt = {
  moves : Noc_eas.Repair.moves;
  remaining_misses : int;
  energy_increase : float;
  evaluations : int;
}

type row = { index : int; base_misses : int; attempts : attempt list }

let moves_name = function
  | Noc_eas.Repair.Both -> "LTS+GTM (paper)"
  | Noc_eas.Repair.Lts_only -> "LTS only"
  | Noc_eas.Repair.Gtm_only -> "GTM only"

let all_moves = [ Noc_eas.Repair.Lts_only; Noc_eas.Repair.Gtm_only; Noc_eas.Repair.Both ]

let miss_count platform ctg schedule =
  Noc_sched.Metrics.miss_count (Noc_sched.Metrics.compute platform ctg schedule)

let run ?jobs ?(indices = List.init 5 Fun.id) ?scale () =
  let kind = Noc_tgff.Category.Category_ii in
  let platform = Noc_tgff.Category.platform in
  Noc_noc.Platform.warm_routes platform;
  let params =
    match scale with
    | None -> Noc_tgff.Category.params kind
    | Some scale -> Noc_tgff.Category.scaled_params kind ~scale
  in
  Noc_util.Pool.map_list ?jobs
    (fun index ->
      let seed = 2_000 + index in
      Runner.traced ~label:(Printf.sprintf "repair_ablation/seed=%d" seed)
      @@ fun () ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let base = (Noc_eas.Eas.schedule ~repair:false platform ctg).Noc_eas.Eas.schedule in
      let base_misses = miss_count platform ctg base in
      if base_misses = 0 then None
      else begin
        let base_energy =
          (Noc_sched.Metrics.compute platform ctg base).Noc_sched.Metrics.total_energy
        in
        let attempts =
          List.map
            (fun moves ->
              let repaired, stats = Noc_eas.Repair.run ~moves platform ctg base in
              let energy =
                (Noc_sched.Metrics.compute platform ctg repaired)
                  .Noc_sched.Metrics.total_energy
              in
              {
                moves;
                remaining_misses = miss_count platform ctg repaired;
                energy_increase = (energy -. base_energy) /. base_energy;
                evaluations = stats.Noc_eas.Repair.evaluations;
              })
            all_moves
        in
        Some { index; base_misses; attempts }
      end)
    indices
  |> List.filter_map Fun.id

let render rows =
  match rows with
  | [] -> "Repair ablation: no benchmark in the selection misses deadlines.\n"
  | _ :: _ ->
    let header =
      "benchmark" :: "base misses"
      :: List.concat_map
           (fun moves -> [ moves_name moves; "dE"; "evals" ])
           all_moves
    in
    let table_rows =
      List.map
        (fun r ->
          string_of_int r.index :: string_of_int r.base_misses
          :: List.concat_map
               (fun a ->
                 [
                   Printf.sprintf "%d left" a.remaining_misses;
                   Noc_util.Text_table.percent_cell ~decimals:2 a.energy_increase;
                   string_of_int a.evaluations;
                 ])
               r.attempts)
        rows
    in
    Printf.sprintf
      "Search-and-repair ablation (category II benchmarks with EAS-base\n\
       misses): local swapping is free but limited; migration alone pays\n\
       more energy; the paper's combination fixes everything cheaply.\n%s\n"
      (Noc_util.Text_table.render ~header table_rows)
