type row = {
  seed : int;
  comm_energy : float;
  aware_buffer_energy : float;
  fixed_buffer_energy : float;
}

let run ?(seeds = [ 0; 1; 2; 7; 8 ]) ?(n_tasks = 120) () =
  let platform = Noc_tgff.Category.platform in
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = 1.4 }
  in
  List.map
    (fun seed ->
      Runner.traced ~label:(Printf.sprintf "buffering/seed=%d" seed) @@ fun () ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let aware = Runner.schedule_of Runner.Eas platform ctg in
      let fixed =
        Runner.schedule_of ~comm_model:Noc_sched.Comm_sched.Fixed_delay Runner.Eas
          platform ctg
      in
      let aware_replay = Noc_sim.Executor.run platform ctg aware in
      let fixed_replay = Noc_sim.Executor.run platform ctg fixed in
      {
        seed;
        comm_energy =
          (Noc_sched.Metrics.compute platform ctg aware)
            .Noc_sched.Metrics.communication_energy;
        aware_buffer_energy = Noc_sim.Buffer_energy.estimate ctg aware_replay;
        fixed_buffer_energy = Noc_sim.Buffer_energy.estimate ctg fixed_replay;
      })
    seeds

let render rows =
  let header =
    [ "seed"; "Eq.1 comm (nJ)"; "EAS buffer (nJ)"; "fixed-delay buffer (nJ)" ]
  in
  let cells =
    List.map
      (fun r ->
        [
          string_of_int r.seed;
          Noc_util.Text_table.float_cell ~decimals:1 r.comm_energy;
          Noc_util.Text_table.float_cell ~decimals:1 r.aware_buffer_energy;
          Noc_util.Text_table.float_cell ~decimals:1 r.fixed_buffer_energy;
        ])
      rows
  in
  Printf.sprintf
    "Eq. (1) validation: measured buffering energy (E_Bbit term) from the\n\
     wormhole replay. Contention-aware schedules never buffer, so the\n\
     paper's approximation is exact for EAS; fixed-delay schedules would\n\
     hide a real buffering cost.\n%s\n"
    (Noc_util.Text_table.render ~header cells)
