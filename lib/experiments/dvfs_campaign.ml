(* EAS vs EAS+DVFS ablation: schedule each benchmark with EAS, reclaim
   its slack with the discrete V/f ladder, and re-certify the scaled
   schedule against the base. Work items are a fixed list fanned over
   the domain pool, so the output is bit-identical at every --jobs
   count. *)

type row = {
  name : string;
  category : string;
  tasks : int;
  eas_energy : float;
  dvfs_energy : float;
  reclaimed : float;
  downclocked : int;
  base_misses : int;
  scaled_misses : int;
  certified : bool;
}

type work = { w_name : string; w_category : string; w_build : unit -> Noc_noc.Platform.t * Noc_ctg.Ctg.t }

let category_work kind ~scale indices =
  let cat_name, label =
    match kind with
    | Noc_tgff.Category.Category_i -> ("Category I", "cat1")
    | Noc_tgff.Category.Category_ii -> ("Category II", "cat2")
    | Noc_tgff.Category.Category_iii -> ("Category III", "cat3")
  in
  List.map
    (fun index ->
      {
        w_name = Printf.sprintf "%s #%d" cat_name index;
        w_category = label;
        w_build =
          (fun () ->
            let platform = Noc_tgff.Category.platform in
            let ctg =
              if scale >= 1. then Noc_tgff.Category.benchmark kind ~index
              else
                Noc_tgff.Generate.generate
                  ~params:(Noc_tgff.Category.scaled_params kind ~scale)
                  ~platform
                  ~seed:(Noc_tgff.Category.seed_of kind index)
            in
            (platform, ctg));
      })
    indices

let msb_work =
  let clip = Noc_msb.Profile.Foreman in
  [
    ( "encoder/foreman", Noc_msb.Platforms.av_2x2,
      fun platform -> Noc_msb.Graphs.encoder ~platform ~clip () );
    ( "decoder/foreman", Noc_msb.Platforms.av_2x2,
      fun platform -> Noc_msb.Graphs.decoder ~platform ~clip () );
    ( "integrated/foreman", Noc_msb.Platforms.av_3x3,
      fun platform -> Noc_msb.Graphs.integrated ~platform ~clip () );
  ]
  |> List.map (fun (name, platform, build) ->
         {
           w_name = name;
           w_category = "msb";
           w_build = (fun () -> (platform, build platform));
         })

let evaluate ~table work =
  let platform, ctg = work.w_build () in
  let schedule = Runner.schedule_of Runner.Eas platform ctg in
  let metrics = Noc_sched.Metrics.compute platform ctg schedule in
  let r = Noc_dvfs.Reclaim.run ~table ctg schedule in
  let reclaimed = Noc_dvfs.Reclaim.reclaimed r in
  let scaled_metrics =
    Noc_sched.Metrics.compute platform ctg r.Noc_dvfs.Reclaim.schedule
  in
  let certified =
    Noc_analysis.Certify.certifies_scaled
      ~ratios:(Noc_dvfs.Vf_table.ratios table)
      ~annotations:r.Noc_dvfs.Reclaim.annotations ~base:schedule platform ctg
      r.Noc_dvfs.Reclaim.schedule
  in
  {
    name = work.w_name;
    category = work.w_category;
    tasks = Noc_ctg.Ctg.n_tasks ctg;
    eas_energy = metrics.Noc_sched.Metrics.total_energy;
    dvfs_energy = metrics.Noc_sched.Metrics.total_energy -. reclaimed;
    reclaimed;
    downclocked = r.Noc_dvfs.Reclaim.downclocked;
    base_misses = Noc_sched.Metrics.miss_count metrics;
    scaled_misses = Noc_sched.Metrics.miss_count scaled_metrics;
    certified;
  }

let run ?jobs ?(table = Noc_dvfs.Vf_table.default) ?(indices = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
    ?(scale = 1.) () =
  Noc_noc.Platform.warm_routes Noc_tgff.Category.platform;
  let work =
    category_work Noc_tgff.Category.Category_i ~scale indices
    @ category_work Noc_tgff.Category.Category_ii ~scale indices
    @ msb_work
  in
  Noc_util.Pool.map_list ?jobs
    (fun w ->
      Runner.traced ~label:("dvfs/" ^ w.w_category ^ "/" ^ w.w_name) @@ fun () ->
      evaluate ~table w)
    work

let saving row =
  if row.eas_energy <= 0. then 0. else row.reclaimed /. row.eas_energy

let render ?(table = Noc_dvfs.Vf_table.default) rows =
  let header =
    [
      "benchmark"; "tasks"; "EAS (nJ)"; "EAS+DVFS (nJ)"; "reclaimed"; "downclocked";
      "misses"; "certified";
    ]
  in
  let cells =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.tasks;
          Noc_util.Text_table.float_cell ~decimals:0 r.eas_energy;
          Noc_util.Text_table.float_cell ~decimals:0 r.dvfs_energy;
          Noc_util.Text_table.percent_cell (saving r);
          Printf.sprintf "%d/%d" r.downclocked r.tasks;
          Printf.sprintf "%d->%d" r.base_misses r.scaled_misses;
          (if r.certified then "yes" else "NO");
        ])
      rows
  in
  Printf.sprintf
    "Ablation: EAS vs EAS+DVFS slack reclamation (EAS Step 4).\n\
     Discrete V/f ladder {%s} x f_max, P ~ k.f^3, linear slowdown; starts,\n\
     communication windows and deadlines are frozen, so the reclaimed\n\
     energy stacks on EAS's and every scaled schedule re-certifies.\n%s\n"
    (Noc_dvfs.Vf_table.to_string table)
    (Noc_util.Text_table.render ~header cells)
