(** Shared machinery for the paper's experiments: the three scheduler
    configurations of Sec. 6 and their evaluation on a (platform, CTG)
    pair. *)

type algo = Eas | Eas_base | Edf

val all_algos : algo list
val algo_name : algo -> string

type evaluation = {
  algo : algo;
  metrics : Noc_sched.Metrics.t;
  runtime_seconds : float;
  resource_violations : int;
      (** Non-deadline validator findings; always 0 for a correct
          scheduler, recorded so experiments fail loudly otherwise. *)
}

val traced : label:string -> (unit -> 'a) -> 'a
(** [traced ~label f] runs one campaign trial under the observability
    subsystem: a [Noc_obs.Decisions] run context named [label] (so the
    decision log sorts deterministically regardless of which pool worker
    ran the trial) and an [experiment/trial] trace span. [label] must be
    unique per trial and derived from the trial's own parameters. *)

val evaluate :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?pinned:int array ->
  ?jobs:int ->
  algo ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  evaluation

val schedule_of :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?pinned:int array ->
  ?jobs:int ->
  algo ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t
(** [jobs] parallelises the EAS candidate walks on {!Noc_util.Pool}
    (default 1; EDF ignores it). Schedules are bit-identical at every
    job count. [pinned] fixes the task-to-PE assignment for the EAS
    variants (see {!Noc_eas.Eas.schedule}); EDF raises
    [Invalid_argument] when given one. *)

val savings : baseline:float -> float -> float
(** [savings ~baseline v] is [(baseline - v) / baseline]; the paper's
    "Energy Savings (%)" with EDF as the baseline. *)
