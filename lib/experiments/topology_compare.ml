type row = {
  topology : Noc_noc.Topology.t;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = { seed : int; n_tasks : int; rows : row list }

let run ?jobs ?(seed = 0) ?(n_tasks = 120) () =
  let topologies =
    [
      Noc_noc.Topology.mesh ~cols:4 ~rows:4;
      Noc_noc.Topology.torus ~cols:4 ~rows:4;
      Noc_noc.Topology.honeycomb ~cols:4 ~rows:4;
    ]
  in
  let rows =
    (* Each row builds its own platform (nothing shared); the honeycomb
       row's BFS parent memo is per-domain ({!Noc_noc.Routing}). *)
    Noc_util.Pool.map_list ?jobs
      (fun topology ->
        Runner.traced
          ~label:
            (Format.asprintf "topology_compare/%a/seed=%d" Noc_noc.Topology.pp
               topology seed)
        @@ fun () ->
        let platform = Noc_noc.Platform.heterogeneous ~seed:42 topology () in
        (* The same seed and parameters give per-task costs that depend
           only on the PE array, which is shared across topologies. *)
        let params = { Noc_tgff.Params.default with n_tasks } in
        let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
        {
          topology;
          eas = Runner.evaluate Runner.Eas platform ctg;
          edf = Runner.evaluate Runner.Edf platform ctg;
        })
      topologies
  in
  { seed; n_tasks; rows }

let render result =
  let header =
    [
      "topology"; "EAS comp (nJ)"; "EAS comm (nJ)"; "EAS hops"; "EAS miss";
      "EDF comm (nJ)"; "EDF hops";
    ]
  in
  let rows =
    List.map
      (fun r ->
        let m (e : Runner.evaluation) = e.Runner.metrics in
        [
          Format.asprintf "%a" Noc_noc.Topology.pp r.topology;
          Noc_util.Text_table.float_cell ~decimals:0 (m r.eas).Noc_sched.Metrics.computation_energy;
          Noc_util.Text_table.float_cell ~decimals:0 (m r.eas).Noc_sched.Metrics.communication_energy;
          Printf.sprintf "%.2f" (m r.eas).Noc_sched.Metrics.average_hops;
          string_of_int (Noc_sched.Metrics.miss_count (m r.eas));
          Noc_util.Text_table.float_cell ~decimals:0 (m r.edf).Noc_sched.Metrics.communication_energy;
          Printf.sprintf "%.2f" (m r.edf).Noc_sched.Metrics.average_hops;
        ])
      result.rows
  in
  Printf.sprintf
    "Topology extension (Sec. 7): same application (%d tasks, seed %d), same\n\
     PE array, different fabrics. Computation energy is fabric-independent;\n\
     communication energy follows each fabric's route lengths.\n%s\n"
    result.n_tasks result.seed
    (Noc_util.Text_table.render ~header rows)
