type row = {
  topology : Noc_noc.Topology.t;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
  mapped : Runner.evaluation option;
}

type result = { seed : int; n_tasks : int; rows : row list }

let run ?jobs ?(seed = 0) ?(n_tasks = 120) ?(map_search = false) () =
  let topologies =
    [
      Noc_noc.Topology.mesh ~cols:4 ~rows:4;
      Noc_noc.Topology.torus ~cols:4 ~rows:4;
      Noc_noc.Topology.honeycomb ~cols:4 ~rows:4;
    ]
  in
  let rows =
    (* Each row builds its own platform (nothing shared); the honeycomb
       row's BFS parent memo is per-domain ({!Noc_noc.Routing}). *)
    Noc_util.Pool.map_list ?jobs
      (fun topology ->
        Runner.traced
          ~label:
            (Format.asprintf "topology_compare/%a/seed=%d" Noc_noc.Topology.pp
               topology seed)
        @@ fun () ->
        let platform = Noc_noc.Platform.heterogeneous ~seed:42 topology () in
        (* The same seed and parameters give per-task costs that depend
           only on the PE array, which is shared across topologies. *)
        let params = { Noc_tgff.Params.default with n_tasks } in
        let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
        let mapped =
          if not map_search then None
          else
            (* Winner of the annealed search, re-evaluated through the
               shared machinery so the row carries validator evidence
               like the others. The inner [jobs] stays 1: this trial
               already runs on a pool worker. *)
            let r = Noc_map.Search.run ~jobs:1 platform ctg in
            Some
              (Runner.evaluate ~pinned:r.Noc_map.Search.winner.mapping Runner.Eas
                 platform ctg)
        in
        {
          topology;
          eas = Runner.evaluate Runner.Eas platform ctg;
          edf = Runner.evaluate Runner.Edf platform ctg;
          mapped;
        })
      topologies
  in
  { seed; n_tasks; rows }

let render result =
  let with_map = List.exists (fun r -> r.mapped <> None) result.rows in
  let header =
    [
      "topology"; "EAS comp (nJ)"; "EAS comm (nJ)"; "EAS hops"; "EAS miss";
      "EDF comm (nJ)"; "EDF hops";
    ]
    @ (if with_map then [ "MAP total (nJ)"; "MAP miss" ] else [])
  in
  let rows =
    List.map
      (fun r ->
        let m (e : Runner.evaluation) = e.Runner.metrics in
        [
          Format.asprintf "%a" Noc_noc.Topology.pp r.topology;
          Noc_util.Text_table.float_cell ~decimals:0 (m r.eas).Noc_sched.Metrics.computation_energy;
          Noc_util.Text_table.float_cell ~decimals:0 (m r.eas).Noc_sched.Metrics.communication_energy;
          Printf.sprintf "%.2f" (m r.eas).Noc_sched.Metrics.average_hops;
          string_of_int (Noc_sched.Metrics.miss_count (m r.eas));
          Noc_util.Text_table.float_cell ~decimals:0 (m r.edf).Noc_sched.Metrics.communication_energy;
          Printf.sprintf "%.2f" (m r.edf).Noc_sched.Metrics.average_hops;
        ]
        @
        match r.mapped with
        | None -> if with_map then [ "-"; "-" ] else []
        | Some e ->
          [
            Noc_util.Text_table.float_cell ~decimals:0 (m e).Noc_sched.Metrics.total_energy;
            string_of_int (Noc_sched.Metrics.miss_count (m e));
          ])
      result.rows
  in
  Printf.sprintf
    "Topology extension (Sec. 7): same application (%d tasks, seed %d), same\n\
     PE array, different fabrics. Computation energy is fabric-independent;\n\
     communication energy follows each fabric's route lengths.\n%s\n"
    result.n_tasks result.seed
    (Noc_util.Text_table.render ~header rows)

(* Big-mesh Pareto sweep: category-III graphs on 8x8/16x16 meshes, one
   point per balance-weight setting. The balance weight trades Eq.-3
   energy (annealing wants to pack communicating tasks onto cheap
   tiles) against makespan (deadlines want the load spread), so the
   (energy, makespan) pairs trace the mapping front the schedule can
   pick from; the identity mapping is the naive-placement reference. *)

type point = {
  label : string;
  balance_frac : float;
  static_value : float;
  energy : float;
  makespan : float;
  misses : int;
  cert_errors : int;
}

type pareto_row = {
  mesh : int * int;
  pareto_n_tasks : int;
  n_edges : int;
  points : point list;  (** Identity first, then one point per weight. *)
}

type pareto = { index : int; scale : float; rows : pareto_row list }

let default_meshes = [ (8, 8); (16, 16) ]
let default_balance_fracs = [ 0.; 0.1; 0.5; 2. ]

let point_of_candidate ~label ~balance_frac (c : Noc_map.Search.candidate) =
  {
    label;
    balance_frac;
    static_value = c.Noc_map.Search.static_value;
    energy = c.Noc_map.Search.energy;
    makespan = c.Noc_map.Search.makespan;
    misses = c.Noc_map.Search.misses;
    cert_errors = c.Noc_map.Search.cert_errors;
  }

let pareto ?jobs ?(index = 1) ?(meshes = default_meshes)
    ?(balance_fracs = default_balance_fracs) ?(scale = 1.) () =
  let params = Noc_tgff.Category.scaled_params Noc_tgff.Category.Category_iii ~scale in
  let rows =
    List.map
      (fun (cols, rows) ->
        Runner.traced
          ~label:(Printf.sprintf "topology_compare/pareto/%dx%d/index=%d" cols rows index)
        @@ fun () ->
        let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols ~rows () in
        let seed = Noc_tgff.Category.seed_of Noc_tgff.Category.Category_iii index in
        let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
        (* One kernel per mesh, shared by every weight setting. *)
        let kernel = Noc_eas.Kernel.build platform ctg in
        let tables = Noc_map.Objective.lift platform kernel ctg in
        let unit_balance = Noc_map.Objective.mean_exec_energy tables in
        if balance_fracs = [] then invalid_arg "Topology_compare.pareto: no weights";
        let searches =
          (* The per-weight searches are independent; fan them out. *)
          Noc_util.Pool.map_list ?jobs
            (fun frac ->
              let params =
                {
                  Noc_map.Search.default_params with
                  survivors = 1;
                  weights = { Noc_map.Objective.latency = 0.; balance = frac *. unit_balance };
                }
              in
              (frac, Noc_map.Search.run ~jobs:1 ~params ~kernel platform ctg))
            balance_fracs
        in
        let identity_point =
          (* Every search evaluates the identity candidate; read it off
             the first one. *)
          let _, (r : Noc_map.Search.result) = List.hd searches in
          let c =
            List.find
              (fun (c : Noc_map.Search.candidate) -> c.origin = Noc_map.Search.Identity)
              r.candidates
          in
          point_of_candidate ~label:"identity" ~balance_frac:0. c
        in
        let sa_points =
          List.map
            (fun ((frac : float), (r : Noc_map.Search.result)) ->
              (* The best-static survivor, not the winner: at non-zero
                 balance weight the interesting number is what the
                 annealer traded, not the winner fallback. At weight 0
                 the best survivor's energy can never exceed the
                 identity's (chain 0 starts there and the pure-energy
                 objective equals the pinned-EAS Eq.-3 energy). *)
              let c = List.hd r.candidates in
              point_of_candidate
                ~label:(Printf.sprintf "sa/balance=%g" frac)
                ~balance_frac:frac c)
            searches
        in
        {
          mesh = (cols, rows);
          pareto_n_tasks = Noc_ctg.Ctg.n_tasks ctg;
          n_edges = Noc_ctg.Ctg.n_edges ctg;
          points = identity_point :: sa_points;
        })
      meshes
  in
  { index; scale; rows }

let render_pareto p =
  let header =
    [ "mesh"; "point"; "energy (nJ)"; "makespan"; "misses"; "certify" ]
  in
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun pt ->
            [
              Printf.sprintf "%dx%d" (fst r.mesh) (snd r.mesh);
              pt.label;
              Noc_util.Text_table.float_cell ~decimals:0 pt.energy;
              Noc_util.Text_table.float_cell ~decimals:0 pt.makespan;
              string_of_int pt.misses;
              (if pt.cert_errors = 0 then "ok" else string_of_int pt.cert_errors ^ " errors");
            ])
          r.points)
      p.rows
  in
  Printf.sprintf
    "Mapping Pareto sweep: category-III graphs (~%s tasks), annealed task-to-\n\
     tile mappings under increasing balance weight vs the identity placement.\n\
     Energy is the pinned-EAS Eq. 3 total; rows within a mesh share the graph.\n%s\n"
    (match p.rows with
    | r :: _ -> string_of_int r.pareto_n_tasks
    | [] -> "?")
    (Noc_util.Text_table.render ~header rows)

let pareto_to_json p =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"index\": %d,\n" p.index);
  Buffer.add_string b (Printf.sprintf "  \"scale\": %g,\n" p.scale);
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mesh\": \"%dx%d\", \"n_tasks\": %d, \"n_edges\": %d, \"points\": [\n"
           (fst r.mesh) (snd r.mesh) r.pareto_n_tasks r.n_edges);
      List.iteri
        (fun j pt ->
          Buffer.add_string b
            (Printf.sprintf
               "      {\"label\": \"%s\", \"balance_frac\": %g, \"energy\": %.6f, \
                \"makespan\": %.6f, \"misses\": %d, \"cert_errors\": %d}%s\n"
               pt.label pt.balance_frac pt.energy pt.makespan pt.misses pt.cert_errors
               (if j = List.length r.points - 1 then "" else ",")))
        r.points;
      Buffer.add_string b
        (Printf.sprintf "    ]}%s\n" (if i = List.length p.rows - 1 then "" else ",")))
    p.rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
