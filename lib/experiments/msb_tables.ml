type which = Encoder | Decoder | Integrated

let which_name = function
  | Encoder -> "A/V encoder (24 tasks, 2x2)"
  | Decoder -> "A/V decoder (16 tasks, 2x2)"
  | Integrated -> "A/V encoder/decoder (40 tasks, 3x3)"

let platform_of = function
  | Encoder | Decoder -> Noc_msb.Platforms.av_2x2
  | Integrated -> Noc_msb.Platforms.av_3x3

let graph_of ?ratio which ~clip =
  let platform = platform_of which in
  match which with
  | Encoder -> Noc_msb.Graphs.encoder ?ratio ~platform ~clip ()
  | Decoder -> Noc_msb.Graphs.decoder ?ratio ~platform ~clip ()
  | Integrated -> Noc_msb.Graphs.integrated ?ratio ~platform ~clip ()

type row = {
  clip : Noc_msb.Profile.clip;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = { which : which; rows : row list }

let run which =
  let platform = platform_of which in
  let rows =
    List.map
      (fun clip ->
        Runner.traced
          ~label:
            (Printf.sprintf "msb_tables/%s/%s" (which_name which)
               (Noc_msb.Profile.clip_name clip))
        @@ fun () ->
        let ctg = graph_of which ~clip in
        {
          clip;
          eas = Runner.evaluate Runner.Eas platform ctg;
          edf = Runner.evaluate Runner.Edf platform ctg;
        })
      Noc_msb.Profile.all_clips
  in
  { which; rows }

let render result =
  let header = "MSB Task Set" :: List.map Noc_msb.Profile.clip_name
                  (List.map (fun r -> r.clip) result.rows)
  in
  let energy_cells select =
    List.map
      (fun r ->
        Noc_util.Text_table.float_cell ~decimals:0
          (select r).Runner.metrics.Noc_sched.Metrics.total_energy)
      result.rows
  in
  let savings_cells =
    List.map
      (fun r ->
        Noc_util.Text_table.percent_cell
          (Runner.savings
             ~baseline:r.edf.Runner.metrics.Noc_sched.Metrics.total_energy
             r.eas.Runner.metrics.Noc_sched.Metrics.total_energy))
      result.rows
  in
  let miss_cells =
    List.map
      (fun r -> string_of_int (Noc_sched.Metrics.miss_count r.eas.Runner.metrics))
      result.rows
  in
  let table =
    Noc_util.Text_table.render ~header
      [
        "EAS Energy (nJ)" :: energy_cells (fun r -> r.eas);
        "EDF Energy (nJ)" :: energy_cells (fun r -> r.edf);
        "Energy Savings (%)" :: savings_cells;
        "EAS deadline misses" :: miss_cells;
      ]
  in
  Printf.sprintf "%s\n%s\n" (which_name result.which) table
