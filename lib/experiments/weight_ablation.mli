(** Ablation of EAS Step 1's slack-weighting rule.

    The paper weights each task's slack share by [W = VAR_e * VAR_r] so
    that tasks whose placement matters most get the most deadline slack.
    This experiment replaces that rule with mean-time-proportional and
    uniform shares and re-runs EAS-base (no repair, to expose the raw
    effect of the budgets) on tight random benchmarks, reporting energy
    and deadline misses per scheme. *)

type row = {
  seed : int;
  per_scheme : (Noc_eas.Budget.weighting * Runner.evaluation) list;
}

val schemes : Noc_eas.Budget.weighting list
val scheme_name : Noc_eas.Budget.weighting -> string

val run :
  ?jobs:int -> ?seeds:int list -> ?n_tasks:int -> ?tightness:float -> unit -> row list
(** Defaults: seeds 0-5, 150 tasks, tightness 2.3 (the category-II
    regime) on the category platform. Seeds fan out over a
    {!Noc_util.Pool} of [jobs] domains; rows are identical at every job
    count. *)

val render : row list -> string
