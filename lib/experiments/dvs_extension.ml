type row = {
  name : string;
  edf_energy : float;
  eas_energy : float;
  eas_dvs_energy : float;
  dvs_saving : float;
}

let evaluate name platform ctg =
  let eas = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let edf = (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule in
  let metrics s = Noc_sched.Metrics.compute platform ctg s in
  let eas_m = metrics eas and edf_m = metrics edf in
  let report = Noc_eas.Dvs.plan ctg eas in
  let eas_dvs_energy =
    eas_m.Noc_sched.Metrics.communication_energy
    +. report.Noc_eas.Dvs.computation_energy_after
  in
  {
    name;
    edf_energy = edf_m.Noc_sched.Metrics.total_energy;
    eas_energy = eas_m.Noc_sched.Metrics.total_energy;
    eas_dvs_energy;
    dvs_saving = Noc_eas.Dvs.saving report;
  }

let run () =
  let clip = Noc_msb.Profile.Foreman in
  let msb =
    [
      ( "encoder/foreman",
        Noc_msb.Platforms.av_2x2,
        Noc_msb.Graphs.encoder ~platform:Noc_msb.Platforms.av_2x2 ~clip () );
      ( "decoder/foreman",
        Noc_msb.Platforms.av_2x2,
        Noc_msb.Graphs.decoder ~platform:Noc_msb.Platforms.av_2x2 ~clip () );
      ( "integrated/foreman",
        Noc_msb.Platforms.av_3x3,
        Noc_msb.Graphs.integrated ~platform:Noc_msb.Platforms.av_3x3 ~clip () );
    ]
  in
  let random =
    List.map
      (fun seed ->
        let platform = Noc_tgff.Category.platform in
        let params = { Noc_tgff.Params.default with n_tasks = 120 } in
        ( Printf.sprintf "tgff-120/seed %d" seed,
          platform,
          Noc_tgff.Generate.generate ~params ~platform ~seed ))
      [ 0; 1 ]
  in
  List.map
    (fun (name, platform, ctg) ->
      Runner.traced ~label:("dvs_extension/" ^ name) (fun () ->
          evaluate name platform ctg))
    (msb @ random)

let render rows =
  let header =
    [ "benchmark"; "EDF (nJ)"; "EAS (nJ)"; "EAS+DVS (nJ)"; "DVS comp saving" ]
  in
  let cells =
    List.map
      (fun r ->
        [
          r.name;
          Noc_util.Text_table.float_cell ~decimals:0 r.edf_energy;
          Noc_util.Text_table.float_cell ~decimals:0 r.eas_energy;
          Noc_util.Text_table.float_cell ~decimals:0 r.eas_dvs_energy;
          Noc_util.Text_table.percent_cell r.dvs_saving;
        ])
      rows
  in
  Printf.sprintf
    "Extension: DVS slack reclamation on top of EAS (first-order model,\n\
     dynamic energy ~ 1/s^2, stretch capped at 2.5x). Deadlines and the\n\
     schedule structure are untouched; the savings stack on EAS's.\n%s\n"
    (Noc_util.Text_table.render ~header cells)
