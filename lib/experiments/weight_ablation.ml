type row = {
  seed : int;
  per_scheme : (Noc_eas.Budget.weighting * Runner.evaluation) list;
}

let schemes =
  [ Noc_eas.Budget.Variance_product; Noc_eas.Budget.Mean_time; Noc_eas.Budget.Uniform ]

let scheme_name = function
  | Noc_eas.Budget.Variance_product -> "variance-product (paper)"
  | Noc_eas.Budget.Mean_time -> "mean-time"
  | Noc_eas.Budget.Uniform -> "uniform"

let evaluate_scheme platform ctg weighting =
  let t0 = Noc_util.Clock.wall_s () in
  let outcome = Noc_eas.Eas.schedule ~repair:false ~weighting platform ctg in
  let metrics = Noc_sched.Metrics.compute platform ctg outcome.Noc_eas.Eas.schedule in
  {
    Runner.algo = Runner.Eas_base;
    metrics;
    runtime_seconds = Noc_util.Clock.wall_s () -. t0;
    resource_violations = 0;
  }

let run ?jobs ?(seeds = List.init 6 Fun.id) ?(n_tasks = 150) ?(tightness = 2.3) () =
  let platform = Noc_tgff.Category.platform in
  Noc_noc.Platform.warm_routes platform;
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_util.Pool.map_list ?jobs
    (fun seed ->
      Runner.traced ~label:(Printf.sprintf "weight_ablation/seed=%d" seed)
      @@ fun () ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      {
        seed;
        per_scheme =
          List.map (fun w -> (w, evaluate_scheme platform ctg w)) schemes;
      })
    seeds

let render rows =
  let header =
    "seed"
    :: List.concat_map
         (fun w -> [ scheme_name w ^ " nJ"; "miss" ])
         schemes
  in
  let table_rows =
    List.map
      (fun r ->
        string_of_int r.seed
        :: List.concat_map
             (fun (_, (e : Runner.evaluation)) ->
               [
                 Noc_util.Text_table.float_cell ~decimals:0
                   e.Runner.metrics.Noc_sched.Metrics.total_energy;
                 string_of_int (Noc_sched.Metrics.miss_count e.Runner.metrics);
               ])
             r.per_scheme)
      rows
  in
  let totals =
    List.map
      (fun scheme ->
        let misses =
          List.fold_left
            (fun acc r ->
              let _, e = List.find (fun (w, _) -> w = scheme) r.per_scheme in
              acc + Noc_sched.Metrics.miss_count e.Runner.metrics)
            0 rows
        in
        Printf.sprintf "%s: %d total misses" (scheme_name scheme) misses)
      schemes
  in
  Printf.sprintf
    "Slack-weighting ablation (EAS-base, category-II tightness): the paper's\n\
     variance-product weights against simpler schemes. Under this workload\n\
     generator the variance product concentrates slack on a few\n\
     jitter-heavy tasks and leaves the rest with razor-thin budgets, so the\n\
     simpler schemes miss fewer deadlines; with loose deadlines all three\n\
     schemes give the same energy. See EXPERIMENTS.md.\n%s\n%s\n"
    (Noc_util.Text_table.render ~header table_rows)
    (String.concat "; " totals)
