module Executor = Noc_sim.Executor
module Fault_set = Noc_fault.Fault_set
module Fault_resched = Noc_eas.Fault_resched
module Validate = Noc_sched.Validate

type replay = { misses : int; lost : int }

type algo_trial = {
  naive : replay;  (** Replaying the fault-free schedule under faults. *)
  resched : replay option;
      (** Replaying the {!Fault_resched} output; [None] when the fault
          set made the graph unschedulable. *)
  resched_valid : bool;
  migrated : int;
  rerouted : int;
}

type trial = {
  graph : int;
  seed : int;
  faults : string;
  cyclic_cdg : bool;
  eas : algo_trial;
  edf : algo_trial;
}

type summary = {
  algo : Runner.algo;
  trials : int;
  naive_survived : int;
  resched_survived : int;
  total_migrated : int;
  total_rerouted : int;
}

type result = {
  scale : float;
  trials : trial list;
  summaries : summary list;
  cyclic_routesets : int;
}

let replay_of (outcome : Executor.outcome) =
  {
    misses = List.length outcome.deadline_misses;
    lost = List.length outcome.lost_tasks;
  }

(* Structural acceptance: no validator finding other than deadline
   misses (those are the survivability metric itself, reported by the
   fault-aware replay). *)
let structurally_valid platform ctg schedule =
  Validate.check platform ctg schedule
  |> List.for_all (function Validate.Deadline_miss _ -> true | _ -> false)

let run_algo_trial platform ctg ~faults schedule =
  let naive = replay_of (Executor.run ~faults platform ctg schedule) in
  match Fault_resched.run platform ctg ~faults schedule with
  | exception Invalid_argument _ ->
    { naive; resched = None; resched_valid = false; migrated = 0; rerouted = 0 }
  | { Fault_resched.schedule = rescheduled; stats } ->
    {
      naive;
      resched = Some (replay_of (Executor.run ~faults platform ctg rescheduled));
      resched_valid = structurally_valid platform ctg rescheduled;
      migrated = stats.Fault_resched.migrated_tasks;
      rerouted = stats.Fault_resched.rerouted_transactions;
    }

let survived = function Some { misses = 0; lost = 0 } -> true | Some _ | None -> false

let summarise algo pick trials =
  List.fold_left
    (fun (acc : summary) t ->
      let a = pick t in
      {
        acc with
        trials = acc.trials + 1;
        naive_survived =
          (acc.naive_survived + if a.naive.misses = 0 && a.naive.lost = 0 then 1 else 0);
        resched_survived = (acc.resched_survived + if survived a.resched then 1 else 0);
        total_migrated = acc.total_migrated + a.migrated;
        total_rerouted = acc.total_rerouted + a.rerouted;
      })
    {
      algo;
      trials = 0;
      naive_survived = 0;
      resched_survived = 0;
      total_migrated = 0;
      total_rerouted = 0;
    }
    trials

let run ?jobs ?(scale = 0.12) ?(n_graphs = 3) ?(n_trials = 4) () =
  let platform = Noc_tgff.Category.platform in
  Noc_noc.Platform.warm_routes platform;
  let params = Noc_tgff.Category.scaled_params Noc_tgff.Category.Category_i ~scale in
  (* Two fan-outs: first the per-graph schedules (built once, then only
     read), then every (graph, fault-seed) trial. Each trial samples its
     own fault set and builds its own degraded views and reschedules, so
     the domains share nothing mutable. *)
  let graphs =
    Noc_util.Pool.map_range ?jobs ~n:n_graphs (fun graph ->
        Runner.traced ~label:(Printf.sprintf "fault_campaign/graph=%d" graph)
        @@ fun () ->
        let ctg =
          Noc_tgff.Generate.generate ~params ~platform ~seed:(1_000 + graph)
        in
        (* Algorithm-independent fault horizon so EAS and EDF face the
           same fault sets. *)
        let horizon = 2. *. Noc_ctg.Ctg.min_critical_path ctg in
        let eas_schedule = Runner.schedule_of Runner.Eas platform ctg in
        let edf_schedule = Runner.schedule_of Runner.Edf platform ctg in
        (graph, ctg, horizon, eas_schedule, edf_schedule))
  in
  let trials =
    Noc_util.Pool.map_list ?jobs
      (fun ((graph, ctg, horizon, eas_schedule, edf_schedule), t) ->
        let seed = (graph * 100) + t in
        Runner.traced
          ~label:(Printf.sprintf "fault_campaign/graph=%d/fault_seed=%d" graph seed)
        @@ fun () ->
        let faults = Fault_set.sample ~seed ~platform ~horizon () in
        (* The BFS detour routes carry no deadlock-freedom guarantee:
           record whether their channel-dependency graph is cyclic. *)
        let cyclic_cdg =
          not
            (Noc_analysis.Cdg.is_acyclic
               (Noc_analysis.Deadlock.cdg_of_degraded
                  (Fault_set.degraded faults platform)))
        in
        {
          graph;
          seed;
          faults = Fault_set.key faults;
          cyclic_cdg;
          eas = run_algo_trial platform ctg ~faults eas_schedule;
          edf = run_algo_trial platform ctg ~faults edf_schedule;
        })
      (List.concat_map
         (fun g -> List.map (fun t -> (g, t)) (List.init n_trials Fun.id))
         graphs)
  in
  {
    scale;
    trials;
    summaries =
      [
        summarise Runner.Eas (fun t -> t.eas) trials;
        summarise Runner.Edf (fun t -> t.edf) trials;
      ];
    cyclic_routesets =
      List.length (List.filter (fun t -> t.cyclic_cdg) trials);
  }

let render result =
  let header =
    [
      "graph"; "seed"; "faults"; "detour CDG"; "EAS naive"; "EAS resched";
      "EDF naive"; "EDF resched";
    ]
  in
  let outcome_of a =
    let show { misses; lost } =
      if misses = 0 && lost = 0 then "ok" else Printf.sprintf "%dm/%dl" misses lost
    in
    ( show a.naive,
      match a.resched with
      | None -> "unschedulable"
      | Some r -> if a.resched_valid then show r else show r ^ " INVALID" )
  in
  let rows =
    List.map
      (fun t ->
        let eas_naive, eas_resched = outcome_of t.eas in
        let edf_naive, edf_resched = outcome_of t.edf in
        [
          string_of_int t.graph; string_of_int t.seed; t.faults;
          (if t.cyclic_cdg then "CYCLIC" else "acyclic");
          eas_naive; eas_resched; edf_naive; edf_resched;
        ])
      result.trials
  in
  let table = Noc_util.Text_table.render ~header rows in
  let summary_lines =
    List.map
      (fun s ->
        Printf.sprintf
          "%s: naive survives %d/%d fault sets, rescheduled %d/%d (%d migrations, %d \
           detoured transactions)"
          (Runner.algo_name s.algo) s.naive_survived s.trials s.resched_survived
          s.trials s.total_migrated s.total_rerouted)
      result.summaries
  in
  let cdg_line =
    Printf.sprintf
      "detour routing: %d/%d fault sets yield a cyclic channel-dependency graph \
       (deadlock-prone under wormhole switching)"
      result.cyclic_routesets
      (List.length result.trials)
  in
  Printf.sprintf "%s\n%s\n%s\n" table (String.concat "\n" summary_lines) cdg_line

let to_json result =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"nocsched/bench-faults/v2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %g,\n" result.scale);
  Buffer.add_string buf "  \"trials\": [\n";
  let algo_json a =
    let replay_json = function
      | None -> "null"
      | Some { misses; lost } ->
        Printf.sprintf "{\"misses\": %d, \"lost\": %d}" misses lost
    in
    Printf.sprintf
      "{\"naive\": %s, \"resched\": %s, \"valid\": %b, \"migrated\": %d, \
       \"rerouted\": %d}"
      (replay_json (Some a.naive))
      (replay_json a.resched) a.resched_valid a.migrated a.rerouted
  in
  List.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"graph\": %d, \"seed\": %d, \"faults\": %S, \"cyclic_cdg\": %b,\n\
           \     \"eas\": %s,\n\
           \     \"edf\": %s}%s\n"
           t.graph t.seed t.faults t.cyclic_cdg (algo_json t.eas) (algo_json t.edf)
           (if i = List.length result.trials - 1 then "" else ",")))
    result.trials;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"summaries\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"algo\": %S, \"trials\": %d, \"naive_survived\": %d, \
            \"resched_survived\": %d, \"migrated\": %d, \"rerouted\": %d}%s\n"
           (Runner.algo_name s.algo) s.trials s.naive_survived s.resched_survived
           s.total_migrated s.total_rerouted
           (if i = List.length result.summaries - 1 then "" else ",")))
    result.summaries;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"cyclic_routesets\": %d\n" result.cyclic_routesets);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
