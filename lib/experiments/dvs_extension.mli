(** Extension: EAS composed with DVS slack reclamation.

    The paper contrasts its assignment-level optimisation with the DVS
    school (Sec. 2); this experiment shows the two compose: after EAS,
    the {!Noc_eas.Dvs} post-pass converts residual idle time into
    voltage reduction, and the gains stack on top of the EAS-vs-EDF
    savings. An extension beyond the paper's evaluation. *)

type row = {
  name : string;
  edf_energy : float;
  eas_energy : float;
  eas_dvs_energy : float;  (** Eq. 3 with DVS-scaled computation. *)
  dvs_saving : float;  (** Relative dynamic computation saving. *)
}

val run : unit -> row list
(** The three MSB systems (foreman) plus two random benchmarks. *)

val render : row list -> string
