(** Figure 7: energy vs. performance trade-off.

    Starting from the integrated MSB application at 40 encoded and 67
    decoded frames per second, the required rates are scaled by a
    unified performance ratio; as the ratio grows the EAS schedule is
    forced away from the energy-optimal placement and its energy rises,
    while the (already performance-greedy) EDF schedule stays flat and
    above. *)

type point = {
  ratio : float;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

val default_ratios : float list
(** 1.0 to 1.8 in steps of 0.1. *)

val run :
  ?ratios:float list -> ?clip:Noc_msb.Profile.clip -> unit -> point list
(** Defaults: {!default_ratios}, foreman. *)

val render : point list -> string
