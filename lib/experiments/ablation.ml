type row = {
  seed : int;
  aware_planned_misses : int;
  aware_replay_misses : int;
  aware_max_deviation : float;
  fixed_planned_misses : int;
  fixed_replay_misses : int;
  fixed_max_lateness : float;
  fixed_link_waiting : float;
}

let miss_stats ctg schedule =
  Array.fold_left
    (fun (count, worst) (task : Noc_ctg.Task.t) ->
      match task.deadline with
      | None -> (count, worst)
      | Some d ->
        let late =
          (Noc_sched.Schedule.placement schedule task.id).Noc_sched.Schedule.finish -. d
        in
        if late > 1e-9 then (count + 1, Float.max worst late) else (count, worst))
    (0, 0.) (Noc_ctg.Ctg.tasks ctg)

let max_deviation planned realised =
  let n = Noc_sched.Schedule.n_tasks planned in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let p = Noc_sched.Schedule.placement planned i
    and q = Noc_sched.Schedule.placement realised i in
    worst :=
      Float.max !worst
        (Float.abs (p.Noc_sched.Schedule.finish -. q.Noc_sched.Schedule.finish))
  done;
  !worst

let run ?jobs ?(seeds = [ 0; 1; 2; 7; 8 ]) ?(n_tasks = 120) ?(tightness = 1.4) () =
  let platform = Noc_tgff.Category.platform in
  Noc_noc.Platform.warm_routes platform;
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_util.Pool.map_list ?jobs
    (fun seed ->
      Runner.traced ~label:(Printf.sprintf "ablation/seed=%d" seed) @@ fun () ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let aware =
        Runner.schedule_of ~comm_model:Noc_sched.Comm_sched.Contention_aware
          Runner.Eas platform ctg
      in
      let fixed =
        Runner.schedule_of ~comm_model:Noc_sched.Comm_sched.Fixed_delay Runner.Eas
          platform ctg
      in
      let aware_replay = Noc_sim.Executor.run platform ctg aware in
      let fixed_replay = Noc_sim.Executor.run platform ctg fixed in
      let aware_planned_misses, _ = miss_stats ctg aware in
      let aware_replay_misses, _ = miss_stats ctg aware_replay.Noc_sim.Executor.realised in
      let fixed_planned_misses, _ = miss_stats ctg fixed in
      let fixed_replay_misses, fixed_max_lateness =
        miss_stats ctg fixed_replay.Noc_sim.Executor.realised
      in
      {
        seed;
        aware_planned_misses;
        aware_replay_misses;
        aware_max_deviation = max_deviation aware aware_replay.Noc_sim.Executor.realised;
        fixed_planned_misses;
        fixed_replay_misses;
        fixed_max_lateness;
        fixed_link_waiting = fixed_replay.Noc_sim.Executor.waiting_time;
      })
    seeds

let render rows =
  let header =
    [
      "seed"; "aware: plan miss"; "replay miss"; "max dev";
      "fixed: plan miss"; "replay miss"; "max late"; "link wait";
    ]
  in
  let row_of r =
    [
      string_of_int r.seed;
      string_of_int r.aware_planned_misses;
      string_of_int r.aware_replay_misses;
      Printf.sprintf "%.3g" r.aware_max_deviation;
      string_of_int r.fixed_planned_misses;
      string_of_int r.fixed_replay_misses;
      Printf.sprintf "%.0f" r.fixed_max_lateness;
      Printf.sprintf "%.0f" r.fixed_link_waiting;
    ]
  in
  Printf.sprintf
    "Contention ablation: schedules built under a fixed-delay communication\n\
     model look feasible but miss deadlines when replayed with real link\n\
     arbitration; contention-aware schedules replay exactly.\n%s\n"
    (Noc_util.Text_table.render ~header (List.map row_of rows))
