(** Validation of the paper's Eq. (1) approximation.

    Eq. (1) drops the congestion-coupled buffering energy [E_Bbit]; the
    paper justifies this by the cost of measuring it. We measure it with
    the wormhole executor: for contention-aware EAS schedules the
    payload never waits in buffers (E_B = 0 exactly), while the same
    scheduler under the fixed-delay model produces schedules whose
    replay buffers data on every seed — quantifying both the quality of
    the approximation for EAS and what it would miss for naive
    schedules. *)

type row = {
  seed : int;
  comm_energy : float;  (** Eq. (1) communication energy of the schedule. *)
  aware_buffer_energy : float;
  fixed_buffer_energy : float;
}

val run : ?seeds:int list -> ?n_tasks:int -> unit -> row list
(** Defaults: seeds {0, 1, 2, 7, 8}, 120 tasks, category platform,
    tightness 1.4 (the contention-ablation setup). *)

val render : row list -> string
