(** Monte-Carlo fault campaign: survivability of EAS and EDF schedules
    under seeded random fault sets.

    For each scaled category-I benchmark and each sampled fault set
    (one PE fault plus one link fault, permanent or transient,
    {!Noc_fault.Fault_set.sample}), two responses are compared under the
    fault-aware simulator:

    - {b naive}: keep executing the fault-free schedule — tasks on the
      failed PE are lost, transactions stall on the failed link;
    - {b rescheduled}: run {!Noc_eas.Fault_resched} and replay its
      degraded-platform schedule under the same faults.

    A schedule {e survives} a fault set when its replay finishes every
    task and misses no deadline. The campaign is fully deterministic:
    trial [t] of graph [g] uses fault seed [100 g + t]. *)

type replay = { misses : int; lost : int }

type algo_trial = {
  naive : replay;
  resched : replay option;
      (** [None] when the fault set made the graph unschedulable. *)
  resched_valid : bool;
      (** The rescheduled schedule passes the validator's structural and
          resource checks (deadline misses excluded — those are the
          survivability metric itself). *)
  migrated : int;
  rerouted : int;
}

type trial = {
  graph : int;
  seed : int;
  faults : string;  (** {!Noc_fault.Fault_set.key} of the sampled set. *)
  cyclic_cdg : bool;
      (** The degraded BFS detour route set has a cyclic
          channel-dependency graph, i.e. it is deadlock-prone under
          wormhole switching ({!Noc_analysis.Deadlock}). *)
  eas : algo_trial;
  edf : algo_trial;
}

type summary = {
  algo : Runner.algo;
  trials : int;
  naive_survived : int;
  resched_survived : int;
  total_migrated : int;
  total_rerouted : int;
}

type result = {
  scale : float;
  trials : trial list;
  summaries : summary list;
  cyclic_routesets : int;  (** Trials whose detour-route CDG is cyclic. *)
}

val run :
  ?jobs:int -> ?scale:float -> ?n_graphs:int -> ?n_trials:int -> unit -> result
(** Defaults: 3 graphs at scale 0.12 (~60 tasks), 4 fault sets each.
    Schedule construction fans out per graph and replay per trial on a
    {!Noc_util.Pool} of [jobs] domains; the result (and its JSON form)
    is identical at every job count. *)

val render : result -> string
val to_json : result -> string
(** Machine-readable form persisted as [BENCH_faults.json]. *)
