type algo = Eas | Eas_base | Edf

let all_algos = [ Eas_base; Eas; Edf ]

let algo_name = function
  | Eas -> "EAS"
  | Eas_base -> "EAS-base"
  | Edf -> "EDF"

type evaluation = {
  algo : algo;
  metrics : Noc_sched.Metrics.t;
  runtime_seconds : float;
  resource_violations : int;
}

(* Campaigns wrap each trial body in [traced ~label]: the label (unique
   per trial, derived from the trial's seed/configuration, never from
   which pool worker ran it) keys the decision log so its export is
   identical at every --jobs count, and the span groups the trial's
   scheduler/simulator spans in the trace timeline. *)
let traced ~label f =
  Noc_obs.Decisions.with_run label (fun () ->
      Noc_obs.Trace.span ~cat:"experiment" "experiment/trial"
        ~args:(fun () -> [ ("trial", Noc_obs.Trace.String label) ])
        f)

let schedule_of ?comm_model ?pinned ?jobs algo platform ctg =
  match algo with
  | Eas -> (Noc_eas.Eas.schedule ?comm_model ?pinned ?jobs platform ctg).schedule
  | Eas_base ->
    (Noc_eas.Eas.schedule ~repair:false ?comm_model ?pinned ?jobs platform ctg)
      .schedule
  | Edf ->
    if pinned <> None then
      invalid_arg "Runner.schedule_of: EDF does not take a pinned mapping";
    (Noc_edf.Edf.schedule ?comm_model platform ctg).schedule

let evaluate ?comm_model ?pinned ?jobs algo platform ctg =
  Noc_obs.Log.debugf "evaluate %s: %d tasks on %d PEs" (algo_name algo)
    (Noc_ctg.Ctg.n_tasks ctg)
    (Noc_noc.Platform.n_pes platform);
  let runtime_seconds, schedule =
    let t0 = Noc_util.Clock.wall_s () in
    let s = schedule_of ?comm_model ?pinned ?jobs algo platform ctg in
    (Noc_util.Clock.wall_s () -. t0, s)
  in
  let metrics = Noc_sched.Metrics.compute platform ctg schedule in
  let resource_violations =
    Noc_sched.Validate.check platform ctg schedule
    |> List.filter (function
         | Noc_sched.Validate.Deadline_miss _ -> false
         | Noc_sched.Validate.Malformed _ | Noc_sched.Validate.Task_overlap _
         | Noc_sched.Validate.Link_conflict _ | Noc_sched.Validate.Dependency _ ->
           true)
    |> List.length
  in
  (* The fixed-delay ablation is the only configuration allowed to plan
     conflicting transactions. *)
  (match comm_model with
  | Some Noc_sched.Comm_sched.Fixed_delay -> ()
  | Some Noc_sched.Comm_sched.Contention_aware | None ->
    assert (resource_violations = 0));
  { algo; metrics; runtime_seconds; resource_violations }

let savings ~baseline v =
  assert (baseline > 0.);
  (baseline -. v) /. baseline
