(** Extended baseline comparison.

    Places EAS between the two schools the paper cites: the
    performance-maximising comm-aware heuristics (EDF, and Sih & Lee's
    DLS, the paper's reference [10]) and a deadline-oblivious
    energy-greedy mapper that approximates the energy lower bound. The
    expected shape: EAS's energy approaches the greedy bound while being
    the only scheduler that both respects deadlines and stays near it;
    the performance schedulers pay 1.5-2x energy for their speed. *)

type entry = {
  scheduler : string;
  energy : float;
  makespan : float;
  misses : int;
}

type row = { name : string; entries : entry list }

val run : ?jobs:int -> ?seeds:int list -> unit -> row list
(** Three MSB systems (foreman) plus TGFF benchmarks for the given
    seeds (default {0, 1, 2}, 120 tasks). Benchmarks fan out over a
    {!Noc_util.Pool} of [jobs] domains; rows are identical at every job
    count. *)

val render : row list -> string
