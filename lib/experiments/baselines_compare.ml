type entry = { scheduler : string; energy : float; makespan : float; misses : int }
type row = { name : string; entries : entry list }

let entry_of name platform ctg schedule =
  let m = Noc_sched.Metrics.compute platform ctg schedule in
  {
    scheduler = name;
    energy = m.Noc_sched.Metrics.total_energy;
    makespan = m.Noc_sched.Metrics.makespan;
    misses = Noc_sched.Metrics.miss_count m;
  }

let evaluate name platform ctg =
  let entries =
    [
      entry_of "EAS" platform ctg (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule;
      entry_of "EDF" platform ctg (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule;
      entry_of "DLS" platform ctg
        (Noc_baselines.Dls.schedule platform ctg).Noc_baselines.Dls.schedule;
      entry_of "Energy-greedy" platform ctg
        (Noc_baselines.Energy_greedy.schedule platform ctg)
          .Noc_baselines.Energy_greedy.schedule;
    ]
  in
  { name; entries }

let run ?jobs ?(seeds = [ 0; 1; 2 ]) () =
  let clip = Noc_msb.Profile.Foreman in
  (* Three shared platforms cross the fan-out below (av_2x2 twice). *)
  List.iter Noc_noc.Platform.warm_routes
    [ Noc_msb.Platforms.av_2x2; Noc_msb.Platforms.av_3x3; Noc_tgff.Category.platform ];
  let msb =
    [
      ( "encoder/foreman",
        Noc_msb.Platforms.av_2x2,
        Noc_msb.Graphs.encoder ~platform:Noc_msb.Platforms.av_2x2 ~clip () );
      ( "decoder/foreman",
        Noc_msb.Platforms.av_2x2,
        Noc_msb.Graphs.decoder ~platform:Noc_msb.Platforms.av_2x2 ~clip () );
      ( "integrated/foreman",
        Noc_msb.Platforms.av_3x3,
        Noc_msb.Graphs.integrated ~platform:Noc_msb.Platforms.av_3x3 ~clip () );
    ]
  in
  let random =
    List.map
      (fun seed ->
        let platform = Noc_tgff.Category.platform in
        let params = { Noc_tgff.Params.default with n_tasks = 120 } in
        ( Printf.sprintf "tgff-120/seed %d" seed,
          platform,
          Noc_tgff.Generate.generate ~params ~platform ~seed ))
      seeds
  in
  Noc_util.Pool.map_list ?jobs
    (fun (name, platform, ctg) ->
      Runner.traced ~label:("baselines_compare/" ^ name) (fun () ->
          evaluate name platform ctg))
    (msb @ random)

let render rows =
  let schedulers =
    match rows with
    | [] -> []
    | r :: _ -> List.map (fun e -> e.scheduler) r.entries
  in
  let header =
    "benchmark"
    :: List.concat_map (fun s -> [ s ^ " nJ"; "mk"; "miss" ]) schedulers
  in
  let cells =
    List.map
      (fun r ->
        r.name
        :: List.concat_map
             (fun e ->
               [
                 Noc_util.Text_table.float_cell ~decimals:0 e.energy;
                 Noc_util.Text_table.float_cell ~decimals:0 e.makespan;
                 string_of_int e.misses;
               ])
             r.entries)
      rows
  in
  Printf.sprintf
    "Extended baselines: EAS between the performance school (EDF, DLS of\n\
     Sih & Lee — the paper's ref [10]) and a deadline-oblivious\n\
     energy-greedy lower bound.\n%s\n"
    (Noc_util.Text_table.render ~header cells)
