(** Figures 5 and 6: EAS-base / EAS / EDF on the random benchmark
    suites.

    The paper plots, for each of the 10 TGFF benchmarks of a category,
    the energy of the three schedules, and reports that EDF consumes on
    average 55% (category I) and 39% (category II) more energy than EAS;
    EAS-base misses deadlines on a few benchmarks and the search-and-
    repair step fixes all of them with negligible energy increase but a
    higher run time. *)

type row = {
  index : int;
  eas_base : Runner.evaluation;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = {
  kind : Noc_tgff.Category.kind;
  rows : row list;
  average_edf_excess : float;
      (** Mean of [edf_energy / eas_energy - 1] over the suite. *)
}

val run :
  ?jobs:int -> ?indices:int list -> ?scale:float -> Noc_tgff.Category.kind -> result
(** [run kind] evaluates the full suite (indices 0-9) at the paper's
    size. [scale] shrinks the graphs (same regime) for quick runs;
    [indices] restricts the benchmarks evaluated. Benchmarks are
    evaluated on a {!Noc_util.Pool} of [jobs] domains (default
    {!Noc_util.Pool.default_jobs}); the result is identical at every job
    count. *)

val render : result -> string
