(** The contention ablation: why communication must be co-scheduled.

    The paper argues (Sec. 1) that assuming "a fixed delay proportional
    to the communication volume" is unsafe because congestion changes
    delays dynamically. We quantify this: EAS is run once with its real
    contention-aware communication scheduler and once with the naive
    fixed-delay model, and both schedules are replayed on the wormhole
    simulator's time-triggered runtime. The contention-aware schedule
    replays exactly; the fixed-delay schedule's transactions collide and
    deadlines are missed. *)

type row = {
  seed : int;
  aware_planned_misses : int;
  aware_replay_misses : int;
  aware_max_deviation : float;
      (** Largest |replayed - planned| finish difference; 0 expected. *)
  fixed_planned_misses : int;
      (** Misses the naive scheduler believes it has (it is oblivious). *)
  fixed_replay_misses : int;
  fixed_max_lateness : float;
  fixed_link_waiting : float;
      (** Total time the naive schedule's transactions spent blocked. *)
}

val run :
  ?jobs:int -> ?seeds:int list -> ?n_tasks:int -> ?tightness:float -> unit -> row list
(** Defaults: seeds {0, 1, 2, 7, 8}, 120 tasks, tightness 1.4, on the
    category platform. Seeds fan out over a {!Noc_util.Pool} of [jobs]
    domains; the rows are identical at every job count. *)

val render : row list -> string
