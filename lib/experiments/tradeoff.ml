type point = { ratio : float; eas : Runner.evaluation; edf : Runner.evaluation }

let default_ratios = List.init 9 (fun i -> 1.0 +. (0.1 *. float_of_int i))

let run ?(ratios = default_ratios) ?(clip = Noc_msb.Profile.Foreman) () =
  let platform = Noc_msb.Platforms.av_3x3 in
  List.map
    (fun ratio ->
      Runner.traced ~label:(Printf.sprintf "tradeoff/ratio=%.1f" ratio) @@ fun () ->
      let ctg = Noc_msb.Graphs.integrated ~ratio ~platform ~clip () in
      {
        ratio;
        eas = Runner.evaluate Runner.Eas platform ctg;
        edf = Runner.evaluate Runner.Edf platform ctg;
      })
    ratios

let render points =
  let header =
    [ "performance ratio"; "EAS (nJ)"; "EDF (nJ)"; "EAS miss"; "EDF miss" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%.1f" p.ratio;
          Noc_util.Text_table.float_cell ~decimals:0
            p.eas.Runner.metrics.Noc_sched.Metrics.total_energy;
          Noc_util.Text_table.float_cell ~decimals:0
            p.edf.Runner.metrics.Noc_sched.Metrics.total_energy;
          string_of_int (Noc_sched.Metrics.miss_count p.eas.Runner.metrics);
          string_of_int (Noc_sched.Metrics.miss_count p.edf.Runner.metrics);
        ])
      points
  in
  Printf.sprintf
    "Performance and energy trade-off (integrated MSB, foreman):\n%s\n"
    (Noc_util.Text_table.render ~header rows)
