(** EAS vs EAS+DVFS ablation (the [dvfs] campaign).

    Schedules the category I/II random suites and the MSB A/V
    benchmarks with EAS, runs {!Noc_dvfs.Reclaim} over each committed
    schedule, and re-certifies every scaled schedule with
    {!Noc_analysis.Certify.check_scaled}. Work items are a fixed list
    fanned over the domain pool, so results are bit-identical at every
    [--jobs] count. *)

type row = {
  name : string;
  category : string;  (** [cat1], [cat2] or [msb] *)
  tasks : int;
  eas_energy : float;  (** unscaled Eq.-3 total *)
  dvfs_energy : float;  (** total after slack reclamation *)
  reclaimed : float;  (** [eas_energy - dvfs_energy], nJ *)
  downclocked : int;
  base_misses : int;
  scaled_misses : int;
  certified : bool;  (** {!Noc_analysis.Certify.certifies_scaled} *)
}

val run :
  ?jobs:int ->
  ?table:Noc_dvfs.Vf_table.t ->
  ?indices:int list ->
  ?scale:float ->
  unit ->
  row list
(** [indices] selects the category benchmarks (default 0-9, the full
    paper suites); [scale < 1] shrinks the generated graphs for quick
    runs (the MSB rows are small and always run full-size). *)

val saving : row -> float
(** Reclaimed fraction of the unscaled total energy. *)

val render : ?table:Noc_dvfs.Vf_table.t -> row list -> string
