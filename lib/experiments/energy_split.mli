(** The in-text claim of Sec. 6.2: EAS's savings combine computation and
    communication energy reductions, the latter visible as a drop in the
    average hops per packet (paper: 2.55 to 1.68 on foreman). *)

type result = {
  clip : Noc_msb.Profile.clip;
  eas : Noc_sched.Metrics.t;
  edf : Noc_sched.Metrics.t;
}

val run : ?clip:Noc_msb.Profile.clip -> unit -> result
(** Integrated MSB on the 3x3 platform; default clip foreman. *)

val render : result -> string
