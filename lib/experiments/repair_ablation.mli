(** Ablation of EAS Step 3's two move kinds.

    Search and repair combines local task swapping (LTS — free, cannot
    change energy) with global task migration (GTM — may cost energy).
    This experiment takes category-II benchmarks whose EAS-base schedule
    misses deadlines and repairs each with LTS only, GTM only, and the
    paper's combination, reporting remaining misses, energy change and
    the number of rebuilds. *)

type attempt = {
  moves : Noc_eas.Repair.moves;
  remaining_misses : int;
  energy_increase : float;  (** Relative to the EAS-base schedule. *)
  evaluations : int;
}

type row = { index : int; base_misses : int; attempts : attempt list }

val run : ?jobs:int -> ?indices:int list -> ?scale:float -> unit -> row list
(** Runs on the category-II suite (default indices 0-4, [scale] as in
    {!Random_suite.run}); rows only cover benchmarks whose base schedule
    actually misses deadlines. Benchmarks fan out over a
    {!Noc_util.Pool} of [jobs] domains; rows are identical at every job
    count. *)

val render : row list -> string
