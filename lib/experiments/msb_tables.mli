(** Tables 1-3: the Multimedia System Benchmarks.

    For each of the three systems (A/V encoder on a 2x2 NoC, A/V decoder
    on a 2x2 NoC, integrated encoder+decoder on a 3x3 NoC) and each clip
    (akiyo, foreman, toybox), the paper reports EAS energy, EDF energy
    and the savings percentage. *)

type which = Encoder | Decoder | Integrated

val which_name : which -> string
val platform_of : which -> Noc_noc.Platform.t
val graph_of : ?ratio:float -> which -> clip:Noc_msb.Profile.clip -> Noc_ctg.Ctg.t

type row = {
  clip : Noc_msb.Profile.clip;
  eas : Runner.evaluation;
  edf : Runner.evaluation;
}

type result = { which : which; rows : row list }

val run : which -> result
val render : result -> string
