type result = {
  clip : Noc_msb.Profile.clip;
  eas : Noc_sched.Metrics.t;
  edf : Noc_sched.Metrics.t;
}

let run ?(clip = Noc_msb.Profile.Foreman) () =
  Runner.traced ~label:("energy_split/" ^ Noc_msb.Profile.clip_name clip)
  @@ fun () ->
  let platform = Noc_msb.Platforms.av_3x3 in
  let ctg = Noc_msb.Graphs.integrated ~platform ~clip () in
  {
    clip;
    eas = (Runner.evaluate Runner.Eas platform ctg).metrics;
    edf = (Runner.evaluate Runner.Edf platform ctg).metrics;
  }

let render r =
  let header = [ "metric"; "EDF"; "EAS" ] in
  let cell = Noc_util.Text_table.float_cell ~decimals:1 in
  let rows =
    [
      [ "computation energy (nJ)"; cell r.edf.computation_energy; cell r.eas.computation_energy ];
      [ "communication energy (nJ)"; cell r.edf.communication_energy; cell r.eas.communication_energy ];
      [ "total energy (nJ)"; cell r.edf.total_energy; cell r.eas.total_energy ];
      [ "average hops per packet"; Printf.sprintf "%.2f" r.edf.average_hops;
        Printf.sprintf "%.2f" r.eas.average_hops ];
    ]
  in
  Printf.sprintf
    "Energy breakdown (integrated MSB, %s): EAS reduces computation and\ncommunication energy together.\n%s\n"
    (Noc_msb.Profile.clip_name r.clip)
    (Noc_util.Text_table.render ~header rows)
