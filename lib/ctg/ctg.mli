(** Communication Task Graphs (paper Definition 1).

    A CTG is a directed acyclic graph whose vertices are {!Task.t} values
    (computational modules with per-PE costs and optional deadlines) and
    whose arcs are {!Edge.t} values (control or data dependencies with a
    communication volume in bits). *)

type t

val make : tasks:Task.t array -> edges:Edge.t array -> (t, string) result
(** Validates and builds a graph. Checks performed: task ids are dense and
    in position; all tasks agree on the PE count; edge ids are dense and in
    position; edge endpoints are valid task ids; no duplicate arcs; the
    graph is acyclic; at least one task exists. *)

val make_exn : tasks:Task.t array -> edges:Edge.t array -> t
(** Like {!make} but raises [Invalid_argument] with the error message. *)

val n_tasks : t -> int
val n_edges : t -> int
val n_pes : t -> int

val task : t -> int -> Task.t
val edge : t -> int -> Edge.t
val tasks : t -> Task.t array
val edges : t -> Edge.t array

val in_edges : t -> int -> Edge.t list
(** Arcs entering the task, in increasing edge-id order. *)

val out_edges : t -> int -> Edge.t list
val preds : t -> int -> int list
val succs : t -> int -> int list

val sources : t -> int list
(** Tasks without predecessors. *)

val sinks : t -> int list
(** Tasks without successors. *)

val topological_order : t -> int array
(** A deterministic topological order of task ids. *)

val total_volume : t -> float
(** Sum of all edge volumes (bits). *)

val deadline_tasks : t -> int list
(** Tasks carrying an explicit deadline. *)

val mean_critical_path : t -> float
(** Longest path length where each task costs its mean execution time
    (communication ignored). A coarse lower-ish bound used for deadline
    assignment and reporting. *)

val min_critical_path : t -> float
(** Same with each task's fastest execution time: a true lower bound on
    the makespan of any schedule (communication ignored). *)

val min_load_bound : t -> float
(** [sum_i min_k r_i^k / n_pes]: the perfectly-balanced computation lower
    bound on the makespan. *)

val digest : t -> string
(** Stable content digest: FNV-1a ({!Noc_util.Fnv}) over a canonical
    serialization of the graph — per-PE cost arrays, releases and
    deadlines in task-id order plus the arc set sorted by endpoints,
    all floats rendered exactly ([%h]). Semantically irrelevant
    presentation details do not participate: task names and the
    declaration (id) order of edges leave the digest unchanged, while
    any change to a cost, window or volume changes it. Used as the
    CTG component of the serve daemon's schedule-cache key. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (task/edge counts, PE count). *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering for debugging and documentation. *)
