type carried = { from_task : int; to_task : int; volume : float }

let instance_of ctg k ~task = (k * Ctg.n_tasks ctg) + task

let periodic ?(carried = []) ctg ~period ~copies =
  if not (period > 0.) then invalid_arg "Unroll.periodic: period must be positive";
  if copies < 1 then invalid_arg "Unroll.periodic: copies must be >= 1";
  let n = Ctg.n_tasks ctg in
  List.iter
    (fun c ->
      if c.from_task < 0 || c.from_task >= n || c.to_task < 0 || c.to_task >= n then
        invalid_arg "Unroll.periodic: carried arc references unknown task";
      if c.volume < 0. then invalid_arg "Unroll.periodic: carried volume negative")
    carried;
  let sources = Ctg.sources ctg in
  let is_source i = List.mem i sources in
  let tasks =
    Array.init (copies * n) (fun id ->
        let k = id / n and i = id mod n in
        let task = Ctg.task ctg i in
        let shift = float_of_int k *. period in
        let release =
          match task.Task.release with
          | Some r -> Some (r +. shift)
          | None ->
            (* Frame k's inputs only exist once frame k has arrived. *)
            if is_source i && k > 0 then Some shift else None
        in
        Task.make ~id
          ~name:(Printf.sprintf "%s@%d" task.Task.name k)
          ~exec_times:task.Task.exec_times ~energies:task.Task.energies ?release
          ?deadline:(Option.map (fun d -> d +. shift) task.Task.deadline)
          ())
  in
  let edges_per_copy = Ctg.n_edges ctg in
  let intra =
    List.concat
      (List.init copies (fun k ->
           Array.to_list (Ctg.edges ctg)
           |> List.map (fun (e : Edge.t) ->
                  Edge.make
                    ~id:((k * edges_per_copy) + e.id)
                    ~src:((k * n) + e.src) ~dst:((k * n) + e.dst) ~volume:e.volume)))
  in
  let carried_edges =
    List.concat
      (List.init (copies - 1) (fun k ->
           List.mapi
             (fun j c ->
               Edge.make
                 ~id:((copies * edges_per_copy) + (k * List.length carried) + j)
                 ~src:((k * n) + c.from_task)
                 ~dst:(((k + 1) * n) + c.to_task)
                 ~volume:c.volume)
             carried))
  in
  Ctg.make_exn ~tasks ~edges:(Array.of_list (intra @ carried_edges))
