let float_to_string v =
  (* %h or %.17g round-trip doubles; prefer the shortest exact form. *)
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let to_string ctg =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "ctg 1\n";
  add "pes %d\n" (Ctg.n_pes ctg);
  Array.iter
    (fun (t : Task.t) ->
      add "task %d name %s%s%s\n" t.id t.name
        (match t.release with
        | None -> ""
        | Some r -> " release " ^ float_to_string r)
        (match t.deadline with
        | None -> ""
        | Some d -> " deadline " ^ float_to_string d);
      add "  times %s\n"
        (String.concat " " (Array.to_list (Array.map float_to_string t.exec_times)));
      add "  energies %s\n"
        (String.concat " " (Array.to_list (Array.map float_to_string t.energies))))
    (Ctg.tasks ctg);
  Array.iter
    (fun (e : Edge.t) ->
      add "edge %d from %d to %d volume %s\n" e.id e.src e.dst (float_to_string e.volume))
    (Ctg.edges ctg);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

type partial_task = {
  id : int;
  name : string;
  release : float option;
  deadline : float option;
  mutable times : float array option;
  mutable energies : float array option;
}

type state = {
  mutable n_pes : int option;
  mutable tasks_rev : partial_task list;
  mutable edges_rev : Edge.t list;
  mutable next_edge : int;
  mutable version_seen : bool;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let tokens_of_line line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_float line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not a number (%S)" what s

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not an integer (%S)" what s

let parse_floats line what rest = Array.of_list (List.map (parse_float line what) rest)

let current_task st line =
  match st.tasks_rev with
  | [] -> fail line "cost line outside a task block"
  | t :: _ -> t

let handle_line st line_no words =
  match words with
  | [] -> ()
  | "ctg" :: version -> (
    match version with
    | [ "1" ] -> st.version_seen <- true
    | _ -> fail line_no "unsupported format version (expected: ctg 1)")
  | "pes" :: rest -> (
    match rest with
    | [ n ] ->
      let n = parse_int line_no "pes" n in
      if n <= 0 then fail line_no "pes must be positive";
      st.n_pes <- Some n
    | _ -> fail line_no "pes expects one integer")
  | "task" :: rest -> (
    match rest with
    | id :: "name" :: name :: tail ->
      let id = parse_int line_no "task id" id in
      if id <> List.length st.tasks_rev then
        fail line_no "task ids must be dense and ordered (got %d)" id;
      let release, deadline =
        match tail with
        | [] -> (None, None)
        | [ "deadline"; d ] -> (None, Some (parse_float line_no "deadline" d))
        | [ "release"; r ] -> (Some (parse_float line_no "release" r), None)
        | [ "release"; r; "deadline"; d ] ->
          ( Some (parse_float line_no "release" r),
            Some (parse_float line_no "deadline" d) )
        | _ -> fail line_no "malformed task line"
      in
      st.tasks_rev <-
        { id; name; release; deadline; times = None; energies = None } :: st.tasks_rev
    | _ ->
      fail line_no
        "malformed task line (task <id> name <name> [release <r>] [deadline <d>])")
  | "times" :: rest ->
    let t = current_task st line_no in
    if t.times <> None then fail line_no "duplicate times for task %d" t.id;
    t.times <- Some (parse_floats line_no "times" rest)
  | "energies" :: rest ->
    let t = current_task st line_no in
    if t.energies <> None then fail line_no "duplicate energies for task %d" t.id;
    t.energies <- Some (parse_floats line_no "energies" rest)
  | "edge" :: rest -> (
    match rest with
    | [ id; "from"; src; "to"; dst; "volume"; volume ] ->
      let id = parse_int line_no "edge id" id in
      if id <> st.next_edge then
        fail line_no "edge ids must be dense and ordered (got %d)" id;
      let src = parse_int line_no "edge src" src in
      let dst = parse_int line_no "edge dst" dst in
      let volume = parse_float line_no "edge volume" volume in
      (try st.edges_rev <- Edge.make ~id ~src ~dst ~volume :: st.edges_rev
       with Invalid_argument msg -> fail line_no "%s" msg);
      st.next_edge <- id + 1
    | _ -> fail line_no "malformed edge line (edge <id> from <s> to <d> volume <v>)")
  | keyword :: _ -> fail line_no "unknown keyword %S" keyword

let of_string text =
  let st =
    { n_pes = None; tasks_rev = []; edges_rev = []; next_edge = 0; version_seen = false }
  in
  try
    List.iteri
      (fun i line ->
        let words =
          tokens_of_line line |> String.split_on_char ' '
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        handle_line st (i + 1) words)
      (String.split_on_char '\n' text);
    if not st.version_seen then Error "missing header line (ctg 1)"
    else begin
      let n_pes =
        match st.n_pes with Some n -> n | None -> raise (Parse_error (0, "missing pes line"))
      in
      let tasks =
        List.rev st.tasks_rev
        |> List.map (fun (p : partial_task) ->
               let times =
                 match p.times with
                 | Some t -> t
                 | None -> raise (Parse_error (0, Printf.sprintf "task %d lacks times" p.id))
               in
               let energies =
                 match p.energies with
                 | Some e -> e
                 | None ->
                   raise (Parse_error (0, Printf.sprintf "task %d lacks energies" p.id))
               in
               if Array.length times <> n_pes || Array.length energies <> n_pes then
                 raise
                   (Parse_error
                      (0, Printf.sprintf "task %d: expected %d cost entries" p.id n_pes));
               try
                 Task.make ~id:p.id ~name:p.name ~exec_times:times ~energies
                   ?release:p.release ?deadline:p.deadline ()
               with Invalid_argument msg -> raise (Parse_error (0, msg)))
        |> Array.of_list
      in
      Ctg.make ~tasks ~edges:(Array.of_list (List.rev st.edges_rev))
    end
  with Parse_error (line, msg) ->
    if line = 0 then Error msg else Error (Printf.sprintf "line %d: %s" line msg)

let save ~path ctg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ctg))

let load ~path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
