type t = {
  tasks : Task.t array;
  edges : Edge.t array;
  in_edges : int list array;  (* edge ids, increasing *)
  out_edges : int list array;
  topo : int array;
}

let validate ~tasks ~edges =
  let n = Array.length tasks in
  if n = 0 then Error "graph has no task"
  else begin
    let pe_count = Task.n_pes tasks.(0) in
    let problem = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
    Array.iteri
      (fun i task ->
        if task.Task.id <> i then fail "task at position %d has id %d" i task.Task.id;
        if Task.n_pes task <> pe_count then
          fail "task %d has %d PE costs, expected %d" i (Task.n_pes task) pe_count)
      tasks;
    let seen = Hashtbl.create (2 * Array.length edges) in
    Array.iteri
      (fun i e ->
        if e.Edge.id <> i then fail "edge at position %d has id %d" i e.Edge.id;
        if e.Edge.src >= n || e.Edge.dst >= n then
          fail "edge %d references missing task (%d -> %d)" i e.Edge.src e.Edge.dst
        else begin
          let key = (e.Edge.src, e.Edge.dst) in
          if Hashtbl.mem seen key then fail "duplicate arc %d -> %d" e.Edge.src e.Edge.dst;
          Hashtbl.replace seen key ()
        end)
      edges;
    match !problem with Some msg -> Error msg | None -> Ok pe_count
  end

let make ~tasks ~edges =
  match validate ~tasks ~edges with
  | Error msg -> Error msg
  | Ok _pe_count ->
    let n = Array.length tasks in
    let in_edges = Array.make n [] and out_edges = Array.make n [] in
    Array.iter
      (fun e ->
        in_edges.(e.Edge.dst) <- e.Edge.id :: in_edges.(e.Edge.dst);
        out_edges.(e.Edge.src) <- e.Edge.id :: out_edges.(e.Edge.src))
      edges;
    Array.iteri (fun i l -> in_edges.(i) <- List.rev l) in_edges;
    Array.iteri (fun i l -> out_edges.(i) <- List.rev l) out_edges;
    let succ v = List.map (fun eid -> edges.(eid).Edge.dst) out_edges.(v) in
    (match Noc_util.Topo_sort.sort ~n ~succ with
    | Error members ->
      Error
        (Printf.sprintf "graph has a cycle through tasks {%s}"
           (String.concat ", " (List.map string_of_int members)))
    | Ok topo -> Ok { tasks; edges; in_edges; out_edges; topo })

let make_exn ~tasks ~edges =
  match make ~tasks ~edges with
  | Ok g -> g
  | Error msg -> invalid_arg ("Ctg.make: " ^ msg)

let n_tasks g = Array.length g.tasks
let n_edges g = Array.length g.edges
let n_pes g = Task.n_pes g.tasks.(0)
let task g i = g.tasks.(i)
let edge g i = g.edges.(i)
let tasks g = g.tasks
let edges g = g.edges
let in_edges g i = List.map (fun eid -> g.edges.(eid)) g.in_edges.(i)
let out_edges g i = List.map (fun eid -> g.edges.(eid)) g.out_edges.(i)
let preds g i = List.map (fun e -> e.Edge.src) (in_edges g i)
let succs g i = List.map (fun e -> e.Edge.dst) (out_edges g i)

let sources g =
  List.filter (fun i -> g.in_edges.(i) = []) (List.init (n_tasks g) Fun.id)

let sinks g =
  List.filter (fun i -> g.out_edges.(i) = []) (List.init (n_tasks g) Fun.id)

let topological_order g = Array.copy g.topo

let total_volume g =
  Array.fold_left (fun acc e -> acc +. e.Edge.volume) 0. g.edges

let deadline_tasks g =
  List.filter
    (fun i -> Option.is_some g.tasks.(i).Task.deadline)
    (List.init (n_tasks g) Fun.id)

let critical_path_with g cost =
  let succ v = succs g v in
  let lengths =
    Noc_util.Topo_sort.longest_path_lengths ~n:(n_tasks g) ~succ
      ~weight:(fun v -> cost g.tasks.(v))
  in
  Noc_util.Stats.max_value lengths

let mean_critical_path g = critical_path_with g Task.mean_exec_time
let min_critical_path g = critical_path_with g (fun t -> Noc_util.Stats.min_value t.Task.exec_times)

let min_load_bound g =
  let total =
    Array.fold_left
      (fun acc t -> acc +. Noc_util.Stats.min_value t.Task.exec_times)
      0. g.tasks
  in
  total /. float_of_int (n_pes g)

(* Canonical serialization for the content digest. Hex floats make the
   text (and hence the digest) exact; task names are display labels and
   edge ids arbitrary declaration positions, so neither participates —
   two graphs posing the same scheduling problem digest identically. *)
let digest g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "ctg-digest/v1 pes %d\n" (n_pes g));
  Array.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf (Printf.sprintf "task %d" t.Task.id);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %h" v)) t.Task.exec_times;
      Buffer.add_char buf '|';
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %h" v)) t.Task.energies;
      (match t.Task.release with
      | None -> ()
      | Some r -> Buffer.add_string buf (Printf.sprintf " release %h" r));
      (match t.Task.deadline with
      | None -> ()
      | Some d -> Buffer.add_string buf (Printf.sprintf " deadline %h" d));
      Buffer.add_char buf '\n')
    g.tasks;
  let arcs =
    List.sort
      (fun (a : Edge.t) (b : Edge.t) -> compare (a.Edge.src, a.Edge.dst) (b.Edge.src, b.Edge.dst))
      (Array.to_list g.edges)
  in
  List.iter
    (fun (e : Edge.t) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %d -> %d %h\n" e.Edge.src e.Edge.dst e.Edge.volume))
    arcs;
  Noc_util.Fnv.digest (Buffer.contents buf)

let pp ppf g =
  Format.fprintf ppf "ctg(%d tasks, %d edges, %d PEs)" (n_tasks g) (n_edges g) (n_pes g)

let pp_dot ppf g =
  Format.fprintf ppf "digraph ctg {@.";
  Array.iter
    (fun t ->
      Format.fprintf ppf "  %d [label=\"%s%s\"];@." t.Task.id t.Task.name
        (match t.Task.deadline with
        | None -> ""
        | Some d -> Printf.sprintf "\\nd=%g" d))
    g.tasks;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  %d -> %d [label=\"%g\"];@." e.Edge.src e.Edge.dst e.Edge.volume)
    g.edges;
  Format.fprintf ppf "}@."
