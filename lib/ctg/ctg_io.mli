(** Plain-text serialisation of Communication Task Graphs.

    The paper's workloads arrive as TGFF files; this module plays that
    role for the library with a line-oriented format that round-trips
    the full data model (per-PE cost arrays, deadlines, volumes):

    {v
    ctg 1
    pes 4
    task 0 name framer deadline 25000
      times 10 12.5 9 14
      energies 5 6 4 8
    task 1 name mdct
      times 30 22 28 40
      energies 15 11 14 24
    edge 0 from 0 to 1 volume 48000
    v}

    [ctg 1] is the format version; [pes N] fixes the cost-array length;
    tasks and edges must appear in id order (ids are dense, as in
    {!Ctg}). Blank lines and [#]-comments are ignored. Task names must
    not contain whitespace. Floats round-trip exactly. *)

val to_string : Ctg.t -> string

val of_string : string -> (Ctg.t, string) result
(** Parse errors carry a line number and a description. The graph is
    re-validated through {!Ctg.make}. *)

val save : path:string -> Ctg.t -> unit
(** Raises [Sys_error] on I/O failure. *)

val load : path:string -> (Ctg.t, string) result
