(** Computation tasks of a Communication Task Graph (paper Definition 1).

    A task carries per-PE execution times [R_i] and energies [E_i]: element
    [j] gives the cost of running the task on PE [j] of the target
    architecture, reflecting PE heterogeneity. The optional deadline is the
    absolute time by which the task must finish. *)

type t = {
  id : int;  (** Position of the task in its graph; dense from 0. *)
  name : string;
  exec_times : float array;  (** [R_i]: execution time on each PE; > 0. *)
  energies : float array;  (** [E_i]: energy (nJ) on each PE; >= 0. *)
  release : float option;
      (** Earliest start time (e.g. the frame arrival in a periodic
          unrolling); [None] means available from time 0. *)
  deadline : float option;  (** [d(t_i)]: absolute finish deadline. *)
}

val make :
  id:int ->
  ?name:string ->
  exec_times:float array ->
  energies:float array ->
  ?release:float ->
  ?deadline:float ->
  unit ->
  t
(** Builds a task. Raises [Invalid_argument] when the arrays are empty, of
    different lengths, or contain non-positive times / negative energies,
    when the deadline is non-positive, the release negative, or the
    release at or after the deadline. The default name is ["t<id>"]. *)

val n_pes : t -> int
(** Length of the cost arrays. *)

val mean_exec_time : t -> float
(** [M_ti] of the paper: mean execution time across PEs. *)

val exec_time_variance : t -> float
(** [VAR_ri]: population variance of the execution times. *)

val energy_variance : t -> float
(** [VAR_ei]: population variance of the energies. *)

val weight : t -> float
(** [W_ti = VAR_ei * VAR_ri], the slack-budgeting weight of EAS Step 1.
    Tasks whose placement matters more (high spread in both energy and
    time) receive more slack. *)

val pp : Format.formatter -> t -> unit
