(** Dependence arcs of a Communication Task Graph.

    An arc [c_{i,j}] says task [dst] cannot start before task [src] has
    finished and, when [volume > 0], before [volume] bits produced by
    [src] have been delivered to [dst]'s PE. A zero volume models a pure
    control dependency. *)

type t = {
  id : int;  (** Position of the edge in its graph; dense from 0. *)
  src : int;  (** Producer task id. *)
  dst : int;  (** Consumer task id. *)
  volume : float;  (** [v(c_{i,j})], bits; >= 0. *)
}

val make : id:int -> src:int -> dst:int -> volume:float -> t
(** Raises [Invalid_argument] on negative volume, negative endpoints or a
    self-loop. *)

val is_control_only : t -> bool
(** True when [volume = 0]. *)

val pp : Format.formatter -> t -> unit
