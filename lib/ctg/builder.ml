type t = {
  n_pes : int;
  mutable tasks_rev : Task.t list;
  mutable n_tasks : int;
  mutable edges_rev : Edge.t list;
  mutable n_edges : int;
}

let create ~n_pes =
  if n_pes <= 0 then invalid_arg "Builder.create: n_pes must be positive";
  { n_pes; tasks_rev = []; n_tasks = 0; edges_rev = []; n_edges = 0 }

let add_task t ?name ~exec_times ~energies ?release ?deadline () =
  if Array.length exec_times <> t.n_pes then
    invalid_arg "Builder.add_task: wrong exec_times length";
  let id = t.n_tasks in
  let task = Task.make ~id ?name ~exec_times ~energies ?release ?deadline () in
  t.tasks_rev <- task :: t.tasks_rev;
  t.n_tasks <- id + 1;
  id

let add_uniform_task t ?name ~time ~energy ?deadline () =
  add_task t ?name
    ~exec_times:(Array.make t.n_pes time)
    ~energies:(Array.make t.n_pes energy)
    ?deadline ()

let connect t ~src ~dst ~volume =
  if src >= t.n_tasks || dst >= t.n_tasks then
    invalid_arg "Builder.connect: unknown task id";
  let id = t.n_edges in
  t.edges_rev <- Edge.make ~id ~src ~dst ~volume :: t.edges_rev;
  t.n_edges <- id + 1

let build t =
  Ctg.make
    ~tasks:(Array.of_list (List.rev t.tasks_rev))
    ~edges:(Array.of_list (List.rev t.edges_rev))

let build_exn t =
  match build t with Ok g -> g | Error msg -> invalid_arg ("Builder.build: " ^ msg)
