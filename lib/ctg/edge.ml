type t = { id : int; src : int; dst : int; volume : float }

let make ~id ~src ~dst ~volume =
  if src < 0 || dst < 0 then invalid_arg "Edge.make: negative task id";
  if src = dst then invalid_arg "Edge.make: self loop";
  if not (volume >= 0. && Float.is_finite volume) then
    invalid_arg "Edge.make: volume must be non-negative";
  { id; src; dst; volume }

let is_control_only t = t.volume = 0.
let pp ppf t = Format.fprintf ppf "c(%d,%d)[%g bits]" t.src t.dst t.volume
