(** Periodic unrolling of a task graph over several iterations.

    The paper's multimedia applications are periodic — a frame arrives
    every [1/rate] — but its CTGs describe a single iteration. Unrolling
    materialises [copies] consecutive iterations in one graph: instance
    [k] of every task is shifted by [k * period] (source tasks receive a
    release at the frame arrival, existing releases and deadlines shift
    by [k * period]), so scheduling the unrolled graph answers the
    steady-state question the frame rates pose: can the platform sustain
    the rate by pipelining frames, even when one frame's latency exceeds
    the period?

    Optionally, [carried] arcs connect instance [k] of a task to
    instance [k+1] of (possibly another) task, modelling loop-carried
    state such as a video encoder's reference-frame store. *)

type carried = {
  from_task : int;  (** Producer in iteration [k]. *)
  to_task : int;  (** Consumer in iteration [k + 1]. *)
  volume : float;  (** Bits. *)
}

val periodic :
  ?carried:carried list -> Ctg.t -> period:float -> copies:int -> Ctg.t
(** [periodic ctg ~period ~copies] builds the unrolled graph. Task [i]
    of instance [k] has id [k * n + i] and name ["<name>@k"]. Raises
    [Invalid_argument] on non-positive period or copies, or on carried
    arcs referencing unknown tasks. *)

val instance_of : Ctg.t -> int -> task:int -> int
(** [instance_of original k ~task] is the unrolled id of [task]'s [k]-th
    instance ([k * n_tasks + task]). *)
