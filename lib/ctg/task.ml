type t = {
  id : int;
  name : string;
  exec_times : float array;
  energies : float array;
  release : float option;
  deadline : float option;
}

let make ~id ?name ~exec_times ~energies ?release ?deadline () =
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  if Array.length exec_times = 0 then
    invalid_arg "Task.make: empty exec_times";
  if Array.length exec_times <> Array.length energies then
    invalid_arg "Task.make: exec_times and energies lengths differ";
  Array.iter
    (fun r -> if not (r > 0. && Float.is_finite r) then invalid_arg "Task.make: exec time must be positive")
    exec_times;
  Array.iter
    (fun e -> if not (e >= 0. && Float.is_finite e) then invalid_arg "Task.make: energy must be non-negative")
    energies;
  (match deadline with
  | Some d when not (d > 0. && Float.is_finite d) ->
    invalid_arg "Task.make: deadline must be positive"
  | Some _ | None -> ());
  (match release with
  | Some r when not (r >= 0. && Float.is_finite r) ->
    invalid_arg "Task.make: release must be non-negative"
  | Some _ | None -> ());
  (match (release, deadline) with
  | Some r, Some d when r >= d -> invalid_arg "Task.make: release after deadline"
  | (Some _ | None), (Some _ | None) -> ());
  { id; name; exec_times; energies; release; deadline }

let n_pes t = Array.length t.exec_times
let mean_exec_time t = Noc_util.Stats.mean t.exec_times
let exec_time_variance t = Noc_util.Stats.variance t.exec_times
let energy_variance t = Noc_util.Stats.variance t.energies
let weight t = energy_variance t *. exec_time_variance t

let pp ppf t =
  Format.fprintf ppf "%s(id=%d, pes=%d%a)" t.name t.id (n_pes t)
    (fun ppf -> function
      | None -> ()
      | Some d -> Format.fprintf ppf ", d=%g" d)
    t.deadline
