(** Incremental construction of Communication Task Graphs.

    The builder assigns ids in insertion order and defers validation to
    {!build}, which delegates to {!Ctg.make}. *)

type t

val create : n_pes:int -> t
(** A builder for graphs targeting an architecture with [n_pes] PEs. *)

val add_task :
  t ->
  ?name:string ->
  exec_times:float array ->
  energies:float array ->
  ?release:float ->
  ?deadline:float ->
  unit ->
  int
(** Appends a task and returns its id. Cost arrays must have [n_pes]
    elements (checked immediately). *)

val add_uniform_task :
  t -> ?name:string -> time:float -> energy:float -> ?deadline:float -> unit -> int
(** Appends a task with identical cost on every PE — convenient for tests
    on homogeneous platforms. *)

val connect : t -> src:int -> dst:int -> volume:float -> unit
(** Appends a dependence arc. *)

val build : t -> (Ctg.t, string) result
val build_exn : t -> Ctg.t
