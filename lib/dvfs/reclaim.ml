module Schedule = Noc_sched.Schedule
module Schedule_io = Noc_sched.Schedule_io
module Ctg = Noc_ctg.Ctg
module Task = Noc_ctg.Task

type result = {
  schedule : Schedule.t;
  annotations : Schedule_io.annotation array;
  downclocked : int;
  computation_energy_before : float;
  computation_energy_after : float;
}

let downclocked_counter = Noc_obs.Counters.counter "dvfs.downclocked"
let passes_counter = Noc_obs.Counters.counter "dvfs.reclaim-passes"

(* The latest instant each task may finish without disturbing anything
   else on the as-built timeline: the next start on its own PE, the
   departure of its earliest outgoing transaction, and its deadline.
   Starts and communication windows are frozen, so these bounds are
   independent of the levels other tasks commit to — one pass suffices. *)
let slack_bounds ctg schedule =
  let n = Schedule.n_tasks schedule in
  let bound = Array.make n infinity in
  let by_pe = Hashtbl.create 16 in
  Array.iter
    (fun (p : Schedule.placement) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_pe p.pe) in
      Hashtbl.replace by_pe p.pe (p :: prev))
    (Schedule.placements schedule);
  Hashtbl.iter
    (fun _pe ps ->
      let sorted =
        List.sort
          (fun (a : Schedule.placement) (b : Schedule.placement) ->
            Float.compare a.start b.start)
          ps
      in
      let rec walk = function
        | (a : Schedule.placement) :: ((b : Schedule.placement) :: _ as rest) ->
          bound.(a.task) <- Float.min bound.(a.task) b.start;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk sorted)
    by_pe;
  for i = 0 to n - 1 do
    List.iter
      (fun (e : Noc_ctg.Edge.t) ->
        bound.(i) <- Float.min bound.(i) (Schedule.transaction schedule e.id).Schedule.start)
      (Ctg.out_edges ctg i);
    match (Ctg.task ctg i).Task.deadline with
    | Some d -> bound.(i) <- Float.min bound.(i) d
    | None -> ()
  done;
  bound

let run ?(table = Vf_table.default) ctg schedule =
  Noc_obs.Counters.incr passes_counter;
  let n = Schedule.n_tasks schedule in
  let levels = Vf_table.n_levels table in
  let bounds = slack_bounds ctg schedule in
  let placements = Array.copy (Schedule.placements schedule) in
  let annotations =
    Array.init n (fun task ->
        { Schedule_io.task; level = 0; freq = 1.; energy = 0. })
  in
  let downclocked = ref 0 in
  let before = ref 0. and after = ref 0. in
  let visit i =
    let p = Schedule.placement schedule i in
    let duration = p.Schedule.finish -. p.Schedule.start in
    let bound = bounds.(i) in
    let scaled_finish level =
      if level = 0 then p.Schedule.finish
      else p.Schedule.start +. (duration *. Vf_table.slowdown table ~level)
    in
    (* Lowest frequency whose stretched window still fits the slack;
       level 0 is the unconditional fallback (pass-through), so an
       uncertified input is never made worse. *)
    let rec pick level =
      if level <= 0 then 0
      else if scaled_finish level <= bound then level
      else pick (level - 1)
    in
    let level = pick (levels - 1) in
    if Noc_obs.Decisions.is_enabled () then
      Noc_obs.Decisions.record ~task:i ~rule:"dvfs/reclaim" ~chosen:level
        ~budgeted_deadline:bound
        ~finishes:
          (Array.init levels (fun l ->
               let f = scaled_finish l in
               if l = 0 || f <= bound then f else infinity));
    let energy_before = (Ctg.task ctg i).Task.energies.(p.Schedule.pe) in
    let energy_after = energy_before *. Vf_table.energy_scale table ~level in
    before := !before +. energy_before;
    after := !after +. energy_after;
    if level > 0 then begin
      incr downclocked;
      Noc_obs.Counters.incr downclocked_counter;
      placements.(i) <- { p with Schedule.finish = scaled_finish level }
    end;
    annotations.(i) <-
      {
        Schedule_io.task = i;
        level;
        freq = Vf_table.ratio table ~level;
        energy = energy_after;
      }
  in
  let result_args result () =
    [
      ("tasks", Noc_obs.Trace.Int n);
      ("downclocked", Noc_obs.Trace.Int result.downclocked);
      ( "reclaimed_nj",
        Noc_obs.Trace.Float
          (result.computation_energy_before -. result.computation_energy_after) );
    ]
  in
  let result = ref None in
  Noc_obs.Trace.span ~cat:"dvfs"
    ~args:(fun () ->
      match !result with Some r -> result_args r () | None -> [])
    "dvfs/reclaim"
    (fun () ->
      let order = Ctg.topological_order ctg in
      for k = Array.length order - 1 downto 0 do
        visit order.(k)
      done;
      result :=
        Some
          {
            schedule =
              Schedule.make ~placements
                ~transactions:(Array.copy (Schedule.transactions schedule));
            annotations;
            downclocked = !downclocked;
            computation_energy_before = !before;
            computation_energy_after = !after;
          });
  Option.get !result

let reclaimed r = r.computation_energy_before -. r.computation_energy_after
