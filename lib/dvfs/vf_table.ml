type t = { ladder : float array }  (* descending, ladder.(0) = 1.0 *)

let of_ratios arr =
  let n = Array.length arr in
  if n = 0 then Error "empty level list"
  else
    let bad =
      Array.find_opt (fun r -> not (Float.is_finite r && r > 0. && r <= 1.)) arr
    in
    match bad with
    | Some r -> Error (Printf.sprintf "level %g is not in (0, 1]" r)
    | None ->
      let sorted = Array.copy arr in
      Array.sort (fun a b -> Float.compare b a) sorted;
      let dup = ref None in
      for i = 0 to n - 2 do
        if sorted.(i) = sorted.(i + 1) && !dup = None then dup := Some sorted.(i)
      done;
      (match !dup with
      | Some r -> Error (Printf.sprintf "duplicate level %g" r)
      | None ->
        if sorted.(0) <> 1. then
          Error
            (Printf.sprintf "fastest level must be 1 (f_max), highest given is %g"
               sorted.(0))
        else Ok { ladder = sorted })

let default =
  match of_ratios [| 1.0; 0.8; 0.6; 0.5 |] with
  | Ok t -> t
  | Error msg -> failwith msg

let of_string s =
  let tokens = String.split_on_char ',' s |> List.map String.trim in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | "" :: _ -> Error "empty level token (stray comma?)"
    | tok :: rest -> (
      match float_of_string_opt tok with
      | Some r -> parse (r :: acc) rest
      | None -> Error (Printf.sprintf "level %S is not a number" tok))
  in
  match parse [] tokens with
  | Error _ as e -> e
  | Ok ratios -> of_ratios (Array.of_list ratios)

let float_to_string v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let to_string t =
  String.concat "," (List.map float_to_string (Array.to_list t.ladder))

let hex t =
  String.concat ","
    (List.map (Printf.sprintf "%h") (Array.to_list t.ladder))

let n_levels t = Array.length t.ladder
let ratio t ~level = t.ladder.(level)
let ratios t = Array.copy t.ladder
let slowdown t ~level = 1. /. t.ladder.(level)
let energy_scale t ~level = t.ladder.(level) *. t.ladder.(level)
let pp fmt t = Format.pp_print_string fmt (to_string t)
