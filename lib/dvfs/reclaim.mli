(** DVFS slack reclamation — EAS Step 4.

    Walks a committed, certified schedule in reverse topological order
    and downclocks each task to the lowest frequency level of a
    {!Vf_table} that still fits its local slack. Invariants, by
    construction:

    - no start time ever moves (earlier or later);
    - no communication window shifts — transactions pass through
      verbatim, so the base schedule's link arbitration and the
      feasibility proof behind it stay valid;
    - no deadline the unscaled schedule met is missed.

    Each task's slack bound is the earliest of: the next task's start on
    the same PE, the departure of its earliest outgoing transaction, and
    its own deadline — all read off the as-built timeline. Because
    starts and windows are frozen, the bound is independent of every
    other task's chosen level, so a single pass suffices; the reverse
    topological order is a deterministic visiting order for the decision
    log, not a fixpoint schedule.

    Every decision is recorded in {!Noc_obs.Decisions} under rule
    ["dvfs/reclaim"] (candidate array = per-level scaled finish times,
    [infinity] marking levels that overrun the bound; [chosen] = the
    committed level; [budgeted_deadline] = the slack bound), and the
    whole pass runs inside a ["dvfs/reclaim"] trace span whose args
    carry the reclaimed energy, so Perfetto shows reclaimed slack per
    lane. *)

type result = {
  schedule : Noc_sched.Schedule.t;
      (** The scaled schedule: placements at level 0 are passed through
          bit-identically; downclocked placements keep their start and
          PE and stretch their finish by the level's slowdown. *)
  annotations : Noc_sched.Schedule_io.annotation array;
      (** One per task, in task order — ready for format-v3 I/O. *)
  downclocked : int;  (** Tasks committed below f_max. *)
  computation_energy_before : float;
  computation_energy_after : float;
}

val run : ?table:Vf_table.t -> Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> result
(** [table] defaults to {!Vf_table.default}. The input schedule is not
    modified. A task whose base finish already overruns its bound (an
    uncertified input) stays at level 0 and is passed through unchanged,
    so reclamation never makes any schedule worse. *)

val reclaimed : result -> float
(** [computation_energy_before - computation_energy_after], in the same
    nJ unit as Eq. 3. *)
