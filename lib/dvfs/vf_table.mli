(** Discrete per-PE frequency/voltage ladder.

    Levels are normalised frequency ratios r = f/f_max in (0, 1], sorted
    descending with level 0 pinned at 1.0 (f_max). Under the classical
    DVFS model the supply voltage scales linearly with frequency
    (v/V_max = f/f_max), so dynamic power is P(f) = k·f·v² = k·f³ and a
    task slowed linearly to duration t_max·(f_max/f) dissipates

      E(f) = P(f)·t = k·f³·t_max·f_max/f = E_max·(f/f_max)²

    — at level 0 this is exactly the Eq.-3 task-energy term the rest of
    the system already uses, which is the energy-equivalence anchor:
    {!energy_scale} at level 0 is 1 and the model degenerates to the
    unscaled scheduler. *)

type t

val default : t
(** {1.0, 0.8, 0.6, 0.5} × f_max. *)

val of_ratios : float array -> (t, string) result
(** Ratios in any order; validated (finite, in (0, 1], no duplicates,
    must include 1.0 so level 0 is f_max) and sorted descending. *)

val of_string : string -> (t, string) result
(** Parses a comma-separated ratio list, e.g. ["1,0.8,0.6,0.5"]. Errors
    name the offending token: the CLI surfaces them verbatim through
    [--vf-levels]. *)

val to_string : t -> string
(** Canonical comma-separated form; [of_string (to_string t)] is [t]. *)

val hex : t -> string
(** Canonical bit-exact serialisation (comma-separated [%h] floats) —
    the digest preimage for serve cache keys. *)

val n_levels : t -> int
val ratio : t -> level:int -> float
val ratios : t -> float array
(** A fresh copy of the descending ratio ladder. *)

val slowdown : t -> level:int -> float
(** f_max/f = 1/r: the factor a task's duration grows by. *)

val energy_scale : t -> level:int -> float
(** (f/f_max)² = r²: the factor its dynamic energy shrinks by. *)

val pp : Format.formatter -> t -> unit
