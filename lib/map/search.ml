(* Seeded simulated-annealing mapping search.

   K independent chains anneal over the incremental {!Objective}
   evaluator; chain [c]'s moves come from the [c]-th split of a master
   PRNG seeded by [params.seed], so a chain's trajectory is a pure
   function of (seed, chain index). The chains fan out over
   {!Noc_util.Pool.map_range}, whose determinism contract makes the
   whole search bit-identical at every [--jobs] — and a (seed, chains=K)
   run's first J chains identical to a (seed, chains=J) run's.

   Chain 0 starts from the identity mapping and every chain tracks its
   best-so-far, so with the pure-energy objective the best static value
   never exceeds the identity's. Survivors (plus the identity, always)
   then get a real pinned EAS schedule and an independent {!Certify}
   pass; the winner minimises (deadline misses, Eq.-3 energy, listing
   position). *)

module Prng = Noc_util.Prng

type params = {
  chains : int;
  iters : int;  (* proposed moves per chain *)
  survivors : int;  (* best-K chains that get a full EAS evaluation *)
  seed : int;
  weights : Objective.weights;
  capacity : int option;  (* max tasks per tile; None = 1.25x the mean *)
  t0_frac : float;  (* initial temperature / initial objective value *)
  t_end_frac : float;  (* final temperature / initial objective value *)
}

let default_params =
  {
    chains = 4;
    iters = 20_000;
    survivors = 2;
    seed = 0;
    weights = Objective.energy_only;
    capacity = None;
    t0_frac = 0.05;
    t_end_frac = 1e-4;
  }

type origin = Identity | Chain of int

type candidate = {
  origin : origin;
  mapping : int array;
  static_value : float;
  energy : float;
  makespan : float;
  misses : int;
  cert_errors : int;
  schedule : Noc_sched.Schedule.t;
  stats : Noc_eas.Eas.stats;
}

type chain_result = {
  chain : int;
  value : float;  (* canonical full recompute of the best mapping *)
  accepted : int;
  best_mapping : int array;
}

type result = {
  search_params : params;
  chain_results : chain_result list;
  candidates : candidate list;
  winner : candidate;
}

let identity_mapping ~n_tasks ~n_pes = Array.init n_tasks (fun i -> i mod n_pes)

let default_capacity ~n_tasks ~n_pes =
  max 1 (int_of_float (ceil (1.25 *. float_of_int n_tasks /. float_of_int n_pes)))

(* The [chain]-th split of the master stream: depends only on
   (seed, chain), never on how many chains run. *)
let chain_rng ~seed ~chain =
  let master = Prng.create ~seed in
  let rec nth c =
    let s = Prng.split master in
    if c = 0 then s else nth (c - 1)
  in
  nth chain

let random_mapping rng ~n_tasks ~n_pes ~capacity =
  let counts = Array.make n_pes 0 in
  Array.init n_tasks (fun _ ->
      let rec draw () =
        let pe = Prng.int rng ~bound:n_pes in
        if counts.(pe) < capacity then begin
          counts.(pe) <- counts.(pe) + 1;
          pe
        end
        else draw ()
      in
      draw ())

let c_moves = Noc_obs.Counters.counter "map.sa.proposed"
let c_accepted = Noc_obs.Counters.counter "map.sa.accepted"

let run_chain tables ~params ~n_tasks ~n_pes ~capacity chain =
  Noc_obs.Trace.span ~cat:"map" "map/chain"
    ~args:(fun () -> [ ("chain", Noc_obs.Trace.Int chain) ])
  @@ fun () ->
  let rng = chain_rng ~seed:params.seed ~chain in
  let start =
    if chain = 0 then identity_mapping ~n_tasks ~n_pes
    else random_mapping rng ~n_tasks ~n_pes ~capacity
  in
  let state = Objective.create tables start in
  let v0 = Objective.value state in
  let t0 = Float.max (params.t0_frac *. Float.abs v0) 1e-9 in
  let cool =
    if params.iters <= 1 then 1.
    else (params.t_end_frac /. params.t0_frac) ** (1. /. float_of_int params.iters)
  in
  (* [cur] is a fast running total for acceptance bookkeeping only; the
     returned value is a canonical full recompute of [best], so ulp
     drift here can never leak into ranking or reported numbers. *)
  let cur = ref v0 in
  let best = ref v0 in
  let best_mapping = ref (Objective.mapping state) in
  let accepted = ref 0 in
  let temp = ref t0 in
  let note_accept delta =
    incr accepted;
    cur := !cur +. delta;
    if !cur < !best then begin
      best := !cur;
      best_mapping := Objective.mapping state
    end
  in
  let accepts delta =
    delta <= 0. || Prng.float rng ~bound:1. < exp (-.delta /. !temp)
  in
  for _ = 1 to params.iters do
    Noc_obs.Counters.incr c_moves;
    let task = Prng.int rng ~bound:n_tasks in
    if Prng.bool rng then begin
      let to_ = Prng.int rng ~bound:n_pes in
      if to_ <> Objective.tile_of state task && Objective.count state to_ < capacity
      then begin
        let delta = Objective.move_delta state ~task ~to_ in
        if accepts delta then begin
          Objective.apply_move state ~task ~to_;
          Noc_obs.Counters.incr c_accepted;
          note_accept delta
        end
      end
    end
    else begin
      let b = Prng.int rng ~bound:n_tasks in
      if task <> b && Objective.tile_of state task <> Objective.tile_of state b
      then begin
        let delta = Objective.swap_delta state ~a:task ~b in
        if accepts delta then begin
          Objective.apply_swap state ~a:task ~b;
          Noc_obs.Counters.incr c_accepted;
          note_accept delta
        end
      end
    end;
    temp := !temp *. cool
  done;
  {
    chain;
    value = Objective.full_value tables !best_mapping;
    accepted = !accepted;
    best_mapping = !best_mapping;
  }

(* No [jobs] here on purpose: pinned candidate rows are singletons, so
   Step 2's parallel probe refresh would spawn a domain pool per commit
   iteration and buy nothing (profiled at ~6s per 2000-task evaluation
   against 0.15s serial). *)
let evaluate ~kernel ~origin platform ctg mapping =
  Noc_obs.Trace.span ~cat:"map" "map/evaluate" @@ fun () ->
  let outcome = Noc_eas.Eas.schedule ~pinned:mapping ~kernel platform ctg in
  let metrics = Noc_sched.Metrics.compute platform ctg outcome.Noc_eas.Eas.schedule in
  let diags =
    Noc_analysis.Certify.check ~claimed_energy:metrics.Noc_sched.Metrics.total_energy
      platform ctg outcome.Noc_eas.Eas.schedule
  in
  let cert_errors =
    List.length
      (List.filter
         (fun (d : Noc_analysis.Diagnostic.t) ->
           d.severity = Noc_analysis.Diagnostic.Error)
         diags)
  in
  fun static_value ->
    {
      origin;
      mapping = Array.copy mapping;
      static_value;
      energy = metrics.Noc_sched.Metrics.total_energy;
      makespan = metrics.Noc_sched.Metrics.makespan;
      misses = Noc_sched.Metrics.miss_count metrics;
      cert_errors;
      schedule = outcome.Noc_eas.Eas.schedule;
      stats = outcome.Noc_eas.Eas.stats;
    }

let run ?jobs ?(params = default_params) ?kernel platform ctg =
  Noc_obs.Trace.span ~cat:"map" "map/search"
    ~args:(fun () ->
      [
        ("chains", Noc_obs.Trace.Int params.chains);
        ("iters", Noc_obs.Trace.Int params.iters);
      ])
  @@ fun () ->
  if params.chains < 1 then invalid_arg "Search.run: chains must be >= 1";
  if params.iters < 0 then invalid_arg "Search.run: iters must be >= 0";
  let n_tasks = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  (* One kernel build (the dominant cost at 16x16 — it also warms the
     platform route memo) shared read-only by the tables, every chain
     and every survivor evaluation. *)
  let kernel =
    match kernel with
    | Some k -> k
    | None ->
      Noc_obs.Trace.span ~cat:"map" "map/kernel" (fun () ->
          Noc_eas.Kernel.build platform ctg)
  in
  let tables = Objective.lift ~weights:params.weights platform kernel ctg in
  let capacity =
    match params.capacity with
    | Some c ->
      if c * n_pes < n_tasks then
        invalid_arg "Search.run: capacity * tiles < tasks";
      c
    | None -> default_capacity ~n_tasks ~n_pes
  in
  let chain_results =
    Noc_util.Pool.map_range ?jobs ~n:params.chains (fun c ->
        run_chain tables ~params ~n_tasks ~n_pes ~capacity c)
  in
  let ranked =
    List.sort
      (fun a b -> compare (a.value, a.chain) (b.value, b.chain))
      chain_results
  in
  let survivors =
    List.filteri (fun rank _ -> rank < max 1 params.survivors) ranked
  in
  let identity = identity_mapping ~n_tasks ~n_pes in
  let candidates =
    List.map
      (fun r ->
        evaluate ~kernel ~origin:(Chain r.chain) platform ctg r.best_mapping
          r.value)
      survivors
    @ [
        evaluate ~kernel ~origin:Identity platform ctg identity
          (Objective.full_value tables identity);
      ]
  in
  let winner =
    match candidates with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun best c ->
          if (c.misses, c.energy) < (best.misses, best.energy) then c else best)
        first rest
  in
  { search_params = params; chain_results; candidates; winner }

let origin_name = function Identity -> "identity" | Chain c -> Printf.sprintf "sa#%d" c

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-9s static %.6g energy %.6g makespan %.6g misses %d cert %s@,"
        (origin_name c.origin) c.static_value c.energy c.makespan c.misses
        (if c.cert_errors = 0 then "ok" else string_of_int c.cert_errors ^ " errors"))
    r.candidates;
  Format.fprintf ppf "winner: %s (energy %.6g, misses %d)@]"
    (origin_name r.winner.origin) r.winner.energy r.winner.misses
