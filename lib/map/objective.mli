(** Static mapping objective with O(incident arcs) incremental deltas.

    The objective of a task-to-tile mapping [m] is the fixed-order sum
    of three term families, each a pure function of the mapping
    restricted to its own endpoints:

    - per task: the Eq.-3 computation energy [e_i^{m(i)}];
    - per arc: the Eq.-3 bit energy [v * ebit(m(src), m(dst))], plus
      [latency] times the contention-free transfer duration;
    - per tile: [balance] times the squared task count (an integer, so
      increments stay exact).

    With {!energy_only} weights the value is exactly the Eq.-3 energy
    of the mapping — schedule-independent, so it equals the
    {!Noc_sched.Metrics} energy of any schedule pinned to [m].

    A move touches only the mover's exec term, its incident arc terms
    and two tile counts; {!apply_move}/{!apply_swap} re-derive exactly
    those terms through the same code path {!full_value} uses, so the
    maintained {!value} is bit-identical to a from-scratch recompute
    after any move/swap sequence (the [test_map] qcheck law). *)

type weights = {
  latency : float;  (** Weight on per-arc contention-free durations. *)
  balance : float;  (** Weight on squared per-tile task counts. *)
}

val energy_only : weights
(** [{latency = 0.; balance = 0.}]: the pure Eq.-3 energy objective. *)

type tables
(** Per-(task, pe) and per-(src, dst) cost tables lifted from the flat
    kernel matrices; read-only and safe to share across domains. *)

val lift :
  ?weights:weights -> Noc_noc.Platform.t -> Noc_eas.Kernel.t -> Noc_ctg.Ctg.t -> tables
(** Lifts the scoring tables from a built kernel (defaults to
    {!energy_only}). The kernel is not retained. *)

val mean_exec_energy : tables -> float
(** Mean of the (task, pe) energy matrix — the natural unit for scaling
    the dimensionless [balance] weight against Eq.-3 energies. *)

val full_value : tables -> int array -> float
(** Objective of a mapping, recomputed from scratch (the differential
    oracle; O(tasks + arcs + tiles)). *)

type state
(** A mapping plus its maintained term arrays. Not thread-safe. *)

val create : tables -> int array -> state
(** Copies the mapping. Raises [Invalid_argument] on a length mismatch
    or an out-of-range tile. *)

val mapping : state -> int array
(** Copy of the current mapping. *)

val tile_of : state -> int -> int
val count : state -> int -> int
(** Tasks currently mapped to the tile. *)

val value : state -> float
(** Fixed-order sum of the maintained terms; bit-identical to
    [full_value tables (mapping state)]. *)

val move_delta : state -> task:int -> to_:int -> float
(** Objective change of remapping [task] to [to_], in O(incident arcs).
    [0.] when [to_] is the task's current tile. *)

val apply_move : state -> task:int -> to_:int -> unit

val swap_delta : state -> a:int -> b:int -> float
(** Objective change of exchanging the tiles of [a] and [b]; tile
    counts are unchanged so the balance term never moves. *)

val apply_swap : state -> a:int -> b:int -> unit
