(* Static mapping objective with O(incident arcs) incremental deltas.

   The objective over a task-to-tile mapping [m] decomposes into three
   term families, each a pure function of the mapping restricted to its
   own endpoints:

     exec term (per task)  e_i^{m(i)}                  (Eq. 3, first sum)
     arc term  (per arc)   v_e * ebit(m(src), m(dst))  (Eq. 3, second sum)
                           + w_lat * dur(m(src), m(dst), v_e)
     tile term (per tile)  w_bal * (count_k)^2

   The value is the fixed-order sum task 0..n-1, arc 0..m-1, tile
   0..p-1. A move only touches the mover's exec term, its incident arc
   terms and two tile terms, so a state that re-derives exactly those
   terms after each move holds term arrays elementwise bit-identical to
   a from-scratch recompute — and the fixed-order total is then the
   same float. [test_map] pins [value] against [full_value] with a
   qcheck law over random move/swap sequences; nothing here may
   accumulate a running total across moves.

   The per-(src,dst) cost tables are lifted once from the flat kernel
   matrices ({!Noc_eas.Kernel}), so scoring never touches the platform
   route memo on the hot path. *)

type weights = { latency : float; balance : float }

let energy_only = { latency = 0.; balance = 0. }

type tables = {
  n_tasks : int;
  n_pes : int;
  weights : weights;
  exec_energy : float array;  (* task * n_pes + pe *)
  ebits : float array;  (* src_pe * n_pes + dst_pe; infinity if unreachable *)
  hops : int array;  (* src_pe * n_pes + dst_pe; -1 if unreachable *)
  link_bandwidth : float;
  router_latency : float;
  arc_src : int array;  (* arc id -> producer task *)
  arc_dst : int array;
  arc_volume : float array;
  incident : int array array;  (* task -> incident arc ids, ascending *)
}

let lift ?(weights = energy_only) platform kernel ctg =
  Noc_obs.Trace.span ~cat:"map" "map/tables" @@ fun () ->
  let n_tasks = Noc_eas.Kernel.n_tasks kernel in
  let n_pes = Noc_eas.Kernel.n_pes kernel in
  if n_pes <> Noc_noc.Platform.n_pes platform then
    invalid_arg "Objective.lift: kernel and platform disagree on PE count";
  let exec_energy =
    Array.init (n_tasks * n_pes) (fun idx ->
        Noc_eas.Kernel.exec_energy kernel ~task:(idx / n_pes) ~pe:(idx mod n_pes))
  in
  let ebits =
    Array.init (n_pes * n_pes) (fun idx ->
        let src = idx / n_pes and dst = idx mod n_pes in
        if Noc_eas.Kernel.reachable kernel ~src ~dst then
          (* bits = 1.0 makes [comm_energy] return the raw per-bit route
             energy: the kernel prices a transfer as [bits *. ebit]. *)
          Noc_eas.Kernel.comm_energy kernel ~src ~dst ~bits:1.0
        else infinity)
  in
  let hops =
    Array.init (n_pes * n_pes) (fun idx ->
        Noc_eas.Kernel.hops kernel ~src:(idx / n_pes) ~dst:(idx mod n_pes))
  in
  let n_edges = Noc_ctg.Ctg.n_edges ctg in
  let arc_src = Array.make n_edges 0 in
  let arc_dst = Array.make n_edges 0 in
  let arc_volume = Array.make n_edges 0. in
  Array.iter
    (fun (e : Noc_ctg.Edge.t) ->
      arc_src.(e.id) <- e.src;
      arc_dst.(e.id) <- e.dst;
      arc_volume.(e.id) <- e.volume)
    (Noc_ctg.Ctg.edges ctg);
  let incident_l = Array.make n_tasks [] in
  for e = n_edges - 1 downto 0 do
    incident_l.(arc_src.(e)) <- e :: incident_l.(arc_src.(e));
    incident_l.(arc_dst.(e)) <- e :: incident_l.(arc_dst.(e))
  done;
  {
    n_tasks;
    n_pes;
    weights;
    exec_energy;
    ebits;
    hops;
    link_bandwidth = Noc_noc.Platform.link_bandwidth platform;
    router_latency = Noc_noc.Platform.router_latency platform;
    arc_src;
    arc_dst;
    arc_volume;
    incident = Array.map Array.of_list incident_l;
  }

let mean_exec_energy t =
  let acc = ref 0. in
  Array.iter (fun e -> acc := !acc +. e) t.exec_energy;
  !acc /. float_of_int (Array.length t.exec_energy)

(* The three term families. Each is the single scoring code path: both
   the full recompute and the incremental refresh call these, so the
   bit-identity of [value] and [full_value] reduces to "same inputs". *)

let exec_term t task pe = t.exec_energy.((task * t.n_pes) + pe)

let arc_term t e ~src_pe ~dst_pe =
  let pair = (src_pe * t.n_pes) + dst_pe in
  let energy = t.arc_volume.(e) *. t.ebits.(pair) in
  if t.weights.latency = 0. then energy
  else
    let h = t.hops.(pair) in
    let dur =
      if h <= 0 then 0.
      else
        (t.arc_volume.(e) /. t.link_bandwidth)
        +. (float_of_int (h - 1) *. t.router_latency)
    in
    energy +. (t.weights.latency *. dur)

let tile_term t count =
  if t.weights.balance = 0. then 0.
  else t.weights.balance *. float_of_int (count * count)

let full_value t mapping =
  let acc = ref 0. in
  for i = 0 to t.n_tasks - 1 do
    acc := !acc +. exec_term t i mapping.(i)
  done;
  for e = 0 to Array.length t.arc_src - 1 do
    acc :=
      !acc +. arc_term t e ~src_pe:mapping.(t.arc_src.(e)) ~dst_pe:mapping.(t.arc_dst.(e))
  done;
  if t.weights.balance <> 0. then begin
    let counts = Array.make t.n_pes 0 in
    Array.iter (fun pe -> counts.(pe) <- counts.(pe) + 1) mapping;
    for k = 0 to t.n_pes - 1 do
      acc := !acc +. tile_term t counts.(k)
    done
  end;
  !acc

type state = {
  tables : tables;
  mapping : int array;
  counts : int array;  (* tasks per tile *)
  exec_terms : float array;  (* per task *)
  arc_terms : float array;  (* per arc *)
}

let create tables mapping =
  if Array.length mapping <> tables.n_tasks then
    invalid_arg "Objective.create: mapping length <> task count";
  Array.iter
    (fun pe ->
      if pe < 0 || pe >= tables.n_pes then
        invalid_arg "Objective.create: tile out of range")
    mapping;
  let mapping = Array.copy mapping in
  let counts = Array.make tables.n_pes 0 in
  Array.iter (fun pe -> counts.(pe) <- counts.(pe) + 1) mapping;
  {
    tables;
    mapping;
    counts;
    exec_terms = Array.init tables.n_tasks (fun i -> exec_term tables i mapping.(i));
    arc_terms =
      Array.init
        (Array.length tables.arc_src)
        (fun e ->
          arc_term tables e ~src_pe:mapping.(tables.arc_src.(e))
            ~dst_pe:mapping.(tables.arc_dst.(e)));
  }

let mapping s = Array.copy s.mapping
let tile_of s task = s.mapping.(task)
let count s pe = s.counts.(pe)

(* Fixed-order sum over the maintained term arrays: identical order to
   [full_value], so equal terms give the equal total. *)
let value s =
  let t = s.tables in
  let acc = ref 0. in
  for i = 0 to t.n_tasks - 1 do
    acc := !acc +. s.exec_terms.(i)
  done;
  for e = 0 to Array.length s.arc_terms - 1 do
    acc := !acc +. s.arc_terms.(e)
  done;
  if t.weights.balance <> 0. then
    for k = 0 to t.n_pes - 1 do
      acc := !acc +. tile_term t s.counts.(k)
    done;
  !acc

(* Arc term after remapping [task] to [to_] (and, for swaps, [other] to
   [other_to]): endpoints are read through the overlay, never the
   mutated arrays, so deltas are computable without touching state. *)
let arc_term_with s e ~task ~to_ ?other ?other_to () =
  let t = s.tables in
  let look v =
    if v = task then to_
    else
      match (other, other_to) with
      | Some o, Some ot when v = o -> ot
      | _ -> s.mapping.(v)
  in
  arc_term t e ~src_pe:(look t.arc_src.(e)) ~dst_pe:(look t.arc_dst.(e))

(* Delta of moving [task] to tile [to_]: the mover's exec term, its
   incident arc terms and the two affected tile terms, accumulated in
   incident-arc order. O(incident arcs). *)
let move_delta s ~task ~to_ =
  let t = s.tables in
  let from = s.mapping.(task) in
  if from = to_ then 0.
  else begin
    let acc = ref (exec_term t task to_ -. s.exec_terms.(task)) in
    Array.iter
      (fun e -> acc := !acc +. (arc_term_with s e ~task ~to_ () -. s.arc_terms.(e)))
      t.incident.(task);
    if t.weights.balance <> 0. then begin
      let cf = s.counts.(from) and ct = s.counts.(to_) in
      acc := !acc +. (tile_term t (cf - 1) -. tile_term t cf);
      acc := !acc +. (tile_term t (ct + 1) -. tile_term t ct)
    end;
    !acc
  end

let apply_move s ~task ~to_ =
  let t = s.tables in
  let from = s.mapping.(task) in
  if from <> to_ then begin
    s.mapping.(task) <- to_;
    s.counts.(from) <- s.counts.(from) - 1;
    s.counts.(to_) <- s.counts.(to_) + 1;
    s.exec_terms.(task) <- exec_term t task to_;
    Array.iter
      (fun e ->
        s.arc_terms.(e) <-
          arc_term t e ~src_pe:s.mapping.(t.arc_src.(e)) ~dst_pe:s.mapping.(t.arc_dst.(e)))
      t.incident.(task)
  end

(* Swap the tiles of [a] and [b]. Arcs incident to both are visited once
   (in [a]'s incident order) with both endpoints overlaid. Tile counts
   are unchanged, so the balance delta is zero by construction. *)
let swap_delta s ~a ~b =
  let t = s.tables in
  let pa = s.mapping.(a) and pb = s.mapping.(b) in
  if pa = pb || a = b then 0.
  else begin
    let acc =
      ref
        (exec_term t a pb -. s.exec_terms.(a)
        +. (exec_term t b pa -. s.exec_terms.(b)))
    in
    let touch e =
      acc :=
        !acc
        +. (arc_term_with s e ~task:a ~to_:pb ~other:b ~other_to:pa () -. s.arc_terms.(e))
    in
    Array.iter touch t.incident.(a);
    Array.iter
      (fun e ->
        let joint = t.arc_src.(e) = a || t.arc_dst.(e) = a in
        if not joint then touch e)
      t.incident.(b);
    !acc
  end

let apply_swap s ~a ~b =
  let t = s.tables in
  let pa = s.mapping.(a) and pb = s.mapping.(b) in
  if pa <> pb && a <> b then begin
    s.mapping.(a) <- pb;
    s.mapping.(b) <- pa;
    s.exec_terms.(a) <- exec_term t a pb;
    s.exec_terms.(b) <- exec_term t b pa;
    let refresh e =
      s.arc_terms.(e) <-
        arc_term t e ~src_pe:s.mapping.(t.arc_src.(e)) ~dst_pe:s.mapping.(t.arc_dst.(e))
    in
    Array.iter refresh t.incident.(a);
    Array.iter refresh t.incident.(b)
  end
