(** Seeded simulated-annealing search over task-to-tile mappings.

    K independent chains anneal over the {!Objective} incremental
    evaluator, fanned out on {!Noc_util.Pool}; chain [c]'s PRNG stream
    is the [c]-th split of a master seeded by [seed], so results are
    bit-identical at every job count and a K-chain run's first J chains
    match a J-chain run exactly. Chain 0 starts from the identity
    mapping (task [i] on tile [i mod n_pes]) with best-so-far tracking,
    so under the pure-energy objective the search can never lose to the
    identity. The best-[survivors] chains — plus the identity, always —
    get a full pinned EAS schedule ({!Noc_eas.Eas.schedule} with
    [~pinned]) and an independent {!Noc_analysis.Certify} pass; the
    winner minimises (deadline misses, Eq.-3 energy, position). *)

type params = {
  chains : int;  (** Independent SA chains (>= 1). *)
  iters : int;  (** Proposed moves per chain. *)
  survivors : int;  (** Best-K chains that get a full EAS evaluation. *)
  seed : int;
  weights : Objective.weights;
  capacity : int option;
      (** Max tasks per tile ([None]: 1.25x the mean, >= 1). Keeps the
          pure-energy objective from folding the graph onto one tile. *)
  t0_frac : float;  (** Initial temperature over initial value. *)
  t_end_frac : float;  (** Final temperature over initial value. *)
}

val default_params : params
(** 4 chains, 20k iterations, 2 survivors, seed 0, energy-only
    weights, default capacity. *)

type origin = Identity | Chain of int

type candidate = {
  origin : origin;
  mapping : int array;
  static_value : float;  (** {!Objective} value of the mapping. *)
  energy : float;  (** Eq.-3 total of the pinned EAS schedule. *)
  makespan : float;
  misses : int;
  cert_errors : int;  (** Error-severity {!Noc_analysis.Certify} rules. *)
  schedule : Noc_sched.Schedule.t;
  stats : Noc_eas.Eas.stats;
}

type chain_result = {
  chain : int;
  value : float;  (** Best objective seen, recomputed from scratch. *)
  accepted : int;
  best_mapping : int array;
}

type result = {
  search_params : params;
  chain_results : chain_result list;  (** In chain order. *)
  candidates : candidate list;  (** Survivors by value, then identity. *)
  winner : candidate;
}

val identity_mapping : n_tasks:int -> n_pes:int -> int array
val default_capacity : n_tasks:int -> n_pes:int -> int

val run :
  ?jobs:int ->
  ?params:params ->
  ?kernel:Noc_eas.Kernel.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  result
(** Runs the search. The kernel (built once here when not supplied) is
    shared read-only by the scoring tables, all chains and every
    survivor evaluation. *)

val origin_name : origin -> string
val pp_result : Format.formatter -> result -> unit
