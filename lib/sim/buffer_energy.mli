(** Buffering energy, the term the paper's Eq. (1) deliberately omits.

    The paper adopts [E_bit = E_Sbit + E_Lbit] precisely because the
    buffering component [E_Bbit] "is a parameter tightly coupled with
    the network congestion whose accurate value can only be measured by
    time-consuming simulations". This module performs that measurement:
    replaying a schedule on the {!Executor} yields, per transaction, the
    time its payload sat in router buffers waiting for its route; the
    buffering energy is then

    {[ E_B = sum over edges of volume(e) * e_bbit * waiting(e) ]}

    with [e_bbit] in nJ per bit per time unit of residence.

    The point the measurement makes: a contention-aware schedule never
    blocks (waiting is identically zero), so Eq. (1) is {e exact} for
    EAS schedules — the approximation only loses accuracy for schedules
    that ignore contention. *)

val default_e_bbit : float
(** A register-file-based holding cost of the same magnitude as the
    switch energy: [1e-5] nJ per bit per microsecond. *)

val estimate :
  ?e_bbit:float -> Noc_ctg.Ctg.t -> Executor.outcome -> float
(** Total buffering energy (nJ) of one replay. *)

val per_edge :
  ?e_bbit:float -> Noc_ctg.Ctg.t -> Executor.outcome -> float array
(** Buffering energy by edge id. *)
