module Schedule = Noc_sched.Schedule
module Fault_set = Noc_fault.Fault_set

type discipline = Time_triggered | Self_timed

type event = Task_finished of int | Transaction_finished of int | Wake

type pending = { edge : int; eligible : float }

type state = {
  platform : Noc_noc.Platform.t;
  ctg : Noc_ctg.Ctg.t;
  discipline : discipline;
  faults : Fault_set.t;
  assignment : int array;
  routes : int list array;  (* the schedule's recorded route per edge *)
  planned_task_start : float array;
  planned_tr_start : float array;
  pe_queues : int list array;  (* remaining issue order per PE *)
  pe_busy : bool array;
  running : int option array;  (* task currently executing per PE *)
  killed : bool array;  (* tasks lost to a PE fault mid-execution *)
  link_busy : bool array;  (* indexed src * n + dst *)
  inputs_remaining : int array;
  mutable pending : pending list;  (* sorted by (eligible, edge) *)
  events : event Event_queue.t;
  task_start : float array;
  task_finish : float array;
  tr_start : float array;
  tr_finish : float array;
  edge_waiting : float array;
  mutable waiting_time : float;
  mutable finished_tasks : int;
}

let link_index st (l : Noc_noc.Routing.link) =
  (l.from_node * Noc_noc.Platform.n_pes st.platform) + l.to_node

let route_free st links = List.for_all (fun l -> not st.link_busy.(link_index st l)) links

let set_route st links busy =
  List.iter (fun l -> st.link_busy.(link_index st l) <- busy) links

let insert_pending st p ~time =
  let rec insert = function
    | [] -> [ p ]
    | hd :: tl ->
      if (p.eligible, p.edge) < (hd.eligible, hd.edge) then p :: hd :: tl
      else hd :: insert tl
  in
  st.pending <- insert st.pending;
  (* A future release needs a wake-up, or the grant pass never sees it. *)
  if p.eligible > time then Event_queue.push st.events ~time:p.eligible Wake

let edge_route st e = st.routes.(e)

let edge_duration st e =
  let edge = Noc_ctg.Ctg.edge st.ctg e in
  Noc_noc.Platform.route_duration st.platform ~route:st.routes.(e)
    ~bits:edge.Noc_ctg.Edge.volume

let deliver st e =
  let edge = Noc_ctg.Ctg.edge st.ctg e in
  st.inputs_remaining.(edge.Noc_ctg.Edge.dst) <-
    st.inputs_remaining.(edge.Noc_ctg.Edge.dst) - 1

(* A PE fault strikes mid-execution: the task in flight is lost. Its
   scheduled [Task_finished] event stays in the queue but is ignored. *)
let kill_faulted_work st ~time =
  Array.iteri
    (fun pe task ->
      match task with
      | Some t when Fault_set.pe_failed_at st.faults ~pe ~time ->
        st.killed.(t) <- true;
        st.running.(pe) <- None;
        st.pe_busy.(pe) <- false;
        st.task_finish.(t) <- nan
      | Some _ | None -> ())
    st.running

let c_events = Noc_obs.Counters.counter "sim.events"
let c_granted = Noc_obs.Counters.counter "sim.transactions_granted"
let c_issued = Noc_obs.Counters.counter "sim.tasks_issued"

(* One pass of the dispatch rules at the current instant; returns true
   when something started (so the caller loops to a fixpoint). *)
let try_dispatch st ~time =
  let started = ref false in
  (* Grant eligible transactions first-come-first-served. A transaction
     cannot enter a route any of whose links is currently failed; it
     stalls in the sender's buffer until the fault clears (never, for a
     permanent fault). A transaction already in flight when a link fails
     is not torn down — faults gate entry, a wormhole simplification. *)
  let still_pending =
    List.filter
      (fun p ->
        let links = Noc_noc.Routing.links_of_route (edge_route st p.edge) in
        if
          p.eligible <= time && route_free st links
          && not (Fault_set.route_failed_at st.faults ~links ~time)
        then begin
          set_route st links true;
          let duration = edge_duration st p.edge in
          st.tr_start.(p.edge) <- time;
          st.tr_finish.(p.edge) <- time +. duration;
          st.edge_waiting.(p.edge) <- time -. p.eligible;
          st.waiting_time <- st.waiting_time +. (time -. p.eligible);
          Event_queue.push st.events ~time:(time +. duration)
            (Transaction_finished p.edge);
          Noc_obs.Counters.incr c_granted;
          started := true;
          false
        end
        else true)
      st.pending
  in
  st.pending <- still_pending;
  (* Issue PE queue heads whose inputs have all arrived. A failed PE
     issues nothing while its fault is active; recovery is retried at
     the fault-window boundaries (wake events pushed up front). *)
  for pe = 0 to Noc_noc.Platform.n_pes st.platform - 1 do
    match st.pe_queues.(pe) with
    | head :: rest
      when (not st.pe_busy.(pe))
           && st.inputs_remaining.(head) = 0
           && not (Fault_set.pe_failed_at st.faults ~pe ~time) ->
      let task_release =
        match (Noc_ctg.Ctg.task st.ctg head).Noc_ctg.Task.release with
        | None -> time
        | Some r -> Float.max time r
      in
      let release =
        match st.discipline with
        | Self_timed -> task_release
        | Time_triggered -> Float.max task_release st.planned_task_start.(head)
      in
      if release > time then Event_queue.push st.events ~time:release Wake
      else begin
        st.pe_queues.(pe) <- rest;
        st.pe_busy.(pe) <- true;
        st.running.(pe) <- Some head;
        let exec = (Noc_ctg.Ctg.task st.ctg head).Noc_ctg.Task.exec_times.(pe) in
        st.task_start.(head) <- time;
        st.task_finish.(head) <- time +. exec;
        Event_queue.push st.events ~time:(time +. exec) (Task_finished head);
        Noc_obs.Counters.incr c_issued;
        started := true
      end
    | _ :: _ | [] -> ()
  done;
  !started

let rec dispatch_fixpoint st ~time = if try_dispatch st ~time then dispatch_fixpoint st ~time

type outcome = {
  realised : Noc_sched.Schedule.t;
  waiting_time : float;
  edge_waiting : float array;
  lost_tasks : int list;
  deadline_misses : int list;
}

let run ?(discipline = Time_triggered) ?(faults = Fault_set.empty) platform ctg schedule
    =
  Noc_obs.Trace.span ~cat:"sim" "sim/execute"
    ~args:(fun () ->
      [
        ("tasks", Noc_obs.Trace.Int (Noc_ctg.Ctg.n_tasks ctg));
        ("faults", Noc_obs.Trace.Bool (not (Fault_set.is_empty faults)));
      ])
  @@ fun () ->
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let assignment = Array.init n (fun i -> (Schedule.placement schedule i).Schedule.pe) in
  let st =
    {
      platform;
      ctg;
      discipline;
      faults;
      assignment;
      routes =
        Array.init
          (Noc_ctg.Ctg.n_edges ctg)
          (fun e -> (Schedule.transaction schedule e).Schedule.route);
      planned_task_start =
        Array.init n (fun i -> (Schedule.placement schedule i).Schedule.start);
      planned_tr_start =
        Array.init
          (Noc_ctg.Ctg.n_edges ctg)
          (fun e -> (Schedule.transaction schedule e).Schedule.start);
      pe_queues =
        Array.init n_pes (fun pe ->
            List.map
              (fun (p : Schedule.placement) -> p.task)
              (Schedule.tasks_on_pe schedule ~pe));
      pe_busy = Array.make n_pes false;
      running = Array.make n_pes None;
      killed = Array.make n false;
      link_busy = Array.make (n_pes * n_pes) false;
      inputs_remaining = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i));
      pending = [];
      events = Event_queue.create ();
      task_start = Array.make n nan;
      task_finish = Array.make n nan;
      tr_start = Array.make (Noc_ctg.Ctg.n_edges ctg) nan;
      tr_finish = Array.make (Noc_ctg.Ctg.n_edges ctg) nan;
      edge_waiting = Array.make (Noc_ctg.Ctg.n_edges ctg) 0.;
      waiting_time = 0.;
      finished_tasks = 0;
    }
  in
  (* Fault-window edges are the instants at which stalled work must be
     re-examined: a recovering link can grant, a recovering PE can
     issue, an onset must kill the task in flight. *)
  List.iter
    (fun boundary -> Event_queue.push st.events ~time:boundary Wake)
    (Fault_set.boundaries faults);
  dispatch_fixpoint st ~time:0.;
  let rec loop () =
    match Event_queue.pop st.events with
    | None -> ()
    | Some (time, event) ->
      Noc_obs.Counters.incr c_events;
      kill_faulted_work st ~time;
      (match event with
      | Task_finished t when st.killed.(t) -> ()
      | Task_finished t ->
        st.finished_tasks <- st.finished_tasks + 1;
        st.pe_busy.(assignment.(t)) <- false;
        st.running.(assignment.(t)) <- None;
        List.iter
          (fun (e : Noc_ctg.Edge.t) ->
            let dst_pe = assignment.(e.dst) in
            if dst_pe = assignment.(t) || edge_duration st e.id = 0. then begin
              (* Local or zero-volume transfer: instantaneous. *)
              st.tr_start.(e.id) <- time;
              st.tr_finish.(e.id) <- time;
              deliver st e.id
            end
            else begin
              let eligible =
                match st.discipline with
                | Self_timed -> time
                | Time_triggered -> Float.max time st.planned_tr_start.(e.id)
              in
              insert_pending st { edge = e.id; eligible } ~time
            end)
          (Noc_ctg.Ctg.out_edges ctg t)
      | Transaction_finished e ->
        set_route st (Noc_noc.Routing.links_of_route (edge_route st e)) false;
        deliver st e
      | Wake -> ());
      dispatch_fixpoint st ~time;
      loop ()
  in
  loop ();
  if Fault_set.is_empty faults then assert (st.finished_tasks = n);
  let finite v = if Float.is_nan v then infinity else v in
  let placements =
    Array.init n (fun i ->
        {
          Schedule.task = i;
          pe = assignment.(i);
          start = finite st.task_start.(i);
          finish = finite st.task_finish.(i);
        })
  in
  let transactions =
    Array.init (Noc_ctg.Ctg.n_edges ctg) (fun e ->
        let edge = Noc_ctg.Ctg.edge ctg e in
        {
          Schedule.edge = e;
          src_pe = assignment.(edge.Noc_ctg.Edge.src);
          dst_pe = assignment.(edge.Noc_ctg.Edge.dst);
          route = edge_route st e;
          start = finite st.tr_start.(e);
          finish = finite st.tr_finish.(e);
        })
  in
  let lost_tasks =
    List.filter
      (fun i -> Float.is_nan st.task_finish.(i))
      (List.init n Fun.id)
  in
  let deadline_misses =
    List.filter
      (fun i ->
        match (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.deadline with
        | None -> false
        | Some deadline ->
          let f = st.task_finish.(i) in
          Float.is_nan f || f > deadline +. 1e-9)
      (List.init n Fun.id)
  in
  {
    realised = Schedule.make ~placements ~transactions;
    waiting_time = st.waiting_time;
    edge_waiting = st.edge_waiting;
    lost_tasks;
    deadline_misses;
  }
