let default_e_bbit = 1e-5

let per_edge ?(e_bbit = default_e_bbit) ctg (outcome : Executor.outcome) =
  Array.mapi
    (fun edge_id waiting ->
      let volume = (Noc_ctg.Ctg.edge ctg edge_id).Noc_ctg.Edge.volume in
      volume *. e_bbit *. waiting)
    outcome.Executor.edge_waiting

let estimate ?e_bbit ctg outcome =
  Array.fold_left ( +. ) 0. (per_edge ?e_bbit ctg outcome)
