(* Binary min-heap on (time, sequence number). *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0 .. size-1) *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let bigger = Array.make (Stdlib.max 8 (2 * capacity)) entry in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < t.size && before t.heap.(left) t.heap.(!smallest) then
          smallest := left;
        if right < t.size && before t.heap.(right) t.heap.(!smallest) then
          smallest := right;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
