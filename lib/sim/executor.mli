(** Discrete-event execution of a schedule on the wormhole NoC.

    The executor takes from a schedule only the decisions a runtime
    actually dispatches: the task-to-PE assignment and the per-PE issue
    order. Timing then emerges from the hardware model — each PE issues
    its tasks strictly in order, a task starting once all its input data
    has arrived; a transaction becomes eligible when its sender finishes
    and is granted its whole XY route first-come-first-served (ties by
    edge id) as soon as every link of the route is simultaneously free,
    holding all of them for [volume / bandwidth].

    For a schedule built by a contention-aware scheduler the realised
    times can only improve on the table (reservations are conservative).
    For a schedule built under the naive fixed-delay communication model
    the realised times expose the congestion the scheduler ignored —
    the paper's argument for co-scheduling communication. *)

type discipline =
  | Time_triggered
      (** The runtime of a statically scheduled NoC: tasks and
          transactions are released at their tabled start times (never
          earlier) and wait further if their resources are still busy —
          which cannot happen for a conflict-free schedule, so replaying
          one reproduces it exactly. Replaying a schedule whose table
          {e does} conflict (the fixed-delay ablation) exposes the
          cascading delays the scheduler ignored. *)
  | Self_timed
      (** Work-conserving execution: everything is released as soon as
          its data is ready, ignoring the tabled times. Subject to the
          usual multiprocessor timing anomalies. *)

type outcome = {
  realised : Noc_sched.Schedule.t;
      (** Executed placements/transactions. Tasks and transactions that
          never ran (lost to faults) carry [infinity] timestamps. *)
  waiting_time : float;
      (** Total time transactions spent eligible but blocked on busy
          links — a direct measure of the contention the schedule
          experienced. *)
  edge_waiting : float array;
      (** Per-edge blocked time (indexed by edge id); its sum is
          [waiting_time]. While a transaction is blocked, its payload
          sits in router buffers — the input of
          {!Buffer_energy.estimate}. *)
  lost_tasks : int list;
      (** Tasks that never finished: queued on a PE whose fault never
          cleared, killed mid-execution by a fault onset, or starved of
          an input whose transaction could not traverse a failed link.
          Empty when the fault set is empty. *)
  deadline_misses : int list;
      (** Tasks with a deadline that finished late or were lost. *)
}

val run :
  ?discipline:discipline ->
  ?faults:Noc_fault.Fault_set.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  outcome
(** Executes the schedule's assignment and per-PE issue order under the
    given dispatch [discipline] (default [Time_triggered]).

    Transactions are routed over the schedule's {e recorded} routes (not
    recomputed deterministic ones), so detour-routed schedules replay as
    written.

    With a non-empty [faults] set (default empty) the hardware degrades:
    a transaction cannot enter a route while any of its links is failed
    (it stalls; in-flight transfers are not torn down — faults gate
    entry); a failed PE issues no tasks, and a fault onset kills the
    task it was executing. Work whose fault never clears is reported in
    [lost_tasks], and every late or lost deadline task in
    [deadline_misses]. *)
