(** Wire protocol of the scheduling daemon (schema [nocsched/serve/v1]).

    Newline-delimited JSON over a Unix-domain socket: each request is
    one JSON object on one line, each reply one JSON object on one
    line, in request order per connection. JSON strings escape newlines,
    so inline CTG texts never break the framing.

    Requests ([op] selects the verb):

    {v
    {"op": "schedule",   "ctg": "<ctg text>", "mesh": "4x4",
     "algo": "eas", "decisions": false,
     "dvfs": false, "vf_levels": "1,0.8,0.6,0.5", "id": "r1"}
    {"op": "simulate",   "ctg": ..., "mesh": ..., "algo": ...,
     "faults": ["pe:1"], "self_timed": false, "id": ...}
    {"op": "reschedule", "ctg": ..., "mesh": ..., "algo": ...,
     "faults": ["pe:1", "link:3-7"], "id": ...}
    {"op": "stats"}
    {"op": "shutdown"}
    v}

    [ctg] is the {!Noc_ctg.Ctg_io} text format; [mesh] (default
    ["4x4"]) names the server-side platform (the same deterministic
    heterogeneous mesh the CLI builds); [algo] is [eas], [eas-base] or
    [edf] (default [eas]); [faults] uses the CLI fault syntax
    ({!Noc_fault.Fault.of_string}); [dvfs] (default [false]) asks for
    DVFS slack reclamation over the committed schedule, with
    [vf_levels] (a {!Noc_dvfs.Vf_table.of_string} ratio list, default
    the standard ladder) only legal alongside it; [id] is an opaque
    client correlation token echoed in the reply. Unknown fields are
    ignored.

    Replies always carry ["schema"] and ["ok"]; failures are structured
    — [{"ok": false, "error": "..."}] — never a dropped connection.
    Successful [schedule]/[reschedule] replies carry the schedule in
    {!Noc_sched.Schedule_io} text form (["schedule"]), the cache
    verdict (["cached"]), the cache key (["key"]) and the certifier
    verdict (["certified"], always [true] — uncertifiable schedules are
    refused). Replies are printed with {!Noc_obs.Json.to_string}, so
    equal replies are byte-equal. *)

val schema : string
(** ["nocsched/serve/v1"]. *)

type request =
  | Schedule of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      decisions : bool;  (** Include the EAS decision log in the reply. *)
      dvfs : Noc_dvfs.Vf_table.t option;
          (** [Some table] reclaims slack with the given V/f ladder;
              folded into the cache key as its own segment. *)
    }
  | Simulate of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      faults : string list;
      self_timed : bool;
    }
  | Reschedule of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      faults : string list;
    }
  | Stats
  | Shutdown

val op_name : request -> string
(** The wire verb: ["schedule"], ["simulate"], ... *)

val mesh_name : int * int -> string
(** [(4, 4)] as ["4x4"]. *)

val parse_request : string -> (request * string option, string) result
(** Parse one request line into the request and its optional [id].
    Errors name the offending field or byte offset and are safe to echo
    back to the client. *)

val request_to_line : ?id:string -> request -> string
(** The canonical one-line wire form of a request (no trailing
    newline). [parse_request (request_to_line r) = Ok (r, id)]. *)

val error_line : ?id:string -> string -> string
(** A structured failure reply: [{"schema": ..., "ok": false,
    "error": msg}] (plus ["id"] when given). No trailing newline. *)

val ok_line : ?id:string -> op:string -> (string * Noc_obs.Json.t) list -> string
(** A success reply carrying the given extra fields on top of
    ["schema"], ["ok"] and ["op"]. No trailing newline. *)
