let fault_set faults = Noc_util.Fnv.digest (Noc_fault.Fault_set.key faults)

(* DVFS is scheduler configuration, not a platform property (the mesh
   digests identically with and without slack reclamation), so it gets
   its own key segment instead of a platform-digest bump: "-" when off,
   the FNV digest of the ladder's bit-exact hex serialisation when on.
   A --dvfs request can therefore never alias a cached unscaled
   schedule, and two ladders differing in any bit get distinct keys. *)
let no_dvfs = "-"
let vf_table table = Noc_util.Fnv.digest (Noc_dvfs.Vf_table.hex table)

let make ?(dvfs_digest = no_dvfs) ~algo ~ctg_digest ~platform_digest ~fault_digest () =
  Printf.sprintf "%s:%s:%s:%s:%s"
    (String.lowercase_ascii (Noc_experiments.Runner.algo_name algo))
    ctg_digest platform_digest fault_digest dvfs_digest

let key ?dvfs_digest ~algo ~ctg ~platform ~faults () =
  make ?dvfs_digest ~algo ~ctg_digest:(Noc_ctg.Ctg.digest ctg)
    ~platform_digest:(Noc_noc.Platform.digest platform)
    ~fault_digest:(fault_set faults) ()
