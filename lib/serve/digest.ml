let fault_set faults = Noc_util.Fnv.digest (Noc_fault.Fault_set.key faults)

let make ~algo ~ctg_digest ~platform_digest ~fault_digest =
  Printf.sprintf "%s:%s:%s:%s"
    (String.lowercase_ascii (Noc_experiments.Runner.algo_name algo))
    ctg_digest platform_digest fault_digest

let key ~algo ~ctg ~platform ~faults =
  make ~algo ~ctg_digest:(Noc_ctg.Ctg.digest ctg)
    ~platform_digest:(Noc_noc.Platform.digest platform)
    ~fault_digest:(fault_set faults)
