type 'a entry = { value : 'a; mutable tick : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    lock = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = with_lock t (fun () -> Hashtbl.length t.table)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry ->
        entry.tick <- tick t;
        t.hits <- t.hits + 1;
        Some entry.value
      | None ->
        t.misses <- t.misses + 1;
        None)

(* O(capacity) scan; capacities are small (tens to a few thousand) and
   eviction is off the cache-hit fast path. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | Some (_, best) when best <= entry.tick -> ()
      | Some _ | None -> victim := Some (key, entry.tick))
    t.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let add t key value =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.capacity then
        evict_lru t;
      Hashtbl.replace t.table key { value; tick = tick t })

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)

let keys t =
  with_lock t (fun () ->
      Hashtbl.fold (fun key entry acc -> (key, entry.tick) :: acc) t.table [])
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
