module Json = Noc_obs.Json

let schema = "nocsched/serve/v1"

type request =
  | Schedule of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      decisions : bool;
      dvfs : Noc_dvfs.Vf_table.t option;
    }
  | Simulate of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      faults : string list;
      self_timed : bool;
    }
  | Reschedule of {
      ctg_text : string;
      mesh : int * int;
      algo : Noc_experiments.Runner.algo;
      faults : string list;
    }
  | Stats
  | Shutdown

let op_name = function
  | Schedule _ -> "schedule"
  | Simulate _ -> "simulate"
  | Reschedule _ -> "reschedule"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Field accessors over a parsed object.                               *)

let string_field ~default name obj =
  match Json.member name obj with
  | None -> Ok default
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let bool_field ~default name obj =
  match Json.member name obj with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let string_list_field name obj =
  match Json.member name obj with
  | None -> Ok []
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.String s :: rest -> go (s :: acc) rest
      | _ :: _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)

let parse_mesh s =
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ c; r ] -> (
    match (int_of_string_opt c, int_of_string_opt r) with
    | Some cols, Some rows when cols > 0 && rows > 0 -> Ok (cols, rows)
    | _ -> Error (Printf.sprintf "mesh %S must be COLSxROWS with positive integers" s))
  | _ -> Error (Printf.sprintf "mesh %S must look like 4x4" s)

let parse_algo s =
  match String.lowercase_ascii s with
  | "eas" -> Ok Noc_experiments.Runner.Eas
  | "eas-base" -> Ok Noc_experiments.Runner.Eas_base
  | "edf" -> Ok Noc_experiments.Runner.Edf
  | other -> Error (Printf.sprintf "algo %S must be eas, eas-base or edf" other)

let mesh_name (cols, rows) = Printf.sprintf "%dx%d" cols rows

(* ------------------------------------------------------------------ *)
(* Request parsing.                                                    *)

let ( let* ) = Result.bind

let ctg_mesh_algo obj =
  let* ctg_text =
    match Json.member "ctg" obj with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error "field \"ctg\" must be a string"
    | None -> Error "missing field \"ctg\""
  in
  let* mesh_text = string_field ~default:"4x4" "mesh" obj in
  let* mesh = parse_mesh mesh_text in
  let* algo_text = string_field ~default:"eas" "algo" obj in
  let* algo = parse_algo algo_text in
  Ok (ctg_text, mesh, algo)

let parse_request line =
  match Json.parse line with
  | Error msg -> Error ("malformed request JSON: " ^ msg)
  | Ok (Json.Obj _ as obj) ->
    let id =
      match Json.member "id" obj with Some (Json.String s) -> Some s | _ -> None
    in
    let* request =
      let* op =
        match Json.member "op" obj with
        | Some (Json.String s) -> Ok s
        | Some _ -> Error "field \"op\" must be a string"
        | None -> Error "missing field \"op\""
      in
      match op with
      | "schedule" ->
        let* ctg_text, mesh, algo = ctg_mesh_algo obj in
        let* decisions = bool_field ~default:false "decisions" obj in
        let* dvfs_flag = bool_field ~default:false "dvfs" obj in
        let* vf_levels =
          match Json.member "vf_levels" obj with
          | None -> Ok None
          | Some (Json.String s) -> (
            match Noc_dvfs.Vf_table.of_string s with
            | Ok t -> Ok (Some t)
            | Error msg -> Error (Printf.sprintf "field \"vf_levels\": %s" msg))
          | Some _ -> Error "field \"vf_levels\" must be a string"
        in
        let* dvfs =
          match (dvfs_flag, vf_levels) with
          | false, Some _ -> Error "field \"vf_levels\" needs \"dvfs\": true"
          | false, None -> Ok None
          | true, Some t -> Ok (Some t)
          | true, None -> Ok (Some Noc_dvfs.Vf_table.default)
        in
        Ok (Schedule { ctg_text; mesh; algo; decisions; dvfs })
      | "simulate" ->
        let* ctg_text, mesh, algo = ctg_mesh_algo obj in
        let* faults = string_list_field "faults" obj in
        let* self_timed = bool_field ~default:false "self_timed" obj in
        Ok (Simulate { ctg_text; mesh; algo; faults; self_timed })
      | "reschedule" ->
        let* ctg_text, mesh, algo = ctg_mesh_algo obj in
        let* faults = string_list_field "faults" obj in
        Ok (Reschedule { ctg_text; mesh; algo; faults })
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | other ->
        Error
          (Printf.sprintf
             "unknown op %S (known: schedule, simulate, reschedule, stats, shutdown)"
             other)
    in
    Ok (request, id)
  | Ok _ -> Error "malformed request: expected a JSON object"

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", Json.String id) :: fields

let request_to_line ?id request =
  let base = [ ("op", Json.String (op_name request)) ] in
  let fields =
    match request with
    | Schedule { ctg_text; mesh; algo; decisions; dvfs } ->
      base
      @ [
          ("ctg", Json.String ctg_text);
          ("mesh", Json.String (mesh_name mesh));
          ("algo", Json.String (Noc_experiments.Runner.algo_name algo
                                |> String.lowercase_ascii));
          ("decisions", Json.Bool decisions);
        ]
      @ (match dvfs with
        | None -> []
        | Some table ->
          [
            ("dvfs", Json.Bool true);
            ("vf_levels", Json.String (Noc_dvfs.Vf_table.to_string table));
          ])
    | Simulate { ctg_text; mesh; algo; faults; self_timed } ->
      base
      @ [
          ("ctg", Json.String ctg_text);
          ("mesh", Json.String (mesh_name mesh));
          ("algo", Json.String (Noc_experiments.Runner.algo_name algo
                                |> String.lowercase_ascii));
          ("faults", Json.List (List.map (fun f -> Json.String f) faults));
          ("self_timed", Json.Bool self_timed);
        ]
    | Reschedule { ctg_text; mesh; algo; faults } ->
      base
      @ [
          ("ctg", Json.String ctg_text);
          ("mesh", Json.String (mesh_name mesh));
          ("algo", Json.String (Noc_experiments.Runner.algo_name algo
                                |> String.lowercase_ascii));
          ("faults", Json.List (List.map (fun f -> Json.String f) faults));
        ]
    | Stats | Shutdown -> base
  in
  Json.to_string (Json.Obj (with_id id fields))

let error_line ?id msg =
  Json.to_string
    (Json.Obj
       (with_id id
          [
            ("schema", Json.String schema); ("ok", Json.Bool false);
            ("error", Json.String msg);
          ]))

let ok_line ?id ~op fields =
  Json.to_string
    (Json.Obj
       (with_id id
          ([
             ("schema", Json.String schema); ("ok", Json.Bool true);
             ("op", Json.String op);
           ]
          @ fields)))
