(** Bounded LRU memo for certified schedules (and warmed kernels).

    Keys are the digest strings of {!Digest}. The cache is guarded by a
    mutex — the server fans independent requests over a domain pool and
    every worker shares it. Recency is a logical tick bumped on every
    {!find} hit and {!add}; at capacity the least-recently-used entry
    is evicted. Statistics (hits, misses, evictions) are monotonic over
    the cache's lifetime. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Records a hit (bumping the entry's recency) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts or replaces; evicts the least-recently-used entry when a
    genuine insertion would exceed capacity. Replacement of an existing
    key never evicts. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val keys : 'a t -> string list
(** Current keys, most recently used first (for tests and stats). *)
