(** Cache-key derivation for the scheduling daemon.

    A served schedule is a pure function of the task graph, the
    platform, the fault set and the scheduler configuration, so the
    memo key concatenates stable content digests of all four:

    {v algo : ctg-digest : platform-digest : fault-digest v}

    CTG and platform digests come from {!Noc_ctg.Ctg.digest} and
    {!Noc_noc.Platform.digest}; the fault component hashes the fault
    set's canonical {!Noc_fault.Fault_set.key} (the empty set digests
    to a fixed value, so plain [schedule] requests and [reschedule]
    requests share the key space without colliding). FNV-1a is a
    content digest, not a cryptographic hash — the daemon trusts its
    clients. *)

val fault_set : Noc_fault.Fault_set.t -> string
(** FNV-1a hex digest of the set's canonical key. *)

val make :
  algo:Noc_experiments.Runner.algo ->
  ctg_digest:string ->
  platform_digest:string ->
  fault_digest:string ->
  string
(** {!key} from already-computed component digests — the server
    memoizes the CTG and platform digests with the objects they
    describe, so a cache hit never re-serializes the graph. *)

val key :
  algo:Noc_experiments.Runner.algo ->
  ctg:Noc_ctg.Ctg.t ->
  platform:Noc_noc.Platform.t ->
  faults:Noc_fault.Fault_set.t ->
  string
(** The full cache key, [algo:ctg:platform:faults]. *)
