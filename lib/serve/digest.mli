(** Cache-key derivation for the scheduling daemon.

    A served schedule is a pure function of the task graph, the
    platform, the fault set and the scheduler configuration, so the
    memo key concatenates stable content digests of all five:

    {v algo : ctg-digest : platform-digest : fault-digest : dvfs v}

    CTG and platform digests come from {!Noc_ctg.Ctg.digest} and
    {!Noc_noc.Platform.digest}; the fault component hashes the fault
    set's canonical {!Noc_fault.Fault_set.key} (the empty set digests
    to a fixed value, so plain [schedule] requests and [reschedule]
    requests share the key space without colliding). The DVFS segment
    is a deliberate separate component rather than a platform-digest
    bump: slack reclamation is scheduler configuration, the silicon is
    the same — ["-"] when off, the FNV digest of the V/f ladder's
    bit-exact hex serialisation when on, so a [--dvfs] request never
    aliases a cached unscaled schedule. FNV-1a is a content digest, not
    a cryptographic hash — the daemon trusts its clients. *)

val fault_set : Noc_fault.Fault_set.t -> string
(** FNV-1a hex digest of the set's canonical key. *)

val no_dvfs : string
(** The key segment of requests without DVFS: ["-"]. *)

val vf_table : Noc_dvfs.Vf_table.t -> string
(** FNV-1a hex digest of {!Noc_dvfs.Vf_table.hex}. *)

val make :
  ?dvfs_digest:string ->
  algo:Noc_experiments.Runner.algo ->
  ctg_digest:string ->
  platform_digest:string ->
  fault_digest:string ->
  unit ->
  string
(** {!key} from already-computed component digests — the server
    memoizes the CTG and platform digests with the objects they
    describe, so a cache hit never re-serializes the graph.
    [dvfs_digest] defaults to {!no_dvfs}. *)

val key :
  ?dvfs_digest:string ->
  algo:Noc_experiments.Runner.algo ->
  ctg:Noc_ctg.Ctg.t ->
  platform:Noc_noc.Platform.t ->
  faults:Noc_fault.Fault_set.t ->
  unit ->
  string
(** The full cache key, [algo:ctg:platform:faults:dvfs]. *)
