(** Minimal blocking client for the scheduling daemon.

    One connection, one line-oriented conversation: write a request
    line, read the reply line. Used by the CLI's [serve --call] mode,
    the smoke test and the benches; it is deliberately synchronous —
    concurrency belongs to the daemon, which multiplexes any number of
    these. *)

type t

val connect : ?retries:int -> socket_path:string -> unit -> t
(** Connects to the daemon's Unix socket. [retries] (default 0) extra
    attempts are made 50 ms apart — enough for a freshly forked daemon
    to reach [listen]. Raises [Unix.Unix_error] when the last attempt
    fails. *)

val request : t -> string -> string
(** [request t line] sends [line] (a newline is appended) and blocks
    for the single reply line. Raises [End_of_file] if the daemon
    closes the connection first. *)

val request_json : t -> string -> (Noc_obs.Json.t, string) result
(** {!request}, with the reply parsed. *)

val close : t -> unit

val with_connection :
  ?retries:int -> socket_path:string -> (t -> 'a) -> 'a
(** Connect, run, always close. *)

val one_shot : ?retries:int -> socket_path:string -> string -> string
(** A whole conversation of one request. *)
