(** The scheduling daemon: a Unix-domain-socket server around the EAS
    machinery.

    One [run] call owns one listening socket and serves {!Protocol}
    requests until a [shutdown] request arrives. Architecture:

    - {b Warm state.} Platforms (one per requested mesh geometry) are
      built once, their route memos eagerly warmed, and kept resident;
      flat-array {!Noc_eas.Kernel} matrices are memoized per
      (CTG, platform) digest pair in their own LRU, so a cache-missed
      request pays the build at most once.
    - {b Schedule cache.} Results are memoized in an LRU keyed by
      {!Digest.key} (algo, CTG digest, platform digest, fault digest).
      Every entry was certified by {!Noc_analysis.Certify} when it was
      inserted — a schedule the certifier rejects is returned as an
      error and never cached — and hits are served without
      re-certification. Hits are label-faithful: a request whose graph
      permutes edge declaration order relative to the cached one gets
      its transactions relabelled through the arc-endpoint map, so the
      reply is always valid for the {e request's} graph.
    - {b Incremental rescheduling.} [reschedule] requests run the
      {!Noc_eas.Fault_resched} migrate → rebuild → repair ladder
      against the cached base schedule instead of a full EAS re-run;
      the base is computed (and cached) on demand.
    - {b Concurrency.} A [select] loop multiplexes any number of
      client connections; complete request lines collected in one
      round are fanned over {!Noc_util.Pool} when more than one pure
      [schedule] request is pending (fault-carrying and decision-log
      requests are handled serially — they touch lazily-filled
      degraded views and the global decision log). Responses go only
      to the connection that asked.
    - {b Observability.} Per-op request latencies land in
      [serve/<op>] histograms and cache traffic in [serve.cache.*]
      counters ({!Noc_obs.Counters}); the [stats] request (and the
      CLI's [--stats]) surfaces p50/p99 and cache hit rates. *)

type config = {
  socket_path : string;
  capacity : int;  (** Schedule-cache entries (default 64). *)
  jobs : int option;
      (** Domains for fanning concurrent requests; [None] = serial. *)
}

val default_config : socket_path:string -> config

type state
(** Warm platforms, kernel memo and schedule cache, shared by every
    request the daemon serves. *)

val make_state : config -> state
(** A server state without a socket — tests and the in-process bench
    drive it through {!handle_line} directly. *)

val handle_line : state -> string -> string * bool
(** Process one request line against the server state, returning the
    reply line (no trailing newline) and whether the request asked for
    shutdown. Never raises: internal failures become structured error
    replies. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Binds [socket_path] (unlinking any stale socket file first),
    listens, serves until a [shutdown] request, then closes every
    connection and removes the socket file. [on_ready] fires once the
    socket is listening — tests and in-process benches use it instead
    of polling. Raises [Unix.Unix_error] when the socket cannot be
    bound. *)
