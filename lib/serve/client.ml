type t = { fd : Unix.file_descr; ic : in_channel }

let connect ?(retries = 0) ~socket_path () =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd }
    | exception (Unix.Unix_error _ as exn) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then raise exn
      else begin
        Unix.sleepf 0.05;
        go (attempt + 1)
      end
  in
  go 0

let request t line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec write off =
    if off < len then write (off + Unix.write t.fd payload off (len - off))
  in
  write 0;
  input_line t.ic

let request_json t line = Noc_obs.Json.parse (request t line)

let close t = try close_in t.ic with Sys_error _ -> ()

let with_connection ?retries ~socket_path f =
  let t = connect ?retries ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let one_shot ?retries ~socket_path line =
  with_connection ?retries ~socket_path (fun t -> request t line)
