module Json = Noc_obs.Json
module Counters = Noc_obs.Counters
module Decisions = Noc_obs.Decisions
module Ctg = Noc_ctg.Ctg
module Ctg_io = Noc_ctg.Ctg_io
module Edge = Noc_ctg.Edge
module Platform = Noc_noc.Platform
module Schedule = Noc_sched.Schedule
module Schedule_io = Noc_sched.Schedule_io
module Metrics = Noc_sched.Metrics
module Fault_set = Noc_fault.Fault_set
module Runner = Noc_experiments.Runner
module Certify = Noc_analysis.Certify
module Diagnostic = Noc_analysis.Diagnostic

type config = { socket_path : string; capacity : int; jobs : int option }

let default_config ~socket_path = { socket_path; capacity = 64; jobs = None }

(* A cached result. [ctg] is the graph the schedule's transaction labels
   refer to: a digest-equal request whose edges are declared in another
   order gets its transactions relabelled through the arc-endpoint map
   (see [relabel]). [resched] carries the incremental-rescheduling stats
   when the entry came from a [reschedule] request. *)
type entry = {
  ctg : Ctg.t;
  schedule : Schedule.t;
  text : string;
  energy : float;
  makespan : float;
  misses : int;
  decisions : string option;
  resched : (int * int * bool) option;  (* migrated, rerouted, full_rerun *)
  dvfs : (Noc_dvfs.Vf_table.t * Schedule_io.annotation array * int * float) option;
      (* ladder, per-task annotations, downclocked, reclaimed nJ — the
         entry's schedule/text are then the scaled (format v3) ones *)
}

type state = {
  config : config;
  platforms : (int * int, Platform.t * string) Hashtbl.t;
      (** Warm platform and its memoized content digest per mesh. *)
  platforms_lock : Mutex.t;
  schedules : entry Cache.t;
  kernels : Noc_eas.Kernel.t Cache.t;
  parses : (Ctg.t * string) Cache.t;
      (** [ctg_text -> (parsed graph, Ctg.digest)]: a warm cache hit
          costs neither the text parse nor the canonical-serialization
          digest, only the wire-JSON parse. Keyed by the raw request
          text, so only byte-identical texts short-circuit; a permuted
          but digest-equal text takes the slow path once and then hits
          the schedule cache through {!relabel}. *)
  requests : int Atomic.t;
  errors : int Atomic.t;
}

let make_state config =
  Counters.set_enabled true;
  {
    config;
    platforms = Hashtbl.create 4;
    platforms_lock = Mutex.create ();
    schedules = Cache.create ~capacity:config.capacity;
    kernels = Cache.create ~capacity:(max 8 config.capacity);
    parses = Cache.create ~capacity:(max 8 config.capacity);
    requests = Atomic.make 0;
    errors = Atomic.make 0;
  }

(* Same seed as the CLI front end: the daemon must serve bit-identical
   schedules to one-shot `nocsched schedule` runs. Routes are warmed
   before the platform is published so pool workers only ever read the
   memo. *)
let platform_for state (cols, rows) =
  Mutex.lock state.platforms_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock state.platforms_lock)
    (fun () ->
      match Hashtbl.find_opt state.platforms (cols, rows) with
      | Some pd -> pd
      | None ->
        let p = Platform.heterogeneous_mesh ~seed:42 ~cols ~rows () in
        Platform.warm_routes p;
        let pd = (p, Platform.digest p) in
        Hashtbl.replace state.platforms (cols, rows) pd;
        pd)

(* Parse-and-digest, memoized on the raw text (see [state.parses]). *)
let parse_graph state ctg_text =
  match Cache.find state.parses ctg_text with
  | Some v -> Ok v
  | None -> (
    match Ctg_io.of_string ctg_text with
    | Error _ as e -> e
    | Ok ctg ->
      let v = (ctg, Ctg.digest ctg) in
      Cache.add state.parses ctg_text v;
      Ok v)

let algo_wire algo = String.lowercase_ascii (Runner.algo_name algo)

(* ------------------------------------------------------------------ *)
(* Decision-log capture.                                               *)

(* Reproduces a fresh one-shot process: ambient run label "" and a
   sequence counter starting at 0 ([with_run] resets both). Global
   state, so decision-carrying requests are never fanned over the pool
   (see [parallel_ok]). *)
let capture_decisions f =
  Decisions.reset ();
  Decisions.set_enabled true;
  let result =
    Fun.protect
      ~finally:(fun () -> Decisions.set_enabled false)
      (fun () -> Decisions.with_run "" f)
  in
  let jsonl = Decisions.export_jsonl () in
  Decisions.reset ();
  (result, jsonl)

(* ------------------------------------------------------------------ *)
(* Cache-hit relabelling.                                              *)

let same_edges a b =
  Ctg.n_edges a = Ctg.n_edges b
  && Array.for_all2
       (fun (x : Edge.t) (y : Edge.t) ->
         x.src = y.src && x.dst = y.dst && x.volume = y.volume)
       (Ctg.edges a) (Ctg.edges b)

(* A digest-equal graph may still declare its edges in another order
   (edge ids are labels, not semantics — the digest sorts arcs by
   endpoints). The cached schedule is the right answer, but its
   transaction labels refer to the cached graph; remap each transaction
   to the request graph's id for the same (src, dst) arc. Ctg validation
   guarantees arcs are unique per endpoint pair, so the map is a
   bijection when the graphs really are the same problem; any mismatch
   (an FNV collision) falls back to a fresh computation. *)
(* Serialise with the entry's DVFS annotations when it carries them, so
   a relabelled scaled entry keeps its format-v3 text. *)
let entry_text (entry : entry) schedule =
  match entry.dvfs with
  | Some (_, annotations, _, _) -> Schedule_io.to_string ~dvfs:annotations schedule
  | None -> Schedule_io.to_string schedule

let relabel (entry : entry) (ctg : Ctg.t) =
  if same_edges entry.ctg ctg then Some (entry.schedule, entry.text, entry.decisions)
  else if Ctg.n_edges entry.ctg <> Ctg.n_edges ctg then None
  else
    let by_arc = Hashtbl.create (Ctg.n_edges ctg) in
    Array.iter
      (fun (e : Edge.t) -> Hashtbl.replace by_arc (e.src, e.dst) e)
      (Ctg.edges ctg);
    let out = Array.make (Ctg.n_edges ctg) None in
    try
      Array.iter
        (fun (tr : Schedule.transaction) ->
          let cached_edge = Ctg.edge entry.ctg tr.edge in
          match Hashtbl.find_opt by_arc (cached_edge.src, cached_edge.dst) with
          | Some e when e.volume = cached_edge.volume && out.(e.id) = None ->
            out.(e.id) <- Some { tr with edge = e.id }
          | Some _ | None -> raise Exit)
        (Schedule.transactions entry.schedule);
      let transactions = Array.map (function Some t -> t | None -> raise Exit) out in
      let schedule =
        Schedule.make ~placements:(Schedule.placements entry.schedule) ~transactions
      in
      (* Decision records name tasks and PEs, never edge ids, so they
         survive the relabelling unchanged — as do DVFS annotations. *)
      Some (schedule, entry_text entry schedule, entry.decisions)
    with Exit | Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let kernel_for state platform ctg ~ctg_digest ~platform_digest =
  let key = ctg_digest ^ ":" ^ platform_digest in
  match Cache.find state.kernels key with
  | Some k -> k
  | None ->
    let k = Noc_eas.Kernel.build platform ctg in
    Cache.add state.kernels key k;
    k

let certification_error diags =
  let errors, warnings, _ = Diagnostic.count diags in
  if errors = 0 then None
  else
    Some
      (Printf.sprintf "schedule failed certification: %d error(s), %d warning(s); first: %s"
         errors warnings
         (match
            List.find_opt
              (fun d -> d.Diagnostic.severity = Diagnostic.Error)
              diags
          with
         | Some d -> Format.asprintf "%a" Diagnostic.pp d
         | None -> "?"))

(* A full (cache-miss) computation: schedule, derive metrics, certify.
   Kernels are reused across runs — [Kernel.build] is deterministic and
   the kernel is read-only after construction, so reuse is bit-neutral. *)
let raw_schedule state platform ctg algo ~digests =
  let ctg_digest, platform_digest = digests in
  match algo with
  | Runner.Eas ->
    (Noc_eas.Eas.schedule
       ~kernel:(kernel_for state platform ctg ~ctg_digest ~platform_digest)
       platform ctg)
      .Noc_eas.Eas.schedule
  | Runner.Eas_base ->
    (Noc_eas.Eas.schedule ~repair:false
       ~kernel:(kernel_for state platform ctg ~ctg_digest ~platform_digest)
       platform ctg)
      .Noc_eas.Eas.schedule
  | Runner.Edf -> Runner.schedule_of Runner.Edf platform ctg

let compute_fresh state platform ctg algo ~digests ~want_decisions =
  let run () = raw_schedule state platform ctg algo ~digests in
  let schedule, decisions =
    if want_decisions then
      let s, d = capture_decisions run in
      (s, Some d)
    else (run (), None)
  in
  let metrics = Metrics.compute platform ctg schedule in
  let diags =
    Certify.check ~claimed_energy:metrics.Metrics.total_energy platform ctg schedule
  in
  match certification_error diags with
  | Some msg -> Error msg
  | None ->
    Ok
      {
        ctg;
        schedule;
        text = Schedule_io.to_string schedule;
        energy = metrics.Metrics.total_energy;
        makespan = metrics.Metrics.makespan;
        misses = Metrics.miss_count metrics;
        decisions;
        resched = None;
        dvfs = None;
      }

(* The memoised schedule for (algo, ctg, platform) with no faults.
   Returns the entry (relabelled to the request's graph), whether it was
   served from the cache, and the cache key. A hit that needs a decision
   log the entry does not carry is recomputed in full (and the richer
   entry replaces the cached one). *)
let empty_fault_digest = Digest.fault_set Fault_set.empty

let obtain state platform ctg algo ~digests ~want_decisions =
  let ctg_digest, platform_digest = digests in
  let key =
    Digest.make ~algo ~ctg_digest ~platform_digest
      ~fault_digest:empty_fault_digest ()
  in
  let fresh () =
    match compute_fresh state platform ctg algo ~digests ~want_decisions with
    | Error _ as e -> e
    | Ok entry ->
      Cache.add state.schedules key entry;
      Ok (entry, false, key)
  in
  match Cache.find state.schedules key with
  | None -> fresh ()
  | Some entry -> (
    match relabel entry ctg with
    | None -> fresh ()
    | Some (schedule, text, decisions) ->
      if want_decisions && decisions = None then fresh ()
      else Ok ({ entry with ctg; schedule; text; decisions }, true, key))

(* ------------------------------------------------------------------ *)
(* Request handlers.                                                   *)

let num n = Json.Number n
let int_num n = Json.Number (float_of_int n)

let schedule_fields ~cached ~key ~algo (entry : entry) =
  [
    ("cached", Json.Bool cached);
    ("key", Json.String key);
    ("algo", Json.String (algo_wire algo));
    ("certified", Json.Bool true);
    ("energy", num entry.energy);
    ("makespan", num entry.makespan);
    ("misses", int_num entry.misses);
    ("schedule", Json.String entry.text);
  ]

let with_graph state ?id ~ctg_text ~mesh k =
  match parse_graph state ctg_text with
  | Error msg -> Protocol.error_line ?id ("ctg: " ^ msg)
  | Ok (ctg, ctg_digest) ->
    let platform, platform_digest = platform_for state mesh in
    if Ctg.n_pes ctg <> Platform.n_pes platform then
      Protocol.error_line ?id
        (Printf.sprintf "graph expects %d PEs but mesh %s has %d" (Ctg.n_pes ctg)
           (Protocol.mesh_name mesh) (Platform.n_pes platform))
    else k platform ctg ~digests:(ctg_digest, platform_digest)

let decisions_field ~decisions (entry : entry) fields =
  match entry.decisions with
  | Some d when decisions -> fields @ [ ("decisions", Json.String d) ]
  | Some _ | None -> fields

(* DVFS slack reclamation over the committed base schedule. The scaled
   entry lives under its own cache key ({!Digest.vf_table} segment), so
   a [--dvfs] request never aliases a cached unscaled schedule and vice
   versa. When a decision log is wanted the EAS placements and the
   downclocks must share one run label for CLI bit-parity, so the fresh
   path wraps schedule + reclaim in a single [capture_decisions];
   otherwise the base comes through the normal (possibly cached)
   [obtain] path and only the cheap reclamation pass runs. *)
let handle_dvfs_schedule state ?id ~algo ~decisions ~table platform ctg ~digests =
  let ctg_digest, platform_digest = digests in
  let dkey =
    Digest.make ~dvfs_digest:(Digest.vf_table table) ~algo ~ctg_digest
      ~platform_digest ~fault_digest:empty_fault_digest ()
  in
  let reply ~cached ~base_cached (entry : entry) =
    let table, downclocked, reclaimed =
      match entry.dvfs with
      | Some (t, _, d, rj) -> (t, d, rj)
      | None -> (table, 0, 0.)
    in
    schedule_fields ~cached ~key:dkey ~algo entry
    @ [
        ("dvfs", Json.Bool true);
        ("vf_levels", Json.String (Noc_dvfs.Vf_table.to_string table));
        ("downclocked", int_num downclocked);
        ("reclaimed", num reclaimed);
        ("base_cached", Json.Bool base_cached);
      ]
    |> decisions_field ~decisions entry
    |> Protocol.ok_line ?id ~op:"schedule"
  in
  let fresh () =
    let base_result =
      if decisions then (
        let (base, r), jsonl =
          capture_decisions (fun () ->
              let base = raw_schedule state platform ctg algo ~digests in
              (base, Noc_dvfs.Reclaim.run ~table ctg base))
        in
        let metrics = Metrics.compute platform ctg base in
        match
          certification_error
            (Certify.check ~claimed_energy:metrics.Metrics.total_energy platform
               ctg base)
        with
        | Some msg -> Error msg
        | None -> Ok (base, metrics.Metrics.total_energy, false, Some jsonl, r))
      else
        match obtain state platform ctg algo ~digests ~want_decisions:false with
        | Error msg -> Error msg
        | Ok (base_entry, base_cached, _) ->
          Ok
            ( base_entry.schedule,
              base_entry.energy,
              base_cached,
              None,
              Noc_dvfs.Reclaim.run ~table ctg base_entry.schedule )
    in
    match base_result with
    | Error msg -> Protocol.error_line ?id msg
    | Ok (base, base_energy, base_cached, dlog, r) -> (
      let annotations = r.Noc_dvfs.Reclaim.annotations in
      let scaled = r.Noc_dvfs.Reclaim.schedule in
      match
        certification_error
          (Certify.check_scaled
             ~ratios:(Noc_dvfs.Vf_table.ratios table)
             ~annotations ~base platform ctg scaled)
      with
      | Some msg -> Protocol.error_line ?id ("dvfs: " ^ msg)
      | None ->
        let reclaimed = Noc_dvfs.Reclaim.reclaimed r in
        let entry =
          {
            ctg;
            schedule = scaled;
            text = Schedule_io.to_string ~dvfs:annotations scaled;
            energy = base_energy -. reclaimed;
            makespan = Schedule.makespan scaled;
            misses = Metrics.miss_count (Metrics.compute platform ctg scaled);
            decisions = dlog;
            resched = None;
            dvfs = Some (table, annotations, r.Noc_dvfs.Reclaim.downclocked, reclaimed);
          }
        in
        Cache.add state.schedules dkey entry;
        reply ~cached:false ~base_cached entry)
  in
  match Cache.find state.schedules dkey with
  | None -> fresh ()
  | Some entry -> (
    match relabel entry ctg with
    | None -> fresh ()
    | Some (schedule, text, dlog) ->
      if decisions && dlog = None then fresh ()
      else
        reply ~cached:true ~base_cached:true
          { entry with ctg; schedule; text; decisions = dlog })

let handle_schedule state ?id ~ctg_text ~mesh ~algo ~decisions ~dvfs () =
  with_graph state ?id ~ctg_text ~mesh @@ fun platform ctg ~digests ->
  match dvfs with
  | Some table ->
    handle_dvfs_schedule state ?id ~algo ~decisions ~table platform ctg ~digests
  | None -> (
    match obtain state platform ctg algo ~digests ~want_decisions:decisions with
    | Error msg -> Protocol.error_line ?id msg
    | Ok (entry, cached, key) ->
      schedule_fields ~cached ~key ~algo entry
      |> decisions_field ~decisions entry
      |> Protocol.ok_line ?id ~op:"schedule")

let handle_simulate state ?id ~ctg_text ~mesh ~algo ~faults ~self_timed () =
  match Fault_set.of_strings faults with
  | Error msg -> Protocol.error_line ?id ("faults: " ^ msg)
  | Ok faults -> (
    with_graph state ?id ~ctg_text ~mesh @@ fun platform ctg ~digests ->
    match obtain state platform ctg algo ~digests ~want_decisions:false with
    | Error msg -> Protocol.error_line ?id msg
    | Ok (entry, cached, key) ->
      let discipline =
        if self_timed then Noc_sim.Executor.Self_timed
        else Noc_sim.Executor.Time_triggered
      in
      let outcome =
        Noc_sim.Executor.run ~discipline ~faults platform ctg entry.schedule
      in
      Protocol.ok_line ?id ~op:"simulate"
        (schedule_fields ~cached ~key ~algo entry
        @ [
            ( "sim_misses",
              int_num (List.length outcome.Noc_sim.Executor.deadline_misses) );
            ("lost_tasks", int_num (List.length outcome.Noc_sim.Executor.lost_tasks));
            ("waiting_time", num outcome.Noc_sim.Executor.waiting_time);
            ( "realised_makespan",
              num (Schedule.makespan outcome.Noc_sim.Executor.realised) );
          ]))

let resched_fields = function
  | None -> []
  | Some (migrated, rerouted, full_rerun) ->
    [
      ("migrated", int_num migrated);
      ("rerouted", int_num rerouted);
      ("full_rerun", Json.Bool full_rerun);
    ]

let handle_reschedule state ?id ~ctg_text ~mesh ~algo ~faults () =
  match Fault_set.of_strings faults with
  | Error msg -> Protocol.error_line ?id ("faults: " ^ msg)
  | Ok faults -> (
    with_graph state ?id ~ctg_text ~mesh @@ fun platform ctg ~digests ->
    let ctg_digest, platform_digest = digests in
    let full_key =
      Digest.make ~algo ~ctg_digest ~platform_digest
        ~fault_digest:(Digest.fault_set faults) ()
    in
    let fresh () =
      match obtain state platform ctg algo ~digests ~want_decisions:false with
      | Error msg -> Protocol.error_line ?id ("base schedule: " ^ msg)
      | Ok (base, base_cached, _) -> (
        match Noc_eas.Fault_resched.run platform ctg ~faults base.schedule with
        | exception Invalid_argument msg ->
          Protocol.error_line ?id ("reschedule: " ^ msg)
        | outcome ->
          let schedule = outcome.Noc_eas.Fault_resched.schedule in
          (* Detour routes legitimately diverge from the deterministic-route
             energy of Metrics, so the reply carries the certifier's own
             Eq. 3 total and no claimed energy is cross-checked. *)
          let diags = Certify.check platform ctg schedule in
          (match certification_error diags with
          | Some msg -> Protocol.error_line ?id msg
          | None ->
            let stats = outcome.Noc_eas.Fault_resched.stats in
            let entry =
              {
                ctg;
                schedule;
                text = Schedule_io.to_string schedule;
                energy = Certify.energy platform ctg schedule;
                makespan = Schedule.makespan schedule;
                misses = stats.Noc_eas.Fault_resched.misses;
                decisions = None;
                dvfs = None;
                resched =
                  Some
                    ( stats.Noc_eas.Fault_resched.migrated_tasks,
                      stats.Noc_eas.Fault_resched.rerouted_transactions,
                      stats.Noc_eas.Fault_resched.used_full_rerun );
              }
            in
            Cache.add state.schedules full_key entry;
            Protocol.ok_line ?id ~op:"reschedule"
              (schedule_fields ~cached:false ~key:full_key ~algo entry
              @ resched_fields entry.resched
              @ [ ("base_cached", Json.Bool base_cached) ])))
    in
    match Cache.find state.schedules full_key with
    | None -> fresh ()
    | Some entry -> (
      match relabel entry ctg with
      | None -> fresh ()
      | Some (schedule, text, _) ->
        let entry = { entry with ctg; schedule; text } in
        Protocol.ok_line ?id ~op:"reschedule"
          (schedule_fields ~cached:true ~key:full_key ~algo entry
          @ resched_fields entry.resched)))

let cache_json c =
  Json.Obj
    [
      ("capacity", int_num (Cache.capacity c));
      ("entries", int_num (Cache.length c));
      ("hits", int_num (Cache.hits c));
      ("misses", int_num (Cache.misses c));
      ("evictions", int_num (Cache.evictions c));
    ]

let handle_stats state ?id () =
  let latency =
    Counters.summaries ()
    |> List.filter (fun (name, _) -> String.starts_with ~prefix:"serve/" name)
    |> List.map (fun (name, s) ->
           ( name,
             Json.Obj
               [
                 ("count", int_num s.Counters.count);
                 ("p50_ms", num s.Counters.p50);
                 ("p99_ms", num s.Counters.p99);
               ] ))
  in
  Protocol.ok_line ?id ~op:"stats"
    [
      ("requests", int_num (Atomic.get state.requests));
      ("errors", int_num (Atomic.get state.errors));
      ("cache", cache_json state.schedules);
      ("kernel_cache", cache_json state.kernels);
      ("parse_cache", cache_json state.parses);
      ("latency", Json.Obj latency);
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let latency_hist op = Counters.histogram ("serve/" ^ op)

let dispatch state ?id = function
  | Protocol.Schedule { ctg_text; mesh; algo; decisions; dvfs } ->
    (handle_schedule state ?id ~ctg_text ~mesh ~algo ~decisions ~dvfs (), false)
  | Protocol.Simulate { ctg_text; mesh; algo; faults; self_timed } ->
    (handle_simulate state ?id ~ctg_text ~mesh ~algo ~faults ~self_timed (), false)
  | Protocol.Reschedule { ctg_text; mesh; algo; faults } ->
    (handle_reschedule state ?id ~ctg_text ~mesh ~algo ~faults (), false)
  | Protocol.Stats -> (handle_stats state ?id (), false)
  | Protocol.Shutdown -> (Protocol.ok_line ?id ~op:"shutdown" [], true)

let handle_line state line =
  Atomic.incr state.requests;
  match Protocol.parse_request line with
  | Error msg ->
    Atomic.incr state.errors;
    (Protocol.error_line msg, false)
  | Ok (request, id) ->
    let op = Protocol.op_name request in
    let t0 = Unix.gettimeofday () in
    let reply, stop =
      try dispatch state ?id request with
      | Failure msg -> (Protocol.error_line ?id msg, false)
      | Invalid_argument msg -> (Protocol.error_line ?id ("invalid argument: " ^ msg), false)
      | exn -> (Protocol.error_line ?id ("internal error: " ^ Printexc.to_string exn), false)
    in
    Counters.observe (latency_hist op) ((Unix.gettimeofday () -. t0) *. 1000.);
    if String.length reply >= String.length {|{"error"|}
       && String.sub reply 0 8 = {|{"error"|}
    then Atomic.incr state.errors;
    (reply, stop)

(* Requests safe to fan over the domain pool: pure schedule lookups.
   Decision capture mutates the global decision log, and fault-carrying
   requests walk lazily-filled degraded route tables — both stay serial. *)
let parallel_ok line =
  match Protocol.parse_request line with
  | Ok (Protocol.Schedule { decisions = false; _ }, _) -> true
  | Ok ((Protocol.Schedule _ | Protocol.Simulate _ | Protocol.Reschedule _
        | Protocol.Stats | Protocol.Shutdown), _)
  | Error _ -> false

let handle_batch state lines =
  match state.config.jobs with
  | Some jobs when jobs > 1 && List.length lines > 1 && List.for_all parallel_ok lines
    -> Noc_util.Pool.map_list ~jobs (handle_line state) lines
  | Some _ | None -> List.map (handle_line state) lines

(* ------------------------------------------------------------------ *)
(* Socket loop.                                                        *)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

(* Complete lines accumulated so far; the unterminated tail stays in the
   buffer for the next read. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
      Buffer.clear buf;
      Buffer.add_substring buf s start (String.length s - start);
      List.rev acc
  in
  go 0 []

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let run ?on_ready config =
  let state = make_state config in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let close_conn fd =
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
    Hashtbl.reset conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink config.socket_path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  Option.iter (fun f -> f ()) on_ready;
  Noc_obs.Log.infof "serve: listening on %s" config.socket_path;
  let chunk = Bytes.create 65536 in
  let stop = ref false in
  while not !stop do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    let readable, _, _ =
      try Unix.select fds [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* Collect every complete request line that arrived this round,
       keeping (connection, line) pairs aligned so each reply goes back
       to the connection that asked, in request order. *)
    let batch = ref [] in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          match Unix.accept listen_fd with
          | client, _ ->
            Hashtbl.replace conns client { fd = client; buf = Buffer.create 4096 }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some conn -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> close_conn fd
            | n ->
              Buffer.add_subbytes conn.buf chunk 0 n;
              List.iter (fun line -> batch := (conn, line) :: !batch) (drain_lines conn.buf)
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error _ -> close_conn fd))
      readable;
    let batch = List.rev !batch in
    (match batch with
    | [] -> ()
    | _ :: _ ->
      let replies = handle_batch state (List.map snd batch) in
      List.iter2
        (fun (conn, _) (reply, is_shutdown) ->
          if is_shutdown then stop := true;
          if Hashtbl.mem conns conn.fd then
            try write_all conn.fd (reply ^ "\n")
            with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              close_conn conn.fd)
        batch replies)
  done
