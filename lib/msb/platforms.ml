let of_kinds ~cols ~rows kinds =
  let topology = Noc_noc.Topology.mesh ~cols ~rows in
  let pes = Array.mapi (fun index kind -> Noc_noc.Pe.of_kind ~index kind) kinds in
  Noc_noc.Platform.make ~topology ~pes ()

let av_2x2 =
  of_kinds ~cols:2 ~rows:2
    [| Noc_noc.Pe.Risc_fast; Noc_noc.Pe.Dsp; Noc_noc.Pe.Risc_lowpower; Noc_noc.Pe.Accel |]

let av_3x3 =
  of_kinds ~cols:3 ~rows:3
    [|
      Noc_noc.Pe.Risc_fast;
      Noc_noc.Pe.Dsp;
      Noc_noc.Pe.Risc_lowpower;
      Noc_noc.Pe.Dsp;
      Noc_noc.Pe.Accel;
      Noc_noc.Pe.Risc_fast;
      Noc_noc.Pe.Risc_lowpower;
      Noc_noc.Pe.Accel;
      Noc_noc.Pe.Dsp;
    |]
