(** The three Multimedia System Benchmarks of the paper's Sec. 6.2.

    - {!encoder}: an MP3/H.263 audio/video encoder pair, partitioned into
      24 tasks, targeting a heterogeneous 2x2 NoC ({!Platforms.av_2x2});
    - {!decoder}: the matching A/V decoder, 16 tasks, 2x2 NoC;
    - {!integrated}: encoder pair + decoder pair in one application,
      40 tasks, heterogeneous 3x3 NoC ({!Platforms.av_3x3}).

    Deadlines derive from the paper's baseline rates — 40 encoded
    frames/s and 67 decoded frames/s — divided by the {e unified
    performance ratio} of Fig. 7: at [ratio = 1.4] the encoder must
    sustain 56 frames/s and the decoder 93.8 frames/s. Nominal stage
    times and volumes are synthetic profiles (see DESIGN.md) with the
    structure of the respective codecs. *)

val encoder_period : float
(** Baseline encoder deadline, microseconds (1 / 40 f/s). *)

val decoder_period : float
(** Baseline decoder deadline, microseconds (1 / 67 f/s). *)

val encoder :
  ?ratio:float -> platform:Noc_noc.Platform.t -> clip:Profile.clip -> unit -> Noc_ctg.Ctg.t
(** 24-task A/V encoder CTG for the given platform and clip. [ratio]
    (default 1.0) tightens all deadlines by that factor. *)

val decoder :
  ?ratio:float -> platform:Noc_noc.Platform.t -> clip:Profile.clip -> unit -> Noc_ctg.Ctg.t
(** 16-task A/V decoder CTG. *)

val integrated :
  ?ratio:float -> platform:Noc_noc.Platform.t -> clip:Profile.clip -> unit -> Noc_ctg.Ctg.t
(** 40-task integrated encoder + decoder CTG. *)
