(** The heterogeneous platforms of the multimedia experiments.

    The paper schedules the A/V encoder and decoder on heterogeneous 2x2
    NoCs and the integrated system on a heterogeneous 3x3 NoC. The exact
    PE mix is not published; we use a representative mix of a fast RISC,
    a low-power core, DSPs and an accelerator, with canonical (unjittered)
    factors so the benchmarks are stable across runs. *)

val av_2x2 : Noc_noc.Platform.t
(** [risc-fast, dsp; risc-lowpower, accel]. *)

val av_3x3 : Noc_noc.Platform.t
(** A 3x3 mix with three DSPs, two fast RISCs, two low-power cores and
    two accelerators' worth of capability (9 tiles). *)
