type clip = Akiyo | Foreman | Toybox

let all_clips = [ Akiyo; Foreman; Toybox ]

let clip_name = function
  | Akiyo -> "akiyo"
  | Foreman -> "foreman"
  | Toybox -> "toybox"

type t = { time_scale : float; volume_scale : float }

let scales = function
  | Akiyo -> { time_scale = 0.85; volume_scale = 0.75 }
  | Foreman -> { time_scale = 1.0; volume_scale = 1.0 }
  | Toybox -> { time_scale = 1.25; volume_scale = 1.35 }
