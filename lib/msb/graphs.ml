let encoder_period = 1.0e6 /. 40.
let decoder_period = 1.0e6 /. 67.

(* Nominal stage times are microseconds of Signal code on the reference
   DSP; the audio frame is ~18 kbits of PCM, the CIF video frame ~1.2
   Mbits. Times are sized so that at ratio 1.0 an energy-minimal
   placement fits the period loosely and tightening the ratio forces
   migration to fast, energy-hungry PEs (the Fig. 7 trade-off). *)

let add_mp3_encoder b ~deadline =
  let open Codec in
  let capture = stage b ~name:"audio_capture" ~base_time:720. ~affinity:Control () in
  let framer = stage b ~name:"audio_framer" ~base_time:480. ~affinity:Control () in
  let psycho = stage b ~name:"psycho_model" ~base_time:2520. ~affinity:Signal () in
  let subband = stage b ~name:"subband_filter" ~base_time:2280. ~affinity:Signal () in
  let mdct = stage b ~name:"mdct" ~base_time:1800. ~affinity:Signal () in
  let bit_alloc = stage b ~name:"bit_alloc" ~base_time:840. ~affinity:Control () in
  let quantize = stage b ~name:"quantize_audio" ~base_time:1560. ~affinity:Signal () in
  let huffman = stage b ~name:"huffman_audio" ~base_time:1320. ~affinity:Control () in
  let pack = stage b ~name:"mp3_pack" ~base_time:540. ~affinity:Control ~deadline () in
  flow b ~src:capture ~dst:framer ~kbits:72.4;
  flow b ~src:framer ~dst:psycho ~kbits:72.4;
  flow b ~src:framer ~dst:subband ~kbits:72.4;
  flow b ~src:subband ~dst:mdct ~kbits:72.4;
  flow b ~src:psycho ~dst:bit_alloc ~kbits:16.;
  flow b ~src:mdct ~dst:quantize ~kbits:72.4;
  flow b ~src:bit_alloc ~dst:quantize ~kbits:8.;
  flow b ~src:quantize ~dst:huffman ~kbits:24.;
  flow b ~src:huffman ~dst:pack ~kbits:16.;
  pack

let add_h263_encoder b ~deadline =
  let open Codec in
  let capture = stage b ~name:"video_capture" ~base_time:900. ~affinity:Control () in
  let preprocess = stage b ~name:"preprocess" ~base_time:2100. ~affinity:Media () in
  let motion_est = stage b ~name:"motion_est" ~base_time:8400. ~affinity:Media () in
  let motion_comp = stage b ~name:"motion_comp" ~base_time:3000. ~affinity:Media () in
  let dct = stage b ~name:"dct" ~base_time:3600. ~affinity:Signal () in
  let quantize = stage b ~name:"quantize_video" ~base_time:1920. ~affinity:Signal () in
  let zigzag = stage b ~name:"zigzag_rle" ~base_time:1080. ~affinity:Control () in
  let vlc = stage b ~name:"vlc_encode" ~base_time:2520. ~affinity:Control () in
  let dequant = stage b ~name:"dequant_recon" ~base_time:1680. ~affinity:Signal () in
  let idct = stage b ~name:"idct_recon" ~base_time:3300. ~affinity:Signal () in
  let store = stage b ~name:"frame_store" ~base_time:960. ~affinity:Control () in
  let rate_ctl = stage b ~name:"rate_control" ~base_time:780. ~affinity:Control () in
  let pack = stage b ~name:"h263_pack" ~base_time:660. ~affinity:Control ~deadline () in
  flow b ~src:capture ~dst:preprocess ~kbits:1216.;
  flow b ~src:preprocess ~dst:motion_est ~kbits:1216.;
  flow b ~src:preprocess ~dst:motion_comp ~kbits:1216.;
  flow b ~src:motion_est ~dst:motion_comp ~kbits:40.;
  flow b ~src:motion_comp ~dst:dct ~kbits:1216.;
  flow b ~src:dct ~dst:quantize ~kbits:1216.;
  flow b ~src:quantize ~dst:zigzag ~kbits:1216.;
  flow b ~src:zigzag ~dst:vlc ~kbits:600.;
  flow b ~src:quantize ~dst:dequant ~kbits:1216.;
  flow b ~src:dequant ~dst:idct ~kbits:1216.;
  flow b ~src:idct ~dst:store ~kbits:1216.;
  flow b ~src:vlc ~dst:rate_ctl ~kbits:4.;
  flow b ~src:vlc ~dst:pack ~kbits:240.;
  control b ~src:rate_ctl ~dst:pack;
  pack

let add_encoder b ~deadline =
  let open Codec in
  let mp3 = add_mp3_encoder b ~deadline in
  let h263 = add_h263_encoder b ~deadline in
  let mux = stage b ~name:"av_mux" ~base_time:600. ~affinity:Control () in
  let sync = stage b ~name:"sync_ctrl" ~base_time:360. ~affinity:Control ~deadline () in
  flow b ~src:mp3 ~dst:mux ~kbits:240.;
  flow b ~src:h263 ~dst:mux ~kbits:320.;
  flow b ~src:mux ~dst:sync ~kbits:8.;
  sync

let add_decoder b ~deadline =
  let open Codec in
  let demux = stage b ~name:"av_demux" ~base_time:540. ~affinity:Control () in
  (* MP3 decoder chain. *)
  let mp3_parse = stage b ~name:"mp3_parse" ~base_time:600. ~affinity:Control () in
  let huffman_dec = stage b ~name:"huffman_dec" ~base_time:1440. ~affinity:Control () in
  let dequant_audio = stage b ~name:"dequant_audio" ~base_time:1200. ~affinity:Signal () in
  let imdct = stage b ~name:"imdct" ~base_time:1800. ~affinity:Signal () in
  let synth = stage b ~name:"synth_filter" ~base_time:2280. ~affinity:Signal () in
  let pcm_out = stage b ~name:"pcm_out" ~base_time:540. ~affinity:Control ~deadline () in
  (* H.263 decoder chain. *)
  let h263_parse = stage b ~name:"h263_parse" ~base_time:780. ~affinity:Control () in
  let vlc_dec = stage b ~name:"vlc_decode" ~base_time:2280. ~affinity:Control () in
  let dequant_video = stage b ~name:"dequant_video" ~base_time:1560. ~affinity:Signal () in
  let izigzag = stage b ~name:"izigzag" ~base_time:840. ~affinity:Control () in
  let idct = stage b ~name:"idct_dec" ~base_time:3600. ~affinity:Signal () in
  let motion_comp = stage b ~name:"motion_comp_dec" ~base_time:2880. ~affinity:Media () in
  let display = stage b ~name:"display_prep" ~base_time:1320. ~affinity:Media () in
  let sync = stage b ~name:"av_sync" ~base_time:420. ~affinity:Control () in
  let out = stage b ~name:"frame_out" ~base_time:600. ~affinity:Control ~deadline () in
  flow b ~src:demux ~dst:mp3_parse ~kbits:240.;
  flow b ~src:mp3_parse ~dst:huffman_dec ~kbits:240.;
  flow b ~src:huffman_dec ~dst:dequant_audio ~kbits:240.;
  flow b ~src:dequant_audio ~dst:imdct ~kbits:72.4;
  flow b ~src:imdct ~dst:synth ~kbits:72.4;
  flow b ~src:synth ~dst:pcm_out ~kbits:72.4;
  flow b ~src:demux ~dst:h263_parse ~kbits:320.;
  flow b ~src:h263_parse ~dst:vlc_dec ~kbits:320.;
  flow b ~src:vlc_dec ~dst:dequant_video ~kbits:600.;
  flow b ~src:dequant_video ~dst:izigzag ~kbits:1216.;
  flow b ~src:izigzag ~dst:idct ~kbits:1216.;
  flow b ~src:idct ~dst:motion_comp ~kbits:1216.;
  flow b ~src:motion_comp ~dst:display ~kbits:1216.;
  flow b ~src:pcm_out ~dst:sync ~kbits:8.;
  flow b ~src:display ~dst:sync ~kbits:16.;
  flow b ~src:sync ~dst:out ~kbits:1216.;
  out

let check_ratio ratio =
  if not (ratio > 0.) then invalid_arg "Msb: performance ratio must be positive"

let encoder ?(ratio = 1.0) ~platform ~clip () =
  check_ratio ratio;
  let b = Codec.create platform ~profile:(Profile.scales clip) in
  let _sink = add_encoder b ~deadline:(encoder_period /. ratio) in
  Codec.finish b

let decoder ?(ratio = 1.0) ~platform ~clip () =
  check_ratio ratio;
  let b = Codec.create platform ~profile:(Profile.scales clip) in
  let _sink = add_decoder b ~deadline:(decoder_period /. ratio) in
  Codec.finish b

let integrated ?(ratio = 1.0) ~platform ~clip () =
  check_ratio ratio;
  let b = Codec.create platform ~profile:(Profile.scales clip) in
  let _enc = add_encoder b ~deadline:(encoder_period /. ratio) in
  let _dec = add_decoder b ~deadline:(decoder_period /. ratio) in
  Codec.finish b
