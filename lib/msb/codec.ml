type affinity = Control | Signal | Media

let affinity_time_factor affinity (kind : Noc_noc.Pe.kind) =
  match (affinity, kind) with
  | Control, Noc_noc.Pe.Risc_fast -> 0.6
  | Control, Noc_noc.Pe.Risc_lowpower -> 1.1
  | Control, Noc_noc.Pe.Dsp -> 1.4
  | Control, Noc_noc.Pe.Accel -> 1.8
  | Signal, Noc_noc.Pe.Risc_fast -> 1.1
  | Signal, Noc_noc.Pe.Risc_lowpower -> 2.0
  | Signal, Noc_noc.Pe.Dsp -> 0.55
  | Signal, Noc_noc.Pe.Accel -> 0.75
  | Media, Noc_noc.Pe.Risc_fast -> 1.2
  | Media, Noc_noc.Pe.Risc_lowpower -> 2.4
  | Media, Noc_noc.Pe.Dsp -> 0.8
  | Media, Noc_noc.Pe.Accel -> 0.45

let stage_costs platform ~(profile : Profile.t) ~base_time ~power ~affinity =
  let n = Noc_noc.Platform.n_pes platform in
  let exec_times =
    Array.init n (fun p ->
        let pe = Noc_noc.Platform.pe platform p in
        base_time *. profile.time_scale
        *. affinity_time_factor affinity pe.Noc_noc.Pe.kind
        *. pe.Noc_noc.Pe.time_factor)
  in
  let energies =
    Array.init n (fun p ->
        let pe = Noc_noc.Platform.pe platform p in
        exec_times.(p) *. power *. pe.Noc_noc.Pe.power_factor)
  in
  (exec_times, energies)

type builder = {
  platform : Noc_noc.Platform.t;
  profile : Profile.t;
  graph : Noc_ctg.Builder.t;
}

let create platform ~profile =
  {
    platform;
    profile;
    graph = Noc_ctg.Builder.create ~n_pes:(Noc_noc.Platform.n_pes platform);
  }

let stage b ~name ~base_time ?(power = 12.) ~affinity ?deadline () =
  let exec_times, energies =
    stage_costs b.platform ~profile:b.profile ~base_time ~power ~affinity
  in
  Noc_ctg.Builder.add_task b.graph ~name ~exec_times ~energies ?deadline ()

let flow b ~src ~dst ~kbits =
  Noc_ctg.Builder.connect b.graph ~src ~dst
    ~volume:(kbits *. 1000. *. b.profile.volume_scale)

let control b ~src ~dst = Noc_ctg.Builder.connect b.graph ~src ~dst ~volume:0.

let finish b = Noc_ctg.Builder.build_exn b.graph
