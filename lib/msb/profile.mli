(** Clip profiles for the Multimedia System Benchmarks (paper Sec. 6.2).

    The paper profiles an MP3/H.263 A/V encoder and decoder on three real
    clips — {e akiyo} (talking head, low motion), {e foreman} (medium
    motion) and {e toybox} (high motion) — by instrumenting the C++
    codecs. Those traces are not public; we substitute per-clip scale
    factors applied to nominal per-task execution times and inter-task
    volumes, reflecting how motion complexity drives both computation
    (motion estimation, entropy coding) and communication (residual and
    bitstream sizes). *)

type clip = Akiyo | Foreman | Toybox

val all_clips : clip list
val clip_name : clip -> string

type t = {
  time_scale : float;  (** Multiplies nominal execution times. *)
  volume_scale : float;  (** Multiplies nominal communication volumes. *)
}

val scales : clip -> t
(** Akiyo (0.85, 0.75), Foreman (1.0, 1.0), Toybox (1.25, 1.35). *)
