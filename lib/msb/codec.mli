(** Shared machinery for building codec task graphs.

    Each codec stage has a nominal execution time (microseconds on a
    reference DSP), a nominal power (nJ per microsecond on the reference)
    and an affinity class describing which PE kinds execute it
    efficiently. The per-PE cost tables of a task are derived from these
    plus the platform's PE descriptors and the clip profile. *)

type affinity =
  | Control  (** Parsing, multiplexing, rate control: best on RISCs. *)
  | Signal  (** Filter banks, transforms: best on DSPs. *)
  | Media  (** Pixel kernels (motion estimation, IDCT): best on
               accelerators, good on DSPs. *)

val affinity_time_factor : affinity -> Noc_noc.Pe.kind -> float
(** Relative execution-time multiplier of running a stage class on a PE
    kind (1.0 = reference DSP running Signal code). *)

val stage_costs :
  Noc_noc.Platform.t ->
  profile:Profile.t ->
  base_time:float ->
  power:float ->
  affinity:affinity ->
  float array * float array
(** [(exec_times, energies)] per PE: time = base * clip scale * affinity
    factor * PE time factor; energy = time * power * PE power factor. *)

type builder

val create : Noc_noc.Platform.t -> profile:Profile.t -> builder

val stage :
  builder ->
  name:string ->
  base_time:float ->
  ?power:float ->
  affinity:affinity ->
  ?deadline:float ->
  unit ->
  int
(** Adds a stage task ([power] defaults to [12.] nJ/us) and returns its
    id. *)

val flow : builder -> src:int -> dst:int -> kbits:float -> unit
(** Adds a data dependence carrying [kbits * 1000 * volume_scale]
    bits. *)

val control : builder -> src:int -> dst:int -> unit
(** Adds a zero-volume control dependence. *)

val finish : builder -> Noc_ctg.Ctg.t
