module Routing = Noc_noc.Routing

type t = {
  faults : Fault.t list; (* sorted by Fault.compare, deduplicated *)
  mutable degraded_cache : (Noc_noc.Platform.t * Noc_noc.Degraded.t) list;
      (* keyed by physical platform identity; one view per platform *)
}

let of_list faults =
  { faults = List.sort_uniq Fault.compare faults; degraded_cache = [] }

let empty = of_list []
let is_empty t = t.faults = []
let add t fault = of_list (fault :: t.faults)
let to_list t = t.faults
let cardinal t = List.length t.faults

let of_strings specs =
  let rec go acc = function
    | [] -> Ok (of_list acc)
    | spec :: rest -> (
      match Fault.of_string spec with
      | Ok f -> go (f :: acc) rest
      | Error msg -> Error (Printf.sprintf "fault %S: %s" spec msg))
  in
  go [] specs

let key t = String.concat "," (List.map Fault.to_string t.faults)

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "no faults"
  else Format.pp_print_string ppf (key t)

(* ------------------------------------------------------------------ *)
(* Queries. Fault sets are tiny (a handful of entries), so linear scans
   are cheaper than any index. *)

let pe_failed_at t ~pe ~time =
  List.exists
    (fun (f : Fault.t) ->
      match f.element with Fault.Pe i -> i = pe && Fault.active_at f ~time | Fault.Link _ -> false)
    t.faults

let link_failed_at t ~(link : Routing.link) ~time =
  List.exists
    (fun (f : Fault.t) ->
      match f.element with
      | Fault.Link l -> Routing.link_equal l link && Fault.active_at f ~time
      | Fault.Pe _ -> false)
    t.faults

let route_failed_at t ~links ~time =
  List.exists (fun link -> link_failed_at t ~link ~time) links

let failed_pes t =
  List.filter_map
    (fun (f : Fault.t) -> match f.element with Fault.Pe i -> Some i | Fault.Link _ -> None)
    t.faults
  |> List.sort_uniq compare

let failed_links t =
  List.filter_map
    (fun (f : Fault.t) ->
      match f.element with Fault.Link l -> Some l | Fault.Pe _ -> None)
    t.faults
  |> List.sort_uniq compare

let boundaries t =
  List.concat_map
    (fun (f : Fault.t) ->
      (if f.from_time > 0. then [ f.from_time ] else [])
      @ if Float.is_finite f.until_time then [ f.until_time ] else [])
    t.faults
  |> List.sort_uniq Float.compare

(* ------------------------------------------------------------------ *)
(* Degraded view, memoised per (fault set, platform). The reschedulers
   are conservative: an element that fails at any point is treated as
   dead for the whole horizon, so one static view covers transient
   faults too. *)

let degraded t platform =
  match List.assq_opt platform t.degraded_cache with
  | Some view -> view
  | None ->
    let view =
      Noc_noc.Degraded.make platform ~failed_pes:(failed_pes t)
        ~failed_links:(failed_links t)
    in
    t.degraded_cache <- (platform, view) :: t.degraded_cache;
    view

(* ------------------------------------------------------------------ *)
(* Seeded random fault campaigns. *)

let sample ~seed ~platform ?(n_link_faults = 1) ?(n_pe_faults = 1)
    ?(horizon = 1_000.) ?(transient_fraction = 0.5) () =
  if n_link_faults < 0 || n_pe_faults < 0 then
    invalid_arg "Fault_set.sample: negative fault count";
  if not (horizon > 0.) then invalid_arg "Fault_set.sample: horizon must be positive";
  if not (transient_fraction >= 0. && transient_fraction <= 1.) then
    invalid_arg "Fault_set.sample: transient fraction must be in [0, 1]";
  let rng = Noc_util.Prng.create ~seed:(seed lxor 0x66617573) in
  let n_pes = Noc_noc.Platform.n_pes platform in
  if n_pe_faults >= n_pes then
    invalid_arg "Fault_set.sample: at least one PE must survive";
  let window () =
    if Noc_util.Prng.float rng ~bound:1. < transient_fraction then begin
      let from_time = Noc_util.Prng.float rng ~bound:(horizon *. 0.5) in
      let length =
        Noc_util.Prng.float_in rng ~min:(horizon *. 0.05) ~max:(horizon *. 0.4)
      in
      (from_time, from_time +. length)
    end
    else (Noc_util.Prng.float rng ~bound:(horizon *. 0.3), infinity)
  in
  let pes =
    Noc_util.Prng.sample_without_replacement rng ~k:n_pe_faults ~n:n_pes
    |> List.map (fun index ->
           let from_time, until_time = window () in
           Fault.pe ~from_time ~until_time index ())
  in
  let all_links = Array.of_list (Noc_noc.Platform.all_links platform) in
  if n_link_faults > Array.length all_links then
    invalid_arg "Fault_set.sample: more link faults than links";
  let links =
    Noc_util.Prng.sample_without_replacement rng ~k:n_link_faults
      ~n:(Array.length all_links)
    |> List.map (fun index ->
           let l = all_links.(index) in
           let from_time, until_time = window () in
           Fault.link ~from_time ~until_time ~from_node:l.Routing.from_node
             ~to_node:l.Routing.to_node ())
  in
  of_list (pes @ links)
