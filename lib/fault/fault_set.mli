(** Sets of platform faults: the unit the simulator, the degraded
    rescheduler and the Monte-Carlo campaigns operate on.

    A set is canonical (sorted, deduplicated), so equal fault sets have
    equal {!key}s; the key doubles as the memoisation key for degraded
    platform views. *)

type t

val empty : t
val is_empty : t -> bool
val of_list : Fault.t list -> t
val add : t -> Fault.t -> t
val to_list : t -> Fault.t list
val cardinal : t -> int

val of_strings : string list -> (t, string) result
(** Parses a list of CLI fault specs (see {!Fault.of_string}). *)

val key : t -> string
(** Canonical text form: the faults' {!Fault.to_string}s joined by
    commas. Equal sets have equal keys. *)

val pp : Format.formatter -> t -> unit

(** {1 Point-in-time queries} *)

val pe_failed_at : t -> pe:int -> time:float -> bool
val link_failed_at : t -> link:Noc_noc.Routing.link -> time:float -> bool
val route_failed_at : t -> links:Noc_noc.Routing.link list -> time:float -> bool

(** {1 Whole-horizon queries (conservative rescheduling view)} *)

val failed_pes : t -> int list
(** PEs failed at {e any} time, sorted. *)

val failed_links : t -> Noc_noc.Routing.link list

val boundaries : t -> float list
(** The finite window edges (fault onsets and recoveries), sorted and
    deduplicated — the instants at which a simulator must re-examine
    stalled work. *)

val degraded : t -> Noc_noc.Platform.t -> Noc_noc.Degraded.t
(** The degraded view masking every element that ever fails. Memoised
    per (set, platform): repeated calls return the same view, whose own
    route tables are filled on demand. *)

val sample :
  seed:int ->
  platform:Noc_noc.Platform.t ->
  ?n_link_faults:int ->
  ?n_pe_faults:int ->
  ?horizon:float ->
  ?transient_fraction:float ->
  unit ->
  t
(** Deterministic random fault set for Monte-Carlo campaigns: distinct
    PEs and links drawn uniformly (defaults: one of each), each failing
    either transiently (probability [transient_fraction], window inside
    [horizon]) or permanently from a random onset. Equal arguments give
    equal sets. Raises [Invalid_argument] when asked to fail every PE. *)
