type element = Link of Noc_noc.Routing.link | Pe of int

type t = { element : element; from_time : float; until_time : float }

let check_window ~from_time ~until_time =
  if not (from_time >= 0.) then invalid_arg "Fault: fault cannot start before time 0";
  if not (until_time > from_time) then
    invalid_arg "Fault: fault window must be non-empty"

let link ?(from_time = 0.) ?(until_time = infinity) ~from_node ~to_node () =
  check_window ~from_time ~until_time;
  if from_node < 0 || to_node < 0 || from_node = to_node then
    invalid_arg "Fault.link: bad endpoints";
  { element = Link { from_node; to_node }; from_time; until_time }

let pe ?(from_time = 0.) ?(until_time = infinity) index () =
  check_window ~from_time ~until_time;
  if index < 0 then invalid_arg "Fault.pe: negative PE index";
  { element = Pe index; from_time; until_time }

let is_permanent t = t.until_time = infinity
let active_at t ~time = t.from_time <= time && time < t.until_time

(* Element ordering groups PEs before links; the total order makes fault
   sets canonical. *)
let compare_element a b =
  match (a, b) with
  | Pe i, Pe j -> compare i j
  | Pe _, Link _ -> -1
  | Link _, Pe _ -> 1
  | Link x, Link y ->
    compare (x.Noc_noc.Routing.from_node, x.to_node) (y.Noc_noc.Routing.from_node, y.to_node)

let compare a b =
  let c = compare_element a.element b.element in
  if c <> 0 then c else Stdlib.compare (a.from_time, a.until_time) (b.from_time, b.until_time)

(* ------------------------------------------------------------------ *)
(* Text syntax: "pe:2", "link:3-7", optionally "@FROM:UNTIL" with either
   bound omitted — "pe:2@100:" fails PE 2 from t=100 on, "link:3-7@10:20"
   takes the link down during [10, 20). *)

let float_to_string v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let window_to_string t =
  if t.from_time = 0. && t.until_time = infinity then ""
  else
    Printf.sprintf "@%s:%s"
      (if t.from_time = 0. then "" else float_to_string t.from_time)
      (if t.until_time = infinity then "" else float_to_string t.until_time)

let to_string t =
  (match t.element with
  | Pe i -> Printf.sprintf "pe:%d" i
  | Link l -> Printf.sprintf "link:%d-%d" l.Noc_noc.Routing.from_node l.to_node)
  ^ window_to_string t

(* Position-tracked parsing: every failure names the offending token and
   the 0-based character position where it starts in the original input,
   so a typo deep inside "link:12-1x@100:200" is pinpointed rather than
   reported as a generic bad spec. *)
let of_string spec0 =
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' in
  let leading =
    let n = String.length spec0 in
    let rec skip i = if i < n && is_space spec0.[i] then skip (i + 1) else i in
    skip 0
  in
  let spec = String.trim spec0 in
  (* [at] is an offset into the trimmed spec; report it in the input's
     own coordinates. *)
  let fail ~at ~token what =
    Error (Printf.sprintf "%s %S at character %d" what token (leading + at))
  in
  let parse_window () =
    match String.index_opt spec '@' with
    | None -> Ok (spec, 0., infinity)
    | Some at_sign -> (
      let body = String.sub spec 0 at_sign in
      let window = String.sub spec (at_sign + 1) (String.length spec - at_sign - 1) in
      match String.split_on_char ':' window with
      | [ from_s; until_s ] -> (
        let bound ~at ~what s default =
          if s = "" then Ok default
          else
            match float_of_string_opt s with
            | Some v -> Ok v
            | None -> fail ~at ~token:s what
        in
        let from_at = at_sign + 1 in
        let until_at = at_sign + 2 + String.length from_s in
        match
          ( bound ~at:from_at ~what:"bad fault onset time" from_s 0.,
            bound ~at:until_at ~what:"bad fault end time" until_s infinity )
        with
        | Ok f, Ok u ->
          if f >= 0. && u > f then Ok (body, f, u)
          else
            fail ~at:from_at ~token:window
              "empty or negative fault window (need 0 <= FROM < UNTIL)"
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | [ _ ] | [] | _ ->
        fail ~at:(at_sign + 1) ~token:window "bad fault window (want @FROM:UNTIL)")
  in
  match parse_window () with
  | Error _ as e -> e
  | Ok (body, from_time, until_time) -> (
    match String.split_on_char ':' body with
    | [ "pe"; index ] -> (
      match int_of_string_opt index with
      | Some i when i >= 0 -> Ok { element = Pe i; from_time; until_time }
      | Some _ | None -> fail ~at:3 ~token:index "bad PE index")
    | [ "link"; ends ] -> (
      let ends_at = 5 in
      match String.split_on_char '-' ends with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | None, _ -> fail ~at:ends_at ~token:a "bad link endpoint"
        | _, None -> fail ~at:(ends_at + String.length a + 1) ~token:b "bad link endpoint"
        | Some from_node, Some to_node ->
          if from_node < 0 then fail ~at:ends_at ~token:a "negative link endpoint"
          else if to_node < 0 then
            fail ~at:(ends_at + String.length a + 1) ~token:b "negative link endpoint"
          else if from_node = to_node then
            fail ~at:ends_at ~token:ends "link endpoints must differ"
          else Ok { element = Link { from_node; to_node }; from_time; until_time })
      | _ -> fail ~at:ends_at ~token:ends "bad link endpoints (want A-B)")
    | _ -> fail ~at:0 ~token:body "bad fault element (want pe:N or link:A-B)")

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_element ppf = function
  | Pe i -> Format.fprintf ppf "pe %d" i
  | Link l -> Format.fprintf ppf "link %a" Noc_noc.Routing.pp_link l
