(** A single platform fault: one failed element over one time window.

    Faults are either permanent ([until_time = infinity]) or transient
    (a half-open window [[from_time, until_time)]). A failed PE cannot
    start or finish task executions while the fault is active; a failed
    directed link cannot carry transactions. Routers of failed PEs keep
    routing — only the core is down, not its switch. *)

type element = Link of Noc_noc.Routing.link | Pe of int

type t = { element : element; from_time : float; until_time : float }

val link :
  ?from_time:float -> ?until_time:float -> from_node:int -> to_node:int -> unit -> t
(** Directed-link fault; defaults to permanent from time 0. Failing
    [a -> b] leaves [b -> a] up. Raises [Invalid_argument] on an empty
    window or bad endpoints. *)

val pe : ?from_time:float -> ?until_time:float -> int -> unit -> t
(** PE fault; defaults to permanent from time 0. *)

val is_permanent : t -> bool
val active_at : t -> time:float -> bool

val compare : t -> t -> int
(** Total order (PEs before links, then indices, then windows) used to
    canonicalise fault sets. *)

val compare_element : element -> element -> int

val of_string : string -> (t, string) result
(** Parses the CLI syntax: [pe:N] or [link:A-B], optionally followed by
    [@FROM:UNTIL] with either bound omitted. ["pe:2@100:"] fails PE 2
    from t = 100 on; ["link:3-7@10:20"] takes the directed link 3->7
    down during [10, 20); bare ["pe:2"] is permanent from time 0.
    Parse errors name the offending token and the character position
    where it starts: parsing ["link:12-1x"] fails with
    [bad link endpoint "1x" at character 8]. *)

val to_string : t -> string
(** Canonical inverse of {!of_string}. *)

val pp : Format.formatter -> t -> unit
val pp_element : Format.formatter -> element -> unit
