let platform_routes platform =
  let n = Noc_noc.Platform.n_pes platform in
  let routes = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        routes := Noc_noc.Platform.route platform ~src ~dst :: !routes
    done
  done;
  !routes

let degraded_routes view =
  let n = Noc_noc.Platform.n_pes (Noc_noc.Degraded.platform view) in
  let routes = ref [] and unreachable = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        match Noc_noc.Degraded.route_opt view ~src ~dst with
        | Some route -> routes := route :: !routes
        | None -> unreachable := (src, dst) :: !unreachable
    done
  done;
  (!routes, !unreachable)

let cdg_of_platform platform = Cdg.of_routes (platform_routes platform)

let cdg_of_degraded view = Cdg.of_routes (fst (degraded_routes view))

let cycle_diagnostic ~what cycle =
  Diagnostic.error ~rule:"deadlock/cyclic-cdg"
    (Diagnostic.Channel_cycle cycle)
    "%s admits deadlock: %d channels form a circular wait" what (List.length cycle)

(* Discovery-path prefix src..v out of a BFS parent array; the concrete
   route witness attached to the routing/* diagnostics. *)
let prefix_to parent src v =
  let rec walk node acc =
    if node = src then src :: acc else walk parent.(node) (node :: acc)
  in
  walk v []

let cdg_of_routing routing platform =
  let topo = Noc_noc.Platform.topology platform in
  Cdg.of_relation
    ~n_nodes:(Noc_noc.Topology.n_nodes topo)
    ~next:(fun ~src ~dst ~node -> Noc_noc.Turn_model.next_hops routing topo ~src ~node ~dst)

(* Certify a routing function as a relation: every admissible hop must
   make progress (strictly decrease the distance to the destination,
   and never leave a non-destination node with no admissible hop at
   all), every turn the relation can compose must be permitted by the
   model's own turn predicate, and the relation's channel-dependency
   graph must be acyclic. The first two checks carry a concrete
   counterexample route; together with the CDG proof they certify every
   route the adaptive router could ever take, not just the canonical
   one per pair. *)
let check_routing ~routing platform =
  let topo = Noc_noc.Platform.topology platform in
  if not (Noc_noc.Turn_model.supports routing topo) then
    [
      Diagnostic.error ~rule:"routing/unsupported-topology" Diagnostic.Nowhere
        "%s routing is not defined on this topology (%s)"
        (Noc_noc.Turn_model.name routing)
        (Format.asprintf "%a" Noc_noc.Topology.pp topo);
    ]
  else begin
    let n = Noc_noc.Topology.n_nodes topo in
    let next ~src ~dst ~node =
      Noc_noc.Turn_model.next_hops routing topo ~src ~node ~dst
    in
    let diags = ref [] in
    (* Dedup witnesses across pairs: the same bad hop or turn shows up
       once per destination (or source) that exposes it. *)
    let seen_hop : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let seen_turn : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let seen_stall : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then begin
          (* Forward closure of the relation from [src], keeping one
             deterministic parent per node so witnesses are concrete
             route prefixes. *)
          let parent = Array.make n (-1) in
          let seen = Array.make n false in
          let preds = Array.make n [] in
          let queue = Queue.create () in
          seen.(src) <- true;
          Queue.add src queue;
          while not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            if v <> dst then begin
              let hops = next ~src ~dst ~node:v in
              if hops = [] && not (Hashtbl.mem seen_stall (v, dst)) then begin
                Hashtbl.add seen_stall (v, dst) ();
                diags :=
                  Diagnostic.error ~rule:"routing/non-minimal"
                    (Diagnostic.Route (prefix_to parent src v))
                    "%s routing stalls at tile %d with no admissible hop towards tile %d"
                    (Noc_noc.Turn_model.name routing)
                    v dst
                  :: !diags
              end;
              List.iter
                (fun a ->
                  if
                    Noc_noc.Topology.distance topo a dst
                    >= Noc_noc.Topology.distance topo v dst
                    && not (Hashtbl.mem seen_hop (v, a, dst))
                  then begin
                    Hashtbl.add seen_hop (v, a, dst) ();
                    diags :=
                      Diagnostic.error ~rule:"routing/non-minimal"
                        (Diagnostic.Route (prefix_to parent src v @ [ a ]))
                        "%s routing admits hop %d->%d, which does not approach tile %d"
                        (Noc_noc.Turn_model.name routing)
                        v a dst
                      :: !diags
                  end;
                  preds.(a) <- v :: preds.(a);
                  if not seen.(a) then begin
                    seen.(a) <- true;
                    parent.(a) <- v;
                    Queue.add a queue
                  end)
                hops
            end
          done;
          (* Every turn the relation composes must be legal: [u -> m]
             and [m -> a] both admissible means a packet can arrive at
             [m] from [u] and leave towards [a]. *)
          for m = 0 to n - 1 do
            if seen.(m) && m <> dst && preds.(m) <> [] then
              List.iter
                (fun a ->
                  List.iter
                    (fun u ->
                      if
                        (not (Noc_noc.Turn_model.turn_legal routing topo ~prev:u ~via:m ~next:a))
                        && not (Hashtbl.mem seen_turn (u, m, a))
                      then begin
                        Hashtbl.add seen_turn (u, m, a) ();
                        diags :=
                          Diagnostic.error ~rule:"routing/illegal-turn"
                            (Diagnostic.Route (prefix_to parent src u @ [ m; a ]))
                            "%s routing composes the prohibited turn %d->%d->%d"
                            (Noc_noc.Turn_model.name routing)
                            u m a
                          :: !diags
                      end)
                    preds.(m))
                (next ~src ~dst ~node:m)
          done
        end
      done
    done;
    let cycle =
      match Cdg.find_cycle (cdg_of_routing routing platform) with
      | None -> []
      | Some cycle ->
        [
          cycle_diagnostic
            ~what:(Noc_noc.Turn_model.name routing ^ " route relation")
            cycle;
        ]
    in
    List.rev !diags @ cycle
  end

let check_platform platform =
  match Noc_noc.Platform.topology platform with
  | Noc_noc.Topology.Honeycomb _ ->
    (* Honeycombs route by BFS — no turn model, so certify the one
       deterministic route per pair as before. *)
    (match Cdg.find_cycle (cdg_of_platform platform) with
    | None -> []
    | Some cycle -> [ cycle_diagnostic ~what:"deterministic route set" cycle ])
  | Noc_noc.Topology.Mesh _ | Noc_noc.Topology.Torus _ ->
    check_routing ~routing:(Noc_noc.Platform.routing platform) platform

let check_degraded platform faults =
  let view = Noc_fault.Fault_set.degraded faults platform in
  let routes, unreachable = degraded_routes view in
  let cycle =
    match Cdg.find_cycle (Cdg.of_routes routes) with
    | None -> []
    | Some cycle -> [ cycle_diagnostic ~what:"degraded detour route set" cycle ]
  in
  let disconnected =
    List.map
      (fun (src, dst) ->
        Diagnostic.error ~rule:"deadlock/unreachable-pair" (Diagnostic.Tile src)
          "fault set leaves no route from tile %d to tile %d" src dst)
      unreachable
  in
  cycle @ disconnected
