let platform_routes platform =
  let n = Noc_noc.Platform.n_pes platform in
  let routes = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        routes := Noc_noc.Platform.route platform ~src ~dst :: !routes
    done
  done;
  !routes

let degraded_routes view =
  let n = Noc_noc.Platform.n_pes (Noc_noc.Degraded.platform view) in
  let routes = ref [] and unreachable = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then
        match Noc_noc.Degraded.route_opt view ~src ~dst with
        | Some route -> routes := route :: !routes
        | None -> unreachable := (src, dst) :: !unreachable
    done
  done;
  (!routes, !unreachable)

let cdg_of_platform platform = Cdg.of_routes (platform_routes platform)

let cdg_of_degraded view = Cdg.of_routes (fst (degraded_routes view))

let cycle_diagnostic ~what cycle =
  Diagnostic.error ~rule:"deadlock/cyclic-cdg"
    (Diagnostic.Channel_cycle cycle)
    "%s admits deadlock: %d channels form a circular wait" what (List.length cycle)

let check_platform platform =
  match Cdg.find_cycle (cdg_of_platform platform) with
  | None -> []
  | Some cycle -> [ cycle_diagnostic ~what:"deterministic route set" cycle ]

let check_degraded platform faults =
  let view = Noc_fault.Fault_set.degraded faults platform in
  let routes, unreachable = degraded_routes view in
  let cycle =
    match Cdg.find_cycle (Cdg.of_routes routes) with
    | None -> []
    | Some cycle -> [ cycle_diagnostic ~what:"degraded detour route set" cycle ]
  in
  let disconnected =
    List.map
      (fun (src, dst) ->
        Diagnostic.error ~rule:"deadlock/unreachable-pair" (Diagnostic.Tile src)
          "fault set leaves no route from tile %d to tile %d" src dst)
      unreachable
  in
  cycle @ disconnected
