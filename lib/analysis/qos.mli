(** Per-link bandwidth-guarantee feasibility checker.

    Models a workload as sustained flows (bit/s between tile pairs,
    after Even & Fais, {e Algorithms for NoC Design with Guaranteed
    QoS}), splits each flow across the admissible route set of the
    platform's routing function by deterministic widest-bottleneck
    water-filling, and reports per-link utilization plus lint-style
    diagnostics. Under XY every flow rides its single route; under the
    adaptive turn models a flow may be spread over all of its minimal
    turn-legal routes, so feasibility grows with the relation. The
    midline {!Platform_lint} bisection-bandwidth lint is the special
    case of this check that aggregates only the midline cut. *)

type flow = { id : int; src : int; dst : int; rate : float }
(** A sustained communication demand of [rate] bits per time unit from
    tile [src] to tile [dst]. [id] anchors diagnostics (the CTG edge id
    when flows come from a schedule). *)

type link_load = { link : Noc_noc.Routing.link; capacity : float; allocated : float }

type report = { loads : link_load list; diagnostics : Diagnostic.t list }
(** [loads] covers every directed link of the platform in
    {!Noc_noc.Platform.all_links} order, including idle ones. *)

val utilization : link_load -> float
(** [allocated / capacity]; above [1.] only when the flow set is
    infeasible. *)

val check : Noc_noc.Platform.t -> flow list -> report
(** Allocates flows in flow-id order, each by widest-residual-bottleneck
    water-filling over its admissible route DAG (smallest-hop ties), and
    reports:
    - [qos/infeasible-flow] (error, at the flow's edge id) when a flow's
      rate does not fit the residual admissible route set; the message
      names the saturated links that block it, and the unallocatable
      remainder is charged to the canonical route so the overload shows
      up as concrete link utilization;
    - [qos/link-overload] (error, at the link) for every link driven
      over capacity that way.
    A clean report is a feasibility witness: the allocation realises
    every flow within every link's capacity. Deterministic. *)

val flows_of_schedule :
  ?horizon:float -> Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> flow list
(** One flow per network transaction with positive volume: rate =
    volume / horizon, where [horizon] defaults to the latest task
    deadline of the CTG (the window the rates must fit into for the
    real-time guarantee) or, when no task carries a deadline, the
    schedule makespan. Raises [Invalid_argument] on a non-positive
    horizon. *)
