(** Platform lint: capacity and connectivity checks on the target
    architecture. Rules (catalogued in DESIGN.md §7):

    - [platform/zero-bandwidth] (error): the link bandwidth is not
      positive — no transaction can ever complete.
    - [platform/unreachable-tile] (error): a tile the topology's links
      never reach (only possible on malformed honeycomb patterns).
    - [platform/unused-link] (info): a physical channel no deterministic
      route ever uses — silicon the routing discipline wastes.
    - [platform/bisection-bandwidth] (warning, needs a CTG): moving the
      graph's whole communication volume across the topology's midline
      bisection would already take longer than the latest deadline. The
      placement decides how much traffic actually crosses, so this is a
      capacity smell rather than an infeasibility proof — hence the
      severity. *)

val check : ?ctg:Noc_ctg.Ctg.t -> Noc_noc.Platform.t -> Diagnostic.t list
