(** Independent schedule certifier.

    Re-verifies a complete schedule from first principles — precedence,
    PE and link mutual exclusion, route-walk validity, release and
    deadline windows, duration and Eq. 3 energy re-derivation — while
    deliberately sharing no code with {!Noc_sched.Validate}. The two
    implementations act as differential oracles: a schedule both accept
    is very unlikely to be infeasible through a bug either checker
    happens to contain. Rules (catalogued in DESIGN.md §7):

    - [sched/task-count], [sched/transaction-count] (error): the
      schedule does not cover the graph exactly.
    - [sched/pe-range] (error): a placement names a PE off the chip.
    - [sched/time-window] (error): a start before 0 or a finish before
      its start.
    - [sched/duration] (error): a task's window disagrees with the cost
      table, or a transaction's with its route length, bandwidth and
      router latency.
    - [sched/endpoint-pe] (error): a transaction departs or arrives on a
      PE its endpoint task does not run on.
    - [sched/route-walk] (error): a recorded route is not a real walk
      (wrong endpoints, non-adjacent step, repeated channel). Same-tile
      transfers may record either the empty route or the single shared
      tile.
    - [sched/pe-overlap], [sched/link-overlap] (error): two executions
      (or two reservations of one channel) overlap in time.
    - [sched/precedence] (error): a transaction departs before its
      sender finishes, or a receiver starts before its data arrives.
    - [sched/release], [sched/deadline] (error): a task runs outside its
      release-to-deadline window.
    - [sched/energy-mismatch] (warning): the claimed total energy
      disagrees with the certifier's own Eq. 3 re-derivation over the
      recorded routes. *)

val energy :
  Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> float
(** The certifier's independent Eq. 3 total: per-variant computation
    energies plus, for every arc, [volume * E_bit(n_hops)] with the hop
    count taken from the {e recorded} route (so detours pay their real
    cost, unlike {!Noc_sched.Metrics} which assumes the deterministic
    route). *)

val check :
  ?eps:float ->
  ?claimed_energy:float ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  Diagnostic.t list
(** Certifies the schedule; empty means certified. [claimed_energy] is
    cross-checked against {!energy} within [eps * max(1, claimed)];
    omitting it skips the energy rule. Pairwise checks only run when the
    per-element structure is sound, mirroring how a proof would not
    reason about overlap of malformed windows. *)

val certifies :
  ?eps:float ->
  ?claimed_energy:float ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  bool
(** No error-severity diagnostic (warnings do not block). *)

val check_scaled :
  ?eps:float ->
  ratios:float array ->
  annotations:Noc_sched.Schedule_io.annotation array ->
  base:Noc_sched.Schedule.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  Diagnostic.t list
(** Re-verifies a DVFS-scaled schedule against its unscaled base and a
    raw frequency ladder [ratios] (descending, level 0 = 1.0).
    Deliberately independent of the [noc_dvfs] reclamation pass, so a
    bug there cannot leak into its own audit. Rules on top of the
    [sched/*] catalogue:

    - [dvfs/vf-table] (error): the ladder is not a strictly descending
      set of ratios in (0, 1] anchored at 1.
    - [dvfs/annotation] (error): the annotations do not cover the tasks
      exactly, in task order.
    - [dvfs/level-range] (error): an annotation names a level off the
      ladder, or a frequency disagreeing with its level.
    - [dvfs/start-shift] (error): a task changed PE or start time.
    - [dvfs/window] (error): a scaled finish precedes its base finish
      (the base window must be contained in the scaled one).
    - [dvfs/duration] (error): a scaled window disagrees with
      slowdown(level) × the base schedule's duration.
    - [dvfs/comm-frozen] (error): a transaction differs from the base
      schedule in any field (window, route, endpoints).
    - [dvfs/energy] (error): an annotated task energy disagrees with
      base × (f/f_max)².
    - [dvfs/energy-monotone] (error): total scaled computation energy
      exceeds the unscaled total.

    The standard pairwise suite (exclusions, precedence, release and
    deadline windows) then re-runs on the scaled timeline, so a
    downclock that overran its slack is caught by the same rules that
    certify unscaled schedules. *)

val certifies_scaled :
  ?eps:float ->
  ratios:float array ->
  annotations:Noc_sched.Schedule_io.annotation array ->
  base:Noc_sched.Schedule.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  bool
