(* Channel-dependency graph of a route set (Dally & Seitz). Vertices are
   the directed channels the routes use; an arc a -> b records that some
   route acquires channel b while holding channel a (consecutive links
   of one route). A cycle in this graph is a potential circular wait —
   the route set admits deadlock; acyclicity proves it cannot. *)

type t = {
  channels : (int * int) array;  (* canonically sorted by endpoint pair *)
  succs : int list array;  (* sorted successor channel indices *)
}

(* Shared builder: channels are interned on first sight, dependency
   arcs deduplicated, and everything renumbered canonically at the end
   so that equal channel/dependency sets yield identical graphs
   regardless of insertion order. *)
type builder = {
  index : (int * int, int) Hashtbl.t;
  mutable rev_channels : (int * int) list;
  mutable count : int;
  deps : (int * int, unit) Hashtbl.t;
}

let builder () =
  { index = Hashtbl.create 64; rev_channels = []; count = 0; deps = Hashtbl.create 64 }

let id_of b pair =
  match Hashtbl.find_opt b.index pair with
  | Some i -> i
  | None ->
    let i = b.count in
    b.count <- i + 1;
    Hashtbl.add b.index pair i;
    b.rev_channels <- pair :: b.rev_channels;
    i

let add_dep b la lb = if not (Hashtbl.mem b.deps (la, lb)) then Hashtbl.add b.deps (la, lb) ()

let finalize b =
  let channels = Array.of_list (List.rev b.rev_channels) in
  let order = Array.init (Array.length channels) Fun.id in
  Array.sort (fun i j -> compare channels.(i) channels.(j)) order;
  let rank = Array.make (Array.length channels) 0 in
  Array.iteri (fun new_id old_id -> rank.(old_id) <- new_id) order;
  let sorted_channels = Array.map (fun old_id -> channels.(old_id)) order in
  let succs = Array.make (Array.length channels) [] in
  Hashtbl.iter
    (fun (a, b) () -> succs.(rank.(a)) <- rank.(b) :: succs.(rank.(a)))
    b.deps;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  { channels = sorted_channels; succs }

let of_routes routes =
  let b = builder () in
  List.iter
    (fun route ->
      let rec walk = function
        | a :: (b' :: c :: _ as rest) ->
          add_dep b (id_of b (a, b')) (id_of b (b', c));
          walk rest
        | [ a; b' ] -> ignore (id_of b (a, b'))
        | [ _ ] | [] -> ()
      in
      walk route)
    routes;
  finalize b

(* CDG of a route *relation*: for every ordered pair, walk the forward
   closure of the admissible next hops from [src] and record a channel
   per admissible hop and a dependency per admissible consecutive hop
   pair. This covers every route the relation admits without ever
   enumerating them (an adaptive model can admit exponentially many
   routes per pair, e.g. C(14,7) minimal routes across an 8x8 mesh),
   because a dependency a->b->c exists iff b is admissible at a and c
   admissible at b — exactly the local facts the closure visits. *)
let of_relation ~n_nodes ~next =
  let b = builder () in
  for src = 0 to n_nodes - 1 do
    for dst = 0 to n_nodes - 1 do
      if src <> dst then begin
        let seen = Array.make n_nodes false in
        let queue = Queue.create () in
        seen.(src) <- true;
        Queue.add src queue;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          if v <> dst then
            List.iter
              (fun a ->
                let la = id_of b (v, a) in
                if a <> dst then
                  List.iter (fun c -> add_dep b la (id_of b (a, c))) (next ~src ~dst ~node:a);
                if not seen.(a) then begin
                  seen.(a) <- true;
                  Queue.add a queue
                end)
              (next ~src ~dst ~node:v)
        done
      end
    done
  done;
  finalize b

let n_channels t = Array.length t.channels

let n_dependencies t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let find_cycle t =
  let n = Array.length t.channels in
  (* 0 = unvisited, 1 = on the current DFS path, 2 = done. *)
  let colour = Array.make n 0 in
  let result = ref None in
  let rec dfs path u =
    colour.(u) <- 1;
    let path = u :: path in
    List.iter
      (fun v ->
        if !result = None then
          if colour.(v) = 1 then begin
            (* Back edge u -> v: the path segment v..u closes a cycle.
               [path] has u at its head, so pushing elements until v is
               reached yields the cycle in dependency order. *)
            let rec collect acc = function
              | [] -> acc
              | x :: rest -> if x = v then x :: acc else collect (x :: acc) rest
            in
            result := Some (collect [] path)
          end
          else if colour.(v) = 0 then dfs path v)
      t.succs.(u);
    colour.(u) <- 2
  in
  let u = ref 0 in
  while !result = None && !u < n do
    if colour.(!u) = 0 then dfs [] !u;
    incr u
  done;
  Option.map
    (List.map (fun i ->
         let from_node, to_node = t.channels.(i) in
         { Noc_noc.Routing.from_node; to_node }))
    !result

let is_acyclic t = find_cycle t = None
