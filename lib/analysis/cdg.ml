(* Channel-dependency graph of a route set (Dally & Seitz). Vertices are
   the directed channels the routes use; an arc a -> b records that some
   route acquires channel b while holding channel a (consecutive links
   of one route). A cycle in this graph is a potential circular wait —
   the route set admits deadlock; acyclicity proves it cannot. *)

type t = {
  channels : (int * int) array;  (* canonically sorted by endpoint pair *)
  succs : int list array;  (* sorted successor channel indices *)
}

let of_routes routes =
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_channels = ref [] in
  let n = ref 0 in
  let id_of pair =
    match Hashtbl.find_opt index pair with
    | Some i -> i
    | None ->
      let i = !n in
      incr n;
      Hashtbl.add index pair i;
      rev_channels := pair :: !rev_channels;
      i
  in
  let deps : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun route ->
      let rec walk = function
        | a :: (b :: c :: _ as rest) ->
          let la = id_of (a, b) and lb = id_of (b, c) in
          if not (Hashtbl.mem deps (la, lb)) then Hashtbl.add deps (la, lb) ();
          walk rest
        | [ a; b ] -> ignore (id_of (a, b))
        | [ _ ] | [] -> ()
      in
      walk route)
    routes;
  (* Renumber the channels canonically so that equal route sets yield
     identical graphs regardless of route order. *)
  let channels = Array.of_list (List.rev !rev_channels) in
  let order = Array.init (Array.length channels) Fun.id in
  Array.sort (fun i j -> compare channels.(i) channels.(j)) order;
  let rank = Array.make (Array.length channels) 0 in
  Array.iteri (fun new_id old_id -> rank.(old_id) <- new_id) order;
  let sorted_channels = Array.map (fun old_id -> channels.(old_id)) order in
  let succs = Array.make (Array.length channels) [] in
  Hashtbl.iter
    (fun (a, b) () -> succs.(rank.(a)) <- rank.(b) :: succs.(rank.(a)))
    deps;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  { channels = sorted_channels; succs }

let n_channels t = Array.length t.channels

let n_dependencies t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let find_cycle t =
  let n = Array.length t.channels in
  (* 0 = unvisited, 1 = on the current DFS path, 2 = done. *)
  let colour = Array.make n 0 in
  let result = ref None in
  let rec dfs path u =
    colour.(u) <- 1;
    let path = u :: path in
    List.iter
      (fun v ->
        if !result = None then
          if colour.(v) = 1 then begin
            (* Back edge u -> v: the path segment v..u closes a cycle.
               [path] has u at its head, so pushing elements until v is
               reached yields the cycle in dependency order. *)
            let rec collect acc = function
              | [] -> acc
              | x :: rest -> if x = v then x :: acc else collect (x :: acc) rest
            in
            result := Some (collect [] path)
          end
          else if colour.(v) = 0 then dfs path v)
      t.succs.(u);
    colour.(u) <- 2
  in
  let u = ref 0 in
  while !result = None && !u < n do
    if colour.(!u) = 0 then dfs [] !u;
    incr u
  done;
  Option.map
    (List.map (fun i ->
         let from_node, to_node = t.channels.(i) in
         { Noc_noc.Routing.from_node; to_node }))
    !result

let is_acyclic t = find_cycle t = None
