module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge

let eps = 1e-9

let min_exec (t : Task.t) = Array.fold_left Float.min infinity t.exec_times

(* Structural pass: everything [Ctg.make] would reject, reported as
   individual diagnostics. Returns true when the arrays are sound enough
   for the semantic pass to interpret. *)
let structural ~n_pes ~tasks ~edges add =
  let n = Array.length tasks in
  if n = 0 then begin
    add (Diagnostic.error ~rule:"ctg/empty-graph" Diagnostic.Nowhere "graph has no tasks");
    false
  end
  else begin
    let ok = ref true in
    Array.iter
      (fun (t : Task.t) ->
        if Task.n_pes t <> n_pes then begin
          ok := false;
          add
            (Diagnostic.error ~rule:"ctg/pe-count-mismatch" (Diagnostic.Task t.id)
               "task carries %d cost entries, platform has %d PEs" (Task.n_pes t) n_pes)
        end)
      tasks;
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun (e : Edge.t) ->
        if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then begin
          ok := false;
          add
            (Diagnostic.error ~rule:"ctg/dangling-edge" (Diagnostic.Edge e.id)
               "edge connects %d -> %d, but task ids end at %d" e.src e.dst (n - 1))
        end
        else if Hashtbl.mem seen (e.src, e.dst) then begin
          ok := false;
          add
            (Diagnostic.error ~rule:"ctg/duplicate-edge" (Diagnostic.Edge e.id)
               "duplicate arc %d -> %d (first seen as edge %d)" e.src e.dst
               (Hashtbl.find seen (e.src, e.dst)))
        end
        else Hashtbl.add seen (e.src, e.dst) e.id)
      edges;
    !ok
  end

(* Kahn's algorithm over the in-range edges. Returns the topological
   order of the acyclic part; tasks left over sit on (or behind) a
   dependency cycle. *)
let topo_order ~tasks ~edges =
  let n = Array.length tasks in
  let in_range (e : Edge.t) = e.src >= 0 && e.src < n && e.dst >= 0 && e.dst < n in
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iter
    (fun (e : Edge.t) ->
      if in_range e then begin
        indegree.(e.dst) <- indegree.(e.dst) + 1;
        succs.(e.src) <- e.dst :: succs.(e.src)
      end)
    edges;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    List.iter
      (fun v ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      succs.(u)
  done;
  let order = List.rev !order in
  let leftover = List.filter (fun i -> indegree.(i) > 0) (List.init n Fun.id) in
  (order, leftover, succs)

(* One concrete dependency cycle among the leftover tasks, for the
   diagnostic message: walk successors inside the leftover set until a
   task repeats. *)
let find_task_cycle ~leftover succs =
  match leftover with
  | [] -> []
  | start :: _ ->
    let in_leftover = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace in_leftover i ()) leftover;
    let rec walk path u =
      if List.mem u path then
        (* Drop the lead-in, keep the loop. *)
        let rec from = function
          | x :: rest -> if x = u then x :: rest else from rest
          | [] -> []
        in
        from (List.rev (u :: path))
      else
        match List.find_opt (Hashtbl.mem in_leftover) (List.sort compare succs.(u)) with
        | Some v -> walk (u :: path) v
        | None -> []
    in
    walk [] start

let semantic ~tasks ~edges add =
  let n = Array.length tasks in
  let order, leftover, succs = topo_order ~tasks ~edges in
  if leftover <> [] then
    add
      (Diagnostic.error ~rule:"ctg/cycle" Diagnostic.Nowhere
         "dependency cycle through tasks %s"
         (String.concat " -> "
            (List.map string_of_int (find_task_cycle ~leftover succs))))
  else begin
    (* Reachability: a task no arc touches is dead weight in a graph
       that otherwise communicates. *)
    if n > 1 then begin
      let touched = Array.make n false in
      Array.iter
        (fun (e : Edge.t) ->
          touched.(e.src) <- true;
          touched.(e.dst) <- true)
        edges;
      Array.iteri
        (fun i t ->
          ignore (t : Task.t);
          if not touched.(i) then
            add
              (Diagnostic.warning ~rule:"ctg/unreachable-task" (Diagnostic.Task i)
                 "no arc reaches or leaves this task; the application's dataflow \
                  never exercises it"))
        tasks
    end;
    (* Per-task window feasibility: can any PE variant fit at all? *)
    let window_infeasible = Array.make n false in
    Array.iter
      (fun (t : Task.t) ->
        let fastest = min_exec t in
        match t.Task.deadline with
        | _ when fastest = infinity ->
          window_infeasible.(t.id) <- true;
          add
            (Diagnostic.error ~rule:"ctg/no-feasible-variant" (Diagnostic.Task t.id)
               "no PE variant has a finite execution time")
        | Some deadline ->
          let release = Option.value ~default:0. t.Task.release in
          if fastest > deadline -. release +. eps then begin
            window_infeasible.(t.id) <- true;
            add
              (Diagnostic.error ~rule:"ctg/no-feasible-variant" (Diagnostic.Task t.id)
                 "fastest variant takes %g, but the release-to-deadline window is \
                  only %g"
                 fastest (deadline -. release))
          end
        | None -> ())
      tasks;
    (* Level-structured critical-path lower bound (fastest variants,
       communication ignored): a true lower bound on any schedule's
       finish time of each task, so exceeding the deadline is a proof of
       infeasibility, not a heuristic. *)
    let finish_bound = Array.make n 0. in
    List.iter
      (fun u ->
        let t = tasks.(u) in
        let start_bound =
          Array.fold_left
            (fun acc (e : Edge.t) ->
              if e.dst = u then Float.max acc finish_bound.(e.src) else acc)
            (Option.value ~default:0. t.Task.release)
            edges
        in
        finish_bound.(u) <- start_bound +. min_exec t;
        match t.Task.deadline with
        | Some deadline
          when finish_bound.(u) > deadline +. eps && not window_infeasible.(u) ->
          add
            (Diagnostic.error ~rule:"ctg/deadline-infeasible" (Diagnostic.Task u)
               "critical-path lower bound %g already exceeds the deadline %g"
               finish_bound.(u) deadline)
        | Some _ | None -> ())
      order
  end

let check_raw ~n_pes ~tasks ~edges =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  if structural ~n_pes ~tasks ~edges add then semantic ~tasks ~edges add;
  Diagnostic.sort (List.rev !acc)

let check ctg =
  check_raw ~n_pes:(Noc_ctg.Ctg.n_pes ctg) ~tasks:(Noc_ctg.Ctg.tasks ctg)
    ~edges:(Noc_ctg.Ctg.edges ctg)
