(* Implementation-independent re-verification of a schedule. This module
   intentionally re-derives every check from the model definitions
   instead of calling into Noc_sched.Validate: the two checkers share
   only the data types, so they can serve as differential oracles for
   each other (a bug in one is caught by disagreement with the other,
   exercised by the test suite over the golden corpus). *)

module Schedule = Noc_sched.Schedule
module Platform = Noc_noc.Platform
module Topology = Noc_noc.Topology
module Ctg = Noc_ctg.Ctg
module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge

let default_eps = 1e-6

(* Routers a recorded route visits; a same-tile transfer ([] or [p])
   occupies no router. Deliberately local — not Platform.route_hops. *)
let hop_count = function [] | [ _ ] -> 0 | route -> List.length route

let rec last = function
  | [ x ] -> x
  | _ :: rest -> last rest
  | [] -> invalid_arg "Certify.last: empty route"

let energy platform ctg schedule =
  let model = Platform.energy_model platform in
  let computation =
    Array.fold_left
      (fun acc (t : Task.t) ->
        acc +. t.energies.((Schedule.placement schedule t.id).Schedule.pe))
      0. (Ctg.tasks ctg)
  in
  let communication =
    Array.fold_left
      (fun acc (e : Edge.t) ->
        let tr = Schedule.transaction schedule e.id in
        acc
        +. Noc_noc.Energy_model.transfer_energy model ~n_hops:(hop_count tr.route)
             ~bits:e.volume)
      0. (Ctg.edges ctg)
  in
  computation +. communication

(* ------------------------------------------------------------------ *)
(* Per-element checks                                                  *)

let placement_checks ~eps platform ctg add =
  let n_pes = Platform.n_pes platform in
  fun (p : Schedule.placement) ->
    if p.pe < 0 || p.pe >= n_pes then
      add
        (Diagnostic.error ~rule:"sched/pe-range" (Diagnostic.Task p.task)
           "placed on pe %d of a %d-PE platform" p.pe n_pes)
    else begin
      if p.start < -.eps || p.finish < p.start -. eps then
        add
          (Diagnostic.error ~rule:"sched/time-window" (Diagnostic.Task p.task)
             "window [%g, %g) is not a forward interval from time 0" p.start p.finish);
      let expected = (Ctg.task ctg p.task).Task.exec_times.(p.pe) in
      if Float.abs (p.finish -. p.start -. expected) > eps then
        add
          (Diagnostic.error ~rule:"sched/duration" (Diagnostic.Task p.task)
             "runs for %g on pe %d, cost table says %g" (p.finish -. p.start) p.pe
             expected)
    end

let route_walk_checks platform add (tr : Schedule.transaction) =
  let topology = Platform.topology platform in
  let n = Platform.n_pes platform in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        add (Diagnostic.error ~rule:"sched/route-walk" (Diagnostic.Edge tr.edge) "%s" msg))
      fmt
  in
  if tr.src_pe = tr.dst_pe then begin
    (* Same-tile transfers use no network; they may record either no
       route at all or the single shared tile. *)
    match tr.route with
    | [] -> ()
    | [ p ] when p = tr.src_pe -> ()
    | [ p ] -> bad "same-tile route names tile %d, task runs on tile %d" p tr.src_pe
    | _ :: _ :: _ -> bad "same-tile transfer records a multi-hop route"
  end
  else
    match tr.route with
    | [] | [ _ ] -> bad "distinct tiles %d and %d need a multi-hop route" tr.src_pe tr.dst_pe
    | first :: _ :: _ as route ->
      if List.exists (fun p -> p < 0 || p >= n) route then
        bad "route leaves the chip (a node is outside 0..%d)" (n - 1)
      else if first <> tr.src_pe then bad "route starts at tile %d, sender sits on %d" first tr.src_pe
      else if last route <> tr.dst_pe then
        bad "route ends at tile %d, receiver sits on %d" (last route) tr.dst_pe
      else begin
        let seen = Hashtbl.create 8 in
        let rec walk = function
          | a :: (b :: _ as rest) ->
            if not (Topology.are_neighbours topology a b) then
              bad "route steps %d -> %d without a physical link" a b
            else if Hashtbl.mem seen (a, b) then
              bad "route reserves channel %d->%d twice" a b
            else begin
              Hashtbl.add seen (a, b) ();
              walk rest
            end
          | [ _ ] | [] -> ()
        in
        walk route
      end

let transaction_checks ~eps platform ctg schedule add =
  let bandwidth = Platform.link_bandwidth platform in
  let latency = Platform.router_latency platform in
  fun (tr : Schedule.transaction) ->
    let e = Ctg.edge ctg tr.edge in
    let sender = Schedule.placement schedule e.src in
    let receiver = Schedule.placement schedule e.dst in
    if tr.src_pe <> sender.pe then
      add
        (Diagnostic.error ~rule:"sched/endpoint-pe" (Diagnostic.Edge tr.edge)
           "departs pe %d, but task %d runs on pe %d" tr.src_pe e.src sender.pe);
    if tr.dst_pe <> receiver.pe then
      add
        (Diagnostic.error ~rule:"sched/endpoint-pe" (Diagnostic.Edge tr.edge)
           "arrives at pe %d, but task %d runs on pe %d" tr.dst_pe e.dst receiver.pe);
    route_walk_checks platform add tr;
    let expected =
      match hop_count tr.route with
      | 0 -> 0.
      | h -> (e.volume /. bandwidth) +. (float_of_int (h - 1) *. latency)
    in
    if Float.abs (tr.finish -. tr.start -. expected) > eps then
      add
        (Diagnostic.error ~rule:"sched/duration" (Diagnostic.Edge tr.edge)
           "occupies its route for %g; %g bits over a %d-router route take %g"
           (tr.finish -. tr.start) e.volume (hop_count tr.route) expected)

(* ------------------------------------------------------------------ *)
(* Pairwise exclusion                                                  *)

(* Both exclusions reduce to the same question: do two half-open windows
   booked on one resource overlap? Flatten every booking to a
   (resource, start, finish, owner) tuple, sort, and compare neighbours
   within each resource run. *)
let overlap_scan ~eps bookings report =
  let sorted =
    List.sort
      (fun (r1, s1, _, o1) (r2, s2, _, o2) ->
        let c = compare r1 r2 in
        if c <> 0 then c
        else
          let c = Float.compare s1 s2 in
          if c <> 0 then c else compare o1 o2)
      bookings
  in
  (* Within one resource, carry the booking that reaches furthest so a
     long window is compared against every later start. *)
  let rec scan ((r1, _, f1, o1) as cur) = function
    | [] -> ()
    | ((r2, s2, f2, o2) as next) :: tail ->
      if r1 <> r2 then scan next tail
      else begin
        if s2 < f1 -. eps then report r1 o1 o2;
        scan (if f2 > f1 then next else cur) tail
      end
  in
  match sorted with [] -> () | first :: rest -> scan first rest

let pe_exclusion ~eps schedule add =
  let bookings =
    Array.to_list (Schedule.placements schedule)
    |> List.filter_map (fun (p : Schedule.placement) ->
           if p.finish > p.start then Some (p.pe, p.start, p.finish, p.task) else None)
  in
  overlap_scan ~eps bookings (fun pe a b ->
      add
        (Diagnostic.error ~rule:"sched/pe-overlap" (Diagnostic.Pe pe)
           "tasks %d and %d run concurrently" a b))

let link_exclusion ~eps schedule add =
  let bookings =
    Array.to_list (Schedule.transactions schedule)
    |> List.concat_map (fun (tr : Schedule.transaction) ->
           if tr.finish <= tr.start then []
           else
             let rec channels = function
               | a :: (b :: _ as rest) -> ((a, b), tr.start, tr.finish, tr.edge) :: channels rest
               | [ _ ] | [] -> []
             in
             channels tr.route)
  in
  overlap_scan ~eps bookings (fun (from_node, to_node) a b ->
      add
        (Diagnostic.error ~rule:"sched/link-overlap"
           (Diagnostic.Link { Noc_noc.Routing.from_node; to_node })
           "transactions %d and %d reserve this channel concurrently" a b))

(* ------------------------------------------------------------------ *)
(* Precedence and timing windows                                       *)

let precedence ~eps ctg schedule add =
  Array.iter
    (fun (tr : Schedule.transaction) ->
      let e = Ctg.edge ctg tr.edge in
      let sender = Schedule.placement schedule e.src in
      let receiver = Schedule.placement schedule e.dst in
      if tr.start < sender.finish -. eps then
        add
          (Diagnostic.error ~rule:"sched/precedence" (Diagnostic.Edge tr.edge)
             "departs at %g before task %d finishes at %g" tr.start e.src sender.finish);
      if receiver.start < tr.finish -. eps then
        add
          (Diagnostic.error ~rule:"sched/precedence" (Diagnostic.Edge tr.edge)
             "task %d starts at %g before its data arrives at %g" e.dst receiver.start
             tr.finish))
    (Schedule.transactions schedule)

let timing_windows ~eps ctg schedule add =
  Array.iter
    (fun (t : Task.t) ->
      let p = Schedule.placement schedule t.id in
      (match t.release with
      | Some release when p.start < release -. eps ->
        add
          (Diagnostic.error ~rule:"sched/release" (Diagnostic.Task t.id)
             "starts at %g before its release %g" p.start release)
      | Some _ | None -> ());
      match t.deadline with
      | Some deadline when p.finish > deadline +. eps ->
        add
          (Diagnostic.error ~rule:"sched/deadline" (Diagnostic.Task t.id)
             "finishes at %g, deadline is %g" p.finish deadline)
      | Some _ | None -> ())
    (Ctg.tasks ctg)

(* ------------------------------------------------------------------ *)

let check ?(eps = default_eps) ?claimed_energy platform ctg schedule =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let n_tasks = Ctg.n_tasks ctg and n_edges = Ctg.n_edges ctg in
  if Schedule.n_tasks schedule <> n_tasks then
    add
      (Diagnostic.error ~rule:"sched/task-count" Diagnostic.Nowhere
         "schedule places %d tasks, graph has %d" (Schedule.n_tasks schedule) n_tasks)
  else if Array.length (Schedule.transactions schedule) <> n_edges then
    add
      (Diagnostic.error ~rule:"sched/transaction-count" Diagnostic.Nowhere
         "schedule carries %d transactions, graph has %d arcs"
         (Array.length (Schedule.transactions schedule))
         n_edges)
  else begin
    Array.iter (placement_checks ~eps platform ctg add) (Schedule.placements schedule);
    Array.iter
      (transaction_checks ~eps platform ctg schedule add)
      (Schedule.transactions schedule);
    (* Only reason about exclusion and ordering of well-formed windows. *)
    if !acc = [] then begin
      pe_exclusion ~eps schedule add;
      link_exclusion ~eps schedule add;
      precedence ~eps ctg schedule add;
      timing_windows ~eps ctg schedule add;
      match claimed_energy with
      | None -> ()
      | Some claimed ->
        let derived = energy platform ctg schedule in
        if Float.abs (claimed -. derived) > eps *. Float.max 1. (Float.abs claimed)
        then
          add
            (Diagnostic.warning ~rule:"sched/energy-mismatch" Diagnostic.Nowhere
               "claimed total energy %g, Eq. 3 over the recorded routes gives %g"
               claimed derived)
    end
  end;
  Diagnostic.sort (List.rev !acc)

let certifies ?eps ?claimed_energy platform ctg schedule =
  List.for_all
    (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Error)
    (check ?eps ?claimed_energy platform ctg schedule)
