(* Implementation-independent re-verification of a schedule. This module
   intentionally re-derives every check from the model definitions
   instead of calling into Noc_sched.Validate: the two checkers share
   only the data types, so they can serve as differential oracles for
   each other (a bug in one is caught by disagreement with the other,
   exercised by the test suite over the golden corpus). *)

module Schedule = Noc_sched.Schedule
module Platform = Noc_noc.Platform
module Topology = Noc_noc.Topology
module Ctg = Noc_ctg.Ctg
module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge

let default_eps = 1e-6

(* Routers a recorded route visits; a same-tile transfer ([] or [p])
   occupies no router. Deliberately local — not Platform.route_hops. *)
let hop_count = function [] | [ _ ] -> 0 | route -> List.length route

let rec last = function
  | [ x ] -> x
  | _ :: rest -> last rest
  | [] -> invalid_arg "Certify.last: empty route"

let energy platform ctg schedule =
  let model = Platform.energy_model platform in
  let computation =
    Array.fold_left
      (fun acc (t : Task.t) ->
        acc +. t.energies.((Schedule.placement schedule t.id).Schedule.pe))
      0. (Ctg.tasks ctg)
  in
  let communication =
    Array.fold_left
      (fun acc (e : Edge.t) ->
        let tr = Schedule.transaction schedule e.id in
        acc
        +. Noc_noc.Energy_model.transfer_energy model ~n_hops:(hop_count tr.route)
             ~bits:e.volume)
      0. (Ctg.edges ctg)
  in
  computation +. communication

(* ------------------------------------------------------------------ *)
(* Per-element checks                                                  *)

(* [expected_duration] defaults to the cost table; the scaled-schedule
   checker substitutes slowdown × base duration (rule dvfs/duration). *)
let placement_checks ~eps ?expected_duration platform ctg add =
  let n_pes = Platform.n_pes platform in
  let expected_duration =
    match expected_duration with
    | Some f -> f
    | None ->
      fun (p : Schedule.placement) ->
        ("sched/duration", "cost table", (Ctg.task ctg p.task).Task.exec_times.(p.pe))
  in
  fun (p : Schedule.placement) ->
    if p.pe < 0 || p.pe >= n_pes then
      add
        (Diagnostic.error ~rule:"sched/pe-range" (Diagnostic.Task p.task)
           "placed on pe %d of a %d-PE platform" p.pe n_pes)
    else begin
      if p.start < -.eps || p.finish < p.start -. eps then
        add
          (Diagnostic.error ~rule:"sched/time-window" (Diagnostic.Task p.task)
             "window [%g, %g) is not a forward interval from time 0" p.start p.finish);
      let rule, source, expected = expected_duration p in
      if Float.abs (p.finish -. p.start -. expected) > eps then
        add
          (Diagnostic.error ~rule (Diagnostic.Task p.task)
             "runs for %g on pe %d, %s says %g" (p.finish -. p.start) p.pe source
             expected)
    end

let route_walk_checks platform add (tr : Schedule.transaction) =
  let topology = Platform.topology platform in
  let n = Platform.n_pes platform in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        add (Diagnostic.error ~rule:"sched/route-walk" (Diagnostic.Edge tr.edge) "%s" msg))
      fmt
  in
  if tr.src_pe = tr.dst_pe then begin
    (* Same-tile transfers use no network; they may record either no
       route at all or the single shared tile. *)
    match tr.route with
    | [] -> ()
    | [ p ] when p = tr.src_pe -> ()
    | [ p ] -> bad "same-tile route names tile %d, task runs on tile %d" p tr.src_pe
    | _ :: _ :: _ -> bad "same-tile transfer records a multi-hop route"
  end
  else
    match tr.route with
    | [] | [ _ ] -> bad "distinct tiles %d and %d need a multi-hop route" tr.src_pe tr.dst_pe
    | first :: _ :: _ as route ->
      if List.exists (fun p -> p < 0 || p >= n) route then
        bad "route leaves the chip (a node is outside 0..%d)" (n - 1)
      else if first <> tr.src_pe then bad "route starts at tile %d, sender sits on %d" first tr.src_pe
      else if last route <> tr.dst_pe then
        bad "route ends at tile %d, receiver sits on %d" (last route) tr.dst_pe
      else begin
        let seen = Hashtbl.create 8 in
        let rec walk = function
          | a :: (b :: _ as rest) ->
            if not (Topology.are_neighbours topology a b) then
              bad "route steps %d -> %d without a physical link" a b
            else if Hashtbl.mem seen (a, b) then
              bad "route reserves channel %d->%d twice" a b
            else begin
              Hashtbl.add seen (a, b) ();
              walk rest
            end
          | [ _ ] | [] -> ()
        in
        walk route
      end

let transaction_checks ~eps platform ctg schedule add =
  let bandwidth = Platform.link_bandwidth platform in
  let latency = Platform.router_latency platform in
  fun (tr : Schedule.transaction) ->
    let e = Ctg.edge ctg tr.edge in
    let sender = Schedule.placement schedule e.src in
    let receiver = Schedule.placement schedule e.dst in
    if tr.src_pe <> sender.pe then
      add
        (Diagnostic.error ~rule:"sched/endpoint-pe" (Diagnostic.Edge tr.edge)
           "departs pe %d, but task %d runs on pe %d" tr.src_pe e.src sender.pe);
    if tr.dst_pe <> receiver.pe then
      add
        (Diagnostic.error ~rule:"sched/endpoint-pe" (Diagnostic.Edge tr.edge)
           "arrives at pe %d, but task %d runs on pe %d" tr.dst_pe e.dst receiver.pe);
    route_walk_checks platform add tr;
    let expected =
      match hop_count tr.route with
      | 0 -> 0.
      | h -> (e.volume /. bandwidth) +. (float_of_int (h - 1) *. latency)
    in
    if Float.abs (tr.finish -. tr.start -. expected) > eps then
      add
        (Diagnostic.error ~rule:"sched/duration" (Diagnostic.Edge tr.edge)
           "occupies its route for %g; %g bits over a %d-router route take %g"
           (tr.finish -. tr.start) e.volume (hop_count tr.route) expected)

(* ------------------------------------------------------------------ *)
(* Pairwise exclusion                                                  *)

(* Both exclusions reduce to the same question: do two half-open windows
   booked on one resource overlap? Flatten every booking to a
   (resource, start, finish, owner) tuple, sort, and compare neighbours
   within each resource run. *)
let overlap_scan ~eps bookings report =
  let sorted =
    List.sort
      (fun (r1, s1, _, o1) (r2, s2, _, o2) ->
        let c = compare r1 r2 in
        if c <> 0 then c
        else
          let c = Float.compare s1 s2 in
          if c <> 0 then c else compare o1 o2)
      bookings
  in
  (* Within one resource, carry the booking that reaches furthest so a
     long window is compared against every later start. *)
  let rec scan ((r1, _, f1, o1) as cur) = function
    | [] -> ()
    | ((r2, s2, f2, o2) as next) :: tail ->
      if r1 <> r2 then scan next tail
      else begin
        if s2 < f1 -. eps then report r1 o1 o2;
        scan (if f2 > f1 then next else cur) tail
      end
  in
  match sorted with [] -> () | first :: rest -> scan first rest

let pe_exclusion ~eps schedule add =
  let bookings =
    Array.to_list (Schedule.placements schedule)
    |> List.filter_map (fun (p : Schedule.placement) ->
           if p.finish > p.start then Some (p.pe, p.start, p.finish, p.task) else None)
  in
  overlap_scan ~eps bookings (fun pe a b ->
      add
        (Diagnostic.error ~rule:"sched/pe-overlap" (Diagnostic.Pe pe)
           "tasks %d and %d run concurrently" a b))

let link_exclusion ~eps schedule add =
  let bookings =
    Array.to_list (Schedule.transactions schedule)
    |> List.concat_map (fun (tr : Schedule.transaction) ->
           if tr.finish <= tr.start then []
           else
             let rec channels = function
               | a :: (b :: _ as rest) -> ((a, b), tr.start, tr.finish, tr.edge) :: channels rest
               | [ _ ] | [] -> []
             in
             channels tr.route)
  in
  overlap_scan ~eps bookings (fun (from_node, to_node) a b ->
      add
        (Diagnostic.error ~rule:"sched/link-overlap"
           (Diagnostic.Link { Noc_noc.Routing.from_node; to_node })
           "transactions %d and %d reserve this channel concurrently" a b))

(* ------------------------------------------------------------------ *)
(* Precedence and timing windows                                       *)

let precedence ~eps ctg schedule add =
  Array.iter
    (fun (tr : Schedule.transaction) ->
      let e = Ctg.edge ctg tr.edge in
      let sender = Schedule.placement schedule e.src in
      let receiver = Schedule.placement schedule e.dst in
      if tr.start < sender.finish -. eps then
        add
          (Diagnostic.error ~rule:"sched/precedence" (Diagnostic.Edge tr.edge)
             "departs at %g before task %d finishes at %g" tr.start e.src sender.finish);
      if receiver.start < tr.finish -. eps then
        add
          (Diagnostic.error ~rule:"sched/precedence" (Diagnostic.Edge tr.edge)
             "task %d starts at %g before its data arrives at %g" e.dst receiver.start
             tr.finish))
    (Schedule.transactions schedule)

let timing_windows ~eps ctg schedule add =
  Array.iter
    (fun (t : Task.t) ->
      let p = Schedule.placement schedule t.id in
      (match t.release with
      | Some release when p.start < release -. eps ->
        add
          (Diagnostic.error ~rule:"sched/release" (Diagnostic.Task t.id)
             "starts at %g before its release %g" p.start release)
      | Some _ | None -> ());
      match t.deadline with
      | Some deadline when p.finish > deadline +. eps ->
        add
          (Diagnostic.error ~rule:"sched/deadline" (Diagnostic.Task t.id)
             "finishes at %g, deadline is %g" p.finish deadline)
      | Some _ | None -> ())
    (Ctg.tasks ctg)

(* ------------------------------------------------------------------ *)

let check ?(eps = default_eps) ?claimed_energy platform ctg schedule =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let n_tasks = Ctg.n_tasks ctg and n_edges = Ctg.n_edges ctg in
  if Schedule.n_tasks schedule <> n_tasks then
    add
      (Diagnostic.error ~rule:"sched/task-count" Diagnostic.Nowhere
         "schedule places %d tasks, graph has %d" (Schedule.n_tasks schedule) n_tasks)
  else if Array.length (Schedule.transactions schedule) <> n_edges then
    add
      (Diagnostic.error ~rule:"sched/transaction-count" Diagnostic.Nowhere
         "schedule carries %d transactions, graph has %d arcs"
         (Array.length (Schedule.transactions schedule))
         n_edges)
  else begin
    Array.iter (placement_checks ~eps platform ctg add) (Schedule.placements schedule);
    Array.iter
      (transaction_checks ~eps platform ctg schedule add)
      (Schedule.transactions schedule);
    (* Only reason about exclusion and ordering of well-formed windows. *)
    if !acc = [] then begin
      pe_exclusion ~eps schedule add;
      link_exclusion ~eps schedule add;
      precedence ~eps ctg schedule add;
      timing_windows ~eps ctg schedule add;
      match claimed_energy with
      | None -> ()
      | Some claimed ->
        let derived = energy platform ctg schedule in
        if Float.abs (claimed -. derived) > eps *. Float.max 1. (Float.abs claimed)
        then
          add
            (Diagnostic.warning ~rule:"sched/energy-mismatch" Diagnostic.Nowhere
               "claimed total energy %g, Eq. 3 over the recorded routes gives %g"
               claimed derived)
    end
  end;
  Diagnostic.sort (List.rev !acc)

let certifies ?eps ?claimed_energy platform ctg schedule =
  List.for_all
    (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Error)
    (check ?eps ?claimed_energy platform ctg schedule)

(* ------------------------------------------------------------------ *)
(* DVFS-scaled schedules                                               *)

(* Re-verification of a downclocked schedule against its unscaled base.
   Deliberately independent of [noc_dvfs]: the V/f ladder arrives as a
   raw ratio array and the annotations as the [Schedule_io] records, so
   a bug in the reclamation pass cannot leak into its own audit. *)

let check_scaled ?(eps = default_eps) ~ratios ~annotations ~base platform ctg scaled =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let n_tasks = Ctg.n_tasks ctg and n_edges = Ctg.n_edges ctg in
  let n_levels = Array.length ratios in
  (* The ladder itself must be a descending frequency ladder anchored at
     f_max, or no per-task statement below means anything. *)
  if n_levels = 0 then
    add
      (Diagnostic.error ~rule:"dvfs/vf-table" Diagnostic.Nowhere "empty V/f ladder")
  else begin
    if ratios.(0) <> 1. then
      add
        (Diagnostic.error ~rule:"dvfs/vf-table" Diagnostic.Nowhere
           "level 0 runs at %g of f_max, must be 1" ratios.(0));
    Array.iteri
      (fun l r ->
        if not (Float.is_finite r && r > 0. && r <= 1.) then
          add
            (Diagnostic.error ~rule:"dvfs/vf-table" Diagnostic.Nowhere
               "level %d ratio %g is not in (0, 1]" l r)
        else if l > 0 && r >= ratios.(l - 1) then
          add
            (Diagnostic.error ~rule:"dvfs/vf-table" Diagnostic.Nowhere
               "levels must descend strictly: level %d ratio %g >= level %d ratio %g"
               l r (l - 1) ratios.(l - 1)))
      ratios
  end;
  if Schedule.n_tasks scaled <> n_tasks then
    add
      (Diagnostic.error ~rule:"sched/task-count" Diagnostic.Nowhere
         "schedule places %d tasks, graph has %d" (Schedule.n_tasks scaled) n_tasks)
  else if Array.length (Schedule.transactions scaled) <> n_edges then
    add
      (Diagnostic.error ~rule:"sched/transaction-count" Diagnostic.Nowhere
         "schedule carries %d transactions, graph has %d arcs"
         (Array.length (Schedule.transactions scaled))
         n_edges)
  else if Schedule.n_tasks base <> n_tasks
          || Array.length (Schedule.transactions base) <> n_edges then
    add
      (Diagnostic.error ~rule:"dvfs/base-mismatch" Diagnostic.Nowhere
         "base schedule does not cover the graph")
  else if Array.length annotations <> n_tasks then
    add
      (Diagnostic.error ~rule:"dvfs/annotation" Diagnostic.Nowhere
         "%d annotations for %d tasks" (Array.length annotations) n_tasks);
  if !acc <> [] then Diagnostic.sort (List.rev !acc)
  else begin
    (* Per-task rules: the annotation names a real level, the frequency
       matches that level, the placement is frozen apart from its
       stretched finish, and the recorded energy is base × r². *)
    Array.iteri
      (fun i (a : Noc_sched.Schedule_io.annotation) ->
        if a.task <> i then
          add
            (Diagnostic.error ~rule:"dvfs/annotation" (Diagnostic.Task i)
               "annotation %d names task %d" i a.task)
        else if a.level < 0 || a.level >= n_levels then
          add
            (Diagnostic.error ~rule:"dvfs/level-range" (Diagnostic.Task i)
               "level %d of a %d-level ladder" a.level n_levels)
        else begin
          if Float.abs (a.freq -. ratios.(a.level)) > eps then
            add
              (Diagnostic.error ~rule:"dvfs/level-range" (Diagnostic.Task i)
                 "annotated frequency %g, level %d of the ladder runs at %g" a.freq
                 a.level ratios.(a.level));
          let bp = Schedule.placement base i and sp = Schedule.placement scaled i in
          if sp.pe <> bp.pe then
            add
              (Diagnostic.error ~rule:"dvfs/start-shift" (Diagnostic.Task i)
                 "migrated from pe %d to pe %d; downclocking moves nothing" bp.pe sp.pe)
          else if sp.start <> bp.start then
            add
              (Diagnostic.error ~rule:"dvfs/start-shift" (Diagnostic.Task i)
                 "start moved from %g to %g; downclocking never moves a start" bp.start
                 sp.start)
          else if sp.finish < bp.finish -. eps then
            add
              (Diagnostic.error ~rule:"dvfs/window" (Diagnostic.Task i)
                 "scaled finish %g precedes the base finish %g: the base window must \
                  be contained in the scaled one"
                 sp.finish bp.finish);
          let expected =
            (Ctg.task ctg i).Task.energies.(bp.pe)
            *. ratios.(a.level) *. ratios.(a.level)
          in
          if Float.abs (a.energy -. expected) > eps *. Float.max 1. expected then
            add
              (Diagnostic.error ~rule:"dvfs/energy" (Diagnostic.Task i)
                 "annotated energy %g, base x (f/f_max)^2 gives %g" a.energy expected)
        end)
      annotations;
    (* Communication windows are frozen: every transaction must survive
       bit-identically (route included). *)
    Array.iteri
      (fun e (bt : Schedule.transaction) ->
        let st = Schedule.transaction scaled e in
        if st <> bt then
          add
            (Diagnostic.error ~rule:"dvfs/comm-frozen" (Diagnostic.Edge e)
               "transaction differs from the base schedule; downclocking never \
                shifts a communication window"))
      (Schedule.transactions base);
    (* Scaled duration consistency, then the standard pairwise suite on
       the scaled timeline — exclusions, precedence and the release/
       deadline windows (the containment proof that stretching stayed
       inside the slack). *)
    let expected_duration (p : Schedule.placement) =
      let a = annotations.(p.task) in
      let bp = Schedule.placement base p.task in
      let slowdown =
        if a.level >= 0 && a.level < n_levels then 1. /. ratios.(a.level) else 1.
      in
      ("dvfs/duration", "level x base duration", (bp.finish -. bp.start) *. slowdown)
    in
    Array.iter
      (placement_checks ~eps ~expected_duration platform ctg add)
      (Schedule.placements scaled);
    Array.iter
      (transaction_checks ~eps platform ctg scaled add)
      (Schedule.transactions scaled);
    if !acc = [] then begin
      pe_exclusion ~eps scaled add;
      link_exclusion ~eps scaled add;
      precedence ~eps ctg scaled add;
      timing_windows ~eps ctg scaled add;
      (* Monotonicity: reclamation may only shed computation energy. *)
      let scaled_comp =
        Array.fold_left
          (fun t (a : Noc_sched.Schedule_io.annotation) -> t +. a.energy)
          0. annotations
      in
      let base_comp =
        Array.fold_left
          (fun t (task : Task.t) ->
            t +. task.energies.((Schedule.placement base task.id).Schedule.pe))
          0. (Ctg.tasks ctg)
      in
      if scaled_comp > base_comp +. (eps *. Float.max 1. base_comp) then
        add
          (Diagnostic.error ~rule:"dvfs/energy-monotone" Diagnostic.Nowhere
             "scaled computation energy %g exceeds the unscaled %g" scaled_comp
             base_comp)
    end;
    Diagnostic.sort (List.rev !acc)
  end

let certifies_scaled ?eps ~ratios ~annotations ~base platform ctg scaled =
  List.for_all
    (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Error)
    (check_scaled ?eps ~ratios ~annotations ~base platform ctg scaled)
