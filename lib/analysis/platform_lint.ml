module Platform = Noc_noc.Platform
module Topology = Noc_noc.Topology
module Routing = Noc_noc.Routing

let check ?ctg platform =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let topology = Platform.topology platform in
  let bandwidth = Platform.link_bandwidth platform in
  if bandwidth <= 0. then
    add
      (Diagnostic.error ~rule:"platform/zero-bandwidth" Diagnostic.Nowhere
         "link bandwidth is %g; no transaction can ever complete" bandwidth);
  let distances = Topology.bfs_distances topology 0 in
  Array.iteri
    (fun tile d ->
      if d < 0 then
        add
          (Diagnostic.error ~rule:"platform/unreachable-tile" (Diagnostic.Tile tile)
             "no chain of links connects this tile to tile 0"))
    distances;
  (* Links the routing discipline never exercises. On adaptive
     platforms the whole admissible relation counts, not just the
     canonical route per pair — a channel only some alternative route
     uses is not dead silicon. *)
  if Array.for_all (fun d -> d >= 0) distances then begin
    let n = Platform.n_pes platform in
    let routing = Platform.routing platform in
    let used = Hashtbl.create 64 in
    let mark (l : Routing.link) = Hashtbl.replace used (l.from_node, l.to_node) () in
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then
          if Noc_noc.Turn_model.is_adaptive routing then begin
            (* Forward closure of the relation: every admissible hop of
               every reachable node is an exercised channel. *)
            let seen = Array.make n false in
            let queue = Queue.create () in
            seen.(src) <- true;
            Queue.add src queue;
            while not (Queue.is_empty queue) do
              let v = Queue.pop queue in
              List.iter
                (fun a ->
                  mark { Routing.from_node = v; to_node = a };
                  if not seen.(a) then begin
                    seen.(a) <- true;
                    Queue.add a queue
                  end)
                (Noc_noc.Turn_model.next_hops routing topology ~src ~node:v ~dst)
            done
          end
          else List.iter mark (Platform.route_links platform ~src ~dst)
      done
    done;
    List.iter
      (fun (l : Routing.link) ->
        if not (Hashtbl.mem used (l.from_node, l.to_node)) then
          add
            (Diagnostic.info ~rule:"platform/unused-link" (Diagnostic.Link l)
               "no admissible %s route uses this channel"
               (Noc_noc.Turn_model.name routing)))
      (Routing.all_links topology)
  end;
  (match ctg with
  | None -> ()
  | Some ctg ->
    let latest_deadline =
      Array.fold_left
        (fun acc (t : Noc_ctg.Task.t) ->
          match t.deadline with Some d -> Float.max acc d | None -> acc)
        neg_infinity (Noc_ctg.Ctg.tasks ctg)
    in
    let crossing = List.length (Routing.bisection_links topology) in
    let capacity = float_of_int crossing *. bandwidth in
    if latest_deadline > neg_infinity && capacity > 0. then begin
      let volume = Noc_ctg.Ctg.total_volume ctg in
      let transfer_time = volume /. capacity in
      if transfer_time > latest_deadline then
        add
          (Diagnostic.warning ~rule:"platform/bisection-bandwidth" Diagnostic.Nowhere
             "moving the full %g-bit communication volume across the %d-link \
              bisection takes %g, past the latest deadline %g; placements that \
              split traffic across the midline cannot meet it"
             volume crossing transfer_time latest_deadline)
    end);
  Diagnostic.sort (List.rev !acc)
