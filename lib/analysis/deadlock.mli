(** Routing deadlock-freedom analysis.

    Collects the complete route set a platform (or a degraded view of it
    under a fault set) would use — one route per ordered tile pair —
    builds its {!Cdg} and reports any channel-dependency cycle. XY
    routing on a mesh always passes; BFS detour routes around failed
    links can and do fail, which is exactly the regression the paper's
    deterministic-routing assumption hides. *)

val platform_routes : Noc_noc.Platform.t -> int list list
(** The deterministic route of every ordered pair of distinct tiles. *)

val degraded_routes :
  Noc_noc.Degraded.t -> int list list * (int * int) list
(** Routes over the surviving fabric plus the list of (src, dst) pairs
    the fault set disconnects. *)

val cdg_of_platform : Noc_noc.Platform.t -> Cdg.t
val cdg_of_degraded : Noc_noc.Degraded.t -> Cdg.t

val check_platform : Noc_noc.Platform.t -> Diagnostic.t list
(** Rule [deadlock/cyclic-cdg] (error) when the healthy route set's CDG
    has a cycle; empty when the routing is provably deadlock-free. *)

val check_degraded :
  Noc_noc.Platform.t -> Noc_fault.Fault_set.t -> Diagnostic.t list
(** Same analysis over the fault set's degraded view (every element that
    ever fails is masked). Adds rule [deadlock/unreachable-pair] (error)
    for each tile pair the faults disconnect. *)
