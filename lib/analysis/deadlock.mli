(** Routing deadlock-freedom analysis.

    Collects the complete route set a platform (or a degraded view of it
    under a fault set) would use, builds its {!Cdg} and reports any
    channel-dependency cycle. Since the turn-model generalization this
    works at the level of route {e relations}: {!check_routing}
    certifies every admissible route of an adaptive routing function
    (minimality, turn legality and relation-CDG acyclicity), with XY as
    the degenerate single-route case. XY and the turn models on a mesh
    always pass; unrestricted BFS detour routes around failed links can
    and do fail, which is exactly the regression the paper's
    deterministic-routing assumption hides — and what the turn-legal
    degraded detours of {!Noc_noc.Degraded} now avoid by construction. *)

val platform_routes : Noc_noc.Platform.t -> int list list
(** The deterministic route of every ordered pair of distinct tiles. *)

val degraded_routes :
  Noc_noc.Degraded.t -> int list list * (int * int) list
(** Routes over the surviving fabric plus the list of (src, dst) pairs
    the fault set disconnects. *)

val cdg_of_platform : Noc_noc.Platform.t -> Cdg.t
val cdg_of_degraded : Noc_noc.Degraded.t -> Cdg.t

val cdg_of_routing : Noc_noc.Turn_model.t -> Noc_noc.Platform.t -> Cdg.t
(** {!Cdg.of_relation} over the routing function's admissible next-hop
    relation on the platform's topology. *)

val check_routing :
  routing:Noc_noc.Turn_model.t -> Noc_noc.Platform.t -> Diagnostic.t list
(** Certify [routing] on the platform's topology as a relation. Rules:
    [routing/non-minimal] (error) when some admissible hop fails to
    approach the destination or the relation strands a packet short of
    it, [routing/illegal-turn] (error) when the relation composes a
    turn the model's own predicate prohibits — both carry a concrete
    counterexample route — and [deadlock/cyclic-cdg] (error) when the
    relation's CDG has a cycle. An empty result proves {e every} route
    the adaptive router could take deadlock-free (Dally–Seitz over the
    full relation). [routing/unsupported-topology] (error) when the
    model is not defined on the topology (adaptive models are
    mesh-only). *)

val check_platform : Noc_noc.Platform.t -> Diagnostic.t list
(** Rule [deadlock/cyclic-cdg] (error) when the healthy route set's CDG
    has a cycle; empty when the routing is provably deadlock-free. On
    meshes and tori this is {!check_routing} applied to the platform's
    own routing function (so adaptive platforms get the full relation
    proof); honeycombs certify their one BFS route per pair as before. *)

val check_degraded :
  Noc_noc.Platform.t -> Noc_fault.Fault_set.t -> Diagnostic.t list
(** Same analysis over the fault set's degraded view (every element that
    ever fails is masked). Adds rule [deadlock/unreachable-pair] (error)
    for each tile pair the faults disconnect. *)
