type severity = Error | Warning | Info

type location =
  | Nowhere
  | Task of int
  | Edge of int
  | Pe of int
  | Tile of int
  | Link of Noc_noc.Routing.link
  | Route of int list
  | Channel_cycle of Noc_noc.Routing.link list

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
}

let make severity ~rule location fmt =
  Printf.ksprintf (fun message -> { rule; severity; location; message }) fmt

let error ~rule location fmt = make Error ~rule location fmt
let warning ~rule location fmt = make Warning ~rule location fmt
let info ~rule location fmt = make Info ~rule location fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let link_to_string (l : Noc_noc.Routing.link) =
  Printf.sprintf "%d->%d" l.from_node l.to_node

let location_to_string = function
  | Nowhere -> ""
  | Task i -> Printf.sprintf "task %d" i
  | Edge e -> Printf.sprintf "edge %d" e
  | Pe p -> Printf.sprintf "pe %d" p
  | Tile t -> Printf.sprintf "tile %d" t
  | Link l -> Printf.sprintf "link %s" (link_to_string l)
  | Route nodes ->
    Printf.sprintf "route %s" (String.concat "->" (List.map string_of_int nodes))
  | Channel_cycle links ->
    Printf.sprintf "channels %s" (String.concat " => " (List.map link_to_string links))

(* Severity rank for the canonical report order: errors first. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort diagnostics =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = compare (location_to_string a.location) (location_to_string b.location) in
          if c <> 0 then c else compare a.message b.message)
    diagnostics

let count diagnostics =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diagnostics

let exit_code diagnostics =
  let errors, warnings, _ = count diagnostics in
  if errors > 0 then 2 else if warnings > 0 then 1 else 0

let pp ppf d =
  match d.location with
  | Nowhere ->
    Format.fprintf ppf "%s %s: %s" (severity_name d.severity) d.rule d.message
  | loc ->
    Format.fprintf ppf "%s %s [%s]: %s" (severity_name d.severity) d.rule
      (location_to_string loc) d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(routing = "xy") ?(faults = []) diagnostics =
  let diagnostics = sort diagnostics in
  let errors, warnings, infos = count diagnostics in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"nocsched/analysis/v2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"routing\": \"%s\",\n" (json_escape routing));
  Buffer.add_string buf
    (Printf.sprintf "  \"faults\": {\"count\": %d, \"elements\": [%s]},\n"
       (List.length faults)
       (String.concat ", "
          (List.map (fun f -> Printf.sprintf "\"%s\"" (json_escape f)) faults)));
  Buffer.add_string buf "  \"diagnostics\": [\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"rule\": \"%s\", \"severity\": \"%s\", \"location\": \"%s\", \
            \"message\": \"%s\"}%s\n"
           (json_escape d.rule)
           (severity_name d.severity)
           (json_escape (location_to_string d.location))
           (json_escape d.message)
           (if i = List.length diagnostics - 1 then "" else ",")))
    diagnostics;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d}\n"
       errors warnings infos);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
