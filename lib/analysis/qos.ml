(* Per-link bandwidth-guarantee feasibility (after Even & Fais,
   "Algorithms for NoC Design with Guaranteed QoS"). A flow is a
   sustained rate between two tiles; the checker splits each flow
   across the admissible route set of the platform's routing function
   and reports per-link utilization. XY gives the degenerate
   single-path case — every flow rides its one route — while the
   adaptive turn models can spread a flow over all of its minimal
   turn-legal routes, so the feasible region grows with the relation.
   The PR-3 bisection-bandwidth lint is the special case that only
   aggregates over the midline cut; this checker accounts for every
   directed link. *)

type flow = { id : int; src : int; dst : int; rate : float }
type link_load = { link : Noc_noc.Routing.link; capacity : float; allocated : float }
type report = { loads : link_load list; diagnostics : Diagnostic.t list }

let utilization l = l.allocated /. l.capacity

(* Allocation is greedy per flow, in flow-id order: repeatedly send as
   much as possible down the widest-residual-bottleneck admissible
   route (ties to the smallest next hop), until the flow is placed or
   every admissible route is saturated. Each round saturates at least
   one link of the flow's route DAG, so the loop is bounded by the DAG
   size. The strategy is deterministic and, for a single-valued
   relation, exact; for adaptive relations it is a water-filling
   heuristic — a "feasible" verdict is always sound (the allocation is
   a witness), an "infeasible" one names the saturated links that
   block the remainder. *)
let check platform flows =
  let topo = Noc_noc.Platform.topology platform in
  let routing = Noc_noc.Platform.routing platform in
  let n = Noc_noc.Platform.n_pes platform in
  let capacity = Noc_noc.Platform.link_bandwidth platform in
  let eps = 1e-9 *. capacity in
  let alloc = Array.make (n * n) 0. in
  let residual u v = capacity -. alloc.((u * n) + v) in
  (* Admissible next hops for a flow's pair: the routing relation on
     meshes/tori, the single BFS route on honeycombs. *)
  let next_hops ~src ~dst ~node =
    match topo with
    | Noc_noc.Topology.Honeycomb _ ->
      if node = dst then []
      else begin
        (* Suffixes of a BFS route are not BFS routes of their own
           source, so follow the full route of the pair. *)
        let rec after = function
          | a :: b :: _ when a = node -> [ b ]
          | _ :: rest -> after rest
          | [] -> []
        in
        after (Noc_noc.Routing.route topo ~src ~dst)
      end
    | Noc_noc.Topology.Mesh _ | Noc_noc.Topology.Torus _ ->
      Noc_noc.Turn_model.next_hops routing topo ~src ~node ~dst
  in
  let diagnostics = ref [] in
  let place (f : flow) =
    if f.src <> f.dst && f.rate > 0. then begin
      let remaining = ref f.rate in
      let exhausted = ref false in
      while !remaining > eps && not !exhausted do
        (* Widest-bottleneck route over the flow's (acyclic, minimal)
           route DAG: width of a node is the best over its admissible
           hops of min(link residual, width of the hop target). *)
        let width = Array.make n nan in
        let choice = Array.make n (-1) in
        let rec widest v =
          if v = f.dst then infinity
          else if not (Float.is_nan width.(v)) then width.(v)
          else begin
            let best = ref 0. and best_hop = ref (-1) in
            List.iter
              (fun a ->
                let w = Float.min (residual v a) (widest a) in
                if w > !best then begin
                  best := w;
                  best_hop := a
                end)
              (next_hops ~src:f.src ~dst:f.dst ~node:v);
            width.(v) <- !best;
            choice.(v) <- !best_hop;
            !best
          end
        in
        let w = widest f.src in
        if w <= eps then exhausted := true
        else begin
          let amount = Float.min !remaining w in
          let rec fill v =
            if v <> f.dst then begin
              let a = choice.(v) in
              alloc.((v * n) + a) <- alloc.((v * n) + a) +. amount;
              fill a
            end
          in
          fill f.src;
          remaining := !remaining -. amount
        end
      done;
      if !remaining > eps then begin
        (* Name the saturated links that block the remainder: every
           admissible link of the pair's DAG with no residual left. *)
        let saturated = ref [] in
        let seen = Array.make n false in
        let rec scan v =
          if v <> f.dst && not seen.(v) then begin
            seen.(v) <- true;
            List.iter
              (fun a ->
                if residual v a <= eps then
                  saturated :=
                    { Noc_noc.Routing.from_node = v; to_node = a } :: !saturated;
                scan a)
              (next_hops ~src:f.src ~dst:f.dst ~node:v)
          end
        in
        scan f.src;
        let saturated = List.sort_uniq compare (List.rev !saturated) in
        diagnostics :=
          Diagnostic.error ~rule:"qos/infeasible-flow" (Diagnostic.Edge f.id)
            "flow %d->%d needs %g bit/s but only %g fits the %s route set \
             (saturated: %s)"
            f.src f.dst f.rate (f.rate -. !remaining)
            (Noc_noc.Turn_model.name routing)
            (String.concat ", "
               (List.map
                  (Format.asprintf "%a" Noc_noc.Routing.pp_link)
                  saturated))
          :: !diagnostics;
        (* Charge the unallocatable remainder to the canonical route so
           the overload is visible as concrete per-link utilization. *)
        List.iter
          (fun (l : Noc_noc.Routing.link) ->
            alloc.((l.from_node * n) + l.to_node) <-
              alloc.((l.from_node * n) + l.to_node) +. !remaining)
          (Noc_noc.Platform.route_links platform ~src:f.src ~dst:f.dst)
      end
    end
  in
  List.iter place (List.sort (fun a b -> compare a.id b.id) flows);
  let loads =
    List.map
      (fun (l : Noc_noc.Routing.link) ->
        { link = l; capacity; allocated = alloc.((l.from_node * n) + l.to_node) })
      (Noc_noc.Platform.all_links platform)
  in
  let overloads =
    List.filter_map
      (fun l ->
        if l.allocated > l.capacity +. eps then
          Some
            (Diagnostic.error ~rule:"qos/link-overload" (Diagnostic.Link l.link)
               "link carries %g bit/s over capacity %g (utilization %.0f%%)"
               l.allocated l.capacity
               (100. *. utilization l))
        else None)
      loads
  in
  { loads; diagnostics = List.rev !diagnostics @ overloads }

(* The sustained-rate abstraction of a schedule: every network
   transaction's volume spread over the horizon — the latest task
   deadline when the CTG has any (the window the rates must fit into
   for the real-time guarantee), the makespan otherwise. *)
let flows_of_schedule ?horizon ctg schedule =
  let horizon =
    match horizon with
    | Some h ->
      if not (h > 0.) then invalid_arg "Qos.flows_of_schedule: horizon must be positive";
      h
    | None ->
      let deadline =
        List.fold_left
          (fun acc t ->
            match (Noc_ctg.Ctg.tasks ctg).(t).Noc_ctg.Task.deadline with
            | Some d -> Float.max acc d
            | None -> acc)
          0.
          (Noc_ctg.Ctg.deadline_tasks ctg)
      in
      if deadline > 0. then deadline else Noc_sched.Schedule.makespan schedule
  in
  if not (horizon > 0.) then
    invalid_arg "Qos.flows_of_schedule: schedule has no positive horizon";
  Array.to_list (Noc_sched.Schedule.transactions schedule)
  |> List.filter_map (fun (tx : Noc_sched.Schedule.transaction) ->
         let volume = (Noc_ctg.Ctg.edges ctg).(tx.edge).Noc_ctg.Edge.volume in
         if tx.src_pe = tx.dst_pe || volume <= 0. then None
         else
           Some
             {
               id = tx.edge;
               src = tx.src_pe;
               dst = tx.dst_pe;
               rate = volume /. horizon;
             })
