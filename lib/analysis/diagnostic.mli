(** Structured findings of the static-analysis passes.

    Every analyzer reports its findings as a list of diagnostics: a
    stable rule id (catalogued in DESIGN.md §7), a severity, a location
    in one of the three model layers and a human-readable message. The
    list is what the [nocsched analyze] command renders as text or as a
    machine-readable JSON report, and what drives its lint-style exit
    code (0 clean, 1 warnings, 2 errors). *)

type severity = Error | Warning | Info

type location =
  | Nowhere  (** A whole-model finding with no better anchor. *)
  | Task of int  (** A CTG task id. *)
  | Edge of int  (** A CTG edge id (also anchors its transaction). *)
  | Pe of int
  | Tile of int
  | Link of Noc_noc.Routing.link
  | Route of int list
      (** A concrete route (tile sequence), used as the counterexample
          witness of the [routing/*] rules. *)
  | Channel_cycle of Noc_noc.Routing.link list
      (** A cyclic chain of channel dependencies; the first link is
          repeated implicitly after the last. *)

type t = {
  rule : string;  (** Stable id, ["layer/finding"], e.g. ["sched/pe-overlap"]. *)
  severity : severity;
  location : location;
  message : string;
}

val error : rule:string -> location -> ('a, unit, string, t) format4 -> 'a
val warning : rule:string -> location -> ('a, unit, string, t) format4 -> 'a
val info : rule:string -> location -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
val location_to_string : location -> string

val sort : t list -> t list
(** Canonical report order: severity (errors first), then rule id,
    then location, then message. [to_json] and the CLI both emit
    diagnostics in this order, which makes reports stable across runs. *)

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val exit_code : t list -> int
(** Lint-style: [2] if any error, else [1] if any warning, else [0]. *)

val pp : Format.formatter -> t -> unit
(** ["severity rule [location]: message"]. *)

val to_json : ?routing:string -> ?faults:string list -> t list -> string
(** The machine-readable report (schema [nocsched/analysis/v2]):
    diagnostics in {!sort} order plus an error/warning/info summary.
    The v2 header records the analyzed routing function ([routing],
    default ["xy"]) and a fault-set summary ([faults], the canonical
    fault strings the analysis ran under, default empty). v2 is a
    strict superset of v1 — diagnostics and summary are unchanged — so
    v1 readers that ignore unknown top-level fields keep working.
    Documented in DESIGN.md §7 and §12. *)
