(** Dally–Seitz channel-dependency graphs.

    A routing function is deadlock-free exactly when its channel
    dependency graph is acyclic (Dally & Seitz 1987): the vertices are
    the directed physical channels and there is an arc from channel [a]
    to channel [b] whenever some route uses [b] immediately after [a] —
    a packet holding [a] may then wait for [b]. Dimension-ordered XY
    routing on a mesh is deadlock-free by construction; the degraded BFS
    detour routes of {!Noc_noc.Degraded} carry no such guarantee, which
    is what this analyzer exists to check. *)

type t

val of_routes : int list list -> t
(** Builds the CDG of a route set. Each route is the ordered list of
    routers it visits; routes with fewer than two nodes contribute no
    channels. The construction is deterministic: channels and
    dependencies are kept in first-seen order but compared canonically
    by endpoint pair. *)

val of_relation :
  n_nodes:int -> next:(src:int -> dst:int -> node:int -> int list) -> t
(** Builds the CDG of a route {e relation}: [next ~src ~dst ~node] must
    enumerate the admissible next hops at [node] when routing
    [src -> dst] (empty exactly at [dst]). For every ordered pair the
    forward closure of the relation is walked, recording one channel
    per admissible hop and one dependency per admissible consecutive
    hop pair — covering all routes the relation admits without
    enumerating them (adaptive models admit exponentially many).
    Acyclicity of the result therefore proves the {e whole} adaptive
    routing function deadlock-free, not just one route per pair. For a
    single-valued relation this coincides with {!of_routes} over the
    per-pair routes. Deterministic and canonical like {!of_routes}. *)

val n_channels : t -> int
(** Channels used by at least one route. *)

val n_dependencies : t -> int
(** Distinct channel-to-channel dependency arcs. *)

val find_cycle : t -> Noc_noc.Routing.link list option
(** A cycle of channel dependencies if one exists: the returned channels
    each depend on the next, and the last depends on the first. The
    search is deterministic (smallest channel first), so equal route
    sets report equal cycles. [None] means the route set is provably
    deadlock-free. *)

val is_acyclic : t -> bool
(** [find_cycle t = None]. *)
