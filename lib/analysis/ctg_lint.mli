(** CTG lint: feasibility and hygiene checks on task graphs.

    Two entry points: {!check} lints a validated {!Noc_ctg.Ctg.t}, and
    {!check_raw} additionally covers the structural defects
    [Noc_ctg.Ctg.make] would reject (dangling or duplicate edges,
    cycles), reporting them as diagnostics instead of a single opaque
    error string. Rules (catalogued in DESIGN.md §7):

    - [ctg/empty-graph] (error): no tasks at all.
    - [ctg/pe-count-mismatch] (error): a task's cost arrays disagree
      with the expected PE count.
    - [ctg/dangling-edge] (error): an edge endpoint names no task.
    - [ctg/duplicate-edge] (error): two arcs connect the same task pair.
    - [ctg/cycle] (error): the dependency graph is not acyclic.
    - [ctg/unreachable-task] (warning): a task with no incident arcs in
      a multi-task graph — nothing in the application's dataflow ever
      triggers or consumes it.
    - [ctg/no-feasible-variant] (error): no PE variant fits inside the
      task's own release-to-deadline window, so every placement misses.
    - [ctg/deadline-infeasible] (error): the level-structured critical
      path into the task (fastest variants, communication ignored — a
      true lower bound, the paper's Sec. 4 levels reused as an analysis)
      already exceeds its deadline. *)

val check_raw :
  n_pes:int ->
  tasks:Noc_ctg.Task.t array ->
  edges:Noc_ctg.Edge.t array ->
  Diagnostic.t list
(** Lints raw task/edge arrays that may not form a valid CTG. Semantic
    rules (feasibility, reachability) run only when the structure is
    sound enough to interpret. *)

val check : Noc_ctg.Ctg.t -> Diagnostic.t list
(** Lints a validated graph (the structural rules then cannot fire). *)
