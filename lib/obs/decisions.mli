(** EAS placement decision log.

    One record per committed placement: the candidate PE set with their
    tentative finish times F(i,k), the chosen PE and the rule that chose
    it ([deadline] = paper Rule 3, worst violator to its fastest PE;
    [regret] = Rule 4, largest energy regret). Disabled recording is a
    single branch; the caller passes the F(i,k) array it already has and
    it is copied only when the log is live.

    Determinism contract: records carry a (run label, sequence) pair —
    the label is set by {!with_run} around each campaign trial, the
    sequence counts records within the current domain's run — and
    {!export_jsonl} orders by (run, seq). Campaign trials label their
    runs uniquely (seed-derived), so the export is bit-identical at
    every [--jobs] count. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_run : string -> (unit -> 'a) -> 'a
(** [with_run label f] labels every record made by [f] (on this domain)
    with [label] and restarts the sequence counter; the previous context
    is restored afterwards, also on exceptions. *)

val record :
  task:int ->
  rule:string ->
  chosen:int ->
  budgeted_deadline:float ->
  finishes:float array ->
  unit
(** [finishes.(k)] is F(task, k); [infinity] marks PEs the task cannot
    run on (failed, or disconnected from a predecessor). *)

val count : unit -> int

val export_jsonl : unit -> string
(** One JSON object per line (schema [nocsched/decisions/v1]), ordered
    by (run, seq):
    [{"run": ..., "seq": ..., "task": ..., "rule": ..., "chosen": ...,
      "chosen_f": ..., "budgeted_deadline": ...,
      "candidates": [{"pe": ..., "f": ...}, ...]}]
    Non-finite F values are encoded as the strings ["inf"]/["nan"]. *)

val reset : unit -> unit
