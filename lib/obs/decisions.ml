let enabled = Atomic.make false
let set_enabled v = Atomic.set enabled v
let is_enabled () = Atomic.get enabled

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type record = {
  run : string;
  seq : int;
  task : int;
  rule : string;
  chosen : int;
  budgeted_deadline : float;
  finishes : float array;
}

let lock = Mutex.create ()
let records : record list ref = ref []

(* Current (run label, next sequence number) of this domain. *)
let context_key : (string ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref "", ref 0))

let with_run label f =
  let run, seq = Domain.DLS.get context_key in
  let saved_run = !run and saved_seq = !seq in
  run := label;
  seq := 0;
  Fun.protect
    ~finally:(fun () ->
      run := saved_run;
      seq := saved_seq)
    f

let record ~task ~rule ~chosen ~budgeted_deadline ~finishes =
  if Atomic.get enabled then begin
    let run, seq = Domain.DLS.get context_key in
    let r =
      {
        run = !run;
        seq = !seq;
        task;
        rule;
        chosen;
        budgeted_deadline;
        finishes = Array.copy finishes;
      }
    in
    incr seq;
    with_lock lock (fun () -> records := r :: !records)
  end

let count () = with_lock lock (fun () -> List.length !records)
let reset () = with_lock lock (fun () -> records := [])

let record_json r =
  let candidates =
    String.concat ", "
      (Array.to_list
         (Array.mapi
            (fun pe f -> Printf.sprintf "{\"pe\": %d, \"f\": %s}" pe (Json.number f))
            r.finishes))
  in
  Printf.sprintf
    "{\"run\": %s, \"seq\": %d, \"task\": %d, \"rule\": %s, \"chosen\": %d, \
     \"chosen_f\": %s, \"budgeted_deadline\": %s, \"candidates\": [%s]}"
    (Json.escape_string r.run) r.seq r.task (Json.escape_string r.rule) r.chosen
    (Json.number r.finishes.(r.chosen))
    (Json.number r.budgeted_deadline)
    candidates

let export_jsonl () =
  let sorted =
    List.sort
      (fun a b ->
        let c = compare a.run b.run in
        if c <> 0 then c else compare a.seq b.seq)
      (with_lock lock (fun () -> !records))
  in
  String.concat "" (List.map (fun r -> record_json r ^ "\n") sorted)
