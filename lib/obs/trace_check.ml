let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

let number_field name obj =
  match Json.member name obj with
  | Some (Json.Number f) -> Ok f
  | Some _ -> error "field %S is not a number" name
  | None -> error "missing field %S" name

let string_field name obj =
  match Json.member name obj with
  | Some (Json.String s) -> Ok s
  | Some _ -> error "field %S is not a string" name
  | None -> error "missing field %S" name

type span = { pid : int; t0 : float; t1 : float; name : string }

(* Timestamps come through a float JSON round-trip; tolerate tiny
   overlap when deciding whether two spans nest. *)
let eps = 1e-6

let check_event ~index event =
  let* () =
    match event with Json.Obj _ -> Ok () | _ -> error "event %d is not an object" index
  in
  let* ph = string_field "ph" event in
  let* name = string_field "name" event in
  let* () =
    match ph with
    | "X" | "i" | "M" | "C" -> Ok ()
    | ph -> error "event %d (%S) has unsupported phase %S" index name ph
  in
  if ph = "M" then Ok None
  else
    let* pid = number_field "pid" event in
    let* ts = number_field "ts" event in
    match ph with
    | "X" ->
      let* dur = number_field "dur" event in
      if dur < 0. then error "span %d (%S) has negative dur %g" index name dur
      else Ok (Some { pid = int_of_float pid; t0 = ts; t1 = ts +. dur; name })
    | _ ->
      ignore ts;
      Ok None

(* Sort one pid's spans by (start asc, duration desc) and sweep with a
   stack: every span must start inside (or after) the innermost open
   span, and must not outlive it. *)
let check_nesting pid spans =
  let spans =
    List.sort
      (fun a b ->
        let c = compare a.t0 b.t0 in
        if c <> 0 then c else compare b.t1 a.t1)
      spans
  in
  let rec sweep stack = function
    | [] -> Ok ()
    | span :: rest -> (
      match stack with
      | top :: deeper when span.t0 >= top.t1 -. eps -> sweep deeper (span :: rest)
      | top :: _ when span.t1 > top.t1 +. eps ->
        error "pid %d: span %S [%g, %g] straddles enclosing span %S [%g, %g]" pid
          span.name span.t0 span.t1 top.name top.t0 top.t1
      | _ -> sweep (span :: stack) rest)
  in
  sweep [] spans

let group_by_pid spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let existing = try Hashtbl.find tbl s.pid with Not_found -> [] in
      Hashtbl.replace tbl s.pid (s :: existing))
    spans;
  List.sort compare (Hashtbl.fold (fun pid ss acc -> (pid, ss) :: acc) tbl [])

let check ?(require_counters = false) text =
  let* doc =
    match Json.parse text with
    | Ok doc -> Ok doc
    | Error e -> error "not valid JSON: %s" e
  in
  let* events =
    match Json.member "traceEvents" doc with
    | Some (Json.List events) -> Ok events
    | Some _ -> Error "\"traceEvents\" is not an array"
    | None -> Error "missing \"traceEvents\""
  in
  let* spans =
    List.fold_left
      (fun acc event ->
        let* acc, index = acc in
        let* span = check_event ~index event in
        Ok ((match span with Some s -> s :: acc | None -> acc), index + 1))
      (Ok ([], 0))
      events
    |> Result.map fst
  in
  let* () =
    List.fold_left
      (fun acc (pid, spans) ->
        let* () = acc in
        check_nesting pid spans)
      (Ok ())
      (group_by_pid spans)
  in
  let* () =
    match Json.member "otherData" doc with
    | Some other -> (
      match Json.member "schema" other with
      | Some (Json.String "nocsched/trace/v1") -> Ok ()
      | Some (Json.String s) -> error "unexpected schema %S" s
      | Some _ | None -> Error "otherData has no \"schema\" string"
    )
    | None -> Error "missing \"otherData\""
  in
  if not require_counters then Ok ()
  else
    let has_counter_event =
      List.exists
        (fun e -> match Json.member "ph" e with Some (Json.String "C") -> true | _ -> false)
        events
    in
    let* () =
      if has_counter_event then Ok ()
      else Error "no \"C\" counter event (required)"
    in
    match Json.member "otherData" doc with
    | Some other -> (
      match Json.member "counters" other with
      | Some (Json.Obj (_ :: _)) -> Ok ()
      | Some _ | None -> Error "otherData.counters is missing or empty (required)")
    | None -> Error "missing \"otherData\""

let check_file ?require_counters path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> check ?require_counters text
  | exception Sys_error e -> Error e
