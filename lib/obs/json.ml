type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Number _ | String _ | List _ -> None

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number f =
  if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_nan f then "\"nan\""
  else Printf.sprintf "%.17g" f

(* Shortest decimal form that parses back to exactly [f]. %.17g always
   round-trips for doubles; most values need far fewer digits. *)
let shortest_number f =
  if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_nan f then "\"nan\""
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (shortest_number f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      (* Canonical key order; the sort is stable so duplicate keys (which
         the parser accepts) keep their relative order. *)
      let fields =
        List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape_string key);
          Buffer.add_char buf ':';
          go value)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Fail of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub text !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub text !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some code -> code
              | None -> fail "bad \\u escape"
            in
            (* Byte-wise UTF-8 encoding; enough for the ASCII traces we
               emit and check. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value, found end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | Some c -> fail (Printf.sprintf "expected , or } in object, found %c" c)
          | None -> fail "unterminated object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | Some c -> fail (Printf.sprintf "expected , or ] in array, found %c" c)
          | None -> fail "unterminated array"
        in
        List (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after the document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)
