(** Structural validator for exported Chrome traces (schema
    [nocsched/trace/v1]).

    Checks, in order: the document parses; [traceEvents] is an array of
    objects each carrying a valid phase with the fields that phase
    requires; every ["X"] span has a non-negative [dur]; spans are
    well-nested per pid (each domain's spans form a forest — two spans
    on one domain either nest or are disjoint, up to a small float
    tolerance); [otherData.schema] names this schema. With
    [~require_counters:true] (default [false]) the trace must also
    contain at least one ["C"] counter event and a non-empty
    [otherData.counters] object. *)

val check : ?require_counters:bool -> string -> (unit, string) result
(** [check text] validates a trace document; the error is a one-line
    human-readable reason. *)

val check_file : ?require_counters:bool -> string -> (unit, string) result
