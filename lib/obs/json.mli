(** Minimal JSON support: a hand-rolled parser (no external
    dependencies) for the trace schema checker and tests, plus the
    escaping helpers the exporters share. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict RFC-8259 subset: objects, arrays, strings (with the standard
    escapes incl. [\uXXXX], decoded byte-wise without surrogate-pair
    recombination), numbers, [true]/[false]/[null]. Trailing garbage is
    an error. Errors carry the byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_string : t -> string
(** Canonical printer: object keys sorted (byte order, duplicates kept
    in input order), no insignificant whitespace, floats in the shortest
    [%.15g]/[%.16g]/[%.17g] form that round-trips through
    [float_of_string], integral floats below [1e16] printed without a
    fractional part. Two structurally equal documents therefore print
    identically, so printed forms can be compared byte for byte (the
    serve protocol's cache-identity tests rely on this).
    [parse (to_string v)] is [Ok v] for every [v] free of non-finite
    numbers; infinities and NaN print as the strings ["inf"], ["-inf"]
    and ["nan"] (the {!number} convention), which parse back as
    [String]s. *)

val escape_string : string -> string
(** [escape_string s] is [s] as a quoted JSON string literal. *)

val number : float -> string
(** A finite float as a JSON number ([%.17g], round-trippable);
    infinities and NaN — JSON has no literal for them — are encoded as
    the strings ["inf"], ["-inf"] and ["nan"]. *)
