(** Minimal JSON support: a hand-rolled parser (no external
    dependencies) for the trace schema checker and tests, plus the
    escaping helpers the exporters share. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict RFC-8259 subset: objects, arrays, strings (with the standard
    escapes incl. [\uXXXX], decoded byte-wise without surrogate-pair
    recombination), numbers, [true]/[false]/[null]. Trailing garbage is
    an error. Errors carry the byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val escape_string : string -> string
(** [escape_string s] is [s] as a quoted JSON string literal. *)

val number : float -> string
(** A finite float as a JSON number ([%.17g], round-trippable);
    infinities and NaN — JSON has no literal for them — are encoded as
    the strings ["inf"], ["-inf"] and ["nan"]. *)
