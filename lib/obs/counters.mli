(** Counter and histogram registry for scheduler internals.

    Counters are monotonic, domain-safe ([Atomic.t] cells) and cheap: a
    disabled increment is a single branch on the global enabled flag.
    Only *deterministic* quantities are counted — numbers of tentative
    F(i,k) evaluations, snapshots, transactions — so counter totals are
    bit-identical at every [--jobs] count (sums commute). Wall-clock
    quantities go in histograms, which are excluded from determinism
    comparisons.

    Handles are interned by name: [counter "x"] twice returns the same
    cell, so instrumented modules declare their handles at module
    initialisation and the registry survives resets. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

type counter

val counter : string -> counter
(** Find or create the counter registered under [name]. *)

val name : counter -> string
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val snapshot : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name.
    Counters that were never incremented report 0. *)

type histogram

val histogram : string -> histogram
(** Find or create the histogram registered under [name]. *)

val observe : histogram -> float -> unit
(** Record a sample (no-op while disabled). Thread-safe; intended for
    coarse events (phase durations), not per-F(i,k) hot paths. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summaries : unit -> (string * summary) list
(** Non-empty histograms with their summaries, sorted by name. Samples
    are sorted before the percentiles are taken, so a summary depends
    only on the sample multiset, not on arrival order. *)

val reset : unit -> unit
(** Zero every counter and drop every histogram's samples; handles stay
    valid. *)
