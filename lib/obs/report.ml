let ms_cell v = Noc_util.Text_table.float_cell ~decimals:3 v

let render () =
  let buf = Buffer.create 1024 in
  let counters = Counters.snapshot () in
  Buffer.add_string buf "observability counters\n";
  if counters = [] then Buffer.add_string buf "  (no counters recorded)\n"
  else
    Buffer.add_string buf
      (Noc_util.Text_table.render ~header:[ "counter"; "count" ]
         (List.map (fun (name, v) -> [ name; string_of_int v ]) counters));
  let histograms = Counters.summaries () in
  Buffer.add_string buf "\nspan timings\n";
  if histograms = [] then
    Buffer.add_string buf "  (no spans recorded; pass --trace or enable tracing)\n"
  else
    Buffer.add_string buf
      (Noc_util.Text_table.render
         ~header:[ "span"; "count"; "p50 ms"; "p95 ms"; "p99 ms"; "max ms" ]
         (List.map
            (fun (name, (s : Counters.summary)) ->
              [
                name; string_of_int s.count; ms_cell s.p50; ms_cell s.p95;
                ms_cell s.p99; ms_cell s.max;
              ])
            histograms));
  if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '\n' then
    Buffer.add_char buf '\n';
  Buffer.contents buf
