type level = Error | Warn | Info | Debug

let to_int = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let of_int = function 0 -> Error | 1 -> Warn | 2 -> Info | _ -> Debug

let to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let current = Atomic.make (to_int Info)

let set_level l = Atomic.set current (to_int l)
let level () = of_int (Atomic.get current)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "quiet" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let logf lvl fmt =
  if to_int lvl <= Atomic.get current then
    Printf.kfprintf
      (fun oc ->
        output_char oc '\n';
        flush oc)
      stderr
      ("nocsched: [%s] " ^^ fmt)
      (to_string lvl)
  else Printf.ifprintf stderr ("nocsched: [%s] " ^^ fmt) (to_string lvl)

let errorf fmt = logf Error fmt
let warnf fmt = logf Warn fmt
let infof fmt = logf Info fmt
let debugf fmt = logf Debug fmt

let init_from_env () =
  match Sys.getenv_opt "NOCSCHED_LOG" with
  | None -> ()
  | Some s -> (
    match of_string s with
    | Some l -> set_level l
    | None -> warnf "NOCSCHED_LOG=%S: expected error, warn, info or debug" s)
