type value = String of string | Int of int | Float of float | Bool of bool

type phase = Complete | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;  (* µs since the trace epoch *)
  dur : float;  (* µs; 0 for instants *)
  args : (string * value) list;
}

let enabled = Atomic.make false
let epoch = Atomic.make 0.

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Per-domain buffers: each domain appends to its own event list (no
   lock on the hot path), and the global registry only grows under the
   lock when a domain first records. Buffers of joined domains stay
   registered so their spans survive until export/reset. *)
type buffer = { domain : int; mutable events : event list }

let buffers_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { domain = (Domain.self () :> int); events = [] } in
      with_lock buffers_lock (fun () -> buffers := b :: !buffers);
      b)

let set_enabled v =
  if v then Atomic.set epoch (Noc_util.Clock.wall_s ());
  Atomic.set enabled v

let is_enabled () = Atomic.get enabled

let now_us () = (Noc_util.Clock.wall_s () -. Atomic.get epoch) *. 1e6

let no_args () = []

let span ?(cat = "sched") ?(args = no_args) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let buffer = Domain.DLS.get buffer_key in
    let t0 = now_us () in
    let record () =
      let t1 = now_us () in
      buffer.events <-
        { name; cat; phase = Complete; ts = t0; dur = t1 -. t0; args = args () }
        :: buffer.events;
      (* Phase-time distribution for the --stats report; milliseconds. *)
      Counters.observe (Counters.histogram name) ((t1 -. t0) /. 1e3)
    in
    match f () with
    | v ->
      record ();
      v
    | exception e ->
      record ();
      raise e
  end

let instant ?(cat = "mark") ?(args = no_args) name =
  if Atomic.get enabled then begin
    let buffer = Domain.DLS.get buffer_key in
    buffer.events <-
      { name; cat; phase = Instant; ts = now_us (); dur = 0.; args = args () }
      :: buffer.events
  end

let snapshot_buffers () =
  with_lock buffers_lock (fun () ->
      List.map (fun b -> (b.domain, List.rev b.events)) !buffers)

let event_count () =
  List.fold_left
    (fun acc (_, events) -> acc + List.length events)
    0 (snapshot_buffers ())

let reset () =
  with_lock buffers_lock (fun () ->
      List.iter (fun b -> b.events <- []) !buffers)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON export.                                     *)

let value_json = function
  | String s -> Json.escape_string s
  | Int i -> string_of_int i
  | Float f -> Json.number f
  | Bool b -> string_of_bool b

let args_json args =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Json.escape_string k ^ ": " ^ value_json v) args)
  ^ "}"

let event_json ~domain e =
  let common =
    Printf.sprintf "\"name\": %s, \"cat\": %s, \"pid\": %d, \"tid\": %d, \"ts\": %s"
      (Json.escape_string e.name) (Json.escape_string e.cat) domain domain
      (Json.number e.ts)
  in
  match e.phase with
  | Complete ->
    Printf.sprintf "{\"ph\": \"X\", %s, \"dur\": %s, \"args\": %s}" common
      (Json.number e.dur) (args_json e.args)
  | Instant ->
    Printf.sprintf "{\"ph\": \"i\", %s, \"s\": \"t\", \"args\": %s}" common
      (args_json e.args)

let export () =
  let per_domain =
    List.sort compare (List.filter (fun (_, es) -> es <> []) (snapshot_buffers ()))
  in
  let counters = Counters.snapshot () in
  let histograms = Counters.summaries () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n\"traceEvents\": [\n";
  let lines = ref [] in
  List.iter
    (fun (domain, events) ->
      lines :=
        Printf.sprintf
          "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, \"tid\": %d, \
           \"ts\": 0, \"args\": {\"name\": \"domain %d\"}}"
          domain domain domain
        :: !lines;
      List.iter (fun e -> lines := event_json ~domain e :: !lines) events)
    per_domain;
  (* One final counter event so Perfetto renders the totals as a track. *)
  let last_ts =
    List.fold_left
      (fun acc (_, events) ->
        List.fold_left (fun acc e -> Float.max acc (e.ts +. e.dur)) acc events)
      0. per_domain
  in
  if counters <> [] then
    lines :=
      Printf.sprintf
        "{\"ph\": \"C\", \"name\": \"nocsched counters\", \"pid\": 0, \"tid\": 0, \
         \"ts\": %s, \"args\": %s}"
        (Json.number last_ts)
        (args_json (List.map (fun (k, v) -> (k, Int v)) counters))
      :: !lines;
  Buffer.add_string buf (String.concat ",\n" (List.rev !lines));
  Buffer.add_string buf "\n],\n\"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string buf "\"otherData\": {\n  \"schema\": \"nocsched/trace/v1\",\n";
  Buffer.add_string buf "  \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Json.escape_string k ^ ": " ^ string_of_int v)
          counters));
  Buffer.add_string buf "},\n  \"histograms\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, (s : Counters.summary)) ->
            Printf.sprintf
              "%s: {\"count\": %d, \"min\": %s, \"max\": %s, \"mean\": %s, \
               \"p50\": %s, \"p95\": %s, \"p99\": %s}"
              (Json.escape_string k) s.Counters.count (Json.number s.Counters.min)
              (Json.number s.Counters.max) (Json.number s.Counters.mean)
              (Json.number s.Counters.p50) (Json.number s.Counters.p95)
              (Json.number s.Counters.p99))
          histograms));
  Buffer.add_string buf "}\n}\n}\n";
  Buffer.contents buf
