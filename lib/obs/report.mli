(** One-screen [--stats] summary: the counter registry and span-time
    histograms rendered as {!Noc_util.Text_table} tables. *)

val render : unit -> string
(** Counter table (name | count) followed by a histogram table
    (span | count | p50 ms | p95 ms | max ms); empty registries render
    a short placeholder line instead of an empty table. *)
