(** Leveled logger for status and progress reporting.

    Everything goes to stderr so stdout stays machine-clean: tables,
    metrics, JSON reports and Gantt charts are results and belong on
    stdout; "scheduler runtime", "certified", "wrote FILE" are status
    and belong here.

    The level is stored in an [Atomic.t] and may be read from any
    domain; campaign workers logging at [Debug] interleave at line
    granularity (each message is a single [output_string]). *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val of_string : string -> level option
(** Accepts ["error"]/["quiet"], ["warn"]/["warning"], ["info"],
    ["debug"] (case-insensitive). *)

val to_string : level -> string

val init_from_env : unit -> unit
(** Apply [NOCSCHED_LOG] when set; an unrecognised value is reported at
    the current level and otherwise ignored. *)

val errorf : ('a, out_channel, unit) format -> 'a
val warnf : ('a, out_channel, unit) format -> 'a
val infof : ('a, out_channel, unit) format -> 'a
val debugf : ('a, out_channel, unit) format -> 'a
