let enabled = Atomic.make false
let set_enabled v = Atomic.set enabled v
let is_enabled () = Atomic.get enabled

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* One mutex guards both registries; lookups happen at module
   initialisation of the instrumented libraries (and per span exit for
   histograms), never inside per-F(i,k) hot loops. *)
let registry_lock = Mutex.create ()

type counter = { cname : string; cell : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c)

let name c = c.cname
let incr c = if Atomic.get enabled then Atomic.incr c.cell
let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let snapshot () =
  with_lock registry_lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters [])
  |> List.sort compare

type histogram = { hname : string; lock : Mutex.t; mutable samples : float list }

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h = { hname = name; lock = Mutex.create (); samples = [] } in
        Hashtbl.add histograms name h;
        h)

let observe h v =
  if Atomic.get enabled then
    with_lock h.lock (fun () -> h.samples <- v :: h.samples)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarise samples =
  let arr = Array.of_list samples in
  Array.sort Float.compare arr;
  {
    count = Array.length arr;
    min = Noc_util.Stats.min_value arr;
    max = Noc_util.Stats.max_value arr;
    mean = Noc_util.Stats.mean arr;
    p50 = Noc_util.Stats.percentile_sorted arr ~p:50.;
    p95 = Noc_util.Stats.percentile_sorted arr ~p:95.;
    p99 = Noc_util.Stats.percentile_sorted arr ~p:99.;
  }

let summaries () =
  with_lock registry_lock (fun () ->
      Hashtbl.fold (fun _ h acc -> (h.hname, h.samples) :: acc) histograms [])
  |> List.filter_map (fun (name, samples) ->
         match samples with
         | [] -> None
         | _ :: _ -> Some (name, summarise samples))
  |> List.sort compare

let reset () =
  with_lock registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h -> with_lock h.lock (fun () -> h.samples <- []))
        histograms)
