(** Span/event tracer with Chrome trace-event export.

    Spans are nestable timed regions with structured attributes. Each
    domain records into its own buffer (registered through
    [Domain.DLS]), so spans from {!Noc_util.Pool} workers carry their
    domain id and the exported trace shows one Chrome "process" per
    domain — Perfetto and [chrome://tracing] render the campaign's
    domain pool as parallel lanes.

    Cost model: a disabled [span] is one branch on an [Atomic.t] flag
    plus the call; attributes are built by a thunk that is only forced
    when the span is recorded. Span durations also feed a histogram
    under the span's name (see {!Counters.summaries}) so [--stats] can
    report p50/p95/max phase times without separate instrumentation. *)

type value = String of string | Int of int | Float of float | Bool of bool

val set_enabled : bool -> unit
(** Enabling (re)starts the trace epoch: subsequent timestamps are
    relative to this instant. *)

val is_enabled : unit -> bool

val span : ?cat:string -> ?args:(unit -> (string * value) list) -> string ->
  (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a timed span. The span is recorded
    even when [f] raises (the exception is re-raised). Spans on one
    domain are well-nested by construction. *)

val instant : ?cat:string -> ?args:(unit -> (string * value) list) -> string ->
  unit
(** A zero-duration marker event. *)

val event_count : unit -> int
(** Number of events recorded since the last reset, over all domains. *)

val export : unit -> string
(** The recorded trace as Chrome trace-event JSON (schema
    [nocsched/trace/v1]): object format with a [traceEvents] array of
    ["X"]/["i"] events ([pid] = [tid] = domain id), ["M"] process-name
    metadata per domain, one ["C"] counter event carrying the final
    {!Counters.snapshot}, and [otherData] holding the schema name plus
    counter and histogram summaries. Call after parallel sections have
    been joined. *)

val reset : unit -> unit
(** Drop all recorded events (buffers of finished domains included). *)
