module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state

let effective_deadlines ctg =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let order = Noc_ctg.Ctg.topological_order ctg in
  let ed = Array.make n infinity in
  for idx = n - 1 downto 0 do
    let i = order.(idx) in
    let own =
      match (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.deadline with
      | None -> infinity
      | Some d -> d
    in
    let via_succs =
      List.fold_left
        (fun acc j ->
          let min_exec =
            Noc_util.Stats.min_value (Noc_ctg.Ctg.task ctg j).Noc_ctg.Task.exec_times
          in
          Float.min acc (ed.(j) -. min_exec))
        infinity (Noc_ctg.Ctg.succs ctg i)
    in
    ed.(i) <- Float.min own via_succs
  done;
  ed

type stats = { runtime_seconds : float; misses : int }
type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

let schedule ?comm_model platform ctg =
  let t0 = Noc_util.Clock.wall_s () in
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let ed = effective_deadlines ctg in
  let state = Resource_state.create platform in
  let placements = Array.make n None in
  let transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None in
  let unscheduled_preds = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i)) in
  let module Ready = Set.Make (struct
    type t = float * int  (* effective deadline, task *)

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  for i = 0 to n - 1 do
    if unscheduled_preds.(i) = 0 then ready := Ready.add (ed.(i), i) !ready
  done;
  for _ = 1 to n do
    let ((_, i) as elt) = Ready.min_elt !ready in
    ready := Ready.remove elt !ready;
    let pendings =
      List.map
        (fun (e : Noc_ctg.Edge.t) ->
          match placements.(e.src) with
          | None -> assert false
          | Some (p : Schedule.placement) ->
            {
              Comm_sched.edge = e.id;
              src_pe = p.pe;
              sender_finish = p.finish;
              bits = e.volume;
            })
        (Noc_ctg.Ctg.in_edges ctg i)
    in
    (* Earliest finish over all PEs, each evaluated tentatively. *)
    let task = Noc_ctg.Ctg.task ctg i in
    let ready_after drt =
      match task.Noc_ctg.Task.release with
      | None -> drt
      | Some release -> Float.max drt release
    in
    let best = ref None in
    for k = 0 to n_pes - 1 do
      let mark = Resource_state.mark state in
      let _, drt = Comm_sched.schedule_incoming ?model:comm_model state pendings ~dst_pe:k in
      let exec_time = task.Noc_ctg.Task.exec_times.(k) in
      let start = Resource_state.earliest_pe_gap state ~pe:k ~after:(ready_after drt) ~duration:exec_time in
      Resource_state.rollback state mark;
      let finish = start +. exec_time in
      match !best with
      | Some (best_finish, _) when best_finish <= finish -> ()
      | Some _ | None -> best := Some (finish, k)
    done;
    let k = match !best with Some (_, k) -> k | None -> assert false in
    (* Commit on the winning PE. *)
    let placed, drt = Comm_sched.schedule_incoming ?model:comm_model state pendings ~dst_pe:k in
    let exec_time = task.Noc_ctg.Task.exec_times.(k) in
    let start = Resource_state.earliest_pe_gap state ~pe:k ~after:(ready_after drt) ~duration:exec_time in
    Resource_state.reserve_pe state ~pe:k
      (Noc_util.Interval.make ~start ~stop:(start +. exec_time));
    placements.(i) <- Some { Schedule.task = i; pe = k; start; finish = start +. exec_time };
    List.iter (fun (tr : Schedule.transaction) -> transactions.(tr.edge) <- Some tr) placed;
    List.iter
      (fun j ->
        unscheduled_preds.(j) <- unscheduled_preds.(j) - 1;
        if unscheduled_preds.(j) = 0 then ready := Ready.add (ed.(j), j) !ready)
      (Noc_ctg.Ctg.succs ctg i)
  done;
  let schedule =
    Schedule.make
      ~placements:(Array.map Option.get placements)
      ~transactions:(Array.map Option.get transactions)
  in
  let misses =
    Array.fold_left
      (fun acc (task : Noc_ctg.Task.t) ->
        match task.deadline with
        | None -> acc
        | Some d ->
          if (Schedule.placement schedule task.id).Schedule.finish > d +. 1e-9 then
            acc + 1
          else acc)
      0 (Noc_ctg.Ctg.tasks ctg)
  in
  { schedule; stats = { runtime_seconds = Noc_util.Clock.wall_s () -. t0; misses } }

let name = "EDF"
