(** Baseline: a standard Earliest-Deadline-First list scheduler.

    The comparison scheduler of the paper's Sec. 6. Deadlines are
    propagated backwards through the graph so every task has an effective
    deadline

    {[ ed(i) = min(d(i), min over successors j of (ed(j) - min_k r_j^k)) ]}

    (tasks from which no deadline is reachable sort last). At each step
    the ready task with the earliest effective deadline is scheduled on
    the PE where it finishes earliest — the classic performance-greedy,
    energy-oblivious policy. It uses the same contention-aware
    communication machinery as EAS so the comparison isolates the
    optimisation objective, exactly as the paper intends. *)

val effective_deadlines : Noc_ctg.Ctg.t -> float array
(** The propagated deadlines ([infinity] when unconstrained). *)

type stats = { runtime_seconds : float; misses : int }

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

val schedule :
  ?comm_model:Noc_sched.Comm_sched.model ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  outcome

val name : string
(** ["EDF"]. *)
