type model = Contention_aware | Fixed_delay

type pending = { edge : int; src_pe : int; sender_finish : float; bits : float }

let c_transactions = Noc_obs.Counters.counter "sched.comm.transactions"

let place ?(model = Contention_aware) ?degraded state pending ~dst_pe =
  Noc_obs.Counters.incr c_transactions;
  let platform = Resource_state.platform state in
  let src_pe = pending.src_pe in
  if src_pe = dst_pe then
    {
      Schedule.edge = pending.edge;
      src_pe;
      dst_pe;
      route = [ src_pe ];
      start = pending.sender_finish;
      finish = pending.sender_finish;
    }
  else begin
    (* Both hit the platform's (or degraded view's) memoized route
       table. On a degraded platform, detours around failed links are
       taken and priced by their real length. *)
    let route_nodes, links, duration =
      match degraded with
      | Some view when not (Noc_noc.Degraded.is_trivial view) ->
        ( Noc_noc.Degraded.route view ~src:src_pe ~dst:dst_pe,
          Noc_noc.Degraded.route_links view ~src:src_pe ~dst:dst_pe,
          Noc_noc.Degraded.comm_duration view ~src:src_pe ~dst:dst_pe
            ~bits:pending.bits )
      | Some _ | None ->
        ( Noc_noc.Platform.route platform ~src:src_pe ~dst:dst_pe,
          Noc_noc.Platform.route_links platform ~src:src_pe ~dst:dst_pe,
          Noc_noc.Platform.comm_duration platform ~src:src_pe ~dst:dst_pe
            ~bits:pending.bits )
    in
    let start =
      match model with
      | Fixed_delay -> pending.sender_finish
      | Contention_aware ->
        Resource_state.earliest_route_gap state ~route:links
          ~after:pending.sender_finish ~duration
    in
    let interval = Noc_util.Interval.make ~start ~stop:(start +. duration) in
    (match model with
    | Fixed_delay -> ()
    | Contention_aware ->
      List.iter (fun link -> Resource_state.reserve_link state link interval) links);
    {
      Schedule.edge = pending.edge;
      src_pe;
      dst_pe;
      route = route_nodes;
      start;
      finish = start +. duration;
    }
  end

let sort_pendings lct =
  List.sort
    (fun a b ->
      let c = Float.compare a.sender_finish b.sender_finish in
      if c <> 0 then c else compare a.edge b.edge)
    lct

let schedule_incoming ?(model = Contention_aware) ?degraded state lct ~dst_pe =
  let sorted = sort_pendings lct in
  let placed = List.map (fun p -> place ~model ?degraded state p ~dst_pe) sorted in
  let drt =
    List.fold_left (fun acc tr -> Float.max acc tr.Schedule.finish) 0. placed
  in
  (placed, drt)
