(** Independent semantic validation of a schedule.

    Checks the four feasibility conditions of the paper's problem
    formulation (Sec. 4) plus structural consistency:

    - all tasks are pairwise compatible (Definition 4: same-PE executions
      do not overlap);
    - all communication transactions are pairwise compatible
      (Definition 3: transactions whose routes share a link do not
      overlap in time);
    - all control/data dependencies are satisfied (a transaction starts
      no earlier than its sender finishes; a task starts no earlier than
      each incoming transaction arrives);
    - every specified deadline is met;
    - placements and transactions are structurally consistent with the
      CTG and the platform: durations match the cost tables and the
      bandwidth, and every recorded route is a real walk through the
      fabric (starts at the sender's tile, ends at the receiver's, moves
      only along topology links, reserves no link twice). Routes are
      checked against the {e schedule's recorded links}, not recomputed
      deterministic routes, so detour-routed schedules produced for
      degraded platforms validate; pass [~strict_routes:true] to
      additionally require the platform's deterministic routing policy.

    The validator shares no code with the schedulers' internal
    book-keeping, so it catches scheduler bugs rather than reproducing
    them. A small tolerance absorbs floating-point noise. *)

type violation =
  | Malformed of string
  | Task_overlap of { pe : int; task_a : int; task_b : int }
  | Link_conflict of { link : Noc_noc.Routing.link; edge_a : int; edge_b : int }
  | Dependency of { edge : int; detail : string }
  | Deadline_miss of { task : int; deadline : float; finish : float }

val check :
  ?eps:float ->
  ?strict_routes:bool ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Schedule.t ->
  violation list
(** All violations found, deterministically ordered. [eps] defaults to
    [1e-6]. [strict_routes] (default [false]) additionally rejects any
    transaction whose route differs from the platform's deterministic
    route — the fault-free routing-policy check. *)

val is_feasible :
  ?eps:float ->
  ?strict_routes:bool ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Schedule.t ->
  bool

val pp_violation : Format.formatter -> violation -> unit
