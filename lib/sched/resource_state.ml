type entry = { table : Noc_util.Timeline.t; interval : Noc_util.Interval.t }

type t = {
  platform : Noc_noc.Platform.t;
  pe_tables : Noc_util.Timeline.t array;
  link_tables : Noc_util.Timeline.t array;  (* indexed by src * n + dst *)
  mutable journal : entry list;
}

let create platform =
  let n = Noc_noc.Platform.n_pes platform in
  {
    platform;
    pe_tables = Array.init n (fun _ -> Noc_util.Timeline.create ());
    link_tables = Array.init (n * n) (fun _ -> Noc_util.Timeline.create ());
    journal = [];
  }

let platform t = t.platform
let pe_table t pe = t.pe_tables.(pe)

let link_index t (link : Noc_noc.Routing.link) =
  (link.from_node * Noc_noc.Platform.n_pes t.platform) + link.to_node

let link_table t link = t.link_tables.(link_index t link)

let c_reservations = Noc_obs.Counters.counter "sched.resource_state.reservations"
let c_snapshots = Noc_obs.Counters.counter "sched.resource_state.snapshots"
let c_rollbacks = Noc_obs.Counters.counter "sched.resource_state.rollbacks"

let journalled_reserve t table interval =
  Noc_util.Timeline.reserve table interval;
  if not (Noc_util.Interval.is_empty interval) then begin
    Noc_obs.Counters.incr c_reservations;
    t.journal <- { table; interval } :: t.journal
  end

let reserve_pe t ~pe interval = journalled_reserve t t.pe_tables.(pe) interval
let reserve_link t link interval = journalled_reserve t (link_table t link) interval

let earliest_pe_gap t ~pe ~after ~duration =
  Noc_util.Timeline.earliest_gap t.pe_tables.(pe) ~after ~duration

let earliest_route_gap t ~route ~after ~duration =
  match route with
  | [] -> after
  | links ->
    let tables = List.map (link_table t) links in
    Noc_util.Timeline.earliest_gap_multi tables ~after ~duration

type mark = entry list

let mark t =
  Noc_obs.Counters.incr c_snapshots;
  t.journal

let rollback t m =
  Noc_obs.Counters.incr c_rollbacks;
  let rec undo journal =
    if journal == m then journal
    else
      match journal with
      | [] -> invalid_arg "Resource_state.rollback: unknown mark"
      | { table; interval } :: rest ->
        Noc_util.Timeline.release table interval;
        undo rest
  in
  t.journal <- undo t.journal
