(** Static schedules: the output of the problem of Sec. 4.

    A schedule fixes, for every task, the PE it runs on and its execution
    window, and for every dependence arc, the communication transaction
    that realises it: the route through the network and the window during
    which the transaction occupies every link of that route (the
    whole-path reservation used by the paper's wormhole model, Fig. 3).
    Arcs between tasks on the same tile need no network resources and are
    recorded with an empty link set and a zero-length window at the
    sender's finish time. *)

type placement = {
  task : int;
  pe : int;
  start : float;
  finish : float;
}

type transaction = {
  edge : int;
  src_pe : int;
  dst_pe : int;
  route : int list;  (** Routers visited; [[p]] when [src_pe = dst_pe = p]. *)
  start : float;
  finish : float;  (** Arrival time; data is available to the consumer. *)
}

type t

val make : placements:placement array -> transactions:transaction array -> t
(** [placements.(i)] must describe task [i] and [transactions.(e)] edge
    [e] (checked). Deeper semantic checks belong to {!Validate}. *)

val placement : t -> int -> placement
(** Placement of a task id. *)

val transaction : t -> int -> transaction
(** Transaction of an edge id. *)

val placements : t -> placement array
val transactions : t -> transaction array
val n_tasks : t -> int

val makespan : t -> float
(** Latest task finish time. *)

val tasks_on_pe : t -> pe:int -> placement list
(** Placements on one PE sorted by start time. *)

val links_of_transaction : transaction -> Noc_noc.Routing.link list
(** The directed links the transaction reserves; empty for same-tile
    arcs. *)

val pp : Format.formatter -> t -> unit
