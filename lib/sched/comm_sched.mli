(** The communication scheduler of the paper's Fig. 3.

    Given the list of receiving communication transactions (LCT) of a
    task, transactions are sorted by their sender's finish time; each is
    then assigned the earliest window of length [volume / bandwidth] that
    is free on {i every} link of its XY route, at or after the sender's
    finish, and reserved on all those links.

    The [Fixed_delay] model is the ablation discussed in the paper's
    introduction: previous work "just assumes a fixed delay proportional
    to the communication volume" — transactions start exactly at the
    sender's finish and link contention is ignored. Schedules built this
    way look feasible to the scheduler but can overlap on links; the
    {!Noc_sim} replay exposes the consequences. *)

type model =
  | Contention_aware  (** The paper's scheduler: links are reserved. *)
  | Fixed_delay  (** Naive model: no reservation, no contention. *)

type pending = {
  edge : int;
  src_pe : int;
  sender_finish : float;
  bits : float;
}
(** One receiving transaction still to be scheduled. *)

val place :
  ?model:model ->
  ?degraded:Noc_noc.Degraded.t ->
  Resource_state.t ->
  pending ->
  dst_pe:int ->
  Schedule.transaction
(** Schedules a single transaction towards [dst_pe] (default model
    [Contention_aware]). Same-tile transactions complete instantaneously
    at the sender's finish and reserve nothing. With [degraded], routes,
    durations and link reservations follow the degraded view's detours
    around failed links; raises [Invalid_argument] when the fault set
    disconnects the pair. *)

val sort_pendings : pending list -> pending list
(** The Fig. 3 evaluation order: sender finish time, ties by edge id.
    {!schedule_incoming} sorts with this; the EAS kernel pre-sorts each
    task's pending list once so its probes can skip the re-sort. *)

val schedule_incoming :
  ?model:model ->
  ?degraded:Noc_noc.Degraded.t ->
  Resource_state.t ->
  pending list ->
  dst_pe:int ->
  Schedule.transaction list * float
(** [schedule_incoming state lct ~dst_pe] runs Fig. 3: sorts [lct] by
    sender finish time (ties by edge id), places every transaction, and
    returns them (in input order of the sorted list) together with the
    data-ready time [DRT] — the latest arrival, or [0.] when the task
    receives nothing. *)
