let palette =
  [|
    "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
    "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac";
  |]

let escape_xml s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(width = 960) ?(lane_height = 28) ?(show_links = true) platform ctg
    schedule =
  let margin_left = 90 and margin_top = 30 in
  let horizon = Float.max 1e-9 (Schedule.makespan schedule) in
  let plot_width = float_of_int (width - margin_left - 20) in
  let x_of t = float_of_int margin_left +. (t /. horizon *. plot_width) in
  let n_pes = Noc_noc.Platform.n_pes platform in
  (* Collect link lanes with traffic. *)
  let link_lanes =
    if not show_links then []
    else begin
      let by_link = Hashtbl.create 16 in
      Array.iter
        (fun (tr : Schedule.transaction) ->
          if tr.finish > tr.start then
            List.iter
              (fun (l : Noc_noc.Routing.link) ->
                let key = (l.from_node, l.to_node) in
                let existing = Option.value ~default:[] (Hashtbl.find_opt by_link key) in
                Hashtbl.replace by_link key (tr :: existing))
              (Schedule.links_of_transaction tr))
        (Schedule.transactions schedule);
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_link [] |> List.sort compare
    end
  in
  let n_lanes = n_pes + List.length link_lanes in
  let height = margin_top + (n_lanes * lane_height) + 20 in
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     font-family=\"sans-serif\" font-size=\"11\">\n"
    width height;
  add "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  (* Time axis with ten ticks. *)
  for tick = 0 to 10 do
    let t = horizon *. float_of_int tick /. 10. in
    let x = x_of t in
    add
      "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ddd\"/>\n" x
      margin_top x
      (margin_top + (n_lanes * lane_height));
    add "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" fill=\"#666\">%.0f</text>\n"
      x (margin_top - 8) t
  done;
  let lane_y lane = margin_top + (lane * lane_height) in
  (* PE lanes. *)
  for pe = 0 to n_pes - 1 do
    let y = lane_y pe in
    add "<text x=\"6\" y=\"%d\" fill=\"#333\">pe %d (%s)</text>\n"
      (y + (lane_height / 2) + 4)
      pe
      (Noc_noc.Pe.kind_name (Noc_noc.Platform.pe platform pe).Noc_noc.Pe.kind);
    List.iter
      (fun (p : Schedule.placement) ->
        let task = Noc_ctg.Ctg.task ctg p.task in
        let missed =
          match task.Noc_ctg.Task.deadline with
          | Some d -> p.finish > d +. 1e-9
          | None -> false
        in
        let x = x_of p.start and w = Float.max 1. (x_of p.finish -. x_of p.start) in
        add
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" \
           stroke=\"%s\" stroke-width=\"%d\"><title>%s [%g, %g)</title></rect>\n"
          x (y + 3) w (lane_height - 6)
          palette.(p.task mod Array.length palette)
          (if missed then "#d00" else "#333")
          (if missed then 2 else 1)
          (escape_xml task.Noc_ctg.Task.name)
          p.start p.finish;
        if w > 40. then
          add
            "<text x=\"%.1f\" y=\"%d\" fill=\"white\">%s</text>\n"
            (x +. 4.)
            (y + (lane_height / 2) + 4)
            (escape_xml task.Noc_ctg.Task.name))
      (Schedule.tasks_on_pe schedule ~pe)
  done;
  (* Link lanes. *)
  List.iteri
    (fun i ((from_node, to_node), transactions) ->
      let y = lane_y (n_pes + i) in
      add "<text x=\"6\" y=\"%d\" fill=\"#777\">link %d-&gt;%d</text>\n"
        (y + (lane_height / 2) + 4)
        from_node to_node;
      List.iter
        (fun (tr : Schedule.transaction) ->
          let x = x_of tr.start and w = Float.max 1. (x_of tr.finish -. x_of tr.start) in
          add
            "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"#888\" \
             opacity=\"0.7\"><title>edge %d [%g, %g)</title></rect>\n"
            x (y + 7) w (lane_height - 14) tr.edge tr.start tr.finish)
        transactions)
    link_lanes;
  add "</svg>\n";
  Buffer.contents buf

let save ~path ?width ?lane_height ?show_links platform ctg schedule =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render ?width ?lane_height ?show_links platform ctg schedule))
