(** Plain-text serialisation of schedules.

    A schedule is stored as one line per placement and per transaction,
    plus (format version 3) one line per task carrying its DVFS
    annotation:

    {v
    schedule 3
    place <task> pe <pe> start <t> finish <t>
    trans <edge> via <n0>,<n1>,... start <t> finish <t>
    dvfs <task> level <l> freq <r> energy <e>
    v}

    The [via] field records the transaction's route verbatim, so
    detour-routed schedules produced for degraded platforms round-trip
    exactly. {!of_string} also accepts the legacy version-1 format
    (header [schedule 1], no [via] field), re-deriving each route as the
    platform's deterministic one, and version 2 (no [dvfs] lines — every
    task implicitly runs at f_max). Floats round-trip exactly: [place]
    and [trans] times use the shortest decimal that reads back
    bit-identically, [dvfs] frequencies and energies are written as
    hexadecimal floats ([%h]) so scaled schedules round-trip
    bit-exactly. *)

type annotation = {
  task : int;
  level : int;  (** index into the V/f table, 0 = f_max *)
  freq : float;  (** normalised frequency ratio f/f_max in (0, 1] *)
  energy : float;  (** scaled Eq.-3 computation energy of the task *)
}
(** Per-task DVFS annotation carried by format version 3. The type lives
    here (not in [noc_dvfs]) so the certifier can check scaled schedules
    without depending on the power-management subsystem. *)

val to_string : ?dvfs:annotation array -> Schedule.t -> string
(** Without [dvfs] the output is a version-2 file, bit-identical to what
    earlier releases wrote. With [dvfs] (one annotation per task, in
    task order) the header becomes [schedule 3] and one [dvfs] line per
    task is appended. Raises [Invalid_argument] if the annotation array
    does not cover the schedule's tasks exactly. *)

val of_string :
  Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> string -> (Schedule.t, string) result
(** Structural errors (wrong counts, unknown ids, bad numbers) are
    reported with line numbers. The result is {e not} validated for
    feasibility — run {!Validate.check} for that. Accepts versions 1-3;
    any DVFS annotations are parsed (and structurally checked) but
    dropped — use {!of_string_full} to keep them. *)

val of_string_full :
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  string ->
  (Schedule.t * annotation array option, string) result
(** Like {!of_string} but returns the DVFS annotations when the file
    carries them ([None] for version 1/2 files, or a version-3 file with
    no [dvfs] lines: every task at f_max). When any [dvfs] line is
    present, every task must have exactly one, the header must say
    [schedule 3], frequencies must lie in (0, 1] and energies must be
    finite and non-negative. *)

val save : ?dvfs:annotation array -> path:string -> Schedule.t -> unit

val load :
  path:string -> Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> (Schedule.t, string) result

val load_full :
  path:string ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  (Schedule.t * annotation array option, string) result
