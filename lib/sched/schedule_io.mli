(** Plain-text serialisation of schedules.

    A schedule is stored as one line per placement and per transaction:

    {v
    schedule 2
    place <task> pe <pe> start <t> finish <t>
    trans <edge> via <n0>,<n1>,... start <t> finish <t>
    v}

    The [via] field records the transaction's route verbatim, so
    detour-routed schedules produced for degraded platforms round-trip
    exactly. {!of_string} also accepts the legacy version-1 format
    (header [schedule 1], no [via] field), re-deriving each route as the
    platform's deterministic one. Floats round-trip exactly. *)

val to_string : Schedule.t -> string

val of_string :
  Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> string -> (Schedule.t, string) result
(** Structural errors (wrong counts, unknown ids, bad numbers) are
    reported with line numbers. The result is {e not} validated for
    feasibility — run {!Validate.check} for that. *)

val save : path:string -> Schedule.t -> unit
val load :
  path:string -> Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> (Schedule.t, string) result
