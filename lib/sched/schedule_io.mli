(** Plain-text serialisation of schedules.

    A schedule is stored as one line per placement and per transaction:

    {v
    schedule 1
    place <task> pe <pe> start <t> finish <t>
    trans <edge> start <t> finish <t>
    v}

    Routes are not stored: they are a function of the platform and the
    endpoint PEs, so {!of_string} recomputes them (and therefore needs
    the platform and the graph, which also let it re-derive each
    transaction's endpoints). Floats round-trip exactly. *)

val to_string : Schedule.t -> string

val of_string :
  Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> string -> (Schedule.t, string) result
(** Structural errors (wrong counts, unknown ids, bad numbers) are
    reported with line numbers. The result is {e not} validated for
    feasibility — run {!Validate.check} for that. *)

val save : path:string -> Schedule.t -> unit
val load :
  path:string -> Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> (Schedule.t, string) result
