(** ASCII Gantt charts for schedules.

    Renders one row per PE with task occupancy, and optionally one row
    per network link carrying traffic, scaled to a fixed character
    width. Intended for examples and CLI output, not for parsing. *)

val render :
  ?width:int ->
  ?show_links:bool ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Schedule.t ->
  string
(** [render platform ctg schedule] draws the schedule. [width] is the
    number of characters of the time axis (default 72); [show_links]
    (default true) adds rows for links with at least one transaction. *)
