(** SVG rendering of schedules.

    Produces a standalone SVG document with one horizontal lane per PE
    (task rectangles labelled with the task name) and, below, one lane
    per network link carrying traffic (transaction rectangles). Deadline
    misses are outlined in red; a time axis with ticks runs along the
    top. No external dependencies — the output is plain SVG 1.1. *)

val render :
  ?width:int ->
  ?lane_height:int ->
  ?show_links:bool ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Schedule.t ->
  string
(** [render platform ctg schedule] returns the SVG text. [width] is the
    drawing width in pixels (default 960), [lane_height] the per-lane
    height (default 28), [show_links] adds the link lanes (default
    true). *)

val save :
  path:string ->
  ?width:int ->
  ?lane_height:int ->
  ?show_links:bool ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Schedule.t ->
  unit
