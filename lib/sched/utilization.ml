type pe_load = { pe : int; busy_time : float; n_tasks : int; utilisation : float }

type link_load = {
  link : Noc_noc.Routing.link;
  busy_time : float;
  n_transactions : int;
  utilisation : float;
}

type t = { horizon : float; pe_loads : pe_load array; link_loads : link_load list }

let compute platform schedule =
  let horizon = Schedule.makespan schedule in
  let ratio busy = if horizon > 0. then busy /. horizon else 0. in
  let pe_loads =
    Array.init (Noc_noc.Platform.n_pes platform) (fun pe ->
        let placements = Schedule.tasks_on_pe schedule ~pe in
        let busy_time =
          List.fold_left
            (fun acc (p : Schedule.placement) -> acc +. (p.finish -. p.start))
            0. placements
        in
        { pe; busy_time; n_tasks = List.length placements; utilisation = ratio busy_time })
  in
  let by_link = Hashtbl.create 32 in
  Array.iter
    (fun (tr : Schedule.transaction) ->
      if tr.finish > tr.start then
        List.iter
          (fun (link : Noc_noc.Routing.link) ->
            let key = (link.from_node, link.to_node) in
            let busy, count =
              Option.value ~default:(0., 0) (Hashtbl.find_opt by_link key)
            in
            Hashtbl.replace by_link key (busy +. (tr.finish -. tr.start), count + 1))
          (Schedule.links_of_transaction tr))
    (Schedule.transactions schedule);
  let link_loads =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_link []
    |> List.sort compare
    |> List.map (fun ((from_node, to_node), (busy_time, n_transactions)) ->
           {
             link = { Noc_noc.Routing.from_node; to_node };
             busy_time;
             n_transactions;
             utilisation = ratio busy_time;
           })
  in
  { horizon; pe_loads; link_loads }

let busiest_pe t =
  if Array.length t.pe_loads = 0 then invalid_arg "Utilization.busiest_pe: no PEs";
  Array.fold_left
    (fun (best : pe_load) (load : pe_load) ->
      if load.busy_time > best.busy_time then load else best)
    t.pe_loads.(0) t.pe_loads

let busiest_link t =
  List.fold_left
    (fun best load ->
      match best with
      | None -> Some load
      | Some b -> if load.busy_time > b.busy_time then Some load else best)
    None t.link_loads

let pp ppf t =
  Format.fprintf ppf "@[<v>horizon %.1f@," t.horizon;
  Array.iter
    (fun (l : pe_load) ->
      Format.fprintf ppf "pe %d: %.1f busy (%.0f%%), %d tasks@," l.pe l.busy_time
        (100. *. l.utilisation) l.n_tasks)
    t.pe_loads;
  List.iter
    (fun l ->
      Format.fprintf ppf "link %a: %.1f busy (%.0f%%), %d transactions@,"
        Noc_noc.Routing.pp_link l.link l.busy_time (100. *. l.utilisation)
        l.n_transactions)
    t.link_loads;
  Format.fprintf ppf "@]"
