(** Mutable scheduling state: one schedule table per PE and per link.

    EAS Step 2 repeatedly schedules communication transactions and task
    executions {e tentatively} to evaluate [F(i,k)], then restores the
    tables ("the schedule tables of both links and the PEs will be
    restored every time a F(i,k) is calculated"). To make that cheap,
    every reservation made through this module is journalled; a
    {!mark} / {!rollback} pair undoes everything reserved in between in
    O(reservations undone). *)

type t

val create : Noc_noc.Platform.t -> t
val platform : t -> Noc_noc.Platform.t

val pe_table : t -> int -> Noc_util.Timeline.t
val link_table : t -> Noc_noc.Routing.link -> Noc_util.Timeline.t

val reserve_pe : t -> pe:int -> Noc_util.Interval.t -> unit
(** Journalled PE reservation. Raises [Invalid_argument] on overlap. *)

val reserve_link : t -> Noc_noc.Routing.link -> Noc_util.Interval.t -> unit

val earliest_pe_gap : t -> pe:int -> after:float -> duration:float -> float
val earliest_route_gap :
  t -> route:Noc_noc.Routing.link list -> after:float -> duration:float -> float
(** Earliest slot simultaneously free on every link of the route: the
    paper's merged path schedule table (Fig. 3). With an empty route the
    answer is [after]. *)

type mark

val mark : t -> mark
val rollback : t -> mark -> unit
(** [rollback t m] releases every reservation made since [mark t]
    returned [m]. Marks must be rolled back innermost-first. *)
