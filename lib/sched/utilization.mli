(** Resource-load reporting for schedules.

    Summarises how a schedule occupies the platform: per-PE busy time,
    task count and utilisation over the makespan, and the same per
    directed link actually carrying traffic. Useful for platform-sizing
    studies (see the design-space example) and for spotting hot links. *)

type pe_load = {
  pe : int;
  busy_time : float;
  n_tasks : int;
  utilisation : float;  (** busy_time / horizon; 0 when the horizon is 0. *)
}

type link_load = {
  link : Noc_noc.Routing.link;
  busy_time : float;
  n_transactions : int;
  utilisation : float;
}

type t = {
  horizon : float;  (** The schedule makespan. *)
  pe_loads : pe_load array;  (** Indexed by PE. *)
  link_loads : link_load list;
      (** Links with at least one transaction, ordered by endpoints. *)
}

val compute : Noc_noc.Platform.t -> Schedule.t -> t

val busiest_pe : t -> pe_load
(** Raises [Invalid_argument] on an empty platform. *)

val busiest_link : t -> link_load option

val pp : Format.formatter -> t -> unit
