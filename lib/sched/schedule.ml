type placement = { task : int; pe : int; start : float; finish : float }

type transaction = {
  edge : int;
  src_pe : int;
  dst_pe : int;
  route : int list;
  start : float;
  finish : float;
}

type t = { placements : placement array; transactions : transaction array }

let make ~placements ~transactions =
  Array.iteri
    (fun i p -> if p.task <> i then invalid_arg "Schedule.make: placement order")
    placements;
  Array.iteri
    (fun i tr -> if tr.edge <> i then invalid_arg "Schedule.make: transaction order")
    transactions;
  { placements; transactions }

let placement t i = t.placements.(i)
let transaction t e = t.transactions.(e)
let placements t = t.placements
let transactions t = t.transactions
let n_tasks t = Array.length t.placements

let makespan t =
  Array.fold_left
    (fun acc (p : placement) -> Float.max acc p.finish)
    0. t.placements

let tasks_on_pe t ~pe =
  Array.to_list t.placements
  |> List.filter (fun (p : placement) -> p.pe = pe)
  |> List.sort (fun (a : placement) (b : placement) -> Float.compare a.start b.start)

let links_of_transaction tr = Noc_noc.Routing.links_of_route tr.route

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun p ->
      Format.fprintf ppf "task %d on pe %d: [%g, %g)@," p.task p.pe p.start p.finish)
    t.placements;
  Array.iter
    (fun tr ->
      Format.fprintf ppf "edge %d: pe %d -> pe %d [%g, %g)@," tr.edge tr.src_pe
        tr.dst_pe tr.start tr.finish)
    t.transactions;
  Format.fprintf ppf "@]"
