type violation =
  | Malformed of string
  | Task_overlap of { pe : int; task_a : int; task_b : int }
  | Link_conflict of { link : Noc_noc.Routing.link; edge_a : int; edge_b : int }
  | Dependency of { edge : int; detail : string }
  | Deadline_miss of { task : int; deadline : float; finish : float }

let pp_violation ppf = function
  | Malformed msg -> Format.fprintf ppf "malformed: %s" msg
  | Task_overlap { pe; task_a; task_b } ->
    Format.fprintf ppf "tasks %d and %d overlap on pe %d" task_a task_b pe
  | Link_conflict { link; edge_a; edge_b } ->
    Format.fprintf ppf "transactions %d and %d conflict on link %a" edge_a edge_b
      Noc_noc.Routing.pp_link link
  | Dependency { edge; detail } ->
    Format.fprintf ppf "dependency via edge %d violated: %s" edge detail
  | Deadline_miss { task; deadline; finish } ->
    Format.fprintf ppf "task %d finishes at %g, deadline %g" task finish deadline

(* A transaction's recorded route must be a real walk through the
   fabric: it starts at the sender's tile, ends at the receiver's, moves
   only along topology links and reserves no link twice. The walk need
   NOT be the platform's deterministic route — degraded-platform
   reschedules legitimately record detours — unless the caller opts into
   [strict_routes]. Same-tile transfers use no network at all, so they
   may record either the empty route or the single shared tile (the v2
   schedule loader and the schedulers produce the latter, hand-built
   schedules often the former). *)
let route_walk_error platform (tr : Schedule.transaction) =
  let topology = Noc_noc.Platform.topology platform in
  match tr.route with
  | [] ->
    if tr.src_pe = tr.dst_pe then None
    else Some "has an empty route between distinct tiles"
  | [ p ] ->
    if tr.src_pe <> tr.dst_pe then Some "has a single-node route between distinct tiles"
    else if p <> tr.src_pe then Some "same-tile route names the wrong tile"
    else None
  | first :: _ :: _ ->
    if tr.src_pe = tr.dst_pe then Some "same-tile transaction records a multi-hop route"
    else if first <> tr.src_pe then Some "route does not start at the sender's tile"
    else begin
      let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false in
      if last tr.route <> tr.dst_pe then Some "route does not end at the receiver's tile"
      else begin
        let links = Noc_noc.Routing.links_of_route tr.route in
        if
          not
            (List.for_all
               (fun (l : Noc_noc.Routing.link) ->
                 Noc_noc.Topology.are_neighbours topology l.from_node l.to_node)
               links)
        then Some "route uses a non-existent link"
        else if
          List.length (List.sort_uniq compare (List.map (fun (l : Noc_noc.Routing.link) -> (l.from_node, l.to_node)) links))
          <> List.length links
        then Some "route reserves a link twice"
        else None
      end
    end

let structural_checks ~eps ~strict_routes platform ctg schedule add =
  let n_pes = Noc_noc.Platform.n_pes platform in
  let malformed fmt = Printf.ksprintf (fun s -> add (Malformed s)) fmt in
  if Schedule.n_tasks schedule <> Noc_ctg.Ctg.n_tasks ctg then
    malformed "schedule covers %d tasks, graph has %d" (Schedule.n_tasks schedule)
      (Noc_ctg.Ctg.n_tasks ctg)
  else begin
    Array.iter
      (fun (p : Schedule.placement) ->
        let task = Noc_ctg.Ctg.task ctg p.task in
        if p.pe < 0 || p.pe >= n_pes then malformed "task %d on unknown pe %d" p.task p.pe
        else begin
          let expected = task.Noc_ctg.Task.exec_times.(p.pe) in
          if not (Noc_util.Stats.fequal ~eps (p.finish -. p.start) expected) then
            malformed "task %d duration %g, cost table says %g" p.task
              (p.finish -. p.start) expected;
          if p.start < -.eps then malformed "task %d starts before time 0" p.task
        end)
      (Schedule.placements schedule);
    if Array.length (Schedule.transactions schedule) <> Noc_ctg.Ctg.n_edges ctg then
      malformed "schedule covers %d transactions, graph has %d edges"
        (Array.length (Schedule.transactions schedule))
        (Noc_ctg.Ctg.n_edges ctg)
    else
      Array.iter
        (fun (tr : Schedule.transaction) ->
          let edge = Noc_ctg.Ctg.edge ctg tr.edge in
          let src_place = Schedule.placement schedule edge.Noc_ctg.Edge.src in
          let dst_place = Schedule.placement schedule edge.Noc_ctg.Edge.dst in
          if tr.src_pe <> src_place.pe then
            malformed "transaction %d departs pe %d, sender runs on pe %d" tr.edge
              tr.src_pe src_place.pe;
          if tr.dst_pe <> dst_place.pe then
            malformed "transaction %d arrives at pe %d, receiver runs on pe %d"
              tr.edge tr.dst_pe dst_place.pe;
          (match route_walk_error platform tr with
          | Some detail -> malformed "transaction %d %s" tr.edge detail
          | None -> ());
          if
            strict_routes
            && tr.src_pe <> tr.dst_pe
            && tr.route <> Noc_noc.Platform.route platform ~src:tr.src_pe ~dst:tr.dst_pe
          then
            malformed "transaction %d does not follow the deterministic route" tr.edge;
          (* Duration follows from the recorded route's length, so a
             detour pays its extra router hops. *)
          let expected_duration =
            Noc_noc.Platform.route_duration platform ~route:tr.route
              ~bits:edge.Noc_ctg.Edge.volume
          in
          if not (Noc_util.Stats.fequal ~eps (tr.finish -. tr.start) expected_duration)
          then
            malformed "transaction %d lasts %g, volume/bandwidth gives %g" tr.edge
              (tr.finish -. tr.start) expected_duration)
        (Schedule.transactions schedule)
  end

let task_compatibility ~eps platform schedule add =
  for pe = 0 to Noc_noc.Platform.n_pes platform - 1 do
    let placements = Schedule.tasks_on_pe schedule ~pe in
    (* Sweep by start time, carrying the longest-running earlier task. *)
    let rec scan (cur : Schedule.placement) = function
      | [] -> ()
      | (b : Schedule.placement) :: rest ->
        if b.start < cur.finish -. eps then
          add (Task_overlap { pe; task_a = cur.task; task_b = b.task });
        scan (if b.finish > cur.finish then b else cur) rest
    in
    (match placements with [] -> () | first :: rest -> scan first rest)
  done

let transaction_compatibility ~eps schedule add =
  (* Group transactions by link, then check pairwise overlap per link. *)
  let by_link = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Schedule.transaction) ->
      if tr.finish > tr.start then
        List.iter
          (fun link ->
            let key = (link.Noc_noc.Routing.from_node, link.to_node) in
            let existing = Option.value ~default:[] (Hashtbl.find_opt by_link key) in
            Hashtbl.replace by_link key (tr :: existing))
          (Schedule.links_of_transaction tr))
    (Schedule.transactions schedule);
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_link [] |> List.sort compare in
  List.iter
    (fun ((from_node, to_node) as key) ->
      let transactions =
        Hashtbl.find by_link key
        |> List.sort (fun (a : Schedule.transaction) b ->
               let c = Float.compare a.start b.start in
               if c <> 0 then c else compare a.edge b.edge)
      in
      let rec scan (cur : Schedule.transaction) = function
        | [] -> ()
        | (b : Schedule.transaction) :: rest ->
          if b.start < cur.finish -. eps then
            add
              (Link_conflict
                 { link = { from_node; to_node }; edge_a = cur.edge; edge_b = b.edge });
          scan (if b.finish > cur.finish then b else cur) rest
      in
      match transactions with [] -> () | first :: rest -> scan first rest)
    keys

let dependency_checks ~eps ctg schedule add =
  Array.iter
    (fun (tr : Schedule.transaction) ->
      let edge = Noc_ctg.Ctg.edge ctg tr.edge in
      let sender = Schedule.placement schedule edge.Noc_ctg.Edge.src in
      let receiver = Schedule.placement schedule edge.Noc_ctg.Edge.dst in
      if tr.start < sender.finish -. eps then
        add
          (Dependency
             {
               edge = tr.edge;
               detail =
                 Printf.sprintf "transaction departs at %g before sender finishes at %g"
                   tr.start sender.finish;
             });
      if receiver.start < tr.finish -. eps then
        add
          (Dependency
             {
               edge = tr.edge;
               detail =
                 Printf.sprintf "receiver starts at %g before data arrives at %g"
                   receiver.start tr.finish;
             }))
    (Schedule.transactions schedule)

let deadline_checks ~eps ctg schedule add =
  Array.iter
    (fun (task : Noc_ctg.Task.t) ->
      (match task.release with
      | None -> ()
      | Some release ->
        let p = Schedule.placement schedule task.id in
        if p.start < release -. eps then
          add
            (Malformed
               (Printf.sprintf "task %d starts at %g before its release %g" task.id
                  p.start release)));
      match task.deadline with
      | None -> ()
      | Some deadline ->
        let p = Schedule.placement schedule task.id in
        if p.finish > deadline +. eps then
          add (Deadline_miss { task = task.id; deadline; finish = p.finish }))
    (Noc_ctg.Ctg.tasks ctg)

let check ?(eps = 1e-6) ?(strict_routes = false) platform ctg schedule =
  let acc = ref [] in
  let add v = acc := v :: !acc in
  structural_checks ~eps ~strict_routes platform ctg schedule add;
  (* Pairwise checks only make sense on structurally sound schedules. *)
  if !acc = [] then begin
    task_compatibility ~eps platform schedule add;
    transaction_compatibility ~eps schedule add;
    dependency_checks ~eps ctg schedule add;
    deadline_checks ~eps ctg schedule add
  end;
  List.rev !acc

let is_feasible ?eps ?strict_routes platform ctg schedule =
  check ?eps ?strict_routes platform ctg schedule = []
