type t = {
  total_energy : float;
  computation_energy : float;
  communication_energy : float;
  makespan : float;
  deadline_misses : (int * float) list;
  average_hops : float;
}

let energy_of_assignment platform ctg pe_of =
  let computation =
    Array.fold_left
      (fun acc (task : Noc_ctg.Task.t) -> acc +. task.energies.(pe_of task.id))
      0. (Noc_ctg.Ctg.tasks ctg)
  in
  let communication =
    Array.fold_left
      (fun acc (edge : Noc_ctg.Edge.t) ->
        acc
        +. Noc_noc.Platform.comm_energy platform ~src:(pe_of edge.src)
             ~dst:(pe_of edge.dst) ~bits:edge.volume)
      0. (Noc_ctg.Ctg.edges ctg)
  in
  computation +. communication

let compute platform ctg schedule =
  let pe_of task = (Schedule.placement schedule task).Schedule.pe in
  let computation_energy =
    Array.fold_left
      (fun acc (task : Noc_ctg.Task.t) -> acc +. task.energies.(pe_of task.id))
      0. (Noc_ctg.Ctg.tasks ctg)
  in
  let communication_energy =
    Array.fold_left
      (fun acc (edge : Noc_ctg.Edge.t) ->
        acc
        +. Noc_noc.Platform.comm_energy platform ~src:(pe_of edge.src)
             ~dst:(pe_of edge.dst) ~bits:edge.volume)
      0. (Noc_ctg.Ctg.edges ctg)
  in
  let deadline_misses =
    Array.to_list (Noc_ctg.Ctg.tasks ctg)
    |> List.filter_map (fun (task : Noc_ctg.Task.t) ->
           match task.deadline with
           | None -> None
           | Some d ->
             let finish = (Schedule.placement schedule task.id).Schedule.finish in
             if finish > d +. 1e-6 then Some (task.id, finish -. d) else None)
  in
  let data_edges =
    Array.to_list (Noc_ctg.Ctg.edges ctg)
    |> List.filter (fun (e : Noc_ctg.Edge.t) -> e.volume > 0.)
  in
  let average_hops =
    match data_edges with
    | [] -> 0.
    | edges ->
      let total =
        List.fold_left
          (fun acc (e : Noc_ctg.Edge.t) ->
            acc
            +. float_of_int
                 (Noc_noc.Platform.hops platform ~src:(pe_of e.src) ~dst:(pe_of e.dst)))
          0. edges
      in
      total /. float_of_int (List.length edges)
  in
  {
    total_energy = computation_energy +. communication_energy;
    computation_energy;
    communication_energy;
    makespan = Schedule.makespan schedule;
    deadline_misses;
    average_hops;
  }

let miss_count t = List.length t.deadline_misses

let pp ppf t =
  Format.fprintf ppf
    "@[<v>energy = %.1f nJ (comp %.1f + comm %.1f)@,\
     makespan = %.1f@,deadline misses = %d@,average hops = %.2f@]"
    t.total_energy t.computation_energy t.communication_energy t.makespan
    (miss_count t) t.average_hops
