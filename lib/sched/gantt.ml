let cell_symbol task_id =
  let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" in
  alphabet.[task_id mod String.length alphabet]

let paint row ~width ~horizon ~start ~finish symbol =
  if horizon > 0. && finish > start then begin
    let to_col t = int_of_float (t /. horizon *. float_of_int width) in
    let first = Stdlib.max 0 (to_col start) in
    let last = Stdlib.min (width - 1) (Stdlib.max first (to_col finish - 1)) in
    for col = first to last do
      Bytes.set row col symbol
    done
  end

let render ?(width = 72) ?(show_links = true) platform _ctg schedule =
  let horizon = Schedule.makespan schedule in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "time 0 .. %.1f (one column = %.2f)\n" horizon
       (if horizon > 0. then horizon /. float_of_int width else 0.));
  for pe = 0 to Noc_noc.Platform.n_pes platform - 1 do
    let row = Bytes.make width '.' in
    List.iter
      (fun (p : Schedule.placement) ->
        paint row ~width ~horizon ~start:p.start ~finish:p.finish
          (cell_symbol p.task))
      (Schedule.tasks_on_pe schedule ~pe);
    Buffer.add_string buf (Printf.sprintf "pe %2d |%s|\n" pe (Bytes.to_string row))
  done;
  if show_links then begin
    let by_link = Hashtbl.create 32 in
    Array.iter
      (fun (tr : Schedule.transaction) ->
        if tr.finish > tr.start then
          List.iter
            (fun (link : Noc_noc.Routing.link) ->
              let key = (link.from_node, link.to_node) in
              let cur = Option.value ~default:[] (Hashtbl.find_opt by_link key) in
              Hashtbl.replace by_link key (tr :: cur))
            (Schedule.links_of_transaction tr))
      (Schedule.transactions schedule);
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) by_link [] |> List.sort compare in
    List.iter
      (fun ((a, b) as key) ->
        let row = Bytes.make width '.' in
        List.iter
          (fun (tr : Schedule.transaction) ->
            paint row ~width ~horizon ~start:tr.start ~finish:tr.finish '#')
          (Hashtbl.find by_link key);
        Buffer.add_string buf
          (Printf.sprintf "%2d->%-2d|%s|\n" a b (Bytes.to_string row)))
      keys
  end;
  Buffer.contents buf
