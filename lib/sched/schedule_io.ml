let float_to_string v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

type annotation = { task : int; level : int; freq : float; energy : float }

let to_string ?dvfs schedule =
  (match dvfs with
  | None -> ()
  | Some annotations ->
    if Array.length annotations <> Schedule.n_tasks schedule then
      invalid_arg
        (Printf.sprintf "Schedule_io.to_string: %d annotations for %d tasks"
           (Array.length annotations) (Schedule.n_tasks schedule));
    Array.iteri
      (fun i a ->
        if a.task <> i then
          invalid_arg
            (Printf.sprintf
               "Schedule_io.to_string: annotation %d names task %d (must be in task order)"
               i a.task))
      annotations);
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "schedule %d\n" (if dvfs = None then 2 else 3);
  Array.iter
    (fun (p : Schedule.placement) ->
      add "place %d pe %d start %s finish %s\n" p.task p.pe (float_to_string p.start)
        (float_to_string p.finish))
    (Schedule.placements schedule);
  Array.iter
    (fun (tr : Schedule.transaction) ->
      (* A same-tile transfer may carry an empty route in memory; the
         file format canonicalises it to the single shared tile so the
         [via] field is never empty. *)
      let route = match tr.route with [] -> [ tr.src_pe ] | route -> route in
      add "trans %d via %s start %s finish %s\n" tr.edge
        (String.concat "," (List.map string_of_int route))
        (float_to_string tr.start) (float_to_string tr.finish))
    (Schedule.transactions schedule);
  (match dvfs with
  | None -> ()
  | Some annotations ->
    (* Hexadecimal floats: bit-exact round trip without shortest-decimal
       search, and visually distinct from the timeline fields. *)
    Array.iter
      (fun a -> add "dvfs %d level %d freq %h energy %h\n" a.task a.level a.freq a.energy)
      annotations);
  Buffer.contents buf

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let parse_float line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not a number (%S)" what s

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not an integer (%S)" what s

let parse_route line s =
  String.split_on_char ',' s
  |> List.map (fun w -> parse_int line "route node" w)

let of_string_full platform ctg text =
  let n = Noc_ctg.Ctg.n_tasks ctg and m = Noc_ctg.Ctg.n_edges ctg in
  let placements : Schedule.placement option array = Array.make n None in
  let transactions : Schedule.transaction option array = Array.make m None in
  let annotations : annotation option array = Array.make n None in
  let any_dvfs = ref false in
  let version = ref 0 in
  try
    List.iteri
      (fun i line ->
        let line_no = i + 1 in
        let words =
          (match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line)
          |> String.split_on_char ' '
          |> List.filter (fun w -> w <> "")
        in
        let add_transaction edge_id ~route ~start ~finish =
          if edge_id < 0 || edge_id >= m then fail line_no "unknown edge %d" edge_id;
          if transactions.(edge_id) <> None then
            fail line_no "duplicate transaction %d" edge_id;
          let e = Noc_ctg.Ctg.edge ctg edge_id in
          let src_placement = placements.(e.Noc_ctg.Edge.src) in
          let dst_placement = placements.(e.Noc_ctg.Edge.dst) in
          match (src_placement, dst_placement) with
          | Some sp, Some dp ->
            let src_pe = sp.Schedule.pe and dst_pe = dp.Schedule.pe in
            let route =
              (* Version-1 files carry no routes: re-derive the
                 platform's deterministic one. *)
              match route with
              | Some route -> route
              | None -> Noc_noc.Platform.route platform ~src:src_pe ~dst:dst_pe
            in
            transactions.(edge_id) <-
              Some { Schedule.edge = edge_id; src_pe; dst_pe; route; start; finish }
          | None, _ | _, None ->
            fail line_no "transaction %d before both endpoint placements" edge_id
        in
        match words with
        | [] -> ()
        | [ "schedule"; (("1" | "2" | "3") as v) ] -> version := int_of_string v
        | [ "place"; task; "pe"; pe; "start"; start; "finish"; finish ] ->
          let task = parse_int line_no "task" task in
          if task < 0 || task >= n then fail line_no "unknown task %d" task;
          if placements.(task) <> None then fail line_no "duplicate placement %d" task;
          placements.(task) <-
            Some
              {
                Schedule.task;
                pe = parse_int line_no "pe" pe;
                start = parse_float line_no "start" start;
                finish = parse_float line_no "finish" finish;
              }
        | [ "trans"; edge; "start"; start; "finish"; finish ] ->
          add_transaction
            (parse_int line_no "edge" edge)
            ~route:None
            ~start:(parse_float line_no "start" start)
            ~finish:(parse_float line_no "finish" finish)
        | [ "trans"; edge; "via"; route; "start"; start; "finish"; finish ] ->
          add_transaction
            (parse_int line_no "edge" edge)
            ~route:(Some (parse_route line_no route))
            ~start:(parse_float line_no "start" start)
            ~finish:(parse_float line_no "finish" finish)
        | [ "dvfs"; task; "level"; level; "freq"; freq; "energy"; energy ] ->
          if !version < 3 then
            fail line_no "dvfs annotations need a schedule 3 header";
          let task = parse_int line_no "task" task in
          if task < 0 || task >= n then fail line_no "unknown task %d" task;
          if annotations.(task) <> None then
            fail line_no "duplicate dvfs annotation %d" task;
          let level = parse_int line_no "level" level in
          if level < 0 then fail line_no "level %d is negative" level;
          let freq = parse_float line_no "freq" freq in
          if not (freq > 0. && freq <= 1.) then
            fail line_no "freq %s is outside (0, 1]" (float_to_string freq);
          let energy = parse_float line_no "energy" energy in
          if not (Float.is_finite energy && energy >= 0.) then
            fail line_no "energy %s is not a finite non-negative number"
              (float_to_string energy);
          any_dvfs := true;
          annotations.(task) <- Some { task; level; freq; energy }
        | keyword :: _ -> fail line_no "unknown keyword %S" keyword)
      (String.split_on_char '\n' text);
    if !version = 0 then Error "missing header line (schedule 1, 2 or 3)"
    else begin
      Array.iteri
        (fun i p -> if p = None then raise (Parse_error (0, Printf.sprintf "task %d missing" i)))
        placements;
      Array.iteri
        (fun e t ->
          if t = None then raise (Parse_error (0, Printf.sprintf "transaction %d missing" e)))
        transactions;
      let dvfs =
        if not !any_dvfs then None
        else begin
          Array.iteri
            (fun i a ->
              if a = None then
                raise (Parse_error (0, Printf.sprintf "dvfs annotation for task %d missing" i)))
            annotations;
          Some (Array.map Option.get annotations)
        end
      in
      Ok
        ( Schedule.make
            ~placements:(Array.map Option.get placements)
            ~transactions:(Array.map Option.get transactions),
          dvfs )
    end
  with
  | Parse_error (0, msg) -> Error msg
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let of_string platform ctg text =
  Result.map fst (of_string_full platform ctg text)

let save ?dvfs ~path schedule =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?dvfs schedule))

let load_full ~path platform ctg =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string_full platform ctg (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg

let load ~path platform ctg = Result.map fst (load_full ~path platform ctg)
