(** Quality metrics of a schedule.

    Energy follows the paper's Eq. (3):
    [energy = sum_i e_i^{M(t_i)} + sum_{c_ij} v(c_ij) * e(r_{M(ti),M(tj)})]
    — the computation energy of every task on its assigned PE plus the
    bit-energy of every transaction over its route. *)

type t = {
  total_energy : float;  (** nJ, Eq. (3). *)
  computation_energy : float;
  communication_energy : float;
  makespan : float;
  deadline_misses : (int * float) list;
      (** Tasks finishing after their deadline, with lateness; sorted by
          task id. *)
  average_hops : float;
      (** Mean [n_hops] over data-carrying edges (volume > 0); same-tile
          transfers count 0 hops. The paper reports this as "average hops
          per packet". [0.] when the graph carries no data. *)
}

val compute : Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> Schedule.t -> t

val miss_count : t -> int

val energy_of_assignment : Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> (int -> int) -> float
(** Eq. (3) evaluated on a bare task-to-PE mapping, without timing — the
    energy of a schedule depends only on the assignment, which this
    computes directly (used by the repair procedure to rank candidate
    migrations). *)

val pp : Format.formatter -> t -> unit
