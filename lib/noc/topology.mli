(** Regular NoC topologies.

    The paper's illustrative platform is an [n x n] 2-D mesh; Sec. 7
    notes the algorithm extends to other regular topologies with
    deterministic routing, naming the honeycomb of Hemani et al. as an
    example — both a torus and a brick-wall honeycomb are provided.
    Tiles are indexed row-major: tile [(x, y)] (column [x], row [y]) has
    index [y * cols + x]. *)

type t =
  | Mesh of { cols : int; rows : int }
  | Torus of { cols : int; rows : int }
  | Honeycomb of { cols : int; rows : int }
      (** Brick-wall hexagonal pattern: full horizontal rows plus a
          vertical link between [(x, y)] and [(x, y+1)] exactly where
          [x + y] is even, so every router has degree at most 3. *)

val mesh : cols:int -> rows:int -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val torus : cols:int -> rows:int -> t

val honeycomb : cols:int -> rows:int -> t
(** Raises [Invalid_argument] on non-positive dimensions or a
    disconnected single-column multi-row pattern. *)

val n_nodes : t -> int
val cols : t -> int
val rows : t -> int

val coords : t -> int -> int * int
(** [coords t i] is the [(x, y)] position of tile [i]. Raises
    [Invalid_argument] when [i] is out of range. *)

val index : t -> x:int -> y:int -> int
(** Inverse of {!coords}. *)

val neighbours : t -> int -> int list
(** Tiles one physical link away, in a deterministic order. *)

val are_neighbours : t -> int -> int -> bool
(** True when a direct physical link connects the two tiles (including
    wrap-around links on a torus). *)

val distance : t -> int -> int -> int
(** Minimal hop distance between two routers: Manhattan distance on a
    mesh, wrap-aware on a torus, breadth-first on a honeycomb. Zero for
    a tile and itself. *)

val bfs_distances : t -> int -> int array
(** All minimal distances from one tile ([-1] for unreachable tiles —
    only possible on malformed honeycombs). *)

val deltas : t -> int -> int -> int * int
(** [(dx, dy)] signed displacement of the shortest path from the first
    tile to the second, one component per axis. On a torus the shorter
    wrap direction is chosen (ties towards positive). Raises
    [Invalid_argument] on a honeycomb, which has no dimension-order
    geometry. *)

val step : t -> int -> dx:int -> dy:int -> int
(** [step t i ~dx ~dy] is the neighbouring tile reached by moving one hop
    in the direction of the (non-zero) sign of [dx] or [dy]; exactly one
    of the two must be non-zero, and the move must stay on the chip (it
    wraps on a torus). Raises [Invalid_argument] on a honeycomb. *)

val pp : Format.formatter -> t -> unit
