(** Deterministic routing.

    The paper uses dimension-ordered XY routing on the mesh: a packet
    first travels along the X axis to the destination column, then along
    the Y axis. The same discipline applies on a torus, with each axis
    taking its shorter wrap direction. Honeycombs (the paper's Sec. 7
    extension) have no XY geometry, so they route over deterministic
    per-source shortest-path trees (breadth-first, smallest-index parent),
    memoised per topology. Deterministic routing is what lets the static
    scheduler know, for every transaction, exactly which links it will
    occupy. *)

type link = { from_node : int; to_node : int }
(** A directed physical channel between adjacent routers. *)

val route : Topology.t -> src:int -> dst:int -> int list
(** [route topo ~src ~dst] is the ordered list of routers visited,
    inclusive of both endpoints; [[src]] when [src = dst]. The length is
    [distance src dst + 1]. *)

val links_of_route : int list -> link list
(** Consecutive pairs of a router list. *)

val links : Topology.t -> src:int -> dst:int -> link list
(** [links_of_route (route topo ~src ~dst)]. *)

val hops : Topology.t -> src:int -> dst:int -> int
(** Number of routers traversed: [distance + 1] when [src <> dst]
    (both the source and destination routers switch the packet), and [0]
    when [src = dst] (the network is not used). This is the [n_hops] of
    the paper's Eq. (2). *)

val all_links : Topology.t -> link list
(** Every directed physical channel of the topology, deterministically
    ordered. *)

val bisection_links : Topology.t -> link list
(** The directed links crossing the midline bisection of the tile set
    (columns [0 .. cols/2 - 1] against the rest; rows when the topology
    is a single column). On a torus the wrap-around links cross too.
    Their aggregate bandwidth bounds the traffic any schedule can move
    between the two halves per time unit — the capacity the
    [platform/bisection-bandwidth] lint checks against. *)

val link_equal : link -> link -> bool
val pp_link : Format.formatter -> link -> unit
