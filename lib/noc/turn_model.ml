(* Turn-model routing functions (Glass & Ni 1992; Chiu 2000). A turn
   model proves deadlock-freedom by prohibiting just enough turns to
   break every abstract cycle of the channel-dependency graph; every
   route that uses only permitted turns — minimal or not — is then free
   of circular waits. XY is the degenerate member of the family: it
   prohibits both y-to-x turns, leaving exactly one route per pair.

   The module exposes the routing function as a *relation*: [next_hops]
   enumerates every admissible minimal next hop, so an analyzer can
   certify all routes an adaptive router could ever take, and
   [turn_legal] exposes the prohibited-turn predicate itself so detour
   search on degraded fabrics can stay inside the proven-safe set even
   on non-minimal paths. *)

type t = Xy | West_first | Odd_even

let all = [ Xy; West_first; Odd_even ]
let name = function Xy -> "xy" | West_first -> "west-first" | Odd_even -> "odd-even"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "xy" -> Ok Xy
  | "west-first" | "westfirst" | "wf" -> Ok West_first
  | "odd-even" | "oddeven" | "oe" -> Ok Odd_even
  | other ->
    Error
      (Printf.sprintf "unknown routing function %S (expected xy, west-first or odd-even)"
         other)

let is_adaptive = function Xy -> false | West_first | Odd_even -> true

(* Adaptive turn models are formulated on meshes: a torus wraparound
   channel re-introduces the ring cycles the turn prohibitions were
   chosen to break, and honeycombs have no dimension-order geometry at
   all. XY extends to tori (the proof does not — tori need virtual
   channels — but the routing function is well defined). *)
let supports t topo =
  match (t, topo) with
  | Xy, (Topology.Mesh _ | Topology.Torus _) -> true
  | Xy, Topology.Honeycomb _ -> false
  | (West_first | Odd_even), Topology.Mesh _ -> true
  | (West_first | Odd_even), (Topology.Torus _ | Topology.Honeycomb _) -> false

(* Directions on the mesh/torus grid. North is towards row 0 (y - 1),
   South towards higher rows, East towards higher columns. *)
type dir = E | W | N | S

let opposite = function E -> W | W -> E | N -> S | S -> N
let is_y = function N | S -> true | E | W -> false

let dir_between topo u v =
  let dx, dy = Topology.deltas topo u v in
  if dx = 1 && dy = 0 then E
  else if dx = -1 && dy = 0 then W
  else if dx = 0 && dy = -1 then N
  else if dx = 0 && dy = 1 then S
  else invalid_arg "Turn_model: nodes are not neighbours"

let require_mesh t topo =
  match topo with
  | Topology.Mesh _ -> ()
  | Topology.Torus _ | Topology.Honeycomb _ ->
    invalid_arg
      (Printf.sprintf "Turn_model.%s: adaptive turn models are defined on meshes only"
         (name t))

(* Admissible minimal next hops of [t] at [node], routing [src] -> [dst].
   Sorted ascending by tile index so the head is the canonical
   deterministic choice. Only odd-even consults [src]: Chiu's ROUTE
   function permits the eastbound vertical move in the source column
   even when that column is even. *)
let next_hops t topo ~src ~node ~dst =
  if node = dst then []
  else
    match t with
    | Xy ->
      (match topo with
      | Topology.Honeycomb _ ->
        invalid_arg "Turn_model.next_hops: honeycombs route by BFS, not a turn model"
      | Topology.Mesh _ | Topology.Torus _ ->
        let dx, dy = Topology.deltas topo node dst in
        if dx <> 0 then [ Topology.step topo node ~dx ~dy:0 ]
        else [ Topology.step topo node ~dx:0 ~dy ])
    | West_first ->
      require_mesh t topo;
      let dx, dy = Topology.deltas topo node dst in
      if dx < 0 then
        (* All west hops are taken first; no other direction may precede
           or interleave with them, so west is the only admissible move. *)
        [ Topology.step topo node ~dx ~dy:0 ]
      else begin
        let hops = if dx > 0 then [ Topology.step topo node ~dx ~dy:0 ] else [] in
        let hops =
          if dy <> 0 then Topology.step topo node ~dx:0 ~dy :: hops else hops
        in
        List.sort compare hops
      end
    | Odd_even ->
      require_mesh t topo;
      let cx, _ = Topology.coords topo node in
      let sx, _ = Topology.coords topo src in
      let dcol, _ = Topology.coords topo dst in
      let dx, dy = Topology.deltas topo node dst in
      let y_hop () = Topology.step topo node ~dx:0 ~dy in
      if dx = 0 then [ y_hop () ]
      else if dx > 0 then
        if dy = 0 then [ Topology.step topo node ~dx ~dy:0 ]
        else begin
          (* Chiu's ROUTE: the EN/ES turn is only available at odd
             columns (or before the first east move, in the source
             column); the east move is withheld one column early when
             the destination column is even, because the final EN/ES
             turn there would be prohibited. *)
          let hops = if cx mod 2 = 1 || cx = sx then [ y_hop () ] else [] in
          let hops =
            if dcol mod 2 = 1 || dx <> 1 then Topology.step topo node ~dx ~dy:0 :: hops
            else hops
          in
          List.sort compare hops
        end
      else begin
        (* Westbound: west is always admissible; the NW/SW turns that a
           later west move implies are only permitted at even columns. *)
        let hops = [ Topology.step topo node ~dx ~dy:0 ] in
        let hops =
          if dy <> 0 && cx mod 2 = 0 then y_hop () :: hops else hops
        in
        List.sort compare hops
      end

let turn_legal t topo ~prev ~via ~next =
  let d1 = dir_between topo prev via and d2 = dir_between topo via next in
  if d2 = opposite d1 then false (* 180-degree turns are always prohibited *)
  else
    match t with
    | Xy -> not (is_y d1 && not (is_y d2))
    | West_first -> not (d2 = W && d1 <> W)
    | Odd_even ->
      let cx, _ = Topology.coords topo via in
      let even = cx mod 2 = 0 in
      not ((d1 = E && is_y d2 && even) || (is_y d1 && d2 = W && not even))

(* Canonical deterministic route: at every node take the smallest
   admissible tile index. For XY this reproduces {!Routing.xy_route}
   exactly (the relation is single-valued); for the adaptive models it
   picks one provably-safe minimal route per pair. *)
let route t topo ~src ~dst =
  let rec go node acc steps =
    if node = dst then List.rev (node :: acc)
    else if steps > Topology.n_nodes topo then
      invalid_arg "Turn_model.route: relation does not converge"
    else
      match next_hops t topo ~src ~node ~dst with
      | [] -> invalid_arg "Turn_model.route: relation stalls before the destination"
      | hop :: _ -> go hop (node :: acc) (steps + 1)
  in
  go src [] 0

let pp ppf t = Format.pp_print_string ppf (name t)
