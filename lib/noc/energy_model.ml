type t = { e_sbit : float; e_lbit : float }

let make ~e_sbit ~e_lbit =
  if e_sbit < 0. || e_lbit < 0. then
    invalid_arg "Energy_model.make: energies must be non-negative";
  { e_sbit; e_lbit }

let default = { e_sbit = 0.000284; e_lbit = 0.000449 }

let bit_energy t ~n_hops =
  assert (n_hops >= 0);
  if n_hops = 0 then 0.
  else
    (float_of_int n_hops *. t.e_sbit)
    +. (float_of_int (n_hops - 1) *. t.e_lbit)

let transfer_energy t ~n_hops ~bits =
  assert (bits >= 0.);
  bits *. bit_energy t ~n_hops
