(** Processing elements of a heterogeneous tile-based NoC.

    The paper's per-task, per-PE costs live in the CTG (Definition 1); a
    PE descriptor here characterises the tile itself so that workload
    generators can derive correlated cost tables. Speed and power scale a
    task's nominal time/energy: a fast, energy-hungry CPU has a small
    [time_factor] and a large [power_factor], a low-power core the
    opposite. *)

type kind =
  | Risc_fast  (** High-performance, energy-hungry general-purpose CPU. *)
  | Risc_lowpower  (** Low-power embedded core (e.g. ARM-class). *)
  | Dsp  (** Digital signal processor: fast on signal kernels. *)
  | Accel  (** Fixed-function accelerator: very fast on matching kernels. *)

type t = {
  index : int;  (** Tile index in the platform (row-major). *)
  kind : kind;
  time_factor : float;  (** Multiplies nominal execution time; > 0. *)
  power_factor : float;  (** Multiplies nominal power; > 0. *)
}

val make : index:int -> kind:kind -> time_factor:float -> power_factor:float -> t
(** Raises [Invalid_argument] on non-positive factors. *)

val default_factors : kind -> float * float
(** Representative [(time_factor, power_factor)] pair for each kind:
    [Risc_fast] (0.55, 3.2), [Risc_lowpower] (1.9, 0.25), [Dsp] (1.0, 1.0),
    [Accel] (0.5, 1.9) — a wide speed/efficiency spread, the regime the
    paper's heterogeneity argument targets (e.g. PowerPC vs DSP vs ARM). *)

val of_kind : index:int -> kind -> t
(** A PE with {!default_factors}. *)

val all_kinds : kind array

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
