(* Routes are deterministic per (topology, src, dst), and the scheduler's
   tentative-placement loop asks for the same pairs thousands of times, so
   each platform memoises its n^2 route table (filled on demand). *)
type route_info = { nodes : int list; links : Routing.link list; n_hops : int }

type t = {
  topology : Topology.t;
  pes : Pe.t array;
  energy : Energy_model.t;
  link_bandwidth : float;
  router_latency : float;
  routing : Turn_model.t;
  route_cache : route_info option array; (* indexed by src * n + dst *)
}

let make ~topology ~pes ?(energy = Energy_model.default) ?(link_bandwidth = 3200.)
    ?(router_latency = 0.) ?(routing = Turn_model.Xy) () =
  if Array.length pes <> Topology.n_nodes topology then
    invalid_arg "Platform.make: one PE per tile required";
  Array.iteri
    (fun i pe ->
      if pe.Pe.index <> i then invalid_arg "Platform.make: PE index mismatch")
    pes;
  if not (link_bandwidth > 0.) then
    invalid_arg "Platform.make: bandwidth must be positive";
  if not (router_latency >= 0.) then
    invalid_arg "Platform.make: router latency must be non-negative";
  if Turn_model.is_adaptive routing && not (Turn_model.supports routing topology) then
    invalid_arg
      (Printf.sprintf "Platform.make: %s routing is defined on meshes only"
         (Turn_model.name routing));
  let n = Array.length pes in
  {
    topology;
    pes;
    energy;
    link_bandwidth;
    router_latency;
    routing;
    route_cache = Array.make (n * n) None;
  }

let topology t = t.topology
let routing t = t.routing
let energy_model t = t.energy
let n_pes t = Array.length t.pes
let pe t i = t.pes.(i)
let pes t = t.pes
let link_bandwidth t = t.link_bandwidth
let router_latency t = t.router_latency
let c_memo_hits = Noc_obs.Counters.counter "noc.route_memo.hits"
let c_memo_misses = Noc_obs.Counters.counter "noc.route_memo.misses"

let route_info t ~src ~dst =
  let idx = (src * Array.length t.pes) + dst in
  match t.route_cache.(idx) with
  | Some info ->
    Noc_obs.Counters.incr c_memo_hits;
    info
  | None ->
    Noc_obs.Counters.incr c_memo_misses;
    (* XY keeps the original deterministic router (which also covers
       honeycombs by BFS); adaptive models take the canonical smallest-
       index route out of their admissible relation. *)
    let nodes =
      match t.routing with
      | Turn_model.Xy -> Routing.route t.topology ~src ~dst
      | (Turn_model.West_first | Turn_model.Odd_even) as m ->
        Turn_model.route m t.topology ~src ~dst
    in
    let info =
      {
        nodes;
        links = Routing.links_of_route nodes;
        n_hops = Routing.hops t.topology ~src ~dst;
      }
    in
    t.route_cache.(idx) <- Some info;
    info

(* The lazy fill above is single-domain machinery: concurrent fills
   would race on the cache array. Campaigns that fan a shared platform
   out over a domain pool call this first so the workers only read. *)
let warm_routes t =
  let n = Array.length t.pes in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      ignore (route_info t ~src ~dst)
    done
  done

(* Canonical serialization for the content digest: everything that
   influences routes, durations or energies — topology, the routing
   function, the PE descriptors, the bit-energy model, bandwidth and
   router latency. Hex floats keep it exact; the route memo is derived
   state and does not participate, so a warmed and a cold platform
   digest equally. v2 added the routing line so schedules cannot alias
   across routing disciplines in the serve cache. *)
let digest t =
  let buf = Buffer.create 256 in
  let topo_line =
    match t.topology with
    | Topology.Mesh { cols; rows } -> Printf.sprintf "mesh %d %d" cols rows
    | Topology.Torus { cols; rows } -> Printf.sprintf "torus %d %d" cols rows
    | Topology.Honeycomb { cols; rows } -> Printf.sprintf "honeycomb %d %d" cols rows
  in
  Buffer.add_string buf (Printf.sprintf "platform-digest/v2 %s\n" topo_line);
  Buffer.add_string buf (Printf.sprintf "routing %s\n" (Turn_model.name t.routing));
  Buffer.add_string buf
    (Printf.sprintf "energy %h %h bandwidth %h latency %h\n" t.energy.Energy_model.e_sbit
       t.energy.Energy_model.e_lbit t.link_bandwidth t.router_latency);
  Array.iter
    (fun (pe : Pe.t) ->
      Buffer.add_string buf
        (Printf.sprintf "pe %d %s %h %h\n" pe.Pe.index (Pe.kind_name pe.Pe.kind)
           pe.Pe.time_factor pe.Pe.power_factor))
    t.pes;
  Noc_util.Fnv.digest (Buffer.contents buf)

let route t ~src ~dst = (route_info t ~src ~dst).nodes
let route_links t ~src ~dst = (route_info t ~src ~dst).links
let hops t ~src ~dst = (route_info t ~src ~dst).n_hops
let bit_energy t ~src ~dst = Energy_model.bit_energy t.energy ~n_hops:(hops t ~src ~dst)

let comm_energy t ~src ~dst ~bits =
  Energy_model.transfer_energy t.energy ~n_hops:(hops t ~src ~dst) ~bits

let comm_duration t ~src ~dst ~bits =
  assert (bits >= 0.);
  if src = dst then 0.
  else
    (* Serialisation latency plus the wormhole head's pipeline delay
       through the intermediate routers. *)
    (bits /. t.link_bandwidth)
    +. (float_of_int (hops t ~src ~dst - 1) *. t.router_latency)

(* Duration and energy of a transaction over an explicit route, used for
   detour routes on degraded platforms. A route of [h] nodes has the
   same cost as a deterministic route with [h] hops, so for the
   platform's own routes these agree with [comm_duration] and
   [comm_energy] exactly. *)
let route_hops nodes = match nodes with [] | [ _ ] -> 0 | _ :: _ -> List.length nodes

let route_duration t ~route ~bits =
  assert (bits >= 0.);
  match route_hops route with
  | 0 -> 0.
  | h -> (bits /. t.link_bandwidth) +. (float_of_int (h - 1) *. t.router_latency)

let route_energy t ~route ~bits =
  Energy_model.transfer_energy t.energy ~n_hops:(route_hops route) ~bits

let all_links t = Routing.all_links t.topology

let heterogeneous ?(seed = 0) ?routing topology () =
  let rng = Noc_util.Prng.create ~seed:(seed lxor 0x6e6f63) in
  let pes =
    Array.init (Topology.n_nodes topology) (fun i ->
        let kind = Pe.all_kinds.(i mod Array.length Pe.all_kinds) in
        let tf, pf = Pe.default_factors kind in
        let jitter () = Noc_util.Prng.float_in rng ~min:0.9 ~max:1.1 in
        Pe.make ~index:i ~kind ~time_factor:(tf *. jitter ())
          ~power_factor:(pf *. jitter ()))
  in
  make ~topology ~pes ?routing ()

let heterogeneous_mesh ?seed ?routing ~cols ~rows () =
  heterogeneous ?seed ?routing (Topology.mesh ~cols ~rows) ()

let homogeneous_mesh ~cols ~rows =
  let topology = Topology.mesh ~cols ~rows in
  let pes =
    Array.init (cols * rows) (fun i ->
        Pe.make ~index:i ~kind:Pe.Dsp ~time_factor:1. ~power_factor:1.)
  in
  make ~topology ~pes ()

let pp ppf t =
  match t.routing with
  | Turn_model.Xy ->
    Format.fprintf ppf "platform(%a, %d PEs, bw=%g)" Topology.pp t.topology
      (n_pes t) t.link_bandwidth
  | m ->
    Format.fprintf ppf "platform(%a, %a routing, %d PEs, bw=%g)" Topology.pp
      t.topology Turn_model.pp m (n_pes t) t.link_bandwidth
