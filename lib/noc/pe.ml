type kind = Risc_fast | Risc_lowpower | Dsp | Accel

type t = { index : int; kind : kind; time_factor : float; power_factor : float }

let make ~index ~kind ~time_factor ~power_factor =
  if not (time_factor > 0. && power_factor > 0.) then
    invalid_arg "Pe.make: factors must be positive";
  { index; kind; time_factor; power_factor }

let default_factors = function
  | Risc_fast -> (0.55, 3.2)
  | Risc_lowpower -> (1.9, 0.25)
  | Dsp -> (1.0, 1.0)
  | Accel -> (0.5, 1.9)

let of_kind ~index kind =
  let time_factor, power_factor = default_factors kind in
  make ~index ~kind ~time_factor ~power_factor

let all_kinds = [| Risc_fast; Risc_lowpower; Dsp; Accel |]

let kind_name = function
  | Risc_fast -> "risc-fast"
  | Risc_lowpower -> "risc-lowpower"
  | Dsp -> "dsp"
  | Accel -> "accel"

let pp ppf t =
  Format.fprintf ppf "pe%d[%s, x%.2ft, x%.2fp]" t.index (kind_name t.kind)
    t.time_factor t.power_factor
