(** Bit-energy model of the communication network (paper Sec. 3.2).

    Following Ye et al. and Hu et al., the energy of moving one bit
    through one router and one inter-tile link is
    [E_bit = E_Sbit + E_Lbit] (Eq. 1), and the energy of sending one bit
    from tile [t_i] to tile [t_j] along a minimal deterministic route is

    {[ E_bit(t_i, t_j) = n_hops * E_Sbit + (n_hops - 1) * E_Lbit ]}

    (Eq. 2), where [n_hops] counts the routers traversed. Buffering
    energy is deliberately excluded, as in the paper. All energies are in
    nanojoules per bit. *)

type t = {
  e_sbit : float;  (** Switch energy per bit, nJ. *)
  e_lbit : float;  (** Link energy per bit, nJ. *)
}

val make : e_sbit:float -> e_lbit:float -> t
(** Raises [Invalid_argument] on negative components. *)

val default : t
(** Representative 100 nm-era figures of the bit-energy literature:
    [e_sbit = 0.000284] nJ/bit, [e_lbit = 0.000449] nJ/bit. *)

val bit_energy : t -> n_hops:int -> float
(** Eq. (2). Zero when [n_hops = 0] (source and destination share a
    tile, the network is not used). *)

val transfer_energy : t -> n_hops:int -> bits:float -> float
(** [bits * bit_energy ~n_hops]. *)
