type link = { from_node : int; to_node : int }

(* Deterministic shortest-path parents towards [src]: for every node the
   parent is the smallest-index neighbour one step closer to [src].
   Used for topologies without dimension-order geometry (honeycombs).
   Memoised per (topology, source), one table per domain: Hashtbl is not
   safe under concurrent mutation, and the parent arrays are pure
   functions of their key, so per-domain recomputation preserves
   determinism at the cost of one BFS per (domain, source). *)
let parent_cache_key : (Topology.t * int, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let bfs_parents topo src =
  let parent_cache = Domain.DLS.get parent_cache_key in
  match Hashtbl.find_opt parent_cache (topo, src) with
  | Some parents -> parents
  | None ->
    let dist = Topology.bfs_distances topo src in
    let n = Topology.n_nodes topo in
    let parents = Array.make n (-1) in
    for v = 0 to n - 1 do
      if v <> src && dist.(v) > 0 then
        parents.(v) <-
          List.fold_left
            (fun best w ->
              if dist.(w) = dist.(v) - 1 && (best = -1 || w < best) then w else best)
            (-1) (Topology.neighbours topo v)
    done;
    Hashtbl.replace parent_cache (topo, src) parents;
    parents

let bfs_route topo ~src ~dst =
  if src = dst then [ src ]
  else begin
    let parents = bfs_parents topo src in
    let rec walk node acc =
      if node = src then node :: acc
      else begin
        let parent = parents.(node) in
        if parent < 0 then invalid_arg "Routing.route: disconnected topology";
        walk parent (node :: acc)
      end
    in
    walk dst []
  end

let xy_route topo ~src ~dst =
  let rec go node acc =
    if node = dst then List.rev (node :: acc)
    else
      let dx, dy = Topology.deltas topo node dst in
      let next =
        if dx <> 0 then Topology.step topo node ~dx ~dy:0
        else Topology.step topo node ~dx:0 ~dy
      in
      go next (node :: acc)
  in
  go src []

let route topo ~src ~dst =
  match topo with
  | Topology.Mesh _ | Topology.Torus _ -> xy_route topo ~src ~dst
  | Topology.Honeycomb _ -> bfs_route topo ~src ~dst

let links_of_route nodes =
  let rec pair = function
    | a :: (b :: _ as rest) -> { from_node = a; to_node = b } :: pair rest
    | [ _ ] | [] -> []
  in
  pair nodes

let links topo ~src ~dst = links_of_route (route topo ~src ~dst)

let hops topo ~src ~dst =
  if src = dst then 0 else Topology.distance topo src dst + 1

let all_links topo =
  let n = Topology.n_nodes topo in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    List.iter
      (fun j -> acc := { from_node = i; to_node = j } :: !acc)
      (List.rev (Topology.neighbours topo i))
  done;
  !acc

let bisection_links topo =
  let cols = Topology.cols topo and rows = Topology.rows topo in
  (* Halve the longer axis so a 1xN chain still has a real bisection. *)
  let side i =
    let x, y = Topology.coords topo i in
    if cols > 1 then x < cols / 2 else y < rows / 2
  in
  List.filter (fun l -> side l.from_node <> side l.to_node) (all_links topo)

let link_equal a b = a.from_node = b.from_node && a.to_node = b.to_node
let pp_link ppf l = Format.fprintf ppf "%d->%d" l.from_node l.to_node
