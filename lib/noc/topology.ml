type t =
  | Mesh of { cols : int; rows : int }
  | Torus of { cols : int; rows : int }
  | Honeycomb of { cols : int; rows : int }

let check_dims ~cols ~rows =
  if cols <= 0 || rows <= 0 then invalid_arg "Topology: dimensions must be positive"

let mesh ~cols ~rows =
  check_dims ~cols ~rows;
  Mesh { cols; rows }

let torus ~cols ~rows =
  check_dims ~cols ~rows;
  Torus { cols; rows }

let honeycomb ~cols ~rows =
  check_dims ~cols ~rows;
  if cols < 2 && rows > 1 then
    invalid_arg "Topology.honeycomb: a single column is disconnected";
  Honeycomb { cols; rows }

let dims = function
  | Mesh { cols; rows } | Torus { cols; rows } | Honeycomb { cols; rows } ->
    (cols, rows)

let cols t = fst (dims t)
let rows t = snd (dims t)
let n_nodes t = cols t * rows t

let coords t i =
  if i < 0 || i >= n_nodes t then invalid_arg "Topology.coords: index out of range";
  (i mod cols t, i / cols t)

let index t ~x ~y =
  if x < 0 || x >= cols t || y < 0 || y >= rows t then
    invalid_arg "Topology.index: coordinates out of range";
  (y * cols t) + x

(* Signed shortest displacement from [a] to [b] along one axis. *)
let axis_delta ~wrap ~size a b =
  let d = b - a in
  if not wrap then d
  else
    let d = ((d mod size) + size) mod size in
    (* Prefer the shorter direction; ties resolved towards positive. *)
    if d * 2 <= size then d else d - size

let deltas t i j =
  match t with
  | Honeycomb _ ->
    invalid_arg "Topology.deltas: honeycombs have no dimension-order geometry"
  | Mesh _ | Torus _ ->
    let xi, yi = coords t i and xj, yj = coords t j in
    let wrap = match t with Mesh _ | Honeycomb _ -> false | Torus _ -> true in
    ( axis_delta ~wrap ~size:(cols t) xi xj,
      axis_delta ~wrap ~size:(rows t) yi yj )

(* Brick-wall honeycomb adjacency: full horizontal rows, and a vertical
   link between (x, y) and (x, y+1) only where x + y is even, giving the
   degree-3 hexagonal pattern of Hemani et al. *)
let honeycomb_neighbours t i =
  let x, y = coords t i in
  let candidates =
    [ (x - 1, y); (x + 1, y) ]
    @ (if (x + y) mod 2 = 0 then [ (x, y + 1) ] else [ (x, y - 1) ])
  in
  List.filter_map
    (fun (x, y) ->
      if x >= 0 && x < cols t && y >= 0 && y < rows t then Some (index t ~x ~y)
      else None)
    candidates

let neighbours t i =
  match t with
  | Honeycomb _ -> honeycomb_neighbours t i
  | Mesh _ | Torus _ ->
    let x, y = coords t i in
    let wrap v size =
      match t with
      | Torus _ -> Some (((v mod size) + size) mod size)
      | Mesh _ | Honeycomb _ -> if v < 0 || v >= size then None else Some v
    in
    List.filter_map
      (fun (x', y') ->
        match (wrap x' (cols t), wrap y' (rows t)) with
        | Some x, Some y ->
          let j = index t ~x ~y in
          if j = i then None else Some j
        | None, _ | _, None -> None)
      [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]

(* Breadth-first distances from one node; used for honeycombs (and as a
   reference implementation in tests). *)
let bfs_distances t src =
  let n = n_nodes t in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (neighbours t v)
  done;
  dist

let distance t i j =
  match t with
  | Mesh _ | Torus _ ->
    let dx, dy = deltas t i j in
    abs dx + abs dy
  | Honeycomb _ ->
    ignore (coords t i);
    ignore (coords t j);
    let d = (bfs_distances t i).(j) in
    if d < 0 then invalid_arg "Topology.distance: disconnected honeycomb" else d

let are_neighbours t i j = i <> j && List.mem j (neighbours t i)

let step t i ~dx ~dy =
  if (dx = 0) = (dy = 0) then
    invalid_arg "Topology.step: exactly one axis must move";
  match t with
  | Honeycomb _ -> invalid_arg "Topology.step: honeycombs have no XY moves"
  | Mesh _ | Torus _ ->
    let x, y = coords t i in
    let wrap v size =
      match t with
      | Torus _ -> ((v mod size) + size) mod size
      | Mesh _ | Honeycomb _ ->
        if v < 0 || v >= size then invalid_arg "Topology.step: off-chip move" else v
    in
    let x' = wrap (x + compare dx 0) (cols t) in
    let y' = wrap (y + compare dy 0) (rows t) in
    if dx <> 0 then index t ~x:x' ~y else index t ~x ~y:y'

let pp ppf = function
  | Mesh { cols; rows } -> Format.fprintf ppf "mesh %dx%d" cols rows
  | Torus { cols; rows } -> Format.fprintf ppf "torus %dx%d" cols rows
  | Honeycomb { cols; rows } -> Format.fprintf ppf "honeycomb %dx%d" cols rows
