(** Turn-model routing functions as route relations.

    A turn model (Glass & Ni 1992) proves deadlock-freedom by
    prohibiting a minimal set of turns: every route that uses only
    permitted turns is free of circular channel waits, minimal or not.
    Three members are implemented:

    - [Xy] — dimension order, both y-to-x turns prohibited. The
      degenerate single-route case; identical to {!Routing.route} on
      meshes and tori.
    - [West_first] — a packet takes all its west hops first and never
      turns back west; east/north/south are fully adaptive afterwards.
    - [Odd_even] — Chiu's odd-even model (2000): EN/ES turns prohibited
      at even columns, NW/SW turns prohibited at odd columns. More
      evenly adaptive than west-first (no direction is fully greedy).

    The routing function is exposed as a relation ([next_hops]
    enumerates every admissible minimal hop) so the analyzer can build
    a channel-dependency graph covering all routes an adaptive router
    could take, and as a predicate ([turn_legal]) so degraded-fabric
    detour search can stay inside the proven-safe set on non-minimal
    paths too. *)

type t = Xy | West_first | Odd_even

val all : t list
(** In canonical order: [Xy; West_first; Odd_even]. *)

val name : t -> string
(** ["xy"], ["west-first"], ["odd-even"] — the CLI spelling. *)

val of_string : string -> (t, string) result
(** Parses {!name} spellings (case-insensitive; ["wf"] / ["oe"] and the
    hyphen-less forms are accepted). *)

val is_adaptive : t -> bool
(** [false] only for [Xy], whose relation is single-valued. *)

val supports : t -> Topology.t -> bool
(** Whether the turn model is defined on [topo]. The adaptive models
    are mesh-only (torus wraparounds re-introduce the ring cycles the
    prohibitions break); [Xy] covers meshes and tori. Honeycombs have
    no dimension-order geometry and support no turn model. *)

val next_hops : t -> Topology.t -> src:int -> node:int -> dst:int -> int list
(** Admissible minimal next hops at [node] when routing [src] -> [dst],
    sorted ascending by tile index; [[]] exactly when [node = dst].
    Only odd-even consults [src] (Chiu's ROUTE allows the eastbound
    vertical move in the source column regardless of its parity).
    Raises [Invalid_argument] when {!supports} is false. *)

val turn_legal : t -> Topology.t -> prev:int -> via:int -> next:int -> bool
(** Whether the turn taken at [via] — arriving from [prev], leaving to
    [next] — is permitted by the model. 180-degree turns are always
    prohibited. The predicate is source-independent and accepts
    non-minimal moves: any walk all of whose turns are legal is
    deadlock-free by the turn-model theorem. Raises [Invalid_argument]
    unless both pairs are grid neighbours. *)

val route : t -> Topology.t -> src:int -> dst:int -> int list
(** Canonical deterministic route: at every node the smallest
    admissible tile index. For [Xy] this is exactly
    {!Routing.xy_route}. *)

val pp : Format.formatter -> t -> unit
