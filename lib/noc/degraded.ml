(* A degraded view of a platform: some PEs can no longer execute tasks
   and some directed links can no longer carry flits. Routers of failed
   PEs keep routing (a stalled core does not take its switch down), so
   degradation only removes links from the routing graph and PEs from
   the set of legal execution targets.

   Routes prefer the platform's canonical route when it survives.
   Otherwise, on platforms with an adaptive turn model, a detour is
   searched inside the model's turn-legal walk set first: a BFS over
   (node, entry-direction) states whose transitions are exactly the
   permitted turns. Such a detour may be non-minimal, but by the
   turn-model theorem the route set stays free of circular waits — the
   analyzer can prove the degraded CDG acyclic instead of flagging it.
   Only when no turn-legal route survives (or the platform routes XY,
   whose turn rules admit a single route per pair) does the view fall
   back to the unrestricted deterministic minimal BFS detour
   (smallest-index parent, the same tie-break the honeycomb routing
   uses). All parent tables and per-(src, dst) route records are
   memoised in the view, so one view per fault set gives the scheduler
   the same O(1) repeated-probe cost as the fault-free route table. *)

type route_info = { nodes : int list; links : Routing.link list; n_hops : int }

type t = {
  platform : Platform.t;
  dead_pes : bool array;
  dead_links : bool array; (* indexed from * n + to *)
  parents : int array option array; (* per-source BFS parents, on demand *)
  (* Per-source turn-legal state BFS: distance and parent per
     (node, entry-node) state, indexed node * (n + 1) + entry + 1 where
     entry = -1 marks the search root. Adaptive platforms only. *)
  legal : (int array * int array) option array;
  route_cache : route_info option option array; (* None = not computed *)
}

let make platform ~failed_pes ~failed_links =
  let n = Platform.n_pes platform in
  let dead_pes = Array.make n false in
  List.iter
    (fun pe ->
      if pe < 0 || pe >= n then invalid_arg "Degraded.make: PE out of range";
      dead_pes.(pe) <- true)
    failed_pes;
  let dead_links = Array.make (n * n) false in
  List.iter
    (fun (l : Routing.link) ->
      if l.from_node < 0 || l.from_node >= n || l.to_node < 0 || l.to_node >= n then
        invalid_arg "Degraded.make: link endpoint out of range";
      dead_links.((l.from_node * n) + l.to_node) <- true)
    failed_links;
  {
    platform;
    dead_pes;
    dead_links;
    parents = Array.make n None;
    legal = Array.make n None;
    route_cache = Array.make (n * n) None;
  }

let platform t = t.platform
let pe_alive t pe = not t.dead_pes.(pe)

let alive_pes t =
  List.filter (fun pe -> not t.dead_pes.(pe)) (List.init (Array.length t.dead_pes) Fun.id)

let link_alive t (l : Routing.link) =
  not t.dead_links.((l.from_node * Array.length t.dead_pes) + l.to_node)

let is_trivial t =
  Array.for_all not t.dead_pes && Array.for_all not t.dead_links

(* Forward BFS from [src] over surviving links; parent of [v] is the
   smallest-index [u] one step closer with link u->v alive. *)
let bfs_parents t src =
  match t.parents.(src) with
  | Some parents -> parents
  | None ->
    let topo = Platform.topology t.platform
    and n = Array.length t.dead_pes in
    let dist = Array.make n (-1) in
    dist.(src) <- 0;
    let parents = Array.make n (-1) in
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if (not t.dead_links.((u * n) + v)) && dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            parents.(v) <- u;
            Queue.add v queue
          end)
        (Topology.neighbours topo u)
    done;
    (* Re-derive parents deterministically: BFS discovery order depends
       on the queue, so fix each parent to the smallest-index candidate
       at the right distance. *)
    for v = 0 to n - 1 do
      if v <> src && dist.(v) > 0 then
        parents.(v) <-
          List.fold_left
            (fun best u ->
              if
                dist.(u) = dist.(v) - 1
                && (not t.dead_links.((u * n) + v))
                && (best = -1 || u < best)
              then u
              else best)
            (-1)
            (Topology.neighbours topo v)
    done;
    t.parents.(src) <- Some parents;
    parents

(* Turn-legal detour search for adaptive platforms: BFS over
   (node, entry-node) states where a transition u -> v exists when the
   link survives and the turn entry -> u -> v is permitted by the
   platform's turn model. The state split matters: whether v is usable
   from u depends on how u was entered, so plain node BFS would both
   miss legal routes and accept illegal ones. First-discovery order is
   deterministic (FIFO queue, canonical neighbour order), and detours
   found here may exceed the minimal hop count — legality, not
   minimality, is what keeps the degraded CDG acyclic. *)
let legal_states t src =
  match t.legal.(src) with
  | Some tables -> tables
  | None ->
    let topo = Platform.topology t.platform
    and routing = Platform.routing t.platform
    and n = Array.length t.dead_pes in
    let state node entry = (node * (n + 1)) + entry + 1 in
    let dist = Array.make (n * (n + 1)) (-1)
    and parent = Array.make (n * (n + 1)) (-1) in
    let queue = Queue.create () in
    dist.(state src (-1)) <- 0;
    Queue.add (src, -1) queue;
    while not (Queue.is_empty queue) do
      let u, entry = Queue.pop queue in
      let here = state u entry in
      List.iter
        (fun v ->
          if
            (not t.dead_links.((u * n) + v))
            && (entry < 0 || Turn_model.turn_legal routing topo ~prev:entry ~via:u ~next:v)
            && dist.(state v u) < 0
          then begin
            dist.(state v u) <- dist.(here) + 1;
            parent.(state v u) <- here;
            Queue.add (v, u) queue
          end)
        (Topology.neighbours topo u)
    done;
    t.legal.(src) <- Some (dist, parent);
    (dist, parent)

let turn_legal_detour t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let n = Array.length t.dead_pes in
    let dist, parent = legal_states t src in
    (* Shortest turn-legal arrival at [dst], ties to the smallest entry
       node, keeps the extraction canonical. *)
    let best = ref (-1) in
    for entry = 0 to n - 1 do
      let s = (dst * (n + 1)) + entry + 1 in
      if dist.(s) >= 0 && (!best < 0 || dist.(s) < dist.(!best)) then best := s
    done;
    if !best < 0 then None
    else begin
      let rec walk s acc =
        let node = s / (n + 1) in
        if parent.(s) < 0 then node :: acc else walk parent.(s) (node :: acc)
      in
      Some (walk !best [])
    end
  end

let detour_route t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parents = bfs_parents t src in
    let rec walk node acc =
      if node = src then Some (node :: acc)
      else
        let parent = parents.(node) in
        if parent < 0 then None else walk parent (node :: acc)
    in
    walk dst []
  end

let route_info t ~src ~dst =
  let n = Array.length t.dead_pes in
  let idx = (src * n) + dst in
  match t.route_cache.(idx) with
  | Some cached -> cached
  | None ->
    let default_nodes = Platform.route t.platform ~src ~dst in
    let default_links = Platform.route_links t.platform ~src ~dst in
    let nodes =
      if List.for_all (link_alive t) default_links then Some default_nodes
      else
        match Platform.routing t.platform with
        | Turn_model.Xy ->
          (* XY's turn rules admit exactly one route per pair — the dead
             one — so go straight to the unrestricted BFS detour. *)
          detour_route t ~src ~dst
        | Turn_model.West_first | Turn_model.Odd_even ->
          (match turn_legal_detour t ~src ~dst with
          | Some nodes -> Some nodes
          | None -> detour_route t ~src ~dst)
    in
    let info =
      Option.map
        (fun nodes ->
          {
            nodes;
            links = Routing.links_of_route nodes;
            n_hops = Platform.route_hops nodes;
          })
        nodes
    in
    t.route_cache.(idx) <- Some info;
    info

let reachable t ~src ~dst = route_info t ~src ~dst <> None

let route_opt t ~src ~dst = Option.map (fun i -> i.nodes) (route_info t ~src ~dst)

let get what ~src ~dst = function
  | Some info -> info
  | None ->
    invalid_arg
      (Printf.sprintf "Degraded.%s: no surviving route from %d to %d" what src dst)

let route t ~src ~dst = (get "route" ~src ~dst (route_info t ~src ~dst)).nodes
let route_links t ~src ~dst = (get "route_links" ~src ~dst (route_info t ~src ~dst)).links
let hops t ~src ~dst = (get "hops" ~src ~dst (route_info t ~src ~dst)).n_hops

let comm_duration t ~src ~dst ~bits =
  Platform.route_duration t.platform ~route:(route t ~src ~dst) ~bits

let comm_energy t ~src ~dst ~bits =
  Platform.route_energy t.platform ~route:(route t ~src ~dst) ~bits

let route_valid t nodes =
  let topo = Platform.topology t.platform in
  match nodes with
  | [] -> false
  | [ p ] -> p >= 0 && p < Array.length t.dead_pes
  | _ :: _ ->
    List.for_all (fun p -> p >= 0 && p < Array.length t.dead_pes) nodes
    && List.for_all
         (fun (l : Routing.link) ->
           Topology.are_neighbours topo l.from_node l.to_node && link_alive t l)
         (Routing.links_of_route nodes)

let pp ppf t =
  Format.fprintf ppf "degraded(%a, %d dead PEs, %d dead links)" Platform.pp t.platform
    (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.dead_pes)
    (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.dead_links)
