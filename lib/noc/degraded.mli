(** Degraded platform view: fault-aware routing and PE masking.

    Wraps a {!Platform.t} with a set of failed PEs (which can no longer
    execute tasks) and failed directed links (which can no longer carry
    flits). Routers of failed PEs keep routing, so only links disappear
    from the routing graph.

    Routes keep the platform's canonical route wherever it survives.
    On platforms with an adaptive turn model ({!Platform.routing}),
    detours are searched inside the model's turn-legal walk set first —
    a BFS over (node, entry-direction) states whose transitions are the
    permitted turns — so the degraded route set stays deadlock-free by
    the turn-model theorem (possibly at the cost of extra hops). Only
    when no turn-legal route survives, or on XY platforms (whose turn
    rules admit a single route per pair), does the view fall back to
    the unrestricted deterministic minimal BFS detour (smallest-index
    parent, the honeycomb tie-break) — which carries no deadlock
    guarantee and is what {!Noc_analysis.Deadlock} flags. Parent
    tables and per-[(src, dst)] routes are memoised in the view, so
    repeated probes cost one array read — the fault-set-keyed analogue
    of {!Platform.route}'s memo table. *)

type t

val make :
  Platform.t -> failed_pes:int list -> failed_links:Routing.link list -> t
(** Raises [Invalid_argument] on out-of-range PEs or link endpoints.
    Failed links are directed: failing [a -> b] leaves [b -> a] up. *)

val platform : t -> Platform.t
val pe_alive : t -> int -> bool
val alive_pes : t -> int list
val link_alive : t -> Routing.link -> bool

val is_trivial : t -> bool
(** True when nothing is failed: every query then mirrors the platform. *)

val reachable : t -> src:int -> dst:int -> bool

val route : t -> src:int -> dst:int -> int list
(** Routers visited over the degraded fabric. Raises [Invalid_argument]
    when the fault set disconnects the pair; see {!route_opt}. *)

val route_opt : t -> src:int -> dst:int -> int list option
val route_links : t -> src:int -> dst:int -> Routing.link list
val hops : t -> src:int -> dst:int -> int

val comm_duration : t -> src:int -> dst:int -> bits:float -> float
(** {!Platform.route_duration} over the degraded route: detours pay
    their extra router hops. *)

val comm_energy : t -> src:int -> dst:int -> bits:float -> float

val route_valid : t -> int list -> bool
(** Whether a recorded route is a walk over surviving links: every
    consecutive pair adjacent in the topology and no failed link used. *)

val pp : Format.formatter -> t -> unit
