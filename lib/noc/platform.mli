(** Target platforms: the paper's Architecture Characterization Graph.

    A platform combines a topology, one heterogeneous PE per tile, the
    bit-energy model, and a uniform link bandwidth. It provides exactly
    the two per-route metrics of Definition 2: [e(r_{i,j})] (average
    energy per bit between two PEs, from Eq. 2) and [b(r_{i,j})] (route
    bandwidth, uniform here since wormhole routing pipelines flits over
    identical links). *)

type t

val make :
  topology:Topology.t ->
  pes:Pe.t array ->
  ?energy:Energy_model.t ->
  ?link_bandwidth:float ->
  ?router_latency:float ->
  ?routing:Turn_model.t ->
  unit ->
  t
(** [make ~topology ~pes ()] builds a platform. [pes] must contain one
    descriptor per tile, at its own index. [link_bandwidth] is in bits
    per time unit and defaults to [3200.] (a 32-bit channel at one flit
    per cycle with the microsecond as time unit and a 100 MHz clock).
    [router_latency] (default [0.]) is the per-router head-flit pipeline
    delay added once per intermediate hop to every transaction's
    duration. [routing] (default {!Turn_model.Xy}) selects the routing
    function; the adaptive turn models are mesh-only. Raises
    [Invalid_argument] on mismatched PE arrays, non-positive bandwidth,
    negative latency, or an adaptive model on a non-mesh topology. *)

val topology : t -> Topology.t

val routing : t -> Turn_model.t
(** The platform's routing function. {!route} serves the canonical
    deterministic route of that function; the analyzer proves the whole
    admissible relation deadlock-free, and degraded views keep fault
    detours inside the model's turn-legal set. *)

val energy_model : t -> Energy_model.t
val n_pes : t -> int
val pe : t -> int -> Pe.t
val pes : t -> Pe.t array
val link_bandwidth : t -> float
val router_latency : t -> float

val route : t -> src:int -> dst:int -> int list
(** Routers visited between the two PEs' tiles (see {!Routing.route}).
    Routes are deterministic, so [route], [route_links] and [hops] are
    memoized in a per-platform [(src, dst)] table filled on first use —
    repeated probes from the scheduler's inner loop cost one array read. *)

val route_links : t -> src:int -> dst:int -> Routing.link list
val hops : t -> src:int -> dst:int -> int

val digest : t -> string
(** Stable content digest: FNV-1a ({!Noc_util.Fnv}) over a canonical
    serialization of the topology, routing function, PE descriptors,
    bit-energy model, bandwidth and router latency (floats rendered
    exactly). Derived state — in particular the route memo — does not
    participate, so warming routes leaves the digest unchanged. Used as
    the platform component of the serve daemon's schedule-cache key;
    since v2 the routing function participates, so schedules produced
    under different routing disciplines never alias. *)

val warm_routes : t -> unit
(** Eagerly fill the whole [(src, dst)] route memo. The lazy fill is
    not safe under concurrent use, so campaigns that share one platform
    across a {!Noc_util.Pool} fan-out call this before spawning; the
    workers then only read the table. Idempotent. *)

val bit_energy : t -> src:int -> dst:int -> float
(** [e(r_{src,dst})] of Definition 2: energy per bit over the route. *)

val comm_energy : t -> src:int -> dst:int -> bits:float -> float
(** Total network energy for moving [bits] from [src] to [dst]. Zero when
    they share a tile. *)

val comm_duration : t -> src:int -> dst:int -> bits:float -> float
(** Time a transaction occupies its route: [bits / b(r)] plus
    [(hops - 1) * router_latency] for distinct tiles, [0.] on the same
    tile. Wormhole routing pipelines the flits, so with the default zero
    router latency the serialisation delay dominates and is independent
    of hop count, matching the paper's single path reservation. *)

val route_hops : int list -> int
(** Hop count of an explicit route: the number of routers visited, [0]
    for a same-tile route ([[]] or [[p]]). For the platform's own routes
    this equals {!hops}. *)

val route_duration : t -> route:int list -> bits:float -> float
(** Like {!comm_duration} but over an explicit (possibly detour) route:
    the cost depends only on the route's length, so for the platform's
    deterministic routes the two agree exactly. *)

val route_energy : t -> route:int list -> bits:float -> float
(** Like {!comm_energy} over an explicit route. *)

val all_links : t -> Routing.link list

(** {1 Deterministic heterogeneous presets} *)

val heterogeneous : ?seed:int -> ?routing:Turn_model.t -> Topology.t -> unit -> t
(** A platform over an arbitrary topology whose PE kinds cycle through
    {!Pe.all_kinds} with mild per-tile factor perturbation drawn from
    [seed] (default 0); deterministic. Platforms built this way over
    different topologies of equal size have identical PE arrays, which
    is what the topology-comparison experiments need. *)

val heterogeneous_mesh :
  ?seed:int -> ?routing:Turn_model.t -> cols:int -> rows:int -> unit -> t
(** A mesh whose PE kinds cycle through {!Pe.all_kinds} with mild
    per-tile factor perturbation drawn from [seed] (default 0): every
    call with equal arguments yields the same platform. *)

val homogeneous_mesh : cols:int -> rows:int -> t
(** All-DSP mesh with unit factors — useful for tests where heterogeneity
    would obscure the property under test. *)

val pp : Format.formatter -> t -> unit
