(** Deterministic fan-out over a fixed-size domain pool.

    The determinism contract: [map_range ~n f] returns exactly
    [List.init n f] — same values, same order, bit for bit — for every
    job count and chunk size. Workers claim chunks of the index range
    dynamically from an atomic counter and write each result into its
    own slot, so parallelism never reorders or perturbs results; it only
    changes wall-clock time.

    Safety contract for callers: [f] must not mutate state shared
    between indices. Trials that share a platform must warm its route
    memo first ({!Noc_noc.Platform.warm_routes}) so the domains only
    read it. *)

val default_jobs : unit -> int
(** The [NOCSCHED_JOBS] environment variable when set (raises
    [Invalid_argument] if it is not a positive integer), otherwise
    [Domain.recommended_domain_count ()]. *)

val map_range : ?jobs:int -> ?chunk:int -> n:int -> (int -> 'a) -> 'a list
(** [map_range ~jobs ~chunk ~n f] is [List.init n f] computed on up to
    [jobs] domains (including the calling one), claimed [chunk] indices
    at a time (default 1 — campaign trials are coarse enough that
    per-index claiming balances best). [jobs] defaults to
    {!default_jobs}. With [jobs = 1] or [n <= 1] no domain is spawned.

    Every index is evaluated even if one raises; afterwards the
    exception of the smallest failing index is re-raised — the same one
    a serial left-to-right run would have surfaced. *)

val map_list : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f items] is [List.map f items] with the same contract as
    {!map_range}. *)
