let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let fnv1a64 s = fold offset_basis s
let to_hex h = Printf.sprintf "%016Lx" h
let digest s = to_hex (fnv1a64 s)
