module Int_set = Set.Make (Int)

let sort ~n ~succ =
  let indegree = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun w -> indegree.(w) <- indegree.(w) + 1) (succ v)
  done;
  let frontier = ref Int_set.empty in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then frontier := Int_set.add v !frontier
  done;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Int_set.is_empty !frontier) do
    let v = Int_set.min_elt !frontier in
    frontier := Int_set.remove v !frontier;
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun w ->
        indegree.(w) <- indegree.(w) - 1;
        if indegree.(w) = 0 then frontier := Int_set.add w !frontier)
      (succ v)
  done;
  if !filled = n then Ok order
  else
    Error
      (List.filter (fun v -> indegree.(v) > 0) (List.init n Fun.id))

let is_acyclic ~n ~succ = Result.is_ok (sort ~n ~succ)

let longest_path_lengths ~n ~succ ~weight =
  match sort ~n ~succ with
  | Error _ -> invalid_arg "Topo_sort.longest_path_lengths: graph has a cycle"
  | Ok order ->
    let best = Array.init n (fun v -> weight v) in
    Array.iter
      (fun v ->
        List.iter
          (fun w -> best.(w) <- Float.max best.(w) (best.(v) +. weight w))
          (succ v))
      order;
    best
