(** FNV-1a content hashing.

    The 64-bit Fowler–Noll–Vo (variant 1a) hash over byte strings: fast,
    dependency-free and stable across platforms and OCaml versions —
    exactly what persistent cache keys need. This is a {e content
    digest}, not a cryptographic hash; collisions are astronomically
    unlikely for the cache sizes involved but an adversary could craft
    them, so never use it for authentication. *)

val fnv1a64 : string -> int64
(** The raw 64-bit FNV-1a hash of the bytes of the string. *)

val fold : int64 -> string -> int64
(** [fold h s] continues an FNV-1a computation: feeding a document in
    pieces gives the same hash as feeding the concatenation.
    [fnv1a64 s = fold offset_basis s]. *)

val offset_basis : int64
(** The standard 64-bit FNV offset basis, [0xcbf29ce484222325]. *)

val to_hex : int64 -> string
(** Lower-case, zero-padded 16-character hex rendering. *)

val digest : string -> string
(** [to_hex (fnv1a64 s)]: the hex digest used in cache keys. *)
