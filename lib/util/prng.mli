(** Deterministic pseudo-random number generator (SplitMix64).

    All randomised components of the library (workload generation, platform
    heterogeneity) draw from this generator so that every experiment is
    reproducible from a seed alone, independently of the OCaml [Random]
    module's global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [0, bound). [bound] must be
    positive. *)

val int_in : t -> min:int -> max:int -> int
(** [int_in t ~min ~max] draws uniformly from the inclusive range
    [min, max]. Requires [min <= max]. *)

val float : t -> bound:float -> float
(** [float t ~bound] draws uniformly from [0, bound). [bound] must be
    positive and finite. *)

val float_in : t -> min:float -> max:float -> float
(** [float_in t ~min ~max] draws uniformly from [min, max). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Box-Muller transform. *)

val lognormal_factor : t -> sigma:float -> float
(** A multiplicative noise factor with median 1.0: [exp (gaussian 0 sigma)].
    Used to perturb execution times and energies. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] returns [k] distinct indices drawn
    from [0, n), in increasing order. Requires [0 <= k <= n]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
