type t = { start : float; stop : float }

let make ~start ~stop =
  assert (Float.is_finite start && Float.is_finite stop);
  assert (start <= stop);
  { start; stop }

let duration t = t.stop -. t.start
let is_empty t = t.start = t.stop

let overlaps a b =
  (not (is_empty a)) && (not (is_empty b)) && a.start < b.stop && b.start < a.stop

let contains t x = t.start <= x && x < t.stop
let shift t dt = make ~start:(t.start +. dt) ~stop:(t.stop +. dt)

let merge a b = make ~start:(Float.min a.start b.start) ~stop:(Float.max a.stop b.stop)

let compare_start a b =
  let c = Float.compare a.start b.start in
  if c <> 0 then c else Float.compare a.stop b.stop

let equal a b = a.start = b.start && a.stop = b.stop
let pp ppf t = Format.fprintf ppf "[%g, %g)" t.start t.stop
