let sum arr = Array.fold_left ( +. ) 0. arr

let mean arr =
  assert (Array.length arr > 0);
  sum arr /. float_of_int (Array.length arr)

let variance arr =
  let m = mean arr in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. arr in
  acc /. float_of_int (Array.length arr)

let stddev arr = sqrt (variance arr)

let min_value arr =
  assert (Array.length arr > 0);
  Array.fold_left Float.min arr.(0) arr

let max_value arr =
  assert (Array.length arr > 0);
  Array.fold_left Float.max arr.(0) arr

let argmin arr =
  assert (Array.length arr > 0);
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < arr.(!best) then best := i
  done;
  !best

let two_smallest arr =
  assert (Array.length arr > 0);
  let best = ref infinity and second = ref infinity in
  Array.iter
    (fun x ->
      if x < !best then begin
        second := !best;
        best := x
      end
      else if x < !second then second := x)
    arr;
  if Array.length arr = 1 then (!best, !best) else (!best, !second)

(* Percentile with linear interpolation between closest ranks (the
   "exclusive of the extremes" convention is deliberately avoided so
   p=0 and p=100 are exactly the min and max). Sorts a copy: callers on
   hot paths should sort once and use [percentile_sorted]. *)
let percentile_sorted sorted ~p =
  assert (Array.length sorted > 0);
  if not (p >= 0. && p <= 100.) then
    invalid_arg "Stats.percentile: p must lie in [0, 100]";
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let frac = rank -. Float.floor rank in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let percentile arr ~p =
  let sorted = Array.copy arr in
  Array.sort Float.compare sorted;
  percentile_sorted sorted ~p

let median arr = percentile arr ~p:50.

let fequal ?(eps = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= eps || diff <= eps *. Float.max (Float.abs a) (Float.abs b)
