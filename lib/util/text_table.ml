type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalise row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let float_cell ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
let percent_cell ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100. *. v)
