(* All scheduler and experiment timings go through this one helper so
   the whole tree agrees on what a second is. [Sys.time] is process CPU
   time: it keeps counting on every running domain, so under a parallel
   campaign it over-reports wall time roughly by the job count (and it
   was what the schedulers used before the domain pool existed). *)

let wall_s () = Unix.gettimeofday ()

let elapsed_s t0 = wall_s () -. t0
