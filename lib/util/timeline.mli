(** Schedule tables: ordered sets of busy intervals on a shared resource.

    A timeline records the busy slots of one resource (a processing element
    or a directed network link). It supports the two operations the paper's
    scheduler needs: finding the earliest gap of a given duration at or
    after a release time, and reserving a slot.

    Internally the busy set is a sorted dynamic array indexed by binary
    search: [is_free] and [release] are O(log n), [earliest_gap] is
    O(log n + slots walked past), [reserve] is O(1) amortized for the
    scheduler's dominant append-at-end pattern and O(n) worst case for a
    mid-table insert. Snapshots copy the live prefix (O(n)); the hot
    tentative-[F(i,k)] path of EAS Step 2 instead undoes its reservations
    through [Noc_sched.Resource_state]'s journal, which never snapshots.
    Behavioural equivalence with the naive {!Timeline_reference} model is
    enforced by qcheck differential tests over random operation traces. *)

type t

type snapshot
(** Opaque capture of a timeline's state. *)

val create : unit -> t
(** An empty timeline. *)

val busy : t -> Interval.t list
(** Busy intervals in increasing order of start time. *)

val is_free : t -> Interval.t -> bool
(** [is_free t iv] is true when [iv] overlaps no busy interval. *)

val earliest_gap : t -> after:float -> duration:float -> float
(** [earliest_gap t ~after ~duration] returns the smallest [s >= after]
    such that [s, s + duration) is free. Always succeeds (time is
    unbounded to the right). [duration] must be non-negative. *)

val reserve : t -> Interval.t -> unit
(** [reserve t iv] marks [iv] busy. Raises [Invalid_argument] if [iv]
    overlaps an existing busy interval. Empty intervals are ignored. *)

val release : t -> Interval.t -> unit
(** [release t iv] removes a busy interval equal to [iv]. Raises
    [Invalid_argument] when no such interval exists; the message reports
    the table index where the interval would have lived. *)

val utilisation : t -> horizon:float -> float
(** Fraction of [0, horizon) covered by busy intervals (clipped to the
    horizon). Requires [horizon > 0]. *)

val span : t -> float
(** Largest busy [stop] value, or [0.] when empty. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val version : t -> int
(** Mutation counter: incremented by every state-changing {!reserve},
    {!release} and {!restore} (no-ops on empty intervals do not count).
    Two reads of an unchanged version bracket an unchanged busy set, so
    callers can memoize query results against a timeline and revalidate
    with one integer comparison — the EAS flat-array kernel keys its
    F(i,k) cache on the versions of the tables each probe consulted. *)

val merged_busy : t list -> after:float -> Interval.t list
(** [merged_busy tls ~after] coalesces the busy intervals of all timelines
    whose [stop] exceeds [after] into a sorted, non-overlapping list. This
    is the paper's "path schedule table" obtained by merging the occupied
    slots of a route's links (Fig. 3). *)

val earliest_gap_multi : t list -> after:float -> duration:float -> float
(** Earliest [s >= after] such that [s, s + duration) is simultaneously
    free on every timeline in the list. *)

val pp : Format.formatter -> t -> unit
