(* The original list-based schedule table, kept verbatim as the naive
   model for differential testing of the indexed Timeline. Correctness
   here is easy to audit by eye; speed is irrelevant. *)

type t = { mutable slots : Interval.t list (* sorted by start, disjoint *) }
type snapshot = Interval.t list

let create () = { slots = [] }
let busy t = t.slots

let is_free t iv =
  Interval.is_empty iv || not (List.exists (Interval.overlaps iv) t.slots)

let gap_in_sorted slots ~after ~duration =
  (* Walk the sorted busy list keeping the earliest candidate start. *)
  let rec walk candidate = function
    | [] -> candidate
    | iv :: rest ->
      if Interval.is_empty iv then walk candidate rest
      else if candidate +. duration <= iv.Interval.start then candidate
      else walk (Float.max candidate iv.Interval.stop) rest
  in
  if duration = 0. then after else walk after slots

let earliest_gap t ~after ~duration =
  assert (duration >= 0.);
  gap_in_sorted t.slots ~after ~duration

let reserve t iv =
  if not (Interval.is_empty iv) then begin
    let rec insert = function
      | [] -> [ iv ]
      | hd :: tl ->
        if Interval.overlaps iv hd then
          invalid_arg
            (Format.asprintf "Timeline_reference.reserve: %a overlaps %a"
               Interval.pp iv Interval.pp hd)
        else if Interval.compare_start iv hd < 0 then iv :: hd :: tl
        else hd :: insert tl
    in
    t.slots <- insert t.slots
  end

let release t iv =
  if not (Interval.is_empty iv) then begin
    let found = ref false in
    let rec remove = function
      | [] -> []
      | hd :: tl ->
        if (not !found) && Interval.equal hd iv then begin
          found := true;
          tl
        end
        else hd :: remove tl
    in
    let slots = remove t.slots in
    if not !found then
      invalid_arg
        (Format.asprintf "Timeline_reference.release: %a not reserved" Interval.pp iv);
    t.slots <- slots
  end

let utilisation t ~horizon =
  assert (horizon > 0.);
  let covered =
    List.fold_left
      (fun acc iv ->
        let start = Float.min iv.Interval.start horizon in
        let stop = Float.min iv.Interval.stop horizon in
        acc +. Float.max 0. (stop -. start))
      0. t.slots
  in
  covered /. horizon

let span t = List.fold_left (fun acc iv -> Float.max acc iv.Interval.stop) 0. t.slots
let snapshot t = t.slots
let restore t snap = t.slots <- snap

let merged_busy tls ~after =
  let relevant =
    List.concat_map
      (fun tl ->
        List.filter
          (fun iv -> iv.Interval.stop > after && not (Interval.is_empty iv))
          tl.slots)
      tls
  in
  let sorted = List.sort Interval.compare_start relevant in
  let rec coalesce = function
    | [] -> []
    | [ iv ] -> [ iv ]
    | a :: b :: rest ->
      if b.Interval.start <= a.Interval.stop then coalesce (Interval.merge a b :: rest)
      else a :: coalesce (b :: rest)
  in
  coalesce sorted

let earliest_gap_multi tls ~after ~duration =
  assert (duration >= 0.);
  gap_in_sorted (merged_busy tls ~after) ~after ~duration

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Interval.pp)
    t.slots
