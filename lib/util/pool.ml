(* Deterministic fan-out over a fixed-size domain pool.

   The experiment campaigns are embarrassingly parallel at the trial
   level: every trial builds its own CTG, Resource_state and schedule,
   and only reads shared immutable inputs (platforms with eagerly warmed
   route tables). This module gives them a single primitive —
   [map_range] — with a hard determinism contract: the result is the
   list [f 0; f 1; ...; f (n-1)] in submission order, bit-for-bit
   independent of the job count and chunk size.

   Work distribution is dynamic: workers claim chunks of indices from a
   shared atomic counter, so a slow trial does not stall the others.
   Each result lands in its own preallocated slot, which makes the
   writes race-free (disjoint indices) and the order reconstruction
   trivial. [Domain.join] on every worker establishes the
   happens-before edge that lets the submitting domain read the slots.

   Exceptions: every index is still evaluated (no early abort), and the
   exception of the *smallest* failing index is re-raised afterwards —
   the same exception a serial [List.init] run would have surfaced. *)

type 'a cell = Value of 'a | Raised of exn * Printexc.raw_backtrace

let default_jobs () =
  match Sys.getenv_opt "NOCSCHED_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some jobs when jobs >= 1 -> jobs
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "NOCSCHED_JOBS=%S: expected a positive integer" s))

let finish results =
  (* First failing index wins, exactly like a serial left-to-right run. *)
  Array.iter
    (function
      | Value _ -> ()
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)
    results;
  Array.to_list
    (Array.map
       (function Value v -> v | Raised _ -> assert false)
       results)

let map_range ?jobs ?(chunk = 1) ~n f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map_range: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.map_range: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.map_range: negative item count";
  let eval i = try Value (f i) with e -> Raised (e, Printexc.get_raw_backtrace ()) in
  if n = 0 then []
  else if jobs = 1 || n = 1 then finish (Array.init n eval)
  else begin
    let results = Array.make n (Raised (Exit, Printexc.get_callstack 0)) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          for i = start to min n (start + chunk) - 1 do
            results.(i) <- eval i
          done;
          loop ()
        end
      in
      loop ()
    in
    (* The submitting domain is one of the [jobs] workers; at most one
       spawned domain per chunk, so tiny inputs do not pay for idle
       domains. *)
    let n_chunks = (n + chunk - 1) / chunk in
    let spawned =
      List.init (min (jobs - 1) (n_chunks - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    finish results
  end

let map_list ?jobs ?chunk f items =
  let items = Array.of_list items in
  map_range ?jobs ?chunk ~n:(Array.length items) (fun i -> f items.(i))
