(* Indexed schedule table: the busy set lives in a pair of parallel
   float arrays (starts, stops) sorted by start, with [len] live slots.
   Disjointness makes the stop sequence sorted too, so both endpoints
   admit binary search. The scheduler's dominant pattern — reserving at
   the end of the table — hits the O(1) amortized append path; mid-table
   inserts and releases pay one [Array.blit]. *)

type t = {
  mutable starts : float array;
  mutable stops : float array;
  mutable len : int;
  mutable version : int;
}

type snapshot = { snap_starts : float array; snap_stops : float array; snap_len : int }

let create () = { starts = [||]; stops = [||]; len = 0; version = 0 }

let version t = t.version

let busy t =
  List.init t.len (fun i -> Interval.make ~start:t.starts.(i) ~stop:t.stops.(i))

(* First index whose slot ends strictly after [x] (slots ending at or
   before [x] cannot constrain anything at or after it), or [len]. *)
let first_stop_after t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.stops.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let is_free t (iv : Interval.t) =
  Interval.is_empty iv
  ||
  let i = first_stop_after t iv.Interval.start in
  i >= t.len || t.starts.(i) >= iv.Interval.stop

let earliest_gap t ~after ~duration =
  assert (duration >= 0.);
  if duration = 0. then after
  else begin
    let candidate = ref after in
    let i = ref (first_stop_after t after) in
    let continue = ref true in
    while !continue && !i < t.len do
      if !candidate +. duration <= t.starts.(!i) then continue := false
      else begin
        if t.stops.(!i) > !candidate then candidate := t.stops.(!i);
        incr i
      end
    done;
    !candidate
  end

let ensure_capacity t n =
  let cap = Array.length t.starts in
  if n > cap then begin
    let cap' = Int.max n (Int.max 8 (2 * cap)) in
    let starts = Array.make cap' 0. and stops = Array.make cap' 0. in
    Array.blit t.starts 0 starts 0 t.len;
    Array.blit t.stops 0 stops 0 t.len;
    t.starts <- starts;
    t.stops <- stops
  end

let reserve t (iv : Interval.t) =
  if not (Interval.is_empty iv) then begin
    let i = first_stop_after t iv.Interval.start in
    (* Every slot before [i] ends at or before [iv.start]; slot [i] is the
       only candidate overlap, and [i] is also the insertion point. *)
    if i < t.len && t.starts.(i) < iv.Interval.stop then
      invalid_arg
        (Format.asprintf "Timeline.reserve: %a overlaps %a" Interval.pp iv
           Interval.pp
           (Interval.make ~start:t.starts.(i) ~stop:t.stops.(i)));
    ensure_capacity t (t.len + 1);
    if i < t.len then begin
      Array.blit t.starts i t.starts (i + 1) (t.len - i);
      Array.blit t.stops i t.stops (i + 1) (t.len - i)
    end;
    t.starts.(i) <- iv.Interval.start;
    t.stops.(i) <- iv.Interval.stop;
    t.len <- t.len + 1;
    t.version <- t.version + 1
  end

let release t (iv : Interval.t) =
  if not (Interval.is_empty iv) then begin
    let i = first_stop_after t iv.Interval.start in
    if i < t.len && t.starts.(i) = iv.Interval.start && t.stops.(i) = iv.Interval.stop
    then begin
      Array.blit t.starts (i + 1) t.starts i (t.len - i - 1);
      Array.blit t.stops (i + 1) t.stops i (t.len - i - 1);
      t.len <- t.len - 1;
      t.version <- t.version + 1
    end
    else
      invalid_arg
        (Format.asprintf "Timeline.release: %a not reserved (slot index %d of %d)"
           Interval.pp iv i t.len)
  end

let utilisation t ~horizon =
  assert (horizon > 0.);
  let covered = ref 0. in
  for i = 0 to t.len - 1 do
    let start = Float.min t.starts.(i) horizon in
    let stop = Float.min t.stops.(i) horizon in
    covered := !covered +. Float.max 0. (stop -. start)
  done;
  !covered /. horizon

let span t = if t.len = 0 then 0. else t.stops.(t.len - 1)

let snapshot t =
  {
    snap_starts = Array.sub t.starts 0 t.len;
    snap_stops = Array.sub t.stops 0 t.len;
    snap_len = t.len;
  }

let restore t snap =
  ensure_capacity t snap.snap_len;
  Array.blit snap.snap_starts 0 t.starts 0 snap.snap_len;
  Array.blit snap.snap_stops 0 t.stops 0 snap.snap_len;
  t.len <- snap.snap_len;
  t.version <- t.version + 1

let merged_busy tls ~after =
  let total =
    List.fold_left (fun acc tl -> acc + (tl.len - first_stop_after tl after)) 0 tls
  in
  let slots = Array.make (Int.max total 1) (0., 0.) in
  let k = ref 0 in
  List.iter
    (fun tl ->
      for i = first_stop_after tl after to tl.len - 1 do
        slots.(!k) <- (tl.starts.(i), tl.stops.(i));
        incr k
      done)
    tls;
  let slots = if total = Array.length slots then slots else Array.sub slots 0 total in
  Array.sort
    (fun (sa, ea) (sb, eb) ->
      let c = Float.compare sa sb in
      if c <> 0 then c else Float.compare ea eb)
    slots;
  (* Coalesce with an accumulator (tail position throughout): a merged
     table can hold every slot of every link, so recursion depth must not
     scale with it. *)
  let coalesced =
    Array.fold_left
      (fun acc (s, e) ->
        match acc with
        | (cs, ce) :: rest when s <= ce ->
          if e > ce then (cs, e) :: rest else acc
        | _ -> (s, e) :: acc)
      [] slots
  in
  List.rev_map (fun (s, e) -> Interval.make ~start:s ~stop:e) coalesced

let earliest_gap_multi tls ~after ~duration =
  assert (duration >= 0.);
  if duration = 0. then after
  else begin
    (* Candidate advance: probe every table for a slot overlapping
       [candidate, candidate + duration); any hit pushes the candidate to
       that slot's stop. Each advance retires at least one slot of one
       table for good, so the loop does O(total slots) probes worst case
       and typically just one round of binary searches. *)
    let candidate = ref after in
    let moved = ref true in
    while !moved do
      moved := false;
      List.iter
        (fun tl ->
          let i = first_stop_after tl !candidate in
          if i < tl.len && tl.starts.(i) < !candidate +. duration then begin
            candidate := tl.stops.(i);
            moved := true
          end)
        tls
    done;
    !candidate
  end

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Interval.pp)
    (busy t)
