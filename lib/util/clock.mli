(** Wall-clock timing for schedulers, experiments and benchmarks.

    Process CPU time ([Sys.time]) is meaningless once campaigns fan out
    over domains — every running domain keeps the counter ticking — so
    all [runtime_seconds] measurements use monotonic-enough wall time
    from this single helper. *)

val wall_s : unit -> float
(** Current wall-clock time in seconds (Unix epoch). Only differences
    are meaningful. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [wall_s () -. t0]. *)
