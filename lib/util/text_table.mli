(** Plain-text table rendering for the benchmark harness and the CLI.

    Produces aligned, pipe-separated tables matching the row/column shape
    of the paper's Tables 1-3 and the series of Figs. 5-7. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the rows out under the header with one
    column per header cell; rows shorter than the header are padded with
    empty cells. [align] gives per-column alignment (default: first column
    left, the rest right). *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering, default 1 decimal. *)

val percent_cell : ?decimals:int -> float -> string
(** [percent_cell 0.443] is ["44.3%"] with default decimals 1. *)
