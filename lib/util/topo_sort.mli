(** Topological ordering of integer-indexed directed graphs. *)

val sort : n:int -> succ:(int -> int list) -> (int array, int list) result
(** [sort ~n ~succ] orders the vertices [0 .. n-1] of the graph whose
    adjacency is given by [succ]. Returns [Ok order] with every edge going
    from an earlier to a later position, or [Error cycle_members] listing
    the vertices that remain on at least one cycle. The ordering is
    deterministic: among ready vertices, the smallest index comes first
    (Kahn's algorithm with an ordered frontier). *)

val is_acyclic : n:int -> succ:(int -> int list) -> bool

val longest_path_lengths :
  n:int -> succ:(int -> int list) -> weight:(int -> float) -> float array
(** [longest_path_lengths ~n ~succ ~weight] returns, for every vertex, the
    maximum total [weight] over paths ending at that vertex (inclusive of
    the vertex itself). The graph must be acyclic. *)
