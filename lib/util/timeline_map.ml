module Float_map = Map.Make (Float)

(* Key: interval start; value: interval stop. Intervals are disjoint, so
   the start uniquely identifies a slot. *)
type t = { mutable slots : float Float_map.t }
type snapshot = float Float_map.t

let create () = { slots = Float_map.empty }

let busy t =
  Float_map.bindings t.slots
  |> List.map (fun (start, stop) -> Interval.make ~start ~stop)

let overlapping t (iv : Interval.t) =
  (* A slot [s, e) overlaps [iv.start, iv.stop) iff s < iv.stop and
     e > iv.start. Candidates: the slot at or before iv.start (may span
     into it) and slots starting inside [iv.start, iv.stop). *)
  if Interval.is_empty iv then false
  else begin
    let before = Float_map.find_last_opt (fun s -> s <= iv.Interval.start) t.slots in
    let spans_from_left =
      match before with Some (_, stop) -> stop > iv.Interval.start | None -> false
    in
    spans_from_left
    ||
    match Float_map.find_first_opt (fun s -> s > iv.Interval.start) t.slots with
    | Some (s, stop) -> s < iv.Interval.stop && stop > s
    | None -> false
  end

let is_free t iv = not (overlapping t iv)

let earliest_gap t ~after ~duration =
  assert (duration >= 0.);
  if duration = 0. then after
  else begin
    (* Start from the slot covering [after], then walk right. *)
    let candidate =
      match Float_map.find_last_opt (fun s -> s <= after) t.slots with
      | Some (_, stop) when stop > after -> stop
      | Some _ | None -> after
    in
    let rec walk candidate =
      match Float_map.find_first_opt (fun s -> s >= candidate) t.slots with
      | None -> candidate
      | Some (s, stop) ->
        if candidate +. duration <= s then candidate else walk (Float.max candidate stop)
    in
    walk candidate
  end

let reserve t iv =
  if not (Interval.is_empty iv) then begin
    if overlapping t iv then
      invalid_arg (Format.asprintf "Timeline_map.reserve: %a overlaps" Interval.pp iv);
    t.slots <- Float_map.add iv.Interval.start iv.Interval.stop t.slots
  end

let release t iv =
  if not (Interval.is_empty iv) then begin
    match Float_map.find_opt iv.Interval.start t.slots with
    | Some stop when stop = iv.Interval.stop ->
      t.slots <- Float_map.remove iv.Interval.start t.slots
    | Some _ | None ->
      invalid_arg
        (Format.asprintf "Timeline_map.release: %a not reserved" Interval.pp iv)
  end

let utilisation t ~horizon =
  assert (horizon > 0.);
  let covered =
    Float_map.fold
      (fun start stop acc ->
        acc +. Float.max 0. (Float.min stop horizon -. Float.min start horizon))
      t.slots 0.
  in
  covered /. horizon

let span t =
  Float_map.fold (fun _ stop acc -> Float.max acc stop) t.slots 0.

let snapshot t = t.slots
let restore t snap = t.slots <- snap

let merged_busy tls ~after =
  let relevant =
    List.concat_map
      (fun tl ->
        Float_map.fold
          (fun start stop acc ->
            if stop > after && stop > start then Interval.make ~start ~stop :: acc
            else acc)
          tl.slots [])
      tls
  in
  let sorted = List.sort Interval.compare_start relevant in
  (* Accumulator form: depth must not scale with the merged table size. *)
  let coalesced =
    List.fold_left
      (fun acc iv ->
        match acc with
        | a :: rest when iv.Interval.start <= a.Interval.stop ->
          Interval.merge a iv :: rest
        | _ -> iv :: acc)
      [] sorted
  in
  List.rev coalesced

let earliest_gap_multi tls ~after ~duration =
  assert (duration >= 0.);
  if duration = 0. then after
  else begin
    let merged = merged_busy tls ~after in
    let rec walk candidate = function
      | [] -> candidate
      | (iv : Interval.t) :: rest ->
        if candidate +. duration <= iv.Interval.start then candidate
        else walk (Float.max candidate iv.Interval.stop) rest
    in
    walk after merged
  end

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Interval.pp)
    (busy t)
