(** Naive schedule-table model: the executable specification of
    {!Timeline}.

    This is the original sorted-list implementation, kept as a reference
    whose behaviour is obviously correct (every operation is a plain walk
    of an immutable sorted list). The qcheck differential tests replay
    random operation traces against this model and the indexed
    {!Timeline} and require them to agree observation-for-observation.
    Never use this in scheduler code — every operation is O(n). *)

type t
type snapshot

val create : unit -> t
val busy : t -> Interval.t list
val is_free : t -> Interval.t -> bool
val earliest_gap : t -> after:float -> duration:float -> float
val reserve : t -> Interval.t -> unit
val release : t -> Interval.t -> unit
val utilisation : t -> horizon:float -> float
val span : t -> float
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val merged_busy : t list -> after:float -> Interval.t list
val earliest_gap_multi : t list -> after:float -> duration:float -> float
val pp : Format.formatter -> t -> unit
