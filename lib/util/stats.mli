(** Small numeric helpers shared across the library. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Population variance (the paper's [VAR] over the PE set is over the
    whole population of PEs, not a sample). Requires a non-empty array. *)

val stddev : float array -> float

val min_value : float array -> float
val max_value : float array -> float

val argmin : float array -> int
(** Index of the smallest element (smallest index on ties). *)

val two_smallest : float array -> float * float
(** [(best, second_best)] values of an array with at least one element;
    when the array has a single element both components are equal. *)

val sum : float array -> float

val percentile : float array -> p:float -> float
(** [percentile arr ~p] for [p] in [[0, 100]]: linear interpolation
    between the closest ranks of a sorted copy, so [~p:0.] is the
    minimum, [~p:100.] the maximum, and [~p] is monotone. Requires a
    non-empty array; raises [Invalid_argument] outside [[0, 100]]. *)

val percentile_sorted : float array -> p:float -> float
(** As {!percentile} but the array must already be sorted ascending;
    no copy is taken. *)

val median : float array -> float
(** [percentile ~p:50.]; the mean of the two middle elements on even
    lengths. Requires a non-empty array. *)

val fequal : ?eps:float -> float -> float -> bool
(** Approximate float equality: absolute or relative difference below
    [eps] (default [1e-9]). *)
