type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t =
  let seed64 = next_raw t in
  { state = seed64 }

let copy t = { state = t.state }

(* Non-negative 62-bit value, uniform. OCaml's native int has 63 bits, so
   keeping 62 random bits guarantees a non-negative result. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_raw t) 2)

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let v = next_nonneg t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in t ~min ~max =
  assert (min <= max);
  min + int t ~bound:(max - min + 1)

let float t ~bound =
  assert (bound > 0. && Float.is_finite bound);
  let v = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  (* 53 significant bits, uniform in [0, 1). *)
  v /. 9007199254740992. *. bound

let float_in t ~min ~max =
  assert (min < max);
  min +. float t ~bound:(max -. min)

let bool t = Int64.logand (next_raw t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t ~bound:1. in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t ~bound:1. in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let lognormal_factor t ~sigma = exp (gaussian t ~mean:0. ~stddev:sigma)

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t ~bound:(Array.length arr))

let sample_without_replacement t ~k ~n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t ~bound:(j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  Hashtbl.fold (fun i () acc -> i :: acc) chosen [] |> List.sort compare

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
