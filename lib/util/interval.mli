(** Half-open time intervals [start, stop).

    The scheduling substrate represents every busy slot of a processing
    element or a network link as such an interval. Zero-length intervals
    ([start = stop]) are permitted and overlap nothing. *)

type t = private { start : float; stop : float }

val make : start:float -> stop:float -> t
(** [make ~start ~stop] builds an interval. Requires [start <= stop] and
    both bounds finite. *)

val duration : t -> float

val is_empty : t -> bool
(** True when [start = stop]. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is true when the open intersection of [a] and [b] is
    non-empty. Touching intervals ([a.stop = b.start]) do not overlap, and
    empty intervals overlap nothing. *)

val contains : t -> float -> bool
(** [contains t x] is [start <= x < stop]. *)

val shift : t -> float -> t
(** [shift t dt] translates both bounds by [dt]. *)

val merge : t -> t -> t
(** Smallest interval covering both arguments. *)

val compare_start : t -> t -> int
(** Order by [start], then by [stop]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
