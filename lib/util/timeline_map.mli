(** Balanced-map schedule tables: an alternative {!Timeline}
    implementation with logarithmic reservation.

    Same observable behaviour as {!Timeline} (verified by differential
    property tests); the busy set is a [Map] keyed by start time instead
    of an indexed array. Both give logarithmic queries, but the map pays
    pointer-chasing and allocation on every operation where the array
    pays one [blit]; the default scheduler stack uses the indexed
    {!Timeline} (see the [--json] bench gate for measured numbers). This
    module remains as a persistent-structure alternative — its O(1)
    snapshots make it attractive for workloads that snapshot far more
    often than they reserve. The interfaces are identical. *)

type t
type snapshot

val create : unit -> t
val busy : t -> Interval.t list
val is_free : t -> Interval.t -> bool
val earliest_gap : t -> after:float -> duration:float -> float
val reserve : t -> Interval.t -> unit
val release : t -> Interval.t -> unit
val utilisation : t -> horizon:float -> float
val span : t -> float
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val merged_busy : t list -> after:float -> Interval.t list
val earliest_gap_multi : t list -> after:float -> duration:float -> float
val pp : Format.formatter -> t -> unit
