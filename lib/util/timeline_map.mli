(** Balanced-map schedule tables: an alternative {!Timeline}
    implementation with logarithmic reservation.

    Same observable behaviour as {!Timeline} (verified by differential
    property tests); the busy set is a [Map] keyed by start time instead
    of a sorted list, so [reserve]/[release]/[is_free] cost O(log n)
    against the list's O(n), at the price of O(n) snapshots being
    slightly heavier constants. The default scheduler stack keeps the
    list implementation (profiles show tables stay small — tens of slots
    — where the list's constants win; see the [micro] bench target), but
    workloads with thousands of reservations per resource can swap this
    module in: the two interfaces are identical. *)

type t
type snapshot

val create : unit -> t
val busy : t -> Interval.t list
val is_free : t -> Interval.t -> bool
val earliest_gap : t -> after:float -> duration:float -> float
val reserve : t -> Interval.t -> unit
val release : t -> Interval.t -> unit
val utilisation : t -> horizon:float -> float
val span : t -> float
val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val merged_busy : t list -> after:float -> Interval.t list
val earliest_gap_multi : t list -> after:float -> duration:float -> float
val pp : Format.formatter -> t -> unit
