module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state

type stats = { runtime_seconds : float; misses : int }
type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

let schedule ?comm_model platform ctg =
  let t0 = Noc_util.Clock.wall_s () in
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let state = Resource_state.create platform in
  let placements = Array.make n None in
  let transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None in
  Array.iter
    (fun i ->
      let task = Noc_ctg.Ctg.task ctg i in
      let pendings =
        List.map
          (fun (e : Noc_ctg.Edge.t) ->
            match placements.(e.src) with
            | None -> assert false
            | Some (p : Schedule.placement) ->
              {
                Comm_sched.edge = e.id;
                src_pe = p.pe;
                sender_finish = p.finish;
                bits = e.volume;
              })
          (Noc_ctg.Ctg.in_edges ctg i)
      in
      let energy k =
        task.Noc_ctg.Task.energies.(k)
        +. List.fold_left
             (fun acc (p : Comm_sched.pending) ->
               acc
               +. Noc_noc.Platform.comm_energy platform ~src:p.Comm_sched.src_pe
                    ~dst:k ~bits:p.Comm_sched.bits)
             0. pendings
      in
      let k = Noc_util.Stats.argmin (Array.init n_pes energy) in
      let placed, drt = Comm_sched.schedule_incoming ?model:comm_model state pendings ~dst_pe:k in
      let ready =
        match task.Noc_ctg.Task.release with
        | None -> drt
        | Some release -> Float.max drt release
      in
      let exec = task.Noc_ctg.Task.exec_times.(k) in
      let start = Resource_state.earliest_pe_gap state ~pe:k ~after:ready ~duration:exec in
      Resource_state.reserve_pe state ~pe:k
        (Noc_util.Interval.make ~start ~stop:(start +. exec));
      placements.(i) <- Some { Schedule.task = i; pe = k; start; finish = start +. exec };
      List.iter (fun (tr : Schedule.transaction) -> transactions.(tr.edge) <- Some tr) placed)
    (Noc_ctg.Ctg.topological_order ctg);
  let schedule =
    Schedule.make
      ~placements:(Array.map Option.get placements)
      ~transactions:(Array.map Option.get transactions)
  in
  let misses =
    Array.fold_left
      (fun acc (task : Noc_ctg.Task.t) ->
        match task.deadline with
        | None -> acc
        | Some d ->
          if (Schedule.placement schedule task.id).Schedule.finish > d +. 1e-9 then
            acc + 1
          else acc)
      0 (Noc_ctg.Ctg.tasks ctg)
  in
  { schedule; stats = { runtime_seconds = Noc_util.Clock.wall_s () -. t0; misses } }

let name = "Energy-greedy"
