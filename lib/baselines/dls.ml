module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state

let static_levels ctg =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let order = Noc_ctg.Ctg.topological_order ctg in
  let sl = Array.make n 0. in
  for idx = n - 1 downto 0 do
    let i = order.(idx) in
    let down =
      List.fold_left (fun acc j -> Float.max acc sl.(j)) 0. (Noc_ctg.Ctg.succs ctg i)
    in
    sl.(i) <- Noc_ctg.Task.mean_exec_time (Noc_ctg.Ctg.task ctg i) +. down
  done;
  sl

type stats = { runtime_seconds : float; misses : int }
type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

let schedule ?comm_model platform ctg =
  let t0 = Noc_util.Clock.wall_s () in
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let sl = static_levels ctg in
  let state = Resource_state.create platform in
  let placements = Array.make n None in
  let transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None in
  let unscheduled_preds = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i)) in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if unscheduled_preds.(i) = 0 then ready := i :: !ready
  done;
  let pendings_of i =
    List.map
      (fun (e : Noc_ctg.Edge.t) ->
        match placements.(e.src) with
        | None -> assert false
        | Some (p : Schedule.placement) ->
          {
            Comm_sched.edge = e.id;
            src_pe = p.pe;
            sender_finish = p.finish;
            bits = e.volume;
          })
      (Noc_ctg.Ctg.in_edges ctg i)
  in
  let ready_after i drt =
    match (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.release with
    | None -> drt
    | Some release -> Float.max drt release
  in
  (* Tentative start time of task [i] on PE [k]. *)
  let start_time i k =
    let mark = Resource_state.mark state in
    let _, drt = Comm_sched.schedule_incoming ?model:comm_model state (pendings_of i) ~dst_pe:k in
    let exec = (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.exec_times.(k) in
    let start = Resource_state.earliest_pe_gap state ~pe:k ~after:(ready_after i drt) ~duration:exec in
    Resource_state.rollback state mark;
    start
  in
  for _ = 1 to n do
    (* Highest dynamic level over all (ready task, PE) pairs. *)
    let best = ref None in
    List.iter
      (fun i ->
        let task = Noc_ctg.Ctg.task ctg i in
        let mean = Noc_ctg.Task.mean_exec_time task in
        for k = 0 to n_pes - 1 do
          let delta = mean -. task.Noc_ctg.Task.exec_times.(k) in
          let dl = sl.(i) -. start_time i k +. delta in
          match !best with
          | Some (best_dl, bi, bk) when (best_dl, -bi, -bk) >= (dl, -i, -k) -> ()
          | Some _ | None -> best := Some (dl, i, k)
        done)
      !ready;
    let _, i, k = match !best with Some b -> b | None -> assert false in
    (* Commit. *)
    let placed, drt = Comm_sched.schedule_incoming ?model:comm_model state (pendings_of i) ~dst_pe:k in
    let exec = (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.exec_times.(k) in
    let start = Resource_state.earliest_pe_gap state ~pe:k ~after:(ready_after i drt) ~duration:exec in
    Resource_state.reserve_pe state ~pe:k
      (Noc_util.Interval.make ~start ~stop:(start +. exec));
    placements.(i) <- Some { Schedule.task = i; pe = k; start; finish = start +. exec };
    List.iter (fun (tr : Schedule.transaction) -> transactions.(tr.edge) <- Some tr) placed;
    ready := List.filter (fun j -> j <> i) !ready;
    List.iter
      (fun j ->
        unscheduled_preds.(j) <- unscheduled_preds.(j) - 1;
        if unscheduled_preds.(j) = 0 then ready := !ready @ [ j ])
      (Noc_ctg.Ctg.succs ctg i)
  done;
  let schedule =
    Schedule.make
      ~placements:(Array.map Option.get placements)
      ~transactions:(Array.map Option.get transactions)
  in
  let misses =
    Array.fold_left
      (fun acc (task : Noc_ctg.Task.t) ->
        match task.deadline with
        | None -> acc
        | Some d ->
          if (Schedule.placement schedule task.id).Schedule.finish > d +. 1e-9 then
            acc + 1
          else acc)
      0 (Noc_ctg.Ctg.tasks ctg)
  in
  { schedule; stats = { runtime_seconds = Noc_util.Clock.wall_s () -. t0; misses } }

let name = "DLS"
