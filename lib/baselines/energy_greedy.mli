(** Energy-greedy mapping: a deadline-oblivious lower-bound heuristic.

    Tasks are visited in topological order; each goes to the PE
    minimising its own computation energy plus the communication energy
    of its already-placed incoming arcs (exactly EAS's rule-4 energy
    metric, but with no deadline constraint and no regret ordering).
    Timing still goes through the contention-aware communication
    scheduler, so the schedule is resource-feasible — it just ignores
    deadlines entirely.

    Together with {!Dls} this brackets EAS: when deadlines are loose EAS
    should approach this heuristic's energy; when they are tight EAS
    must spend more, while this heuristic starts missing deadlines. *)

type stats = { runtime_seconds : float; misses : int }

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

val schedule :
  ?comm_model:Noc_sched.Comm_sched.model ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  outcome

val name : string
(** ["Energy-greedy"]. *)
