(** Dynamic-level scheduling (Sih and Lee), the paper's reference [10].

    The classic compile-time heuristic for interconnection-constrained
    heterogeneous architectures, adapted to the NoC substrate: at every
    step, for every (ready task, PE) pair, the {e dynamic level}

    {[ DL(i, k) = SL(i) - max(DRT(i, k), avail(k)) + delta(i, k) ]}

    combines the task's static level [SL] (longest mean-execution path
    from the task to any sink), its earliest possible start on PE [k]
    (data-ready time through the contention-aware communication
    scheduler, and the PE's schedule table) and the heterogeneity
    adjustment [delta(i, k) = mean_exec(i) - exec(i, k)] rewarding PEs
    that run the task faster than average. The pair with the largest
    dynamic level is committed.

    DLS maximises performance and is oblivious to energy — together with
    EDF it brackets EAS from the performance side, while
    {!Energy_greedy} brackets it from the energy side. *)

val static_levels : Noc_ctg.Ctg.t -> float array
(** [SL(i)]: longest mean-execution-time path from task [i] (inclusive)
    to any sink. *)

type stats = { runtime_seconds : float; misses : int }

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

val schedule :
  ?comm_model:Noc_sched.Comm_sched.model ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  outcome

val name : string
(** ["DLS"]. *)
