type t = {
  n_tasks : int;
  n_task_types : int;
  min_layer_width : int;
  max_layer_width : int;
  extra_in_degree : float;
  volume_range : float * float;
  base_time_range : float * float;
  time_jitter_sigma : float;
  energy_jitter_sigma : float;
  deadline_tightness : float;
}

let default =
  {
    n_tasks = 60;
    n_task_types = 12;
    min_layer_width = 2;
    max_layer_width = 6;
    extra_in_degree = 1.0;
    volume_range = (4_000., 64_000.);
    base_time_range = (40., 400.);
    time_jitter_sigma = 0.25;
    energy_jitter_sigma = 0.25;
    deadline_tightness = 1.8;
  }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.n_tasks >= 1) "n_tasks must be >= 1" in
  let* () = check (t.n_task_types >= 1) "n_task_types must be >= 1" in
  let* () =
    check
      (t.min_layer_width >= 1 && t.min_layer_width <= t.max_layer_width)
      "layer widths must satisfy 1 <= min <= max"
  in
  let* () = check (t.extra_in_degree >= 0.) "extra_in_degree must be >= 0" in
  let* () =
    check
      (fst t.volume_range >= 0. && fst t.volume_range <= snd t.volume_range)
      "volume_range must be ordered and non-negative"
  in
  let* () =
    check
      (fst t.base_time_range > 0. && fst t.base_time_range <= snd t.base_time_range)
      "base_time_range must be ordered and positive"
  in
  let* () =
    check
      (t.time_jitter_sigma >= 0. && t.energy_jitter_sigma >= 0.)
      "jitter sigmas must be >= 0"
  in
  let* () = check (t.deadline_tightness > 0.) "deadline_tightness must be > 0" in
  Ok t
