(** Parameters of the TGFF-like random task-graph generator.

    The paper generates its random benchmarks with TGFF [Dick, Rhodes,
    Wolf]; this module captures the knobs we need to reproduce the two
    benchmark categories of Sec. 6.1: graph size and shape, communication
    volumes, per-type cost tables, and deadline tightness. *)

type t = {
  n_tasks : int;  (** Approximate number of tasks (>= 1). *)
  n_task_types : int;
      (** TGFF semantics: tasks of the same type share a per-PE cost
          table (perturbed per task), modelling repeated kernels. *)
  min_layer_width : int;
  max_layer_width : int;
      (** The generator builds a layered DAG; widths are drawn uniformly
          from this range. *)
  extra_in_degree : float;
      (** Expected number of additional incoming arcs per non-source task
          beyond the guaranteed one; total arcs ~ n_tasks * (1 + this). *)
  volume_range : float * float;  (** Edge volume bounds, bits. *)
  base_time_range : float * float;
      (** Nominal execution time bounds per task type, time units. *)
  time_jitter_sigma : float;
      (** Log-normal sigma perturbing each (type, PE) time entry — the
          source of execution-time variance across PEs beyond the PE
          factors themselves. *)
  energy_jitter_sigma : float;
  deadline_tightness : float;
      (** Sink deadlines are [tightness * (mean critical path to the
          sink)]; smaller is tighter. *)
}

val default : t
(** A mid-sized graph (60 tasks) suitable for tests and examples. *)

val validate : t -> (t, string) result
