(** Random CTG generation (TGFF-like).

    The generator builds a layered DAG: layer widths are drawn from the
    parameter range until [n_tasks] tasks exist; every non-first-layer
    task receives one arc from the previous layer (connectivity) plus a
    random number of extra arcs from earlier layers. Each task gets a
    TGFF-style type; a per-(type, PE) cost table derived from the
    platform's PE factors provides correlated heterogeneous execution
    times and energies. Sinks receive deadlines proportional to the mean
    critical path reaching them.

    Generation is fully deterministic in [(params, platform, seed)]. *)

val generate :
  params:Params.t -> platform:Noc_noc.Platform.t -> seed:int -> Noc_ctg.Ctg.t
(** Raises [Invalid_argument] when [params] does not validate. *)
