type kind = Category_i | Category_ii

let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()

let base_params =
  {
    Params.n_tasks = 500;
    n_task_types = 40;
    min_layer_width = 4;
    max_layer_width = 20;
    extra_in_degree = 1.0;
    volume_range = (4_000., 64_000.);
    base_time_range = (40., 400.);
    time_jitter_sigma = 0.25;
    energy_jitter_sigma = 0.25;
    deadline_tightness = 2.5;
  }

(* Tightness is relative to the fastest-possible critical path; 2.5
   leaves category I comfortable (occasional EAS-base misses, all
   repaired), 2.3 makes category II tight (most benchmarks need the
   search-and-repair step), mirroring the paper's two regimes. *)
let params = function
  | Category_i -> base_params
  | Category_ii -> { base_params with deadline_tightness = 2.3 }

let seed_of kind index =
  (match kind with Category_i -> 1_000 | Category_ii -> 2_000) + index

let benchmark kind ~index =
  if index < 0 then invalid_arg "Category.benchmark: negative index";
  Generate.generate ~params:(params kind) ~platform ~seed:(seed_of kind index)

let suite kind = List.init 10 (fun index -> benchmark kind ~index)

let scaled_params kind ~scale =
  if not (scale > 0.) then invalid_arg "Category.scaled_params: scale must be > 0";
  let p = params kind in
  {
    p with
    Params.n_tasks = Stdlib.max 1 (int_of_float (float_of_int p.Params.n_tasks *. scale));
  }
