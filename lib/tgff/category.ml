type kind = Category_i | Category_ii | Category_iii

let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()

let base_params =
  {
    Params.n_tasks = 500;
    n_task_types = 40;
    min_layer_width = 4;
    max_layer_width = 20;
    extra_in_degree = 1.0;
    volume_range = (4_000., 64_000.);
    base_time_range = (40., 400.);
    time_jitter_sigma = 0.25;
    energy_jitter_sigma = 0.25;
    deadline_tightness = 2.5;
  }

(* Category III: the big-mesh mapping-search workload (~2000 tasks,
   generated against an 8x8 or 16x16 platform). Arc density stays at
   the generator's [n_tasks * (1 + extra_in_degree)] expectation —
   extra_in_degree 1.0 gives ~4000 arcs (3869 measured at seed 3001) —
   while layers widen (8-40) so ~50 tasks run concurrently and the
   mesh, not the graph, is the bottleneck. More task types (80) keep
   type reuse at the category-I/II ratio of ~25 tasks per type. *)
let category_iii_params =
  {
    base_params with
    Params.n_tasks = 2_000;
    n_task_types = 80;
    min_layer_width = 8;
    max_layer_width = 40;
    deadline_tightness = 8.0;
  }

(* Tightness is relative to the fastest-possible critical path; 2.5
   leaves category I comfortable (occasional EAS-base misses, all
   repaired), 2.3 makes category II tight (most benchmarks need the
   search-and-repair step), mirroring the paper's two regimes.
   Category III sits at 8.0: on a 16x16 mesh the balanced-load bound
   the deadlines scale with assumes every task runs at its fastest
   PE's speed, which a real (identity or annealed) placement cannot
   reach at 2000 tasks — 8.0 is where pinned EAS schedules all meet
   their deadlines while the energy spread across mappings stays wide
   (the mapping-search gate needs feasible instances on both sides). *)
let params = function
  | Category_i -> base_params
  | Category_ii -> { base_params with deadline_tightness = 2.3 }
  | Category_iii -> category_iii_params

let seed_of kind index =
  (match kind with Category_i -> 1_000 | Category_ii -> 2_000 | Category_iii -> 3_000)
  + index

let benchmark ?platform:(p = platform) kind ~index =
  if index < 0 then invalid_arg "Category.benchmark: negative index";
  Generate.generate ~params:(params kind) ~platform:p ~seed:(seed_of kind index)

let suite kind = List.init 10 (fun index -> benchmark kind ~index)

let scaled_params kind ~scale =
  if not (scale > 0.) then invalid_arg "Category.scaled_params: scale must be > 0";
  let p = params kind in
  {
    p with
    Params.n_tasks = Stdlib.max 1 (int_of_float (float_of_int p.Params.n_tasks *. scale));
  }
