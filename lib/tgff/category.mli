(** The paper's two random benchmark suites (Sec. 6.1).

    Each category contains 10 generated benchmarks of ~500 tasks and
    ~1000 communication transactions, scheduled onto a 4x4 heterogeneous
    NoC. Category II differs by tighter deadlines. The platform is shared
    within a category so energies are comparable across benchmarks, as in
    the paper's Figs. 5 and 6. *)

type kind = Category_i | Category_ii

val platform : Noc_noc.Platform.t
(** The 4x4 heterogeneous mesh both categories target. *)

val params : kind -> Params.t
(** Generator parameters of the category (size ~500 tasks / ~1000 arcs;
    Category II with a smaller deadline tightness). *)

val benchmark : kind -> index:int -> Noc_ctg.Ctg.t
(** [benchmark kind ~index] is benchmark number [index] (0-9 in the
    paper, any non-negative index accepted) of the category;
    deterministic. *)

val suite : kind -> Noc_ctg.Ctg.t list
(** The ten benchmarks of the category. *)

val scaled_params : kind -> scale:float -> Params.t
(** The category's parameters with [n_tasks] scaled by [scale] — used by
    quick test/CI runs that keep the regime but shrink the size. *)
