(** The paper's two random benchmark suites (Sec. 6.1), plus the
    big-mesh category III used by the mapping-search sweeps.

    Categories I and II contain 10 generated benchmarks of ~500 tasks
    and ~1000 communication transactions, scheduled onto a 4x4
    heterogeneous NoC; category II differs by tighter deadlines. The
    platform is shared within a category so energies are comparable
    across benchmarks, as in the paper's Figs. 5 and 6.

    Category III scales the regime past the paper: ~2000 tasks in
    wide layers (8-40) with ~4000 arcs (arc density stays at the
    generator's [n_tasks * (1 + extra_in_degree)] = 2x expectation),
    meant for 8x8/16x16 meshes — generate it against the target
    platform via [benchmark ~platform]. Deadline tightness 8.0 keeps
    pinned EAS schedules feasible for both the identity and annealed
    mappings (see the rationale in the implementation). *)

type kind = Category_i | Category_ii | Category_iii

val platform : Noc_noc.Platform.t
(** The 4x4 heterogeneous mesh categories I and II target. *)

val params : kind -> Params.t
(** Generator parameters of the category (~500 tasks / ~1000 arcs for
    I and II, Category II with a smaller deadline tightness; ~2000
    tasks / ~4000 arcs for III). *)

val benchmark : ?platform:Noc_noc.Platform.t -> kind -> index:int -> Noc_ctg.Ctg.t
(** [benchmark kind ~index] is benchmark number [index] (0-9 in the
    paper, any non-negative index accepted) of the category;
    deterministic in [(platform, kind, index)]. [platform] (the cost
    tables' target; default the shared 4x4 mesh) should name the mesh
    the schedule will run on — category III callers pass their
    8x8/16x16 platform. *)

val seed_of : kind -> int -> int
(** Generator seed of benchmark [index]: 1000+, 2000+ and 3000+ for
    categories I, II and III. *)

val suite : kind -> Noc_ctg.Ctg.t list
(** The ten benchmarks of the category. *)

val scaled_params : kind -> scale:float -> Params.t
(** The category's parameters with [n_tasks] scaled by [scale] — used by
    quick test/CI runs that keep the regime but shrink the size. *)
