let layer_of_tasks rng (params : Params.t) =
  (* Assign each task id a layer index; returns the layer list (task ids
     per layer, in id order). *)
  let layers = ref [] and assigned = ref 0 in
  while !assigned < params.n_tasks do
    let width =
      Stdlib.min
        (params.n_tasks - !assigned)
        (Noc_util.Prng.int_in rng ~min:params.min_layer_width
           ~max:params.max_layer_width)
    in
    let members = List.init width (fun k -> !assigned + k) in
    layers := members :: !layers;
    assigned := !assigned + width
  done;
  List.rev !layers

(* Per-(type, pe) cost tables, correlated through the PE factors so that
   fast PEs are consistently fast but energy-hungry. *)
let cost_tables rng (params : Params.t) platform =
  let n_pes = Noc_noc.Platform.n_pes platform in
  let tmin, tmax = params.base_time_range in
  Array.init params.n_task_types (fun _ ->
      let base_time = Noc_util.Prng.float_in rng ~min:tmin ~max:tmax in
      let nominal_power = Noc_util.Prng.float_in rng ~min:0.6 ~max:1.6 in
      let times =
        Array.init n_pes (fun p ->
            let pe = Noc_noc.Platform.pe platform p in
            base_time *. pe.Noc_noc.Pe.time_factor
            *. Noc_util.Prng.lognormal_factor rng ~sigma:params.time_jitter_sigma)
      in
      let energies =
        Array.init n_pes (fun p ->
            let pe = Noc_noc.Platform.pe platform p in
            times.(p) *. pe.Noc_noc.Pe.power_factor *. nominal_power
            *. Noc_util.Prng.lognormal_factor rng ~sigma:params.energy_jitter_sigma)
      in
      (times, energies))

let generate ~params ~platform ~seed =
  let params =
    match Params.validate params with
    | Ok p -> p
    | Error msg -> invalid_arg ("Tgff.generate: " ^ msg)
  in
  let rng = Noc_util.Prng.create ~seed:(seed * 2654435761 + 97) in
  let layers = layer_of_tasks rng params in
  let tables = cost_tables rng params platform in
  let builder = Noc_ctg.Builder.create ~n_pes:(Noc_noc.Platform.n_pes platform) in
  (* Tasks first (ids must be dense before edges reference them). *)
  List.iter
    (fun members ->
      List.iter
        (fun _id ->
          let ty = Noc_util.Prng.int rng ~bound:params.n_task_types in
          let times, energies = tables.(ty) in
          ignore
            (Noc_ctg.Builder.add_task builder ~exec_times:(Array.copy times)
               ~energies:(Array.copy energies) ()))
        members)
    layers;
  (* Arcs: one guaranteed predecessor from the previous layer, plus
     extras from any earlier layer (biased to recent layers). *)
  let vmin, vmax = params.volume_range in
  let volume () =
    if vmax > vmin then Noc_util.Prng.float_in rng ~min:vmin ~max:vmax else vmin
  in
  let connected = Hashtbl.create (4 * params.n_tasks) in
  let connect ~src ~dst =
    if not (Hashtbl.mem connected (src, dst)) then begin
      Hashtbl.replace connected (src, dst) ();
      Noc_ctg.Builder.connect builder ~src ~dst ~volume:(volume ())
    end
  in
  let earlier = ref [] in
  List.iteri
    (fun li members ->
      if li > 0 then begin
        let prev = Array.of_list (List.hd !earlier) in
        let all_earlier = Array.of_list (List.concat !earlier) in
        List.iter
          (fun dst ->
            let src = Noc_util.Prng.choose rng prev in
            connect ~src ~dst;
            (* Extra arcs: geometric-ish draw with the configured mean. *)
            let n_extra =
              let expected = params.extra_in_degree in
              let base = int_of_float expected in
              let frac = expected -. float_of_int base in
              base + (if Noc_util.Prng.float rng ~bound:1. < frac then 1 else 0)
            in
            for _ = 1 to n_extra do
              let src =
                if Noc_util.Prng.float rng ~bound:1. < 0.7 then
                  Noc_util.Prng.choose rng prev
                else Noc_util.Prng.choose rng all_earlier
              in
              connect ~src ~dst
            done)
          members
      end;
      earlier := members :: !earlier)
    layers;
  let undeadlined = Noc_ctg.Builder.build_exn builder in
  (* Deadlines: each sink gets tightness * (mean critical path to it). *)
  (* Deadlines are set relative to the fastest-possible critical path
     (min execution times), the true lower bound a schedule can approach;
     tightness then has a direct meaning: 1.0 is barely feasible even on
     the fastest PEs, larger values buy energy slack. *)
  let n = Noc_ctg.Ctg.n_tasks undeadlined in
  let path_to =
    Noc_util.Topo_sort.longest_path_lengths ~n
      ~succ:(fun v -> Noc_ctg.Ctg.succs undeadlined v)
      ~weight:(fun v ->
        Noc_util.Stats.min_value (Noc_ctg.Ctg.task undeadlined v).Noc_ctg.Task.exec_times)
  in
  let sink_set =
    List.fold_left
      (fun acc s -> Hashtbl.replace acc s (); acc)
      (Hashtbl.create 16)
      (Noc_ctg.Ctg.sinks undeadlined)
  in
  (* When the graph is wider than the PE array, the balanced-load bound
     dominates any single path; deadlines must leave room for it or no
     schedule can exist. *)
  let load_bound =
    Array.fold_left
      (fun acc (t : Noc_ctg.Task.t) ->
        acc +. Noc_util.Stats.min_value t.Noc_ctg.Task.exec_times)
      0.
      (Noc_ctg.Ctg.tasks undeadlined)
    /. float_of_int (Noc_noc.Platform.n_pes platform)
  in
  let tasks =
    Array.map
      (fun (task : Noc_ctg.Task.t) ->
        if Hashtbl.mem sink_set task.id then
          Noc_ctg.Task.make ~id:task.id ~name:task.name
            ~exec_times:task.exec_times ~energies:task.energies
            ~deadline:
              (params.deadline_tightness *. Float.max path_to.(task.id) load_bound)
            ()
        else task)
      (Noc_ctg.Ctg.tasks undeadlined)
  in
  Noc_ctg.Ctg.make_exn ~tasks ~edges:(Noc_ctg.Ctg.edges undeadlined)
