module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state

type partial = {
  state : Resource_state.t;
  placements : Schedule.placement option array;
  transactions : Schedule.transaction option array;
}

let incoming_pendings ctg partial i =
  List.map
    (fun (e : Noc_ctg.Edge.t) ->
      match partial.placements.(e.src) with
      | None -> invalid_arg "Level_sched: predecessor not yet scheduled"
      | Some (p : Schedule.placement) ->
        {
          Comm_sched.edge = e.id;
          src_pe = p.pe;
          sender_finish = p.finish;
          bits = e.volume;
        })
    (Noc_ctg.Ctg.in_edges ctg i)

(* Tentatively place task [i] on PE [k]: schedule its receiving
   transactions and find the earliest execution window. Reservations stay
   in force (the caller brackets the call with mark/rollback, or keeps
   them when committing). [pendings] must be [incoming_pendings] of [i];
   it is invariant in [k] (every predecessor of a ready task is already
   placed), so the F(i,k) loop builds it once per task instead of once
   per candidate PE. *)
let place ?comm_model ?degraded ~pendings ctg partial i k =
  let transactions, drt =
    Comm_sched.schedule_incoming ?model:comm_model ?degraded partial.state pendings
      ~dst_pe:k
  in
  let task = Noc_ctg.Ctg.task ctg i in
  let exec_time = task.Noc_ctg.Task.exec_times.(k) in
  let ready =
    match task.Noc_ctg.Task.release with
    | None -> drt
    | Some release -> Float.max drt release
  in
  let start = Resource_state.earliest_pe_gap partial.state ~pe:k ~after:ready ~duration:exec_time in
  let placement = { Schedule.task = i; pe = k; start; finish = start +. exec_time } in
  (placement, transactions)

let c_fik = Noc_obs.Counters.counter "eas.finish_time.evaluations"
let c_energy = Noc_obs.Counters.counter "eas.assignment_energy.evaluations"

let finish_time ?comm_model ?degraded ~pendings ctg partial i k =
  Noc_obs.Counters.incr c_fik;
  let mark = Resource_state.mark partial.state in
  match place ?comm_model ?degraded ~pendings ctg partial i k with
  | placement, _ ->
    Resource_state.rollback partial.state mark;
    placement.Schedule.finish
  | exception Invalid_argument _ ->
    (* The fault set disconnects a predecessor from PE [k]: [k] can
       never receive the task's inputs. *)
    Resource_state.rollback partial.state mark;
    infinity

(* Energy of running [i] on [k]: computation plus communication of the
   already-placed incoming arcs (paper footnote 2). *)
let assignment_energy ?degraded platform ctg partial i k =
  let task = Noc_ctg.Ctg.task ctg i in
  let comm_energy ~src ~dst ~bits =
    match degraded with
    | Some view when not (Noc_noc.Degraded.is_trivial view) ->
      Noc_noc.Degraded.comm_energy view ~src ~dst ~bits
    | Some _ | None -> Noc_noc.Platform.comm_energy platform ~src ~dst ~bits
  in
  let comm =
    List.fold_left
      (fun acc (e : Noc_ctg.Edge.t) ->
        match partial.placements.(e.src) with
        | None -> acc
        | Some p -> acc +. comm_energy ~src:p.Schedule.pe ~dst:k ~bits:e.volume)
      0.
      (Noc_ctg.Ctg.in_edges ctg i)
  in
  task.Noc_ctg.Task.energies.(k) +. comm

let commit ?comm_model ?degraded ctg partial i k =
  let pendings = incoming_pendings ctg partial i in
  let placement, transactions = place ?comm_model ?degraded ~pendings ctg partial i k in
  Resource_state.reserve_pe partial.state ~pe:k
    (Noc_util.Interval.make ~start:placement.Schedule.start
       ~stop:placement.Schedule.finish);
  partial.placements.(i) <- Some placement;
  List.iter
    (fun (tr : Schedule.transaction) -> partial.transactions.(tr.edge) <- Some tr)
    transactions

let run ?comm_model ?degraded platform ctg (budget : Budget.t) =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let pe_alive k =
    match degraded with
    | None -> true
    | Some view -> Noc_noc.Degraded.pe_alive view k
  in
  if not (List.exists pe_alive (List.init n_pes Fun.id)) then
    invalid_arg "Level_sched.run: every PE is failed";
  let partial =
    {
      state = Resource_state.create platform;
      placements = Array.make n None;
      transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None;
    }
  in
  let unscheduled_preds = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i)) in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if unscheduled_preds.(i) = 0 then ready := i :: !ready
  done;
  (* Once a task is ready its predecessors are all placed and never move
     again, so both its pending list and its assignment energies are
     fixed: compute them at most once per task, not once per candidate
     PE per level iteration. The energy cache is filled lazily per PE
     because [assignment_energy] on a degraded platform may raise for
     pairs the fault set disconnects — those PEs are simply never
     queried (their [F(i,k)] is infinite). *)
  let pendings_cache = Array.make n None in
  let pendings_of i =
    match pendings_cache.(i) with
    | Some pendings -> pendings
    | None ->
      let pendings = incoming_pendings ctg partial i in
      pendings_cache.(i) <- Some pendings;
      pendings
  in
  let energy_cache = Array.make n [||] in
  let cached_energy i k =
    if energy_cache.(i) == [||] then energy_cache.(i) <- Array.make n_pes nan;
    let row = energy_cache.(i) in
    if Float.is_nan row.(k) then begin
      Noc_obs.Counters.incr c_energy;
      row.(k) <- assignment_energy ?degraded platform ctg partial i k
    end;
    row.(k)
  in
  let remaining = ref n in
  while !remaining > 0 do
    let rtl = !ready in
    assert (rtl <> []);
    (* F(i,k) for every ready task and PE. *)
    let finishes =
      List.map
        (fun i ->
          let pendings = pendings_of i in
          ( i,
            Array.init n_pes (fun k ->
                if pe_alive k then
                  finish_time ?comm_model ?degraded ~pendings ctg partial i k
                else infinity) ))
        rtl
    in
    let bd i = budget.budgeted_deadlines.(i) in
    let violators =
      List.filter_map
        (fun (i, fs) ->
          let min_f = Noc_util.Stats.min_value fs in
          if min_f > bd i then Some (i, fs, min_f -. bd i) else None)
        finishes
    in
    let chosen_task, chosen_pe, chosen_rule =
      match violators with
      | _ :: _ ->
        (* Rule 3: the worst violator goes to its fastest PE. *)
        let i, fs, _ =
          List.fold_left
            (fun (bi, bfs, bover) (i, fs, over) ->
              if over > bover then (i, fs, over) else (bi, bfs, bover))
            (List.hd violators) (List.tl violators)
        in
        let k = Noc_util.Stats.argmin fs in
        if fs.(k) = infinity then
          invalid_arg "Level_sched.run: task unschedulable on the degraded platform";
        (i, k, "deadline")
      | [] ->
        (* Rule 4: largest energy regret among deadline-respecting PEs. *)
        let candidates =
          List.map
            (fun (i, fs) ->
              let allowed =
                List.filter
                  (fun k -> pe_alive k && fs.(k) <= bd i)
                  (List.init n_pes Fun.id)
              in
              assert (allowed <> []);
              let energies = List.map (fun k -> (cached_energy i k, k)) allowed in
              let sorted = List.sort compare energies in
              let best_energy, best_pe = List.hd sorted in
              let delta =
                match sorted with
                | _ :: (second_energy, _) :: _ -> second_energy -. best_energy
                | [ _ ] -> infinity
                | [] -> assert false
              in
              (i, best_pe, delta))
            finishes
        in
        let i, k, _ =
          List.fold_left
            (fun (bi, bk, bdelta) (i, k, delta) ->
              if delta > bdelta then (i, k, delta) else (bi, bk, bdelta))
            (List.hd candidates) (List.tl candidates)
        in
        (i, k, "regret")
    in
    if Noc_obs.Decisions.is_enabled () then
      Noc_obs.Decisions.record ~task:chosen_task ~rule:chosen_rule ~chosen:chosen_pe
        ~budgeted_deadline:(bd chosen_task)
        ~finishes:(List.assoc chosen_task finishes);
    commit ?comm_model ?degraded ctg partial chosen_task chosen_pe;
    decr remaining;
    ready := List.filter (fun i -> i <> chosen_task) !ready;
    List.iter
      (fun j ->
        unscheduled_preds.(j) <- unscheduled_preds.(j) - 1;
        if unscheduled_preds.(j) = 0 then ready := !ready @ [ j ])
      (Noc_ctg.Ctg.succs ctg chosen_task)
  done;
  let placements = Array.map Option.get partial.placements in
  let transactions = Array.map Option.get partial.transactions in
  Schedule.make ~placements ~transactions
