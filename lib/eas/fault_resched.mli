(** Degraded-platform rescheduling: the reliability response built on
    the EAS machinery.

    Given a schedule and a fault set, [run] produces a schedule for the
    degraded platform (every element that ever fails is treated as dead
    for the whole horizon — the conservative static view):

    + tasks stranded on failed PEs migrate to their cheapest alive
      destination (ordered like a GTM move, {!Repair.move_energy});
    + the schedule is rebuilt on the degraded fabric
      ({!Rebuild.run}), keeping the surviving assignment and execution
      order while transactions detour around failed links;
    + remaining deadline misses go through the repair search
      ({!Repair.run}) on the degraded platform, and if misses persist a
      full EAS re-run from scratch is tried, keeping whichever schedule
      scores better (fewest misses, then least total lateness).

    The result targets the degraded platform: validate it with the
    default (recorded-route) {!Noc_sched.Validate.check}, not the
    strict-routes mode. *)

type stats = {
  migrated_tasks : int;  (** Tasks moved off failed PEs in step 1. *)
  rerouted_transactions : int;
      (** Transactions whose route differs from the input schedule. *)
  misses : int;  (** Deadline misses of the returned schedule. *)
  lateness : float;  (** Their total lateness. *)
  used_full_rerun : bool;
      (** True when the from-scratch EAS re-run beat the incremental
          migrate-rebuild-repair pipeline. *)
  repair : Repair.stats option;  (** [None] when repair did not run. *)
}

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?max_evaluations:int ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  faults:Noc_fault.Fault_set.t ->
  Noc_sched.Schedule.t ->
  outcome
(** With an empty (or all-windows-expired… i.e. trivial) fault set the
    input schedule is returned unchanged. Raises [Invalid_argument]
    when the fault set makes the graph unschedulable (every PE failed,
    or some task unreachable on every alive PE). *)

(** {1 Criticality analysis} *)

type criticality = {
  element : Noc_fault.Fault.element;
  induced_misses : int;
      (** Deadline misses when replaying the schedule with this single
          element permanently failed. *)
  induced_losses : int;  (** Tasks lost in the same replay. *)
}

val criticality :
  ?discipline:Noc_sim.Executor.discipline ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  criticality list
(** Scores every PE and every directed link of the platform by the
    damage its permanent failure inflicts on the given schedule, by
    fault-injected replay ({!Noc_sim.Executor.run}). Sorted most
    critical first (misses, then losses, then element order) — a
    ranking of the schedule's reliability weak points. *)

val pp_criticality : Format.formatter -> criticality -> unit
