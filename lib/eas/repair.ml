module Schedule = Noc_sched.Schedule

type moves = Both | Lts_only | Gtm_only

type stats = { accepted_swaps : int; accepted_migrations : int; evaluations : int }

(* Search score: primarily the number of missed deadlines, refined by the
   total lateness so the greedy search has a gradient to follow even when
   one move cannot yet save a whole deadline. *)
let score ctg schedule =
  Array.fold_left
    (fun (count, lateness) (task : Noc_ctg.Task.t) ->
      match task.deadline with
      | None -> (count, lateness)
      | Some d ->
        let late = (Schedule.placement schedule task.id).Schedule.finish -. d in
        if late > 1e-9 then (count + 1, lateness +. late) else (count, lateness))
    (0, 0.) (Noc_ctg.Ctg.tasks ctg)

let improves (m2, l2) (m1, l1) = m2 < m1 || (m2 = m1 && l2 < l1 -. 1e-6)

(* Candidate bounds keeping one repair pass polynomial on 500-task
   graphs; the evaluation cap is the hard safety net. *)
let max_critical_per_pass = 24
let max_swap_candidates = 12

let take n list =
  let rec go n = function
    | [] -> []
    | _ :: _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n list

let critical_tasks ctg schedule =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let critical = Array.make n false in
  let rec mark i =
    if not critical.(i) then begin
      critical.(i) <- true;
      List.iter mark (Noc_ctg.Ctg.preds ctg i)
    end
  in
  Array.iter
    (fun (task : Noc_ctg.Task.t) ->
      match task.deadline with
      | None -> ()
      | Some d ->
        if (Schedule.placement schedule task.id).Schedule.finish > d +. 1e-9 then
          mark task.id)
    (Noc_ctg.Ctg.tasks ctg);
  critical

(* Estimated energy of running task [i] on PE [k]: computation plus the
   communication of every incident arc whose other endpoint is fixed.
   On a degraded platform, detoured routes are priced by their real
   length; a pair the fault set disconnects costs [infinity], pushing
   that destination to the end of the candidate order.

   The arc structure never changes during a repair, only [assignment]
   does, so GTM derives each task's (neighbour, volume) lists once and
   re-prices them across every destination and every repair iteration
   instead of re-walking [in_edges]/[out_edges] per candidate PE. *)
let incident_arcs_of ctg i =
  ( List.map
      (fun (e : Noc_ctg.Edge.t) -> (e.Noc_ctg.Edge.src, e.Noc_ctg.Edge.volume))
      (Noc_ctg.Ctg.in_edges ctg i),
    List.map
      (fun (e : Noc_ctg.Edge.t) -> (e.Noc_ctg.Edge.dst, e.Noc_ctg.Edge.volume))
      (Noc_ctg.Ctg.out_edges ctg i) )

let c_moves_priced = Noc_obs.Counters.counter "eas.repair.moves_priced"
let c_rebuilds = Noc_obs.Counters.counter "eas.repair.rebuilds"
let c_accepted_swaps = Noc_obs.Counters.counter "eas.repair.accepted_swaps"
let c_accepted_migrations = Noc_obs.Counters.counter "eas.repair.accepted_migrations"

let move_energy_arcs kernel ~assignment ~ins ~outs i k =
  Noc_obs.Counters.incr c_moves_priced;
  let incident_comm =
    List.fold_left
      (fun acc (src_task, bits) ->
        acc +. Kernel.comm_energy_inf kernel ~src:assignment.(src_task) ~dst:k ~bits)
      0. ins
    +. List.fold_left
         (fun acc (dst_task, bits) ->
           acc +. Kernel.comm_energy_inf kernel ~src:k ~dst:assignment.(dst_task) ~bits)
         0. outs
  in
  Kernel.exec_energy kernel ~task:i ~pe:k +. incident_comm

let move_energy kernel ctg ~assignment i k =
  let ins, outs = incident_arcs_of ctg i in
  move_energy_arcs kernel ~assignment ~ins ~outs i k

(* Critical tasks in decreasing urgency: the later past its own deadline
   (or its tightest descendant deadline), the earlier it is tried. *)
let ordered_critical ctg schedule critical =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  List.init n Fun.id
  |> List.filter (fun i -> critical.(i))
  |> List.sort (fun a b ->
         let finish i = (Schedule.placement schedule i).Schedule.finish in
         let c = Float.compare (finish b) (finish a) in
         if c <> 0 then c else compare a b)

let run ?comm_model ?degraded ?kernel ?(max_evaluations = 4_000) ?(moves = Both)
    platform ctg schedule =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let kernel =
    match kernel with Some k -> k | None -> Kernel.build ?degraded platform ctg
  in
  let incident_cache = Array.make n None in
  let incident_arcs i =
    match incident_cache.(i) with
    | Some arcs -> arcs
    | None ->
      let arcs = incident_arcs_of ctg i in
      incident_cache.(i) <- Some arcs;
      arcs
  in
  let assignment, rank = Rebuild.of_schedule schedule in
  let current = ref schedule in
  let best_score = ref (score ctg schedule) in
  let swaps = ref 0 and migrations = ref 0 and evaluations = ref 0 in
  let rebuild () =
    incr evaluations;
    Noc_obs.Counters.incr c_rebuilds;
    (* A move that strands a transaction on a disconnected pair is
       simply not an improvement. *)
    try Some (Rebuild.run ?comm_model ?degraded platform ctg ~assignment ~rank)
    with Invalid_argument _ -> None
  in
  let try_apply mutate restore =
    if !evaluations >= max_evaluations then false
    else begin
      mutate ();
      match rebuild () with
      | None ->
        restore ();
        false
      | Some candidate ->
      let candidate_score = score ctg candidate in
      if improves candidate_score !best_score then begin
        current := candidate;
        best_score := candidate_score;
        (* Re-derive the compact representation from the realised
           schedule so later moves reason about actual execution order. *)
        let assignment', rank' = Rebuild.of_schedule candidate in
        Array.blit assignment' 0 assignment 0 n;
        Array.blit rank' 0 rank 0 n;
        true
      end
      else begin
        restore ();
        false
      end
    end
  in
  let swap_ranks a b =
    let tmp = rank.(a) in
    rank.(a) <- rank.(b);
    rank.(b) <- tmp
  in
  (* LTS: move one critical task earlier on its PE. Returns true when a
     swap was accepted. *)
  let local_task_swapping () =
    let critical = critical_tasks ctg !current in
    let try_critical t1 =
      let p1 = Schedule.placement !current t1 in
      let earlier_non_critical =
        List.init n Fun.id
        |> List.filter (fun t2 ->
               t2 <> t1
               && (not critical.(t2))
               && (Schedule.placement !current t2).Schedule.pe = p1.Schedule.pe
               && rank.(t2) < rank.(t1))
        |> List.sort (fun a b -> compare rank.(b) rank.(a))
        |> take max_swap_candidates
      in
      List.exists
        (fun t2 ->
          try_apply (fun () -> swap_ranks t1 t2) (fun () -> swap_ranks t1 t2))
        earlier_non_critical
    in
    List.exists try_critical
      (take max_critical_per_pass (ordered_critical ctg !current critical))
  in
  (* GTM: migrate one critical task, cheapest destination first. *)
  let global_task_migration () =
    let critical = critical_tasks ctg !current in
    let try_critical t1 =
      let home = assignment.(t1) in
      let pe_alive k =
        match degraded with
        | None -> true
        | Some view -> Noc_noc.Degraded.pe_alive view k
      in
      let ins, outs = incident_arcs t1 in
      let destinations =
        List.init n_pes Fun.id
        |> List.filter (fun k -> k <> home && pe_alive k)
        |> List.map (fun k ->
               (move_energy_arcs kernel ~assignment ~ins ~outs t1 k, k))
        |> List.sort compare
        |> List.map snd
      in
      List.exists
        (fun k ->
          try_apply
            (fun () -> assignment.(t1) <- k)
            (fun () -> assignment.(t1) <- home))
        destinations
    in
    List.exists try_critical
      (take max_critical_per_pass (ordered_critical ctg !current critical))
  in
  let lts_enabled = match moves with Both | Lts_only -> true | Gtm_only -> false in
  let gtm_enabled = match moves with Both | Gtm_only -> true | Lts_only -> false in
  let rec fix () =
    if fst !best_score > 0 && !evaluations < max_evaluations then
      if lts_enabled && local_task_swapping () then begin
        incr swaps;
        fix ()
      end
      else if gtm_enabled && global_task_migration () then begin
        incr migrations;
        fix ()
      end
      else ()
  in
  fix ();
  Noc_obs.Counters.add c_accepted_swaps !swaps;
  Noc_obs.Counters.add c_accepted_migrations !migrations;
  ( !current,
    { accepted_swaps = !swaps; accepted_migrations = !migrations; evaluations = !evaluations } )
