module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state
module Timeline = Noc_util.Timeline

type partial = {
  state : Resource_state.t;
  placements : Schedule.placement option array;
  transactions : Schedule.transaction option array;
}

let incoming_pendings ctg partial i =
  List.map
    (fun (e : Noc_ctg.Edge.t) ->
      match partial.placements.(e.src) with
      | None -> invalid_arg "Level_sched: predecessor not yet scheduled"
      | Some (p : Schedule.placement) ->
        {
          Comm_sched.edge = e.id;
          src_pe = p.pe;
          sender_finish = p.finish;
          bits = e.volume;
        })
    (Noc_ctg.Ctg.in_edges ctg i)

let c_fik = Noc_obs.Counters.counter "eas.finish_time.evaluations"
let c_fik_reused = Noc_obs.Counters.counter "eas.finish_time.reused"
let c_energy = Noc_obs.Counters.counter "eas.assignment_energy.evaluations"

(* Energy of running [i] on [k]: computation plus communication of the
   already-placed incoming arcs (paper footnote 2), priced from the
   kernel matrices. Bit-identical to the reference's per-call platform
   queries: the kernel stores the very floats those queries return. A
   pair the fault set disconnects prices as [infinity] instead of
   raising — such a PE sorts last in the candidate order and can only
   be a Rule 4 member for a deadline-free task, which no generated
   graph produces. *)
let assignment_energy kernel ctg partial i k =
  let comm =
    List.fold_left
      (fun acc (e : Noc_ctg.Edge.t) ->
        match partial.placements.(e.src) with
        | None -> acc
        | Some p ->
          acc
          +. Kernel.comm_energy_inf kernel ~src:p.Schedule.pe ~dst:k ~bits:e.volume)
      0.
      (Noc_ctg.Ctg.in_edges ctg i)
  in
  Kernel.exec_energy kernel ~task:i ~pe:k +. comm

(* Committing is the only writer of shared state and stays on the
   probing machinery: transactions are placed for real (reserving link
   and PE slots through the journal), which also bumps the mutated
   timelines' versions and thereby invalidates exactly the cached
   F(i,k) values those tables fed. *)
let commit ?comm_model ?degraded ctg partial i k =
  let pendings = incoming_pendings ctg partial i in
  let transactions, drt =
    Comm_sched.schedule_incoming ?model:comm_model ?degraded partial.state pendings
      ~dst_pe:k
  in
  let task = Noc_ctg.Ctg.task ctg i in
  let exec_time = task.Noc_ctg.Task.exec_times.(k) in
  let ready =
    match task.Noc_ctg.Task.release with
    | None -> drt
    | Some release -> Float.max drt release
  in
  let start =
    Resource_state.earliest_pe_gap partial.state ~pe:k ~after:ready
      ~duration:exec_time
  in
  let placement = { Schedule.task = i; pe = k; start; finish = start +. exec_time } in
  Resource_state.reserve_pe partial.state ~pe:k
    (Noc_util.Interval.make ~start ~stop:placement.Schedule.finish);
  partial.placements.(i) <- Some placement;
  List.iter
    (fun (tr : Schedule.transaction) -> partial.transactions.(tr.edge) <- Some tr)
    transactions

let run ?comm_model ?degraded ?kernel ?pinned ?(jobs = 1) platform ctg
    (budget : Budget.t) =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let pe_alive k =
    match degraded with
    | None -> true
    | Some view -> Noc_noc.Degraded.pe_alive view k
  in
  if not (List.exists pe_alive (List.init n_pes Fun.id)) then
    invalid_arg "Level_sched.run: every PE is failed";
  (match pinned with
  | None -> ()
  | Some m ->
    if Array.length m <> n then
      invalid_arg "Level_sched.run: pinned length <> task count";
    Array.iter
      (fun k ->
        if k < 0 || k >= n_pes then
          invalid_arg "Level_sched.run: pinned PE out of range";
        if not (pe_alive k) then
          invalid_arg "Level_sched.run: pinned PE is failed")
      m);
  (* The allowed candidate set of task [i]: all alive PEs, or the single
     pinned one. With [pinned = None] this is [pe_alive] exactly, so the
     unpinned path is untouched. *)
  let allowed =
    match pinned with
    | None -> fun _ k -> pe_alive k
    | Some m -> fun i k -> pe_alive k && m.(i) = k
  in
  let kernel =
    match kernel with Some k -> k | None -> Kernel.build ?degraded platform ctg
  in
  let partial =
    {
      state = Resource_state.create platform;
      placements = Array.make n None;
      transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None;
    }
  in
  let unscheduled_preds = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i)) in
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if unscheduled_preds.(i) = 0 then ready := i :: !ready
  done;
  (* Once a task is ready its predecessors are all placed and never move
     again, so its pending list (pre-sorted into the Fig. 3 evaluation
     order), its assignment energies and the set of tables its probes
     consult are all fixed: compute them at most once per task. Each
     ready task also keeps its alive PEs sorted by (energy, index) — the
     key of the reference's [List.sort compare] — so Rule 4 can find the
     cheapest members of its (shrinking) allowed set by walking a fixed
     order from the front. *)
  let pendings_cache = Array.make n None in
  let pendings_of i =
    match pendings_cache.(i) with
    | Some pendings -> pendings
    | None ->
      let pendings = Comm_sched.sort_pendings (incoming_pendings ctg partial i) in
      pendings_cache.(i) <- Some pendings;
      pendings
  in
  let energy_of = Array.make n [||] in
  let energy_order = Array.make n [||] in
  let init_energy i =
    if energy_of.(i) == [||] then begin
      let row = Array.make n_pes infinity in
      let order = ref [] in
      for k = n_pes - 1 downto 0 do
        if allowed i k then begin
          Noc_obs.Counters.incr c_energy;
          row.(k) <- assignment_energy kernel ctg partial i k;
          order := (row.(k), k) :: !order
        end
      done;
      energy_of.(i) <- row;
      energy_order.(i) <- Array.of_list (List.map snd (List.sort compare !order))
    end
  in
  (* Two-stage F(i,k) memo, revalidated by timeline versions.

     F(i,k) factors as [pe_gap(k, max(drt(i,k), release_i))]: the DRT
     stage reads only the link tables of [i]'s routes towards [k] (see
     {!Kernel.drt_deps}), the gap stage only PE [k]'s own table. Each
     stage is a pure function of its tables' busy sets, so a cached
     value whose recorded versions still match is exactly what a fresh
     probe would return. The stages invalidate very differently — a
     commit bumps one PE table (invalidating that column's gap stage
     across all ready tasks) but only the committed routes' link tables
     (leaving most DRT values intact) — so the common re-probe costs
     one binary search, not a communication re-schedule. This, not the
     dense matrices alone, is where the speedup lives. *)
  let bd i = budget.budgeted_deadlines.(i) in
  let excluded = Array.make (n * n_pes) false in
  let f = Array.make (n * n_pes) infinity in
  let drt = Array.make (n * n_pes) infinity in
  let drt_deps : (Timeline.t array * int array) option array =
    Array.make (n * n_pes) None
  in
  let pe_version = Array.make (n * n_pes) (-1) in
  let drt_valid idx =
    match drt_deps.(idx) with
    | None -> false
    | Some (tables, versions) ->
      let ok = ref true in
      Array.iteri
        (fun j tl -> if Timeline.version tl <> versions.(j) then ok := false)
        tables;
      !ok
  in
  let valid idx =
    pe_version.(idx) = Timeline.version (Resource_state.pe_table partial.state (idx mod n_pes))
    && drt_valid idx
  in
  (* Probes neither read nor write any shared mutable state besides the
     timelines they only query, and distinct (i,k) pairs write distinct
     slots of the stage arrays, so refreshing the stale set in parallel
     is race-free and — [f.(idx)] being the same value at every job
     count — deterministic. *)
  let refresh idx =
    let i = idx / n_pes and k = idx mod n_pes in
    if not (drt_valid idx) then begin
      let pendings = Option.get pendings_cache.(i) in
      Noc_obs.Counters.incr c_fik;
      drt.(idx) <-
        Kernel.data_ready ?model:comm_model kernel partial.state ~pendings ~pe:k;
      match drt_deps.(idx) with
      | Some (tables, versions) ->
        Array.iteri (fun j tl -> versions.(j) <- Timeline.version tl) tables
      | None ->
        let tables =
          Kernel.drt_deps ?model:comm_model kernel partial.state ~pendings ~pe:k
        in
        drt_deps.(idx) <- Some (tables, Array.map Timeline.version tables)
    end;
    let pe_table = Resource_state.pe_table partial.state k in
    let d = drt.(idx) in
    f.(idx) <-
      (if d = infinity then infinity
       else begin
         let exec = Kernel.exec_time kernel ~task:i ~pe:k in
         let ready = Float.max d (Kernel.release kernel i) in
         let start = Timeline.earliest_gap pe_table ~after:ready ~duration:exec in
         start +. exec
       end);
    pe_version.(idx) <- Timeline.version pe_table;
    (* F only grows, so exceeding the budgeted deadline is permanent. *)
    if f.(idx) > bd i then excluded.(idx) <- true
  in
  (* Monotone screening. During a run the resource timelines only gain
     reservations, and every stage of F(i,k) — transaction starts, DRT,
     the PE gap — is non-decreasing in the busy sets it queries, so
     F(i,k) never decreases across iterations. Two exact consequences:

     - once a probe returns F(i,k) > BD_i, PE [k] is priced out of [i]'s
       allowed set {e permanently}: the entry never needs re-probing to
       decide membership again;
     - the static contention-free bound
         max(max_p(sender_finish_p + duration(src_p, k)), release_i) + exec
       is a lower bound on every future F(i,k) (contention and busy PEs
       only delay), so a pair whose bound already exceeds BD_i is priced
       out before its first probe.

     The reference's violator test [min_k F(i,k) > BD_i] becomes "every
     candidate is priced out" — excluded entries all have F > BD_i by
     monotonicity, non-excluded ones are exact and <= BD_i. Violators are
     rare; only they pay for an exact full row (Rule 3 ranks violators by
     margin and needs the true minimum). One caveat: the decision log
     records whole F rows, and screening leaves excluded entries stale —
     so while the log is live we keep refreshing every entry (placements
     are identical either way; only the probe count differs). *)
  let screening = not (Noc_obs.Decisions.is_enabled ()) in
  let row_init = Array.make n false in
  let init_row i =
    if not row_init.(i) then begin
      row_init.(i) <- true;
      let bdi = bd i in
      if bdi < infinity then begin
        let pendings = Option.get pendings_cache.(i) in
        for k = 0 to n_pes - 1 do
          if allowed i k then begin
            let lb_drt =
              List.fold_left
                (fun acc (p : Comm_sched.pending) ->
                  let src = p.Comm_sched.src_pe in
                  if src = k then Float.max acc p.Comm_sched.sender_finish
                  else if not (Kernel.reachable kernel ~src ~dst:k) then infinity
                  else
                    Float.max acc
                      (p.Comm_sched.sender_finish
                      +. Kernel.comm_duration kernel ~src ~dst:k
                           ~bits:p.Comm_sched.bits))
                0. pendings
            in
            let lb =
              Float.max lb_drt (Kernel.release kernel i)
              +. Kernel.exec_time kernel ~task:i ~pe:k
            in
            if lb > bdi then excluded.((i * n_pes) + k) <- true
          end
        done
      end
    end
  in
  (* Rule 4 needs, per ready task, only the identity of the cheapest
     member of its allowed set and the energy gap to the second
     cheapest: F values beyond set membership are irrelevant, membership
     only shrinks (F grows monotonically), and the energies ordering the
     candidates are static. So each iteration walks the task's energy
     order from the front and probes just far enough to certify the
     first two current members — for a typical task two version checks
     and no probe at all, instead of a whole row of probes. The member
     subsequence of the walk order is exactly the reference's sorted
     allowed list, so the (best PE, regret) pair is unchanged bit for
     bit. An empty walk means every PE is priced out: the task violates
     for certain, and only then is its exact full row materialised (for
     Rule 3's margins). Walks of distinct tasks touch disjoint state, so
     the ready list fans out across the pool unchanged. *)
  let walk_pe = Array.make n (-1) in
  let walk_regret = Array.make n nan in
  let walk i =
    let base = i * n_pes in
    let order = energy_order.(i) in
    let len = Array.length order in
    let m1 = ref (-1) and m2 = ref (-1) in
    let j = ref 0 in
    while !m2 < 0 && !j < len do
      let k = order.(!j) in
      let idx = base + k in
      if not excluded.(idx) then begin
        if valid idx then Noc_obs.Counters.incr c_fik_reused else refresh idx;
        if not excluded.(idx) then
          if !m1 < 0 then m1 := k else m2 := k
      end;
      incr j
    done;
    walk_pe.(i) <- !m1;
    walk_regret.(i) <-
      (if !m1 < 0 then nan
       else if !m2 < 0 then infinity
       else energy_of.(i).(!m2) -. energy_of.(i).(!m1))
  in
  let remaining = ref n in
  while !remaining > 0 do
    let rtl = !ready in
    assert (rtl <> []);
    (* Pending lists, energy orders and screening bounds are
       materialised on the main domain first, so the (possibly
       parallel) walks below only read the per-task caches. *)
    List.iter
      (fun i ->
        ignore (pendings_of i);
        init_energy i;
        init_row i)
      rtl;
    if not screening then
      (* The decision log records whole F rows: keep every entry of
         every ready row exact while the log is live. *)
      List.iter
        (fun i ->
          for k = 0 to n_pes - 1 do
            let idx = (i * n_pes) + k in
            if allowed i k && not (valid idx) then refresh idx
          done)
        rtl;
    let rta = Array.of_list rtl in
    let n_ready = Array.length rta in
    if jobs <= 1 || n_ready < 2 then Array.iter walk rta
    else
      ignore
        (Noc_util.Pool.map_range ~jobs ~chunk:4 ~n:n_ready (fun w ->
             walk rta.(w)));
    let violators =
      List.filter_map
        (fun i ->
          if walk_pe.(i) >= 0 then None
          else begin
            let base = i * n_pes in
            (* Every PE is priced out, so [i] violates for sure; Rule 3
               ranks violators by margin and sends the worst to its
               fastest PE, so this (rare) row must be exact. *)
            for k = 0 to n_pes - 1 do
              if allowed i k && not (valid (base + k)) then refresh (base + k)
            done;
            (* Disallowed entries stay [infinity] and never win the
               argmin below. *)
            let m = ref f.(base) in
            for k = 1 to n_pes - 1 do
              m := Float.min !m f.(base + k)
            done;
            Some (i, !m -. bd i)
          end)
        rtl
    in
    let chosen_task, chosen_pe, chosen_rule =
      match violators with
      | _ :: _ ->
        (* Rule 3: the worst violator goes to its fastest PE. *)
        let i, _ =
          List.fold_left
            (fun (bi, bover) (i, over) ->
              if over > bover then (i, over) else (bi, bover))
            (List.hd violators) (List.tl violators)
        in
        let k = Noc_util.Stats.argmin (Array.sub f (i * n_pes) n_pes) in
        if f.((i * n_pes) + k) = infinity then
          invalid_arg "Level_sched.run: task unschedulable on the degraded platform";
        (i, k, "deadline")
      | [] ->
        (* Rule 4: largest energy regret among deadline-respecting PEs. *)
        let i, k, _ =
          List.fold_left
            (fun (bi, bk, bdelta) i ->
              let delta = walk_regret.(i) in
              if bk < 0 || delta > bdelta then (i, walk_pe.(i), delta)
              else (bi, bk, bdelta))
            (-1, -1, nan) rtl
        in
        (i, k, "regret")
    in
    if Noc_obs.Decisions.is_enabled () then
      Noc_obs.Decisions.record ~task:chosen_task ~rule:chosen_rule ~chosen:chosen_pe
        ~budgeted_deadline:(bd chosen_task)
        ~finishes:(Array.sub f (chosen_task * n_pes) n_pes);
    commit ?comm_model ?degraded ctg partial chosen_task chosen_pe;
    decr remaining;
    ready := List.filter (fun i -> i <> chosen_task) !ready;
    List.iter
      (fun j ->
        unscheduled_preds.(j) <- unscheduled_preds.(j) - 1;
        if unscheduled_preds.(j) = 0 then ready := !ready @ [ j ])
      (Noc_ctg.Ctg.succs ctg chosen_task)
  done;
  let placements = Array.map Option.get partial.placements in
  let transactions = Array.map Option.get partial.transactions in
  Schedule.make ~placements ~transactions
