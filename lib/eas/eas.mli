(** The Energy-Aware Scheduler (the paper's main contribution).

    [schedule] runs the three steps of Sec. 5 end to end: budget slack
    allocation ({!Budget}), level-based scheduling ({!Level_sched}) and,
    when the resulting schedule misses deadlines and [repair] is on,
    search and repair ({!Repair}). The two experimental configurations of
    Sec. 6 are [EAS-base] ([~repair:false]) and [EAS] (the default). *)

type stats = {
  runtime_seconds : float;  (** Scheduling CPU time. *)
  misses_before_repair : int;
  misses_after_repair : int;
  repair : Repair.stats option;  (** [None] when repair did not run. *)
}

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

val schedule :
  ?repair:bool ->
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  ?weighting:Budget.weighting ->
  ?kernel:Kernel.t ->
  ?pinned:int array ->
  ?jobs:int ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  outcome
(** [schedule platform ctg] statically co-schedules the graph's tasks
    and transactions on the platform. [repair] defaults to [true];
    [comm_model] defaults to [Contention_aware] (use [Fixed_delay] only
    for the ablation study — the resulting transactions ignore link
    contention); [weighting] (default [Variance_product]) selects the
    Step 1 slack-weighting scheme for the corresponding ablation. With
    [degraded], the whole pipeline schedules for the degraded platform:
    failed PEs receive nothing and routes detour around failed links
    (see {!Level_sched.run} for the failure cases). The flat-array
    {!Kernel} is built once (span ["eas/kernel"]) and threaded through
    all three steps; pass [kernel] to reuse a prebuilt one across runs
    and [jobs] to parallelise Step 2's candidate probes (default 1;
    placements are bit-identical at every job count).

    [pinned] fixes the task-to-PE assignment (see {!Level_sched.run}):
    Step 2 keeps only the timing machinery, and repair is restricted to
    [Lts_only] reordering so the pinned mapping — and therefore the
    Eq.-3 energy — is preserved end to end. *)

val count_misses : Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> int
(** Number of tasks whose scheduled finish exceeds their deadline. *)

val name : repair:bool -> string
(** ["EAS"] or ["EAS-base"], as the paper labels the configurations. *)
