type stats = {
  runtime_seconds : float;
  misses_before_repair : int;
  misses_after_repair : int;
  repair : Repair.stats option;
}

type outcome = { schedule : Noc_sched.Schedule.t; stats : stats }

let count_misses ctg schedule =
  Array.fold_left
    (fun acc (task : Noc_ctg.Task.t) ->
      match task.deadline with
      | None -> acc
      | Some d ->
        if (Noc_sched.Schedule.placement schedule task.id).Noc_sched.Schedule.finish
           > d +. 1e-9
        then acc + 1
        else acc)
    0 (Noc_ctg.Ctg.tasks ctg)

let schedule ?(repair = true) ?comm_model ?degraded ?weighting ?kernel ?pinned
    ?jobs platform ctg =
  let span ?args name f = Noc_obs.Trace.span ~cat:"eas" ?args name f in
  span "eas/schedule"
    ~args:(fun () ->
      [
        ("tasks", Noc_obs.Trace.Int (Noc_ctg.Ctg.n_tasks ctg));
        ("pes", Noc_obs.Trace.Int (Noc_noc.Platform.n_pes platform));
      ])
  @@ fun () ->
  let t0 = Noc_util.Clock.wall_s () in
  let kernel =
    match kernel with
    | Some k -> k
    | None -> span "eas/kernel" (fun () -> Kernel.build ?degraded platform ctg)
  in
  let budget = span "eas/budget" (fun () -> Budget.compute ?weighting ~kernel ctg) in
  let base =
    span "eas/level_sched" (fun () ->
        Level_sched.run ?comm_model ?degraded ~kernel ?pinned ?jobs platform ctg
          budget)
  in
  let misses_before_repair = count_misses ctg base in
  (* Under a pinned mapping the repair pass may only reorder (LTS): a
     GTM migration would silently change the assignment — and with it
     the Eq.-3 energy the mapping search just optimised. *)
  let moves =
    match pinned with Some _ -> Some Repair.Lts_only | None -> None
  in
  let repaired, repair_stats =
    if repair && misses_before_repair > 0 then
      let s, st =
        span "eas/repair" (fun () ->
            Repair.run ?comm_model ?degraded ~kernel ?moves platform ctg base)
      in
      (s, Some st)
    else (base, None)
  in
  let runtime_seconds = Noc_util.Clock.wall_s () -. t0 in
  {
    schedule = repaired;
    stats =
      {
        runtime_seconds;
        misses_before_repair;
        misses_after_repair = count_misses ctg repaired;
        repair = repair_stats;
      };
  }

let name ~repair = if repair then "EAS" else "EAS-base"
