(** EAS Step 2: level-based scheduling.

    Repeatedly forms the Ready Tasks List (tasks whose predecessors are
    all scheduled), computes for every ready task [t_i] and every PE
    [p_k] the earliest finish time [F(i,k)] by tentatively scheduling
    [t_i]'s receiving transactions (Fig. 3) and probing PE [k]'s schedule
    table, then commits one task per iteration:

    - if some ready task cannot meet its budgeted deadline on any PE
      ([min_F(i) > BD_i]), the most violating one is scheduled on its
      fastest-finishing PE (damage control);
    - otherwise each task's candidate list [L_i = {k | F(i,k) <= BD_i}]
      is ranked by energy (computation on [k] plus communication of the
      already-placed incoming arcs, per the paper's footnote), and the
      task with the largest regret [delta_i = E2_i - E1_i] is scheduled
      on its cheapest deadline-respecting PE. A task whose list has a
      single PE has infinite regret and is scheduled first.

    All tentative reservations are rolled back before the next
    evaluation, so the iteration order cannot influence [F(i,k)]. *)

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Budget.t ->
  Noc_sched.Schedule.t
(** Builds a complete schedule (always succeeds; deadlines may be
    missed, which Step 3 then repairs). With [degraded], failed PEs
    receive no tasks and transactions detour around failed links; raises
    [Invalid_argument] when the fault set makes the graph unschedulable
    (every PE failed, or a task unreachable from its predecessors on
    every alive PE). *)
