(** EAS Step 2: level-based scheduling over the flat-array kernel.

    Repeatedly forms the Ready Tasks List (tasks whose predecessors are
    all scheduled), computes for every ready task [t_i] and every PE
    [p_k] the earliest finish time [F(i,k)] by tentatively scheduling
    [t_i]'s receiving transactions (Fig. 3) and probing PE [k]'s schedule
    table, then commits one task per iteration:

    - if some ready task cannot meet its budgeted deadline on any PE
      ([min_F(i) > BD_i]), the most violating one is scheduled on its
      fastest-finishing PE (damage control);
    - otherwise each task's candidate list [L_i = {k | F(i,k) <= BD_i}]
      is ranked by energy (computation on [k] plus communication of the
      already-placed incoming arcs, per the paper's footnote), and the
      task with the largest regret [delta_i = E2_i - E1_i] is scheduled
      on its cheapest deadline-respecting PE. A task whose list has a
      single PE has infinite regret and is scheduled first.

    Unlike {!Level_sched_reference} — the original reserve-then-rollback
    implementation, kept as the differential oracle — the probes here
    are read-only {!Kernel.finish_time} evaluations whose results are
    memoized and revalidated against the {!Noc_util.Timeline.version}s
    of the tables each probe consulted, so each commit only re-probes
    the (i,k) pairs it actually invalidated. Both paths produce
    bit-identical schedules and decision logs; [test_kernel_diff]
    enforces this. *)

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  ?kernel:Kernel.t ->
  ?pinned:int array ->
  ?jobs:int ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Budget.t ->
  Noc_sched.Schedule.t
(** Builds a complete schedule (always succeeds; deadlines may be
    missed, which Step 3 then repairs). With [degraded], failed PEs
    receive no tasks and transactions detour around failed links; raises
    [Invalid_argument] when the fault set makes the graph unschedulable
    (every PE failed, or a task unreachable from its predecessors on
    every alive PE). [kernel] (built on demand otherwise) must describe
    the same platform/graph/fault-set triple.

    [pinned] restricts each task [i]'s candidate set to the single PE
    [pinned.(i)] — the mapping-search front-end ([lib/map])
    fixes the assignment and keeps only the timing machinery (levels,
    communication scheduling, earliest gaps). Selection rules degenerate
    gracefully: every candidate list is a singleton, so Rule 4 regrets
    are all infinite and the ready list drains in order, while Rule 3
    still front-runs certain violators. Raises [Invalid_argument] on a
    length mismatch, an out-of-range PE or a pinned-but-failed PE.

    [jobs] (default 1) fans the stale-probe refresh of each iteration
    out over a {!Noc_util.Pool}; the probes are read-only and land in
    disjoint slots, so every job count yields bit-identical placements —
    the selection rules always reduce over the full F matrix in index
    order. Keep the default inside already-parallel campaign workers. *)
