module Schedule = Noc_sched.Schedule

type stretch = {
  task : int;
  factor : float;
  new_finish : float;
  energy_before : float;
  energy_after : float;
}

type report = {
  stretches : stretch list;
  computation_energy_before : float;
  computation_energy_after : float;
}

(* The latest instant task [i] may finish without disturbing anything
   else in the schedule. *)
let finish_bound ctg schedule i =
  let p = Schedule.placement schedule i in
  let next_on_pe =
    Schedule.tasks_on_pe schedule ~pe:p.Schedule.pe
    |> List.fold_left
         (fun bound (q : Schedule.placement) ->
           if q.start >= p.finish -. 1e-9 && q.task <> i then Float.min bound q.start
           else bound)
         infinity
  in
  let earliest_departure =
    List.fold_left
      (fun bound (e : Noc_ctg.Edge.t) ->
        Float.min bound (Schedule.transaction schedule e.id).Schedule.start)
      infinity
      (Noc_ctg.Ctg.out_edges ctg i)
  in
  let deadline =
    match (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.deadline with
    | None -> infinity
    | Some d -> d
  in
  Float.min (Float.min next_on_pe earliest_departure) deadline

let plan ?(max_stretch = 2.5) ctg schedule =
  if not (max_stretch >= 1.) then invalid_arg "Dvs.plan: max_stretch must be >= 1";
  let stretches =
    List.init (Noc_ctg.Ctg.n_tasks ctg) (fun i ->
        let p = Schedule.placement schedule i in
        let duration = p.Schedule.finish -. p.Schedule.start in
        let bound = finish_bound ctg schedule i in
        let factor =
          if duration <= 0. then 1.
          else
            Float.max 1.
              (Float.min max_stretch ((bound -. p.Schedule.start) /. duration))
        in
        let new_finish = p.Schedule.start +. (duration *. factor) in
        assert (new_finish <= bound +. 1e-6);
        let energy_before =
          (Noc_ctg.Ctg.task ctg i).Noc_ctg.Task.energies.(p.Schedule.pe)
        in
        {
          task = i;
          factor;
          new_finish;
          energy_before;
          energy_after = energy_before /. (factor *. factor);
        })
  in
  let before = List.fold_left (fun acc s -> acc +. s.energy_before) 0. stretches in
  let after = List.fold_left (fun acc s -> acc +. s.energy_after) 0. stretches in
  {
    stretches;
    computation_energy_before = before;
    computation_energy_after = after;
  }

let saving report =
  if report.computation_energy_before <= 0. then 0.
  else
    (report.computation_energy_before -. report.computation_energy_after)
    /. report.computation_energy_before
