(** The original probing implementation of EAS Step 2, kept verbatim as
    the differential-test oracle for {!Level_sched} — the same role
    [Timeline_reference] plays for the indexed timeline.

    Every F(i,k) candidate is evaluated by actually reserving the
    receiving transactions on the shared link tables through
    {!Noc_sched.Resource_state} and rolling the journal back afterwards
    ("the schedule tables of both links and the PEs will be restored
    every time a F(i,k) is calculated"). This is the semantics the
    flat-array kernel path must reproduce bit for bit; the
    [test_kernel_diff] suite runs both implementations over a 50-seed
    corpus and asserts identical placements, transactions and decision
    logs. Do not optimise this module. *)

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Budget.t ->
  Noc_sched.Schedule.t
(** See {!Level_sched.run}: same contract, same results, no kernel and
    no parallel candidate loop. *)
