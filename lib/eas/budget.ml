type weighting = Variance_product | Mean_time | Uniform

type t = {
  mean_times : float array;
  weights : float array;
  asap : float array;
  budgeted_deadlines : float array;
}

type backward = {
  deadline : float;  (* tightest reachable deadline, or infinity *)
  remaining_mean : float;  (* mean time from this task (inclusive) to it *)
  remaining_weight : float;
  remaining_count : int;
}

let compute ?(weighting = Variance_product) ?kernel ctg =
  let n = Noc_ctg.Ctg.n_tasks ctg in
  let task i = Noc_ctg.Ctg.task ctg i in
  (* The kernel carries the same per-task means and variance-product
     weights, computed once by the same [Task] functions — reading them
     back is bit-identical to recomputing. *)
  let mean_times =
    match kernel with
    | Some kernel -> Array.init n (Kernel.mean_time kernel)
    | None -> Array.init n (fun i -> Noc_ctg.Task.mean_exec_time (task i))
  in
  let weights =
    match weighting with
    | Variance_product -> (
      match kernel with
      | Some kernel -> Array.init n (Kernel.weight kernel)
      | None -> Array.init n (fun i -> Noc_ctg.Task.weight (task i)))
    | Mean_time -> Array.copy mean_times
    | Uniform -> Array.make n 1.
  in
  let order = Noc_ctg.Ctg.topological_order ctg in
  (* Forward pass: asap finish plus weight/count along the binding path. *)
  let asap = Array.make n 0. in
  let fwd_weight = Array.make n 0. in
  let fwd_count = Array.make n 0 in
  Array.iter
    (fun i ->
      let binding_pred =
        List.fold_left
          (fun best p ->
            match best with
            | None -> Some p
            | Some b -> if asap.(p) > asap.(b) then Some p else Some b)
          None (Noc_ctg.Ctg.preds ctg i)
      in
      let base_time, base_weight, base_count =
        match binding_pred with
        | None -> (0., 0., 0)
        | Some p -> (asap.(p), fwd_weight.(p), fwd_count.(p))
      in
      let base_time =
        match (task i).Noc_ctg.Task.release with
        | None -> base_time
        | Some release -> Float.max base_time release
      in
      asap.(i) <- base_time +. mean_times.(i);
      fwd_weight.(i) <- base_weight +. weights.(i);
      fwd_count.(i) <- base_count + 1)
    order;
  (* Backward pass: follow the tightest deadline chain. *)
  let none = { deadline = infinity; remaining_mean = 0.; remaining_weight = 0.; remaining_count = 0 } in
  let bwd = Array.make n none in
  let latest_start b = b.deadline -. b.remaining_mean in
  for idx = n - 1 downto 0 do
    let i = order.(idx) in
    let own =
      match (task i).Noc_ctg.Task.deadline with
      | None -> none
      | Some d ->
        {
          deadline = d;
          remaining_mean = mean_times.(i);
          remaining_weight = weights.(i);
          remaining_count = 1;
        }
    in
    let via_succ =
      List.fold_left
        (fun best j ->
          let bj = bwd.(j) in
          if bj.deadline = infinity then best
          else
            let candidate =
              {
                deadline = bj.deadline;
                remaining_mean = bj.remaining_mean +. mean_times.(i);
                remaining_weight = bj.remaining_weight +. weights.(i);
                remaining_count = bj.remaining_count + 1;
              }
            in
            if latest_start candidate < latest_start best then candidate else best)
        own (Noc_ctg.Ctg.succs ctg i)
    in
    bwd.(i) <- via_succ
  done;
  let budgeted_deadlines =
    Array.init n (fun i ->
        let b = bwd.(i) in
        if b.deadline = infinity then infinity
        else begin
          (* Slack may be negative: the deadline then demands
             faster-than-mean placements, and the required speed-up is
             distributed with the same proportional rule, so the sink's
             budget equals its deadline exactly. *)
          let path_mean = asap.(i) -. mean_times.(i) +. b.remaining_mean in
          let slack = b.deadline -. path_mean in
          let total_weight = fwd_weight.(i) +. b.remaining_weight -. weights.(i) in
          let share =
            if total_weight > 0. then fwd_weight.(i) /. total_weight
            else begin
              (* Zero weights everywhere on the path: uniform shares. *)
              let total_count = fwd_count.(i) + b.remaining_count - 1 in
              float_of_int fwd_count.(i) /. float_of_int total_count
            end
          in
          asap.(i) +. (slack *. share)
        end)
  in
  { mean_times; weights; asap; budgeted_deadlines }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i bd ->
      Format.fprintf ppf "task %d: M=%g W=%g asap=%g BD=%g@," i t.mean_times.(i)
        t.weights.(i) t.asap.(i) bd)
    t.budgeted_deadlines;
  Format.fprintf ppf "@]"
