(** EAS Step 1: budget slack allocation.

    Every task receives a weight [W_ti = VAR_ei * VAR_ri] — the product
    of the variances of its energy and execution time across PEs — so
    that tasks whose placement matters more get more slack. Path slack
    (deadline minus mean-execution path length) is distributed along each
    deadline-constrained path proportionally to these weights, yielding a
    budgeted deadline [BD_i] per task.

    The paper illustrates the computation on a chain (Fig. 2); this
    module generalises it to DAGs: a forward pass accumulates the
    mean-based earliest finish [asap] and the weight of the binding
    (argmax) predecessor path; a backward pass follows, from each task,
    the tightest reachable deadline (the successor chain minimising the
    latest allowed start [D - remaining_mean]), accumulating the
    remaining mean time and weight. On a chain this reproduces Fig. 2
    exactly. Tasks from which no deadline is reachable get an infinite
    budget. When every weight along a path is zero (perfectly homogeneous
    costs) the slack is distributed uniformly instead. *)

type weighting =
  | Variance_product  (** The paper's [W = VAR_e * VAR_r]. *)
  | Mean_time  (** Slack proportional to mean execution time. *)
  | Uniform  (** Equal slack shares — the ablation baseline. *)

type t = {
  mean_times : float array;  (** [M_ti] per task. *)
  weights : float array;  (** [W_ti] per task. *)
  asap : float array;  (** Mean-based earliest finish per task. *)
  budgeted_deadlines : float array;  (** [BD_i]; [infinity] if unconstrained. *)
}

val compute : ?weighting:weighting -> ?kernel:Kernel.t -> Noc_ctg.Ctg.t -> t
(** Default weighting: [Variance_product], as in the paper. The other
    schemes feed the slack-weighting ablation (see
    {!Noc_experiments.Weight_ablation}). With [kernel] the per-task
    means and variance-product weights are read from the prebuilt
    matrices instead of being re-derived — same floats either way. *)

val pp : Format.formatter -> t -> unit
