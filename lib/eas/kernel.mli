(** Flat-array scheduling kernel: the dense cost matrices behind EAS.

    [build] precomputes, once per (platform, graph) pair, everything the
    EAS inner loop used to re-derive per candidate probe: per-(task, PE)
    computation time and energy, per-task release/mean/weight, and
    per-(src, dst) route hops, bit energy and link arrays — flat
    [float array]s indexed [task * n_pes + pe] and [src * n_pes + dst].

    Every value is produced by exactly the float expression the probing
    path ({!Level_sched_reference}, {!Noc_sched.Comm_sched}) evaluates —
    same operands, same operation order — so schedules computed through
    the kernel are bit-identical to the reference. The differential
    suite ([test_kernel_diff]) and the qcheck matrix properties
    ([test_kernel]) enforce this.

    On a degraded platform the matrices are built over the surviving
    routes; a disconnected (src, dst) pair is stored with [hops = -1]
    and surfaces as [Invalid_argument] ({!comm_energy},
    {!comm_duration}), [infinity] ({!comm_energy_inf}) or an infinite
    finish time ({!finish_time}), matching the reference path's
    behaviour exactly. *)

type t

val build : ?degraded:Noc_noc.Degraded.t -> Noc_noc.Platform.t -> Noc_ctg.Ctg.t -> t
(** Builds the matrices. With a non-trivial [degraded] view, routes,
    hops and energies follow the view's detours and disconnections; a
    trivial view mirrors the platform (same convention as
    {!Noc_sched.Comm_sched.place}). *)

val n_tasks : t -> int
val n_pes : t -> int

val exec_time : t -> task:int -> pe:int -> float
val exec_energy : t -> task:int -> pe:int -> float

val mean_time : t -> int -> float
(** {!Noc_ctg.Task.mean_exec_time}, precomputed — {!Budget.compute}
    reads these instead of re-averaging the rows. *)

val weight : t -> int -> float
(** {!Noc_ctg.Task.weight} (the paper's [W = VAR_e * VAR_r]). *)

val release : t -> int -> float
(** The task's release time, or [neg_infinity] when unconstrained (an
    identity for the [Float.max] the ready-time computation applies). *)

val hops : t -> src:int -> dst:int -> int
(** Route hop count; [-1] when the fault set disconnects the pair. *)

val reachable : t -> src:int -> dst:int -> bool

val comm_duration : t -> src:int -> dst:int -> bits:float -> float
(** Same float as {!Noc_noc.Platform.comm_duration} (or the degraded
    view's {!Noc_noc.Degraded.comm_duration}). Raises [Invalid_argument]
    on a disconnected pair. *)

val comm_energy : t -> src:int -> dst:int -> bits:float -> float
(** Same float as {!Noc_noc.Platform.comm_energy} /
    {!Noc_noc.Degraded.comm_energy}. Raises [Invalid_argument] on a
    disconnected pair. *)

val comm_energy_inf : t -> src:int -> dst:int -> bits:float -> float
(** Like {!comm_energy} but a disconnected pair prices as [infinity]
    (never [bits *. infinity], which would be NaN for a zero-volume
    arc) — the ordering convention of {!Repair}'s GTM move pricing. *)

val data_ready :
  ?model:Noc_sched.Comm_sched.model ->
  t ->
  Noc_sched.Resource_state.t ->
  pendings:Noc_sched.Comm_sched.pending list ->
  pe:int ->
  float
(** Read-only DRT probe: schedules the receiving transactions of
    [pendings] (which must already be sorted by [(sender_finish,
    edge)], the {!Noc_sched.Comm_sched.schedule_incoming} order)
    towards [pe] against the shared link tables without mutating them —
    tentative reservations go to private per-probe overlay timelines,
    and feasibility is checked on shared table plus overlay, which sees
    the same merged busy set the reserve-then-rollback path sees.
    Returns the latest arrival ([0.] with no pendings), or [infinity]
    when a predecessor cannot reach [pe]. Safe to call concurrently
    from {!Noc_util.Pool} workers as long as nobody mutates [state]. *)

val finish_time :
  ?model:Noc_sched.Comm_sched.model ->
  t ->
  Noc_sched.Resource_state.t ->
  pendings:Noc_sched.Comm_sched.pending list ->
  task:int ->
  pe:int ->
  float
(** F(task, pe): {!data_ready}, then the earliest gap of the task's
    execution time on [pe]'s table at or after [max drt release] —
    bit-identical to the reference's reserve-then-rollback probe
    ([infinity] when a predecessor cannot reach [pe]). {!Level_sched}
    inlines the second stage so it can cache the two stages separately;
    this composition is the differential tests' single-probe entry. *)

val drt_deps :
  ?model:Noc_sched.Comm_sched.model ->
  t ->
  Noc_sched.Resource_state.t ->
  pendings:Noc_sched.Comm_sched.pending list ->
  pe:int ->
  Noc_util.Timeline.t array
(** The shared tables a {!data_ready} probe for these arguments
    consults: the link tables of every pending's route towards [pe].
    The set is static per (task, pe) — pendings are fixed once a task
    is ready — so the DRT is a pure function of these tables' busy
    sets, and a cached value revalidated against their
    {!Noc_util.Timeline.version}s is exactly the value a fresh probe
    would return. Returns [[||]] when the DRT is static and depends on
    no table at all: a disconnected predecessor (DRT stuck at
    [infinity]), the [Fixed_delay] model (no reservations), or pendings
    that are all same-tile. F(task, pe) additionally depends on PE
    [pe]'s own table, which {!Level_sched} versions separately — a
    commit elsewhere on the mesh typically moves only that table, and
    the re-probe then costs one binary search instead of a full
    communication re-schedule. *)
