module Schedule = Noc_sched.Schedule
module Comm_sched = Noc_sched.Comm_sched
module Resource_state = Noc_sched.Resource_state

let c_runs = Noc_obs.Counters.counter "eas.rebuild.runs"

let run ?comm_model ?degraded platform ctg ~assignment ~rank =
  Noc_obs.Counters.incr c_runs;
  let n = Noc_ctg.Ctg.n_tasks ctg in
  if Array.length assignment <> n || Array.length rank <> n then
    invalid_arg "Rebuild.run: array length mismatch";
  Array.iter
    (fun pe ->
      if pe < 0 || pe >= Noc_noc.Platform.n_pes platform then
        invalid_arg "Rebuild.run: PE out of range")
    assignment;
  let state = Resource_state.create platform in
  let placements = Array.make n None in
  let transactions = Array.make (Noc_ctg.Ctg.n_edges ctg) None in
  let unscheduled_preds = Array.init n (fun i -> List.length (Noc_ctg.Ctg.preds ctg i)) in
  let module Ready = Set.Make (struct
    type t = int * int  (* rank, task *)

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  for i = 0 to n - 1 do
    if unscheduled_preds.(i) = 0 then ready := Ready.add (rank.(i), i) !ready
  done;
  for _ = 1 to n do
    let ((_, i) as elt) = Ready.min_elt !ready in
    ready := Ready.remove elt !ready;
    let k = assignment.(i) in
    let pendings =
      List.map
        (fun (e : Noc_ctg.Edge.t) ->
          match placements.(e.src) with
          | None -> assert false
          | Some (p : Schedule.placement) ->
            {
              Comm_sched.edge = e.id;
              src_pe = p.pe;
              sender_finish = p.finish;
              bits = e.volume;
            })
        (Noc_ctg.Ctg.in_edges ctg i)
    in
    let placed, drt =
      Comm_sched.schedule_incoming ?model:comm_model ?degraded state pendings ~dst_pe:k
    in
    let task = Noc_ctg.Ctg.task ctg i in
    let exec_time = task.Noc_ctg.Task.exec_times.(k) in
    let available =
      match task.Noc_ctg.Task.release with
      | None -> drt
      | Some release -> Float.max drt release
    in
    let start = Resource_state.earliest_pe_gap state ~pe:k ~after:available ~duration:exec_time in
    Resource_state.reserve_pe state ~pe:k
      (Noc_util.Interval.make ~start ~stop:(start +. exec_time));
    placements.(i) <- Some { Schedule.task = i; pe = k; start; finish = start +. exec_time };
    List.iter (fun (tr : Schedule.transaction) -> transactions.(tr.edge) <- Some tr) placed;
    List.iter
      (fun j ->
        unscheduled_preds.(j) <- unscheduled_preds.(j) - 1;
        if unscheduled_preds.(j) = 0 then ready := Ready.add (rank.(j), j) !ready)
      (Noc_ctg.Ctg.succs ctg i)
  done;
  Schedule.make
    ~placements:(Array.map Option.get placements)
    ~transactions:(Array.map Option.get transactions)

let of_schedule schedule =
  let n = Schedule.n_tasks schedule in
  let assignment =
    Array.init n (fun i -> (Schedule.placement schedule i).Schedule.pe)
  in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let pa = Schedule.placement schedule a and pb = Schedule.placement schedule b in
      let c = Float.compare pa.Schedule.start pb.Schedule.start in
      if c <> 0 then c else compare a b)
    order;
  let rank = Array.make n 0 in
  Array.iteri (fun pos task -> rank.(task) <- pos) order;
  (assignment, rank)
