(** Deterministic schedule reconstruction from an assignment and a
    priority ranking.

    The search-and-repair moves of EAS Step 3 operate on a compact
    representation of a schedule: the task-to-PE assignment plus a total
    priority order. [run] re-derives the full timed schedule by list
    scheduling: at each step, among the ready tasks, the one with the
    smallest rank is placed next — its receiving transactions through the
    communication scheduler, its execution in the earliest gap of its
    (fixed) PE. Swapping two ranks therefore swaps the execution order of
    the corresponding tasks wherever dependencies allow it, and changing
    an assignment entry migrates a task; both exactly as Step 3 needs. *)

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  assignment:int array ->
  rank:int array ->
  Noc_sched.Schedule.t
(** [assignment.(i)] is the PE of task [i]; [rank.(i)] its priority
    (lower runs earlier among simultaneously-ready tasks). Raises
    [Invalid_argument] on out-of-range PEs or mismatched lengths. With
    [degraded], transactions detour around failed links (and raise
    [Invalid_argument] if the fault set disconnects a needed pair); the
    caller is responsible for assigning tasks only to alive PEs. *)

val of_schedule :
  Noc_sched.Schedule.t -> int array * int array
(** Extracts [(assignment, rank)] from a schedule, ranking tasks by
    start time (ties by task id). Rebuilding from the result reproduces
    an equivalent execution order. *)
