(** EAS Step 3: search and repair (Fig. 4).

    Post-processes a schedule with deadline misses. Two move kinds
    alternate, both accepted only when the number of missed deadlines
    strictly decreases (hence the greedy procedure always converges):

    - {b Local task swapping (LTS)}: a critical task (one that misses its
      deadline or is an ancestor of one that does) is moved earlier on
      its own PE by swapping its execution order with a non-critical task
      scheduled before it on the same PE. LTS never changes the
      task-to-PE assignment, so the schedule energy is untouched.
    - {b Global task migration (GTM)}: when no swap helps, a critical
      task is migrated to another PE; destination PEs are tried in
      increasing order of the move's estimated energy (computation on
      the destination plus communication of all arcs incident to the
      task), so the cheapest repair is found first.

    After a successful migration the procedure re-enters LTS mode, as in
    the paper's flow chart. *)

type moves =
  | Both  (** The paper's procedure: LTS first, GTM when LTS is stuck. *)
  | Lts_only  (** Swap-only ablation: energy provably untouched. *)
  | Gtm_only  (** Migration-only ablation. *)

type stats = {
  accepted_swaps : int;
  accepted_migrations : int;
  evaluations : int;  (** Schedules rebuilt (accepted or not). *)
}

val critical_tasks : Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> bool array
(** [critical_tasks ctg s] marks every task that misses its own deadline
    and every ancestor of such a task. *)

val move_energy :
  Kernel.t -> Noc_ctg.Ctg.t -> assignment:int array -> int -> int -> float
(** [move_energy kernel ctg ~assignment i k] estimates the energy of
    running task [i] on PE [k]: computation on [k] plus communication of
    every incident arc whose other endpoint is fixed by [assignment],
    priced from the kernel matrices. On a kernel built over a degraded
    view, detours are priced by their real length and a disconnected
    pair costs [infinity]. Orders GTM destinations and
    {!Fault_resched}'s migrations. *)

val run :
  ?comm_model:Noc_sched.Comm_sched.model ->
  ?degraded:Noc_noc.Degraded.t ->
  ?kernel:Kernel.t ->
  ?max_evaluations:int ->
  ?moves:moves ->
  Noc_noc.Platform.t ->
  Noc_ctg.Ctg.t ->
  Noc_sched.Schedule.t ->
  Noc_sched.Schedule.t * stats
(** Returns the repaired schedule (the input when nothing helps) and the
    search statistics. [max_evaluations] (default 4000) bounds the
    rebuilds as a safety net; [moves] (default [Both]) restricts the move
    set for the repair ablation. With [degraded], GTM only migrates onto
    alive PEs, rebuilds detour around failed links, and move energies
    are priced over the degraded routes — the engine behind
    {!Fault_resched}. [kernel] (built on demand otherwise) must describe
    the same platform/graph/fault-set triple. *)
