module Schedule = Noc_sched.Schedule
module Degraded = Noc_noc.Degraded
module Fault = Noc_fault.Fault
module Fault_set = Noc_fault.Fault_set

type stats = {
  migrated_tasks : int;
  rerouted_transactions : int;
  misses : int;
  lateness : float;
  used_full_rerun : bool;
  repair : Repair.stats option;
}

type outcome = { schedule : Schedule.t; stats : stats }

(* Same lexicographic score as the repair search: primarily missed
   deadlines, refined by total lateness. *)
let score ctg schedule =
  Array.fold_left
    (fun (count, lateness) (task : Noc_ctg.Task.t) ->
      match task.deadline with
      | None -> (count, lateness)
      | Some d ->
        let late = (Schedule.placement schedule task.id).Schedule.finish -. d in
        if late > 1e-9 then (count + 1, lateness +. late) else (count, lateness))
    (0, 0.) (Noc_ctg.Ctg.tasks ctg)

let better (m2, l2) (m1, l1) = m2 < m1 || (m2 = m1 && l2 < l1 -. 1e-6)

let count_rerouted original candidate =
  let originals = Schedule.transactions original in
  Array.fold_left
    (fun acc (tr : Schedule.transaction) ->
      if tr.route <> originals.(tr.edge).Schedule.route then acc + 1 else acc)
    0
    (Schedule.transactions candidate)

let finish ~original ~migrated ~used_full_rerun ~repair schedule ctg =
  let misses, lateness = score ctg schedule in
  {
    schedule;
    stats =
      {
        migrated_tasks = migrated;
        rerouted_transactions = count_rerouted original schedule;
        misses;
        lateness;
        used_full_rerun;
        repair;
      };
  }

let run ?comm_model ?max_evaluations platform ctg ~faults schedule =
  let degraded = Fault_set.degraded faults platform in
  if Degraded.is_trivial degraded then
    finish ~original:schedule ~migrated:0 ~used_full_rerun:false ~repair:None schedule
      ctg
  else begin
    let n_pes = Noc_noc.Platform.n_pes platform in
    (* One kernel over the degraded fabric prices every migration here
       and feeds the repair search and the full rerun below. *)
    let kernel = Kernel.build ~degraded platform ctg in
    let assignment, rank = Rebuild.of_schedule schedule in
    (* Step 1: every task stranded on a failed PE migrates to the
       cheapest alive destination (same ordering as a GTM move). *)
    let migrated = ref 0 in
    Array.iteri
      (fun i pe ->
        if not (Degraded.pe_alive degraded pe) then begin
          let best =
            List.init n_pes Fun.id
            |> List.filter (Degraded.pe_alive degraded)
            |> List.map (fun k -> (Repair.move_energy kernel ctg ~assignment i k, k))
            |> List.sort compare |> List.hd |> snd
          in
          assignment.(i) <- best;
          incr migrated
        end)
      (Array.copy assignment);
    (* Step 2: rebuild on the degraded fabric — surviving placements and
       the execution order are preserved, failed links are detoured. *)
    let rebuilt =
      try Some (Rebuild.run ?comm_model ~degraded platform ctg ~assignment ~rank)
      with Invalid_argument _ -> None
    in
    (* Step 3: if deadlines still miss, run the repair search on the
       degraded platform; if that is not enough either, fall back to
       rescheduling from scratch and keep whichever is better. *)
    let repaired =
      match rebuilt with
      | None -> None
      | Some s ->
        if fst (score ctg s) = 0 then Some (s, None)
        else
          let s', st =
            Repair.run ?comm_model ~degraded ~kernel ?max_evaluations platform ctg s
          in
          Some (s', Some st)
    in
    match repaired with
    | Some (s, repair) when fst (score ctg s) = 0 ->
      finish ~original:schedule ~migrated:!migrated ~used_full_rerun:false ~repair s ctg
    | _ ->
      let full =
        (Eas.schedule ?comm_model ~degraded ~kernel platform ctg).Eas.schedule
      in
      (match repaired with
      | Some (s, repair) when better (score ctg s) (score ctg full) ->
        finish ~original:schedule ~migrated:!migrated ~used_full_rerun:false ~repair s
          ctg
      | _ ->
        finish ~original:schedule ~migrated:!migrated ~used_full_rerun:true ~repair:None
          full ctg)
  end

(* ------------------------------------------------------------------ *)
(* Criticality analysis. *)

type criticality = {
  element : Fault.element;
  induced_misses : int;
  induced_losses : int;
}

let criticality ?discipline platform ctg schedule =
  let probe element =
    let fault =
      match element with
      | Fault.Pe i -> Fault.pe i ()
      | Fault.Link l ->
        Fault.link ~from_node:l.Noc_noc.Routing.from_node ~to_node:l.to_node ()
    in
    let outcome =
      Noc_sim.Executor.run ?discipline ~faults:(Fault_set.of_list [ fault ]) platform
        ctg schedule
    in
    {
      element;
      induced_misses = List.length outcome.Noc_sim.Executor.deadline_misses;
      induced_losses = List.length outcome.Noc_sim.Executor.lost_tasks;
    }
  in
  let elements =
    List.init (Noc_noc.Platform.n_pes platform) (fun i -> Fault.Pe i)
    @ List.map (fun l -> Fault.Link l) (Noc_noc.Platform.all_links platform)
  in
  List.map probe elements
  |> List.sort (fun a b ->
         let c = compare (b.induced_misses, b.induced_losses) (a.induced_misses, a.induced_losses) in
         if c <> 0 then c else Fault.compare_element a.element b.element)

let pp_criticality ppf { element; induced_misses; induced_losses } =
  Format.fprintf ppf "%a: %d missed, %d lost" Fault.pp_element element induced_misses
    induced_losses
