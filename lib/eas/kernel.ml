module Timeline = Noc_util.Timeline
module Resource_state = Noc_sched.Resource_state
module Comm_sched = Noc_sched.Comm_sched

(* Flat dense matrices, indexed [task * n_pes + pe] and [src * n_pes + dst].
   Every float stored here is produced by exactly the expression the
   probing path would have evaluated (same operands, same operation
   order), so consulting the kernel instead of the platform is invisible
   at the bit level — the contract the differential suite pins. *)
type t = {
  n_tasks : int;
  n_pes : int;
  exec_times : float array;  (* task * n_pes + pe *)
  exec_energies : float array;  (* task * n_pes + pe *)
  releases : float array;  (* per task; [neg_infinity] when unconstrained *)
  mean_times : float array;  (* per task *)
  weights : float array;  (* per task: VAR_e * VAR_r *)
  hops : int array;  (* src * n_pes + dst; -1 when the pair is disconnected *)
  ebits : float array;  (* bit energy over the route; meaningless when hops < 0 *)
  links : Noc_noc.Routing.link array array;  (* src * n_pes + dst -> route links *)
  link_bandwidth : float;
  router_latency : float;
}

let n_tasks t = t.n_tasks
let n_pes t = t.n_pes

let build ?degraded platform ctg =
  let n_pes = Noc_noc.Platform.n_pes platform in
  let n_tasks = Noc_ctg.Ctg.n_tasks ctg in
  let energy = Noc_noc.Platform.energy_model platform in
  let exec_times = Array.make (n_tasks * n_pes) 0. in
  let exec_energies = Array.make (n_tasks * n_pes) 0. in
  let releases = Array.make n_tasks neg_infinity in
  let mean_times = Array.make n_tasks 0. in
  let weights = Array.make n_tasks 0. in
  for i = 0 to n_tasks - 1 do
    let task = Noc_ctg.Ctg.task ctg i in
    Array.blit task.Noc_ctg.Task.exec_times 0 exec_times (i * n_pes) n_pes;
    Array.blit task.Noc_ctg.Task.energies 0 exec_energies (i * n_pes) n_pes;
    (match task.Noc_ctg.Task.release with
    | None -> ()
    | Some release -> releases.(i) <- release);
    mean_times.(i) <- Noc_ctg.Task.mean_exec_time task;
    weights.(i) <- Noc_ctg.Task.weight task
  done;
  let hops = Array.make (n_pes * n_pes) (-1) in
  let ebits = Array.make (n_pes * n_pes) 0. in
  let links = Array.make (n_pes * n_pes) [||] in
  let nontrivial =
    match degraded with
    | Some view when not (Noc_noc.Degraded.is_trivial view) -> Some view
    | Some _ | None -> None
  in
  for src = 0 to n_pes - 1 do
    for dst = 0 to n_pes - 1 do
      let idx = (src * n_pes) + dst in
      match nontrivial with
      | Some view -> (
        match Noc_noc.Degraded.route_opt view ~src ~dst with
        | None -> ()  (* hops stays -1: disconnected *)
        | Some route ->
          let h = Noc_noc.Platform.route_hops route in
          hops.(idx) <- h;
          ebits.(idx) <- Noc_noc.Energy_model.bit_energy energy ~n_hops:h;
          links.(idx) <-
            Array.of_list (Noc_noc.Degraded.route_links view ~src ~dst))
      | None ->
        let h = Noc_noc.Platform.hops platform ~src ~dst in
        hops.(idx) <- h;
        ebits.(idx) <- Noc_noc.Energy_model.bit_energy energy ~n_hops:h;
        links.(idx) <-
          Array.of_list (Noc_noc.Platform.route_links platform ~src ~dst)
    done
  done;
  {
    n_tasks;
    n_pes;
    exec_times;
    exec_energies;
    releases;
    mean_times;
    weights;
    hops;
    ebits;
    links;
    link_bandwidth = Noc_noc.Platform.link_bandwidth platform;
    router_latency = Noc_noc.Platform.router_latency platform;
  }

let exec_time t ~task ~pe = t.exec_times.((task * t.n_pes) + pe)
let exec_energy t ~task ~pe = t.exec_energies.((task * t.n_pes) + pe)
let mean_time t task = t.mean_times.(task)
let weight t task = t.weights.(task)
let release t task = t.releases.(task)
let hops t ~src ~dst = t.hops.((src * t.n_pes) + dst)
let reachable t ~src ~dst = t.hops.((src * t.n_pes) + dst) >= 0

let comm_duration t ~src ~dst ~bits =
  if src = dst then 0.
  else begin
    let h = t.hops.((src * t.n_pes) + dst) in
    if h < 0 then
      invalid_arg
        (Printf.sprintf "Kernel.comm_duration: no surviving route from %d to %d"
           src dst);
    (bits /. t.link_bandwidth) +. (float_of_int (h - 1) *. t.router_latency)
  end

let comm_energy t ~src ~dst ~bits =
  let idx = (src * t.n_pes) + dst in
  if t.hops.(idx) < 0 then
    invalid_arg
      (Printf.sprintf "Kernel.comm_energy: no surviving route from %d to %d" src
         dst);
  bits *. t.ebits.(idx)

(* [infinity] for a disconnected pair — never [bits *. infinity], which
   would be NaN for a zero-volume arc. *)
let comm_energy_inf t ~src ~dst ~bits =
  let idx = (src * t.n_pes) + dst in
  if t.hops.(idx) < 0 then infinity else bits *. t.ebits.(idx)

let c_probe_transactions =
  Noc_obs.Counters.counter "eas.kernel.probe_transactions"

(* Scratch overlay: the reservations a probe would have made on the
   shared link tables, kept in private per-link timelines instead. A
   window is free for this probe iff it is free on the shared table
   {e and} on the overlay — exactly the merged busy set the
   reserve-then-rollback path queries — and [Timeline.earliest_gap_multi]
   is insensitive to how a busy set is partitioned across tables, so the
   probe returns bit-identical starts without ever writing shared state. *)
type overlay = (int * Timeline.t) list ref

let overlay_find (ov : overlay) idx =
  let rec go = function
    | [] -> None
    | (i, tl) :: rest -> if i = idx then Some tl else go rest
  in
  go !ov

let overlay_table (ov : overlay) idx =
  match overlay_find ov idx with
  | Some tl -> tl
  | None ->
    let tl = Timeline.create () in
    ov := (idx, tl) :: !ov;
    tl

let data_ready ?(model = Comm_sched.Contention_aware) t state ~pendings ~pe =
  let n = t.n_pes in
  let ov : overlay = ref [] in
  (* [None] once a predecessor cannot reach [pe] at all: F(i,k) is
     infinite, mirroring the probing path's [Invalid_argument] escape. *)
  let rec arrivals acc = function
    | [] -> Some acc
    | (p : Comm_sched.pending) :: rest ->
      Noc_obs.Counters.incr c_probe_transactions;
      let src = p.Comm_sched.src_pe in
      if src = pe then arrivals (Float.max acc p.Comm_sched.sender_finish) rest
      else begin
        let pair = (src * n) + pe in
        let h = t.hops.(pair) in
        if h < 0 then None
        else begin
          let duration =
            (p.Comm_sched.bits /. t.link_bandwidth)
            +. (float_of_int (h - 1) *. t.router_latency)
          in
          let start =
            match model with
            | Comm_sched.Fixed_delay -> p.Comm_sched.sender_finish
            | Comm_sched.Contention_aware ->
              let route = t.links.(pair) in
              let tables =
                Array.fold_left
                  (fun acc (l : Noc_noc.Routing.link) ->
                    let idx = (l.Noc_noc.Routing.from_node * n) + l.to_node in
                    let shared = Resource_state.link_table state l in
                    match overlay_find ov idx with
                    | None -> shared :: acc
                    | Some scratch -> scratch :: shared :: acc)
                  [] route
              in
              let start =
                Timeline.earliest_gap_multi tables
                  ~after:p.Comm_sched.sender_finish ~duration
              in
              (* The overlay reservation only exists to constrain the
                 remaining pendings; the last one can skip it. *)
              if rest <> [] then begin
                let interval =
                  Noc_util.Interval.make ~start ~stop:(start +. duration)
                in
                Array.iter
                  (fun (l : Noc_noc.Routing.link) ->
                    let idx = (l.Noc_noc.Routing.from_node * n) + l.to_node in
                    Timeline.reserve (overlay_table ov idx) interval)
                  route
              end;
              start
          in
          arrivals (Float.max acc (start +. duration)) rest
        end
      end
  in
  match arrivals 0. pendings with None -> infinity | Some drt -> drt

let finish_time ?model t state ~pendings ~task ~pe =
  let drt = data_ready ?model t state ~pendings ~pe in
  if drt = infinity then infinity
  else begin
    let exec = t.exec_times.((task * t.n_pes) + pe) in
    let ready = Float.max drt t.releases.(task) in
    let start =
      Timeline.earliest_gap (Resource_state.pe_table state pe) ~after:ready
        ~duration:exec
    in
    start +. exec
  end

let drt_deps ?(model = Comm_sched.Contention_aware) t state ~pendings ~pe =
  if
    List.exists
      (fun (p : Comm_sched.pending) ->
        p.Comm_sched.src_pe <> pe && not (reachable t ~src:p.Comm_sched.src_pe ~dst:pe))
      pendings
  then [||]  (* DRT is statically infinite: no table can change it *)
  else begin
    match model with
    | Comm_sched.Fixed_delay -> [||]  (* no reservations: DRT is static *)
    | Comm_sched.Contention_aware ->
      Array.of_list
        (List.concat_map
           (fun (p : Comm_sched.pending) ->
             if p.Comm_sched.src_pe = pe then []
             else
               Array.to_list
                 (Array.map
                    (Resource_state.link_table state)
                    t.links.((p.Comm_sched.src_pe * t.n_pes) + pe)))
           pendings)
  end
