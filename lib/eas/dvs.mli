(** Extension: dynamic-voltage-scaling slack reclamation.

    The paper positions EAS against DVS-based low-power scheduling
    (Sec. 2, refs [5] and [11]) but the two are complementary: after EAS
    fixes assignment and ordering, whatever idle time remains in front of
    each task's successors can be traded for voltage. This post-pass
    stretches every task into the slack that follows it on its own PE —
    bounded by the next task on that PE, by the departure of each of its
    outgoing transactions, and by its own deadline — leaving every other
    decision of the schedule untouched, so the schedule's feasibility
    argument carries over verbatim.

    The energy model is the classic first-order one: running a task
    [s >= 1] times slower at proportionally reduced voltage scales its
    {e dynamic} computation energy by [1 / s^2]. [max_stretch] caps [s]
    (voltage floors); communication energy is unaffected. This module is
    an extension beyond the paper's scope and is excluded from the
    reproduction experiments. *)

type stretch = {
  task : int;
  factor : float;  (** >= 1; 1 means the task cannot be slowed. *)
  new_finish : float;
  energy_before : float;
  energy_after : float;
}

type report = {
  stretches : stretch list;  (** One entry per task, by task id. *)
  computation_energy_before : float;
  computation_energy_after : float;
}

val plan : ?max_stretch:float -> Noc_ctg.Ctg.t -> Noc_sched.Schedule.t -> report
(** [plan ctg schedule] computes the per-task stretches ([max_stretch]
    defaults to 2.5). The input schedule is read, not modified; the
    report's [new_finish] values respect every constraint listed above
    (asserted). *)

val saving : report -> float
(** Relative dynamic computation-energy saving, in [0, 1). *)
