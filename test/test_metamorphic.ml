(* Metamorphic properties of the whole scheduling pipeline: known input
   transformations with predictable output transformations. These catch
   cross-module inconsistencies that unit tests on single modules miss. *)

module Ctg = Noc_ctg.Ctg
module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge
module Metrics = Noc_sched.Metrics

let platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 40) seed =
  let params = { Noc_tgff.Params.default with n_tasks } in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let eas ctg = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule
let energy ctg s = (Metrics.compute platform ctg s).Metrics.total_energy

(* Scaling every edge volume by [c] scales communication energy of the
   SAME assignment by exactly [c]. *)
let qcheck_volume_scaling =
  QCheck.Test.make ~name:"volume scaling scales comm energy linearly" ~count:20
    QCheck.(pair (int_range 0 500) (int_range 2 5))
    (fun (seed, c) ->
      let ctg = random_ctg seed in
      let s = eas ctg in
      let pe_of i = (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.pe in
      let scaled_tasks = Ctg.tasks ctg in
      let scaled_edges =
        Array.map
          (fun (e : Edge.t) ->
            Edge.make ~id:e.id ~src:e.src ~dst:e.dst
              ~volume:(float_of_int c *. e.volume))
          (Ctg.edges ctg)
      in
      let scaled = Ctg.make_exn ~tasks:scaled_tasks ~edges:scaled_edges in
      let base_comm =
        (Metrics.compute platform ctg s).Metrics.communication_energy
      in
      let scaled_comm =
        Metrics.energy_of_assignment platform scaled pe_of
        -. (Metrics.compute platform ctg s).Metrics.computation_energy
      in
      Noc_util.Stats.fequal ~eps:1e-6 scaled_comm (float_of_int c *. base_comm))

(* Removing every deadline can only reduce (or keep) EAS energy: the
   scheduler gains freedom. *)
let qcheck_relaxing_deadlines_helps =
  QCheck.Test.make ~name:"removing deadlines never increases EAS energy" ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let ctg = random_ctg seed in
      let relaxed_tasks =
        Array.map
          (fun (t : Task.t) ->
            Task.make ~id:t.id ~name:t.name ~exec_times:t.exec_times
              ~energies:t.energies ?release:t.release ())
          (Ctg.tasks ctg)
      in
      let relaxed = Ctg.make_exn ~tasks:relaxed_tasks ~edges:(Ctg.edges ctg) in
      energy relaxed (eas relaxed) <= energy ctg (eas ctg) +. 1e-6)

(* Scaling the whole time axis (all exec times, releases, deadlines, and
   the bandwidth inversely... simpler: exec times and deadlines by c with
   volumes fixed and bandwidth scaled) leaves the assignment decisions
   invariant, so energy is unchanged. We scale times, releases, deadlines
   by c and bandwidth by 1/c so transaction durations scale too. *)
let qcheck_time_scaling_invariance =
  QCheck.Test.make ~name:"uniform time scaling preserves the schedule shape"
    ~count:10
    QCheck.(int_range 0 500)
    (fun seed ->
      let c = 3. in
      let ctg = random_ctg seed in
      let scaled_tasks =
        Array.map
          (fun (t : Task.t) ->
            Task.make ~id:t.id ~name:t.name
              ~exec_times:(Array.map (fun r -> c *. r) t.exec_times)
              ~energies:t.energies
              ?release:(Option.map (fun r -> c *. r) t.release)
              ?deadline:(Option.map (fun d -> c *. d) t.deadline)
              ())
          (Ctg.tasks ctg)
      in
      let scaled_ctg = Ctg.make_exn ~tasks:scaled_tasks ~edges:(Ctg.edges ctg) in
      let scaled_platform =
        Noc_noc.Platform.make
          ~topology:(Noc_noc.Platform.topology platform)
          ~pes:(Noc_noc.Platform.pes platform)
          ~energy:(Noc_noc.Platform.energy_model platform)
          ~link_bandwidth:(Noc_noc.Platform.link_bandwidth platform /. c)
          ()
      in
      let s = eas ctg in
      let s' = (Noc_eas.Eas.schedule scaled_platform scaled_ctg).Noc_eas.Eas.schedule in
      (* Same assignment on every task... *)
      let same_assignment =
        Array.for_all2
          (fun (a : Noc_sched.Schedule.placement) (b : Noc_sched.Schedule.placement) ->
            a.pe = b.pe)
          (Noc_sched.Schedule.placements s)
          (Noc_sched.Schedule.placements s')
      in
      (* ...and start times scaled by c. *)
      let scaled_times =
        Array.for_all2
          (fun (a : Noc_sched.Schedule.placement) (b : Noc_sched.Schedule.placement) ->
            Noc_util.Stats.fequal ~eps:1e-6 (c *. a.start) b.start)
          (Noc_sched.Schedule.placements s)
          (Noc_sched.Schedule.placements s')
      in
      same_assignment && scaled_times)

(* A graph restricted to a single PE type (homogeneous platform) makes
   EAS, EDF and DLS agree on energy: with identical costs everywhere,
   energy depends only on communication, and clustering is the only
   lever. At minimum, all schedulers' computation energy must agree. *)
let qcheck_homogeneous_computation_energy =
  QCheck.Test.make ~name:"homogeneous platform: computation energy is scheduler-independent"
    ~count:10
    QCheck.(int_range 0 500)
    (fun seed ->
      let p = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2 in
      (* Zero jitter: the homogeneous platform then gives every task
         identical per-PE costs. *)
      let params =
        {
          Noc_tgff.Params.default with
          n_tasks = 30;
          time_jitter_sigma = 0.;
          energy_jitter_sigma = 0.;
        }
      in
      let ctg = Noc_tgff.Generate.generate ~params ~platform:p ~seed in
      let comp s = (Metrics.compute p ctg s).Metrics.computation_energy in
      let e = comp (Noc_eas.Eas.schedule p ctg).Noc_eas.Eas.schedule in
      let d = comp (Noc_edf.Edf.schedule p ctg).Noc_edf.Edf.schedule in
      let l = comp (Noc_baselines.Dls.schedule p ctg).Noc_baselines.Dls.schedule in
      Noc_util.Stats.fequal ~eps:1e-6 e d && Noc_util.Stats.fequal ~eps:1e-6 d l)

(* Unrolling one copy is the identity (modulo names). *)
let qcheck_unroll_identity =
  QCheck.Test.make ~name:"unrolling one copy preserves the graph" ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let ctg = random_ctg seed in
      let u = Noc_ctg.Unroll.periodic ctg ~period:1e9 ~copies:1 in
      Ctg.n_tasks u = Ctg.n_tasks ctg
      && Ctg.n_edges u = Ctg.n_edges ctg
      && Array.for_all2
           (fun (a : Task.t) (b : Task.t) ->
             a.exec_times = b.exec_times && a.deadline = b.deadline
             && a.release = b.release)
           (Ctg.tasks ctg) (Ctg.tasks u))

(* Serialisation is the identity on scheduling decisions: a graph sent
   through text and back schedules identically. *)
let qcheck_serialisation_schedule_identity =
  QCheck.Test.make ~name:"text roundtrip preserves the schedule" ~count:10
    QCheck.(int_range 0 500)
    (fun seed ->
      let ctg = random_ctg seed in
      match Noc_ctg.Ctg_io.of_string (Noc_ctg.Ctg_io.to_string ctg) with
      | Error _ -> false
      | Ok ctg' ->
        let a = eas ctg and b = eas ctg' in
        Noc_sched.Schedule.placements a = Noc_sched.Schedule.placements b)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_volume_scaling;
    QCheck_alcotest.to_alcotest qcheck_relaxing_deadlines_helps;
    QCheck_alcotest.to_alcotest qcheck_time_scaling_invariance;
    QCheck_alcotest.to_alcotest qcheck_homogeneous_computation_energy;
    QCheck_alcotest.to_alcotest qcheck_unroll_identity;
    QCheck_alcotest.to_alcotest qcheck_serialisation_schedule_identity;
  ]
