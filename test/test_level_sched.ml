(* Direct tests of EAS Step 2's decision rules (Level_sched). *)

module Level_sched = Noc_eas.Level_sched
module Budget = Noc_eas.Budget
module Schedule = Noc_sched.Schedule
module Builder = Noc_ctg.Builder
module Platform = Noc_noc.Platform

(* Two-PE platform, PE 0 cheap/slow-ish, PE 1 expensive; identical
   speeds so only energy differs unless stated. *)
let platform2 =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
    ~pes:
      [|
        Noc_noc.Pe.make ~index:0 ~kind:Noc_noc.Pe.Risc_lowpower ~time_factor:1.
          ~power_factor:1.;
        Noc_noc.Pe.make ~index:1 ~kind:Noc_noc.Pe.Risc_fast ~time_factor:1.
          ~power_factor:1.;
      |]
    ~link_bandwidth:1_000. ()

let schedule_of ctg = Level_sched.run platform2 ctg (Budget.compute ctg)

let test_rule4_regret_priority () =
  (* Independent tasks, both cheapest on PE 0. A's regret (E2 - E1) is
     90, B's is 1: A must be committed first and so run first on the
     shared cheapest PE. *)
  let b = Builder.create ~n_pes:2 in
  let a = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 10.; 100. |] () in
  let c = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 10.; 11. |] () in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  let pa = Schedule.placement s a and pc = Schedule.placement s c in
  Alcotest.(check int) "high-regret task gets the cheap PE" 0 pa.Schedule.pe;
  Alcotest.(check bool) "and is scheduled first" true
    (pa.Schedule.start <= pc.Schedule.start || pc.Schedule.pe <> 0)

let test_rule4_picks_cheapest_allowed () =
  (* Single task, no deadline: must go to its cheapest PE. *)
  let b = Builder.create ~n_pes:2 in
  let t = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 50.; 5. |] () in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check int) "cheapest PE" 1 (Schedule.placement s t).Schedule.pe

let test_rule3_violator_gets_fastest_pe () =
  (* The deadline is achievable only on PE 1 (time 10 vs 100), but PE 1
     is expensive; rule 3 must override energy. Also a second loose task
     must not steal priority from the violator. *)
  let b = Builder.create ~n_pes:2 in
  let urgent =
    Builder.add_task b ~exec_times:[| 100.; 10. |] ~energies:[| 1.; 99. |]
      ~deadline:20. ()
  in
  let relaxed =
    Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 2. |]
      ~deadline:10_000. ()
  in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check int) "urgent on the fast PE" 1 (Schedule.placement s urgent).Schedule.pe;
  Alcotest.(check bool) "deadline met" true
    ((Schedule.placement s urgent).Schedule.finish <= 20.);
  Alcotest.(check bool) "relaxed task still scheduled" true
    ((Schedule.placement s relaxed).Schedule.finish > 0.)

let test_drt_exact () =
  (* Receiver on a third PE with two senders; its start must equal the
     latest arrival, which is determined by volume / bandwidth. *)
  let platform3 =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:3 ~rows:1)
      ~pes:(Array.init 3 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~link_bandwidth:100. ()
  in
  let b = Builder.create ~n_pes:3 in
  (* Pin senders by making each wildly cheapest on its own PE. *)
  let s1 = Builder.add_task b ~exec_times:[| 10.; 10.; 10. |] ~energies:[| 1.; 999.; 999. |] () in
  let s2 = Builder.add_task b ~exec_times:[| 20.; 20.; 20. |] ~energies:[| 999.; 999.; 1. |] () in
  let recv = Builder.add_task b ~exec_times:[| 999.; 5.; 999. |] ~energies:[| 999.; 1.; 999. |] () in
  Builder.connect b ~src:s1 ~dst:recv ~volume:500.;  (* arrives 10 + 5 = 15 *)
  Builder.connect b ~src:s2 ~dst:recv ~volume:800.;  (* arrives 20 + 8 = 28 *)
  let ctg = Builder.build_exn b in
  let s = Level_sched.run platform3 ctg (Budget.compute ctg) in
  Alcotest.(check int) "s1 on pe 0" 0 (Schedule.placement s s1).Schedule.pe;
  Alcotest.(check int) "s2 on pe 2" 2 (Schedule.placement s s2).Schedule.pe;
  Alcotest.(check int) "receiver on pe 1" 1 (Schedule.placement s recv).Schedule.pe;
  Alcotest.(check (float 1e-9)) "starts exactly at the DRT" 28.
    (Schedule.placement s recv).Schedule.start

let test_gap_filling () =
  (* PE schedule tables are gap-filled: a short late-committed task slides
     into an earlier hole rather than appending at the end. Chain a -> b
     leaves PE 0 idle during the transaction + b window; independent
     task c (committed last, low regret) must start inside the idle gap. *)
  let platform3 =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
      ~pes:(Array.init 2 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~link_bandwidth:10. ()
  in
  let b = Builder.create ~n_pes:2 in
  let a = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 999. |] () in
  let b2 = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 999.; 1. |] () in
  (* Huge volume: transaction lasts 100, so pe0 idles [10, ...]. *)
  Builder.connect b ~src:a ~dst:b2 ~volume:1_000.;
  let c = Builder.add_task b ~exec_times:[| 5.; 5. |] ~energies:[| 1.; 999. |] () in
  let ctg = Builder.build_exn b in
  let s = Level_sched.run platform3 ctg (Budget.compute ctg) in
  Alcotest.(check int) "c shares pe 0" 0 (Schedule.placement s c).Schedule.pe;
  Alcotest.(check bool) "c runs inside the idle window" true
    ((Schedule.placement s c).Schedule.start < 100.)

let test_zero_edge_graph () =
  (* A graph with no arcs at all still schedules. *)
  let b = Builder.create ~n_pes:2 in
  for _ = 1 to 5 do
    ignore (Builder.add_uniform_task b ~time:10. ~energy:1. ())
  done;
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check bool) "all placed" true
    (Array.for_all
       (fun (p : Schedule.placement) -> p.finish > p.start)
       (Schedule.placements s))

let test_single_task () =
  let b = Builder.create ~n_pes:2 in
  ignore (Builder.add_uniform_task b ~time:10. ~energy:1. ());
  let s = schedule_of (Builder.build_exn b) in
  Alcotest.(check (float 0.)) "starts at zero" 0. (Schedule.placement s 0).Schedule.start

let suite =
  [
    Alcotest.test_case "rule 4: regret priority" `Quick test_rule4_regret_priority;
    Alcotest.test_case "rule 4: cheapest allowed PE" `Quick test_rule4_picks_cheapest_allowed;
    Alcotest.test_case "rule 3: violator to fastest PE" `Quick
      test_rule3_violator_gets_fastest_pe;
    Alcotest.test_case "DRT exact" `Quick test_drt_exact;
    Alcotest.test_case "gap filling" `Quick test_gap_filling;
    Alcotest.test_case "edge-free graph" `Quick test_zero_edge_graph;
    Alcotest.test_case "single task" `Quick test_single_task;
  ]
