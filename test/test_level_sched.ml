(* Direct tests of EAS Step 2's decision rules (Level_sched). *)

module Level_sched = Noc_eas.Level_sched
module Budget = Noc_eas.Budget
module Schedule = Noc_sched.Schedule
module Builder = Noc_ctg.Builder
module Platform = Noc_noc.Platform

(* Two-PE platform, PE 0 cheap/slow-ish, PE 1 expensive; identical
   speeds so only energy differs unless stated. *)
let platform2 =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
    ~pes:
      [|
        Noc_noc.Pe.make ~index:0 ~kind:Noc_noc.Pe.Risc_lowpower ~time_factor:1.
          ~power_factor:1.;
        Noc_noc.Pe.make ~index:1 ~kind:Noc_noc.Pe.Risc_fast ~time_factor:1.
          ~power_factor:1.;
      |]
    ~link_bandwidth:1_000. ()

let schedule_of ctg = Level_sched.run platform2 ctg (Budget.compute ctg)

let test_rule4_regret_priority () =
  (* Independent tasks, both cheapest on PE 0. A's regret (E2 - E1) is
     90, B's is 1: A must be committed first and so run first on the
     shared cheapest PE. *)
  let b = Builder.create ~n_pes:2 in
  let a = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 10.; 100. |] () in
  let c = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 10.; 11. |] () in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  let pa = Schedule.placement s a and pc = Schedule.placement s c in
  Alcotest.(check int) "high-regret task gets the cheap PE" 0 pa.Schedule.pe;
  Alcotest.(check bool) "and is scheduled first" true
    (pa.Schedule.start <= pc.Schedule.start || pc.Schedule.pe <> 0)

let test_rule4_picks_cheapest_allowed () =
  (* Single task, no deadline: must go to its cheapest PE. *)
  let b = Builder.create ~n_pes:2 in
  let t = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 50.; 5. |] () in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check int) "cheapest PE" 1 (Schedule.placement s t).Schedule.pe

let test_rule3_violator_gets_fastest_pe () =
  (* The deadline is achievable only on PE 1 (time 10 vs 100), but PE 1
     is expensive; rule 3 must override energy. Also a second loose task
     must not steal priority from the violator. *)
  let b = Builder.create ~n_pes:2 in
  let urgent =
    Builder.add_task b ~exec_times:[| 100.; 10. |] ~energies:[| 1.; 99. |]
      ~deadline:20. ()
  in
  let relaxed =
    Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 2. |]
      ~deadline:10_000. ()
  in
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check int) "urgent on the fast PE" 1 (Schedule.placement s urgent).Schedule.pe;
  Alcotest.(check bool) "deadline met" true
    ((Schedule.placement s urgent).Schedule.finish <= 20.);
  Alcotest.(check bool) "relaxed task still scheduled" true
    ((Schedule.placement s relaxed).Schedule.finish > 0.)

let test_drt_exact () =
  (* Receiver on a third PE with two senders; its start must equal the
     latest arrival, which is determined by volume / bandwidth. *)
  let platform3 =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:3 ~rows:1)
      ~pes:(Array.init 3 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~link_bandwidth:100. ()
  in
  let b = Builder.create ~n_pes:3 in
  (* Pin senders by making each wildly cheapest on its own PE. *)
  let s1 = Builder.add_task b ~exec_times:[| 10.; 10.; 10. |] ~energies:[| 1.; 999.; 999. |] () in
  let s2 = Builder.add_task b ~exec_times:[| 20.; 20.; 20. |] ~energies:[| 999.; 999.; 1. |] () in
  let recv = Builder.add_task b ~exec_times:[| 999.; 5.; 999. |] ~energies:[| 999.; 1.; 999. |] () in
  Builder.connect b ~src:s1 ~dst:recv ~volume:500.;  (* arrives 10 + 5 = 15 *)
  Builder.connect b ~src:s2 ~dst:recv ~volume:800.;  (* arrives 20 + 8 = 28 *)
  let ctg = Builder.build_exn b in
  let s = Level_sched.run platform3 ctg (Budget.compute ctg) in
  Alcotest.(check int) "s1 on pe 0" 0 (Schedule.placement s s1).Schedule.pe;
  Alcotest.(check int) "s2 on pe 2" 2 (Schedule.placement s s2).Schedule.pe;
  Alcotest.(check int) "receiver on pe 1" 1 (Schedule.placement s recv).Schedule.pe;
  Alcotest.(check (float 1e-9)) "starts exactly at the DRT" 28.
    (Schedule.placement s recv).Schedule.start

let test_gap_filling () =
  (* PE schedule tables are gap-filled: a short late-committed task slides
     into an earlier hole rather than appending at the end. Chain a -> b
     leaves PE 0 idle during the transaction + b window; independent
     task c (committed last, low regret) must start inside the idle gap. *)
  let platform3 =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
      ~pes:(Array.init 2 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~link_bandwidth:10. ()
  in
  let b = Builder.create ~n_pes:2 in
  let a = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 999. |] () in
  let b2 = Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 999.; 1. |] () in
  (* Huge volume: transaction lasts 100, so pe0 idles [10, ...]. *)
  Builder.connect b ~src:a ~dst:b2 ~volume:1_000.;
  let c = Builder.add_task b ~exec_times:[| 5.; 5. |] ~energies:[| 1.; 999. |] () in
  let ctg = Builder.build_exn b in
  let s = Level_sched.run platform3 ctg (Budget.compute ctg) in
  Alcotest.(check int) "c shares pe 0" 0 (Schedule.placement s c).Schedule.pe;
  Alcotest.(check bool) "c runs inside the idle window" true
    ((Schedule.placement s c).Schedule.start < 100.)

let test_zero_edge_graph () =
  (* A graph with no arcs at all still schedules. *)
  let b = Builder.create ~n_pes:2 in
  for _ = 1 to 5 do
    ignore (Builder.add_uniform_task b ~time:10. ~energy:1. ())
  done;
  let ctg = Builder.build_exn b in
  let s = schedule_of ctg in
  Alcotest.(check bool) "all placed" true
    (Array.for_all
       (fun (p : Schedule.placement) -> p.finish > p.start)
       (Schedule.placements s))

let test_single_task () =
  let b = Builder.create ~n_pes:2 in
  ignore (Builder.add_uniform_task b ~time:10. ~energy:1. ());
  let s = schedule_of (Builder.build_exn b) in
  Alcotest.(check (float 0.)) "starts at zero" 0. (Schedule.placement s 0).Schedule.start


(* ------------------------------------------------------------------ *)
(* Golden placements: 40-task category-I graphs with every PE
   assignment and start/finish pinned to 1e-6. Captured before the
   F(i,k) pendings hoist and the per-(i,k) assignment-energy cache
   landed in [run]; the optimised inner loop must reproduce every
   decision bit for bit, so any drift in tie-breaking or float
   evaluation order fails here before it can move the energy oracle. *)

let golden_placements =
  [
    ( 0,
      "0:0:43.904557:140.772265 1:15:0.000000:67.709383 \
       2:15:67.709383:153.959408 3:1:0.000000:416.767878 \
       4:0:0.000000:43.904557 5:11:0.000000:205.742550 \
       6:9:0.000000:514.829891 7:6:0.000000:166.877651 \
       8:6:166.877651:269.899297 9:14:178.830905:359.433409 \
       10:11:205.742550:347.241358 11:7:76.786735:180.616732 \
       12:7:391.546613:495.376610 13:3:368.641070:465.219655 \
       14:15:504.898939:600.097268 15:11:347.241358:474.688265 \
       16:10:388.528852:544.591350 17:5:364.814573:558.899859 \
       18:2:403.158854:526.409120 19:13:196.568775:552.853052 \
       20:3:182.600395:324.558912 21:7:287.716616:391.546613 \
       22:6:371.207600:581.403067 23:7:495.376610:555.005676 \
       24:7:555.005676:676.794685 25:15:380.487489:416.762316 \
       26:15:416.762316:504.898939 27:7:676.794685:856.996040 \
       28:15:600.097268:707.469757 29:13:618.005764:900.284440 \
       30:5:583.898776:777.984061 31:9:913.202633:1060.510697 \
       32:14:987.420766:1119.229733 33:14:909.514687:987.420766 \
       34:3:787.207846:885.309838 35:7:856.996040:950.464064 \
       36:7:950.464064:965.538504 37:0:791.897109:888.764817 \
       38:10:926.429787:1149.663156 39:15:707.469757:802.123417" );
    ( 1,
      "0:13:0.000000:547.956909 1:12:0.000000:82.364404 \
       2:7:0.000000:152.855543 3:9:228.340744:337.722793 \
       4:11:0.000000:139.902901 5:10:0.000000:114.512963 \
       6:3:38.225023:64.977527 7:7:152.855543:253.096580 \
       8:6:0.000000:119.689785 9:2:0.000000:127.582745 \
       10:14:0.000000:122.993952 11:1:0.000000:323.839130 \
       12:15:57.507732:126.812921 13:3:64.977527:90.957087 \
       14:9:0.000000:228.340744 15:3:0.000000:38.225023 \
       16:15:0.000000:57.507732 17:7:353.337617:453.578654 \
       18:15:126.812921:184.320653 19:14:133.624961:377.170350 \
       20:7:253.096580:353.337617 21:10:166.091317:344.645065 \
       22:2:272.953422:491.518073 23:5:43.161675:287.561330 \
       24:6:158.445289:278.135074 25:11:141.533786:251.643489 \
       26:6:278.135074:407.873225 27:15:395.692381:528.024356 \
       28:1:410.147309:551.009774 29:11:251.643489:317.544787 \
       30:5:297.048779:541.448434 31:13:547.956909:748.500308 \
       32:6:407.873225:618.586100 33:2:491.518073:728.669597 \
       34:3:288.727181:378.802968 35:7:585.772373:633.504344 \
       36:7:453.578654:585.772373 37:11:411.289570:588.656255 \
       38:10:344.645065:768.174953 39:7:633.504344:738.054554" );
    ( 2,
      "0:10:0.000000:277.302031 1:9:0.000000:105.671708 \
       2:14:0.000000:176.465509 3:7:0.000000:267.509249 \
       4:14:176.465509:262.685876 5:1:304.432607:829.335577 \
       6:9:460.332965:754.243415 7:2:289.028579:475.883313 \
       8:7:474.432399:624.355509 9:6:367.335820:574.717904 \
       10:14:296.381795:467.602512 11:7:419.987766:474.432399 \
       12:13:200.295933:458.062449 13:2:475.883313:662.738047 \
       14:10:277.302031:471.347870 15:15:453.406890:488.927438 \
       16:9:313.326425:460.332965 17:6:179.191709:367.335820 \
       18:11:271.680319:304.437633 19:15:292.357982:453.406890 \
       20:9:188.486378:313.326425 21:10:471.347870:697.107080 \
       22:7:278.560105:419.987766 23:15:569.251080:676.462540 \
       24:10:697.107080:833.089517 25:11:331.480222:388.411171 \
       26:5:323.334465:529.193493 27:15:488.927438:529.089259 \
       28:13:482.601148:629.773368 29:11:501.823527:596.712340 \
       30:11:596.712340:693.211528 31:7:670.085929:761.442304 \
       32:6:574.717904:782.099987 33:15:529.089259:569.251080 \
       34:11:693.211528:779.296532 35:13:629.773368:856.410239 \
       36:6:789.534700:853.867072 37:9:754.243415:1256.154970 \
       38:13:856.410239:1114.176756 39:10:833.089517:1020.614955" );
    ( 1000,
      "0:6:0.000000:228.040324 1:2:0.000000:196.452009 \
       2:11:0.000000:106.001822 3:3:0.000000:151.086932 \
       4:10:0.000000:228.383054 5:7:0.000000:84.254067 \
       6:6:239.840712:569.021227 7:11:160.250399:266.252222 \
       8:3:276.782606:409.967400 9:15:240.805010:339.579328 \
       10:13:255.486750:505.459052 11:3:207.877025:276.782606 \
       12:10:228.383054:527.115418 13:3:151.086932:201.829273 \
       14:11:266.252222:372.000141 15:2:196.452009:565.653189 \
       16:7:386.226751:483.404239 17:9:244.858677:487.840013 \
       18:7:205.149686:386.226751 19:15:339.579328:458.392063 \
       20:5:126.610792:482.685593 21:10:527.115418:749.232541 \
       22:7:483.404239:588.239447 23:6:569.021227:709.758817 \
       24:3:409.967400:496.862777 25:1:286.706304:624.898951 \
       26:1:624.898951:802.011573 27:3:739.447251:796.867594 \
       28:2:756.404129:956.046608 29:6:850.606018:938.488037 \
       30:6:709.758817:850.606018 31:11:667.976867:837.887225 \
       32:5:608.148470:879.161034 33:15:605.906188:758.546666 \
       34:10:749.232541:969.324778 35:3:796.867594:947.954525 \
       36:7:763.870294:966.362850 37:9:633.660931:959.150825 \
       38:3:606.262457:739.447251 39:11:837.887225:887.704580" );
    ( 2000,
      "0:5:0.000000:156.894163 1:7:0.000000:77.321514 \
       2:10:0.000000:126.566596 3:11:0.000000:38.838980 \
       4:3:42.508176:91.885546 5:11:38.838980:77.677961 \
       6:0:33.506827:79.097937 7:13:0.000000:471.616252 \
       8:6:0.000000:91.748488 9:14:0.000000:286.808906 \
       10:3:0.000000:42.508176 11:0:0.000000:33.506827 \
       12:15:0.000000:125.753411 13:2:0.000000:66.153457 \
       14:15:125.753411:263.990732 15:1:240.723552:344.294420 \
       16:7:77.321514:189.273632 17:2:132.775246:198.928703 \
       18:3:91.885546:177.253609 19:7:189.273632:323.730833 \
       20:0:94.161327:301.050076 21:1:80.636306:240.723552 \
       22:15:263.990732:278.370590 23:10:130.392238:320.926756 \
       24:15:365.902228:491.655638 25:9:147.659313:333.293545 \
       26:11:93.577285:228.038883 27:15:278.370590:365.902228 \
       28:3:197.770316:310.746356 29:6:216.927789:313.968500 \
       30:5:324.922886:415.216885 31:15:593.805077:741.454983 \
       32:2:500.640552:726.480830 33:6:367.985412:525.699735 \
       34:7:505.054655:617.006772 35:0:301.050076:439.855373 \
       36:1:344.294420:434.901506 37:13:471.616252:543.853841 \
       38:15:491.655638:593.805077 39:11:291.551816:330.539763" );
  ]

let test_golden_placements () =
  let platform = Noc_tgff.Category.platform in
  let params =
    { (Noc_tgff.Category.params Noc_tgff.Category.Category_i) with
      Noc_tgff.Params.n_tasks = 40 }
  in
  List.iter
    (fun (seed, expected) ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let s = Level_sched.run platform ctg (Budget.compute ctg) in
      let actual =
        String.concat " "
          (List.init (Schedule.n_tasks s) (fun i ->
               let p = Schedule.placement s i in
               Printf.sprintf "%d:%d:%.6f:%.6f" i p.Schedule.pe
                 p.Schedule.start p.Schedule.finish))
      in
      Alcotest.(check string) (Printf.sprintf "seed %d placements" seed)
        expected actual)
    golden_placements

let suite =
  [
    Alcotest.test_case "rule 4: regret priority" `Quick test_rule4_regret_priority;
    Alcotest.test_case "rule 4: cheapest allowed PE" `Quick test_rule4_picks_cheapest_allowed;
    Alcotest.test_case "rule 3: violator to fastest PE" `Quick
      test_rule3_violator_gets_fastest_pe;
    Alcotest.test_case "DRT exact" `Quick test_drt_exact;
    Alcotest.test_case "gap filling" `Quick test_gap_filling;
    Alcotest.test_case "edge-free graph" `Quick test_zero_edge_graph;
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "golden placements (category I, 40 tasks)" `Quick
      test_golden_placements;
  ]
