(* Tests for Noc_sched.Validate: every violation class must be caught,
   and a correct schedule must pass. *)

module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate
module Platform = Noc_noc.Platform

let platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:2)
    ~pes:(Array.init 4 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

(* Tasks 0 -> 2, 1 -> 2 with uniform cost 10, energies 1; task 2 has
   deadline 100. *)
let ctg =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t2 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:100. () in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t2 ~volume:500.;
  Noc_ctg.Builder.connect b ~src:t1 ~dst:t2 ~volume:500.;
  Noc_ctg.Builder.build_exn b

let transaction edge src_pe dst_pe start finish =
  {
    Schedule.edge;
    src_pe;
    dst_pe;
    route = Platform.route platform ~src:src_pe ~dst:dst_pe;
    start;
    finish;
  }

(* A correct schedule: t0 on pe 0, t1 on pe 1, t2 on pe 3. Transactions:
   0 (pe0 -> pe3, route 0-1-3) and 1 (pe1 -> pe3, route 1-3). They share
   link 1->3 so they are serialised. *)
let good_schedule () =
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
        { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
      |]
    ~transactions:[| transaction 0 0 3 10. 15.; transaction 1 1 3 15. 20. |]

let count_of pred violations = List.length (List.filter pred violations)

let test_good_schedule_passes () =
  Alcotest.(check int) "no violations" 0
    (List.length (Validate.check platform ctg (good_schedule ())))

let test_is_feasible () =
  Alcotest.(check bool) "feasible" true (Validate.is_feasible platform ctg (good_schedule ()))

let test_task_overlap_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 0; start = 5.; finish = 15. };
          { Schedule.task = 2; pe = 0; start = 20.; finish = 30. };
        |]
      ~transactions:
        [| transaction 0 0 0 10. 10.; transaction 1 0 0 15. 15. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "overlap reported" true
    (count_of (function Validate.Task_overlap _ -> true | _ -> false) violations > 0)

let test_link_conflict_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
        |]
      (* Both transactions cross link 1->3 in overlapping windows. *)
      ~transactions:[| transaction 0 0 3 10. 15.; transaction 1 1 3 12. 17. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "conflict reported" true
    (count_of (function Validate.Link_conflict _ -> true | _ -> false) violations > 0)

let test_dependency_violation_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          (* Receiver starts before the data arrives. *)
          { Schedule.task = 2; pe = 3; start = 12.; finish = 22. };
        |]
      ~transactions:[| transaction 0 0 3 10. 15.; transaction 1 1 3 15. 20. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "dependency reported" true
    (count_of (function Validate.Dependency _ -> true | _ -> false) violations > 0)

let test_early_transaction_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
        |]
      (* Transaction 0 departs before its sender finishes. *)
      ~transactions:[| transaction 0 0 3 5. 10.; transaction 1 1 3 15. 20. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "early departure reported" true
    (count_of (function Validate.Dependency _ -> true | _ -> false) violations > 0)

let test_deadline_miss_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 95.; finish = 105. };
        |]
      ~transactions:[| transaction 0 0 3 10. 15.; transaction 1 1 3 15. 20. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check int) "exactly one deadline miss" 1
    (count_of (function Validate.Deadline_miss _ -> true | _ -> false) violations)

let test_wrong_duration_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 12. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
        |]
      ~transactions:[| transaction 0 0 3 12. 17.; transaction 1 1 3 17. 22. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "cost-table mismatch reported" true
    (count_of (function Validate.Malformed _ -> true | _ -> false) violations > 0)

(* [0; 2; 3] is the YX detour: a perfectly valid walk through the 2x2
   mesh, just not the platform's deterministic XY route. The default
   check accepts it (degraded-platform reschedules record such routes);
   [~strict_routes:true] rejects it. *)
let detour_schedule () =
  let detour =
    {
      Schedule.edge = 0;
      src_pe = 0;
      dst_pe = 3;
      route = [ 0; 2; 3 ];
      start = 10.;
      finish = 15.;
    }
  in
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
        { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
      |]
    ~transactions:[| detour; transaction 1 1 3 15. 20. |]

let test_detour_route_passes_default () =
  Alcotest.(check int) "detour walk accepted" 0
    (List.length (Validate.check platform ctg (detour_schedule ())))

let test_wrong_route_detected () =
  let violations = Validate.check ~strict_routes:true platform ctg (detour_schedule ()) in
  Alcotest.(check bool) "route mismatch reported under strict mode" true
    (count_of (function Validate.Malformed _ -> true | _ -> false) violations > 0)

let test_broken_walk_detected () =
  (* [0; 3] jumps diagonally across the mesh: not a link, rejected even
     by the default (non-strict) check. *)
  let bad =
    {
      Schedule.edge = 0;
      src_pe = 0;
      dst_pe = 3;
      route = [ 0; 3 ];
      start = 10.;
      finish = 15.;
    }
  in
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
        |]
      ~transactions:[| bad; transaction 1 1 3 15. 20. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "non-link hop reported" true
    (count_of (function Validate.Malformed _ -> true | _ -> false) violations > 0)

let test_wrong_pe_consistency_detected () =
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 1; start = 0.; finish = 10. };
          { Schedule.task = 2; pe = 3; start = 20.; finish = 30. };
        |]
      (* Transaction 0 claims the sender runs on pe 2. *)
      ~transactions:[| transaction 0 2 3 10. 15.; transaction 1 1 3 15. 20. |]
  in
  let violations = Validate.check platform ctg s in
  Alcotest.(check bool) "endpoint mismatch reported" true
    (count_of (function Validate.Malformed _ -> true | _ -> false) violations > 0)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_violation_printing () =
  let v = Validate.Deadline_miss { task = 2; deadline = 100.; finish = 105. } in
  let text = Format.asprintf "%a" Validate.pp_violation v in
  Alcotest.(check bool) "mentions the task" true (contains_substring text "task 2")

let suite =
  [
    Alcotest.test_case "good schedule passes" `Quick test_good_schedule_passes;
    Alcotest.test_case "is_feasible" `Quick test_is_feasible;
    Alcotest.test_case "task overlap detected" `Quick test_task_overlap_detected;
    Alcotest.test_case "link conflict detected" `Quick test_link_conflict_detected;
    Alcotest.test_case "dependency violation detected" `Quick
      test_dependency_violation_detected;
    Alcotest.test_case "early transaction detected" `Quick test_early_transaction_detected;
    Alcotest.test_case "deadline miss detected" `Quick test_deadline_miss_detected;
    Alcotest.test_case "wrong duration detected" `Quick test_wrong_duration_detected;
    Alcotest.test_case "detour route passes default check" `Quick
      test_detour_route_passes_default;
    Alcotest.test_case "wrong route detected (strict)" `Quick test_wrong_route_detected;
    Alcotest.test_case "broken walk detected" `Quick test_broken_walk_detected;
    Alcotest.test_case "wrong PE consistency detected" `Quick
      test_wrong_pe_consistency_detected;
    Alcotest.test_case "violation printing" `Quick test_violation_printing;
  ]
