(* Tests for the experiment harness (scaled-down runs of every paper
   artifact, asserting the qualitative shapes the paper reports). *)

module Runner = Noc_experiments.Runner
module Random_suite = Noc_experiments.Random_suite
module Msb_tables = Noc_experiments.Msb_tables
module Tradeoff = Noc_experiments.Tradeoff
module Energy_split = Noc_experiments.Energy_split
module Ablation = Noc_experiments.Ablation

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_runner_names () =
  Alcotest.(check (list string)) "algo names" [ "EAS-base"; "EAS"; "EDF" ]
    (List.map Runner.algo_name Runner.all_algos)

let test_runner_savings () =
  Alcotest.(check (float 1e-9)) "savings" 0.25 (Runner.savings ~baseline:100. 75.)

let test_runner_evaluate () =
  let platform = Noc_tgff.Category.platform in
  let params = { Noc_tgff.Params.default with n_tasks = 30 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  List.iter
    (fun algo ->
      let e = Runner.evaluate algo platform ctg in
      Alcotest.(check int)
        (Runner.algo_name algo ^ " no resource violations")
        0 e.Runner.resource_violations;
      Alcotest.(check bool) "positive energy" true
        (e.Runner.metrics.Noc_sched.Metrics.total_energy > 0.))
    Runner.all_algos

let test_fig5_shape_scaled () =
  (* A scaled category-I run must preserve the paper's headline: EAS
     beats EDF on every benchmark and EAS misses nothing. *)
  let result =
    Random_suite.run ~indices:[ 0; 1; 2 ] ~scale:0.12 Noc_tgff.Category.Category_i
  in
  Alcotest.(check int) "three rows" 3 (List.length result.Random_suite.rows);
  List.iter
    (fun (r : Random_suite.row) ->
      let energy (e : Runner.evaluation) = e.Runner.metrics.Noc_sched.Metrics.total_energy in
      Alcotest.(check bool) "EAS cheaper than EDF" true (energy r.eas < energy r.edf);
      Alcotest.(check int) "EAS meets deadlines" 0
        (Noc_sched.Metrics.miss_count r.eas.Runner.metrics))
    result.Random_suite.rows;
  Alcotest.(check bool) "positive average excess" true
    (result.Random_suite.average_edf_excess > 0.);
  Alcotest.(check bool) "render works" true
    (contains_substring (Random_suite.render result) "EDF consumes")

let test_msb_table_shape () =
  let result = Msb_tables.run Msb_tables.Encoder in
  Alcotest.(check int) "three clips" 3 (List.length result.Msb_tables.rows);
  List.iter
    (fun (r : Msb_tables.row) ->
      let energy (e : Runner.evaluation) = e.Runner.metrics.Noc_sched.Metrics.total_energy in
      Alcotest.(check bool) "positive savings" true (energy r.eas < energy r.edf);
      Alcotest.(check int) "EAS meets the frame rate" 0
        (Noc_sched.Metrics.miss_count r.eas.Runner.metrics))
    result.Msb_tables.rows;
  let rendered = Msb_tables.render result in
  Alcotest.(check bool) "renders savings row" true
    (contains_substring rendered "Energy Savings")

let test_tradeoff_shape () =
  (* Fig. 7's shape: EAS energy is (weakly) higher at ratio 1.8 than at
     1.0 and stays below EDF throughout. *)
  let points = Tradeoff.run ~ratios:[ 1.0; 1.4; 1.8 ] () in
  let energy (e : Runner.evaluation) = e.Runner.metrics.Noc_sched.Metrics.total_energy in
  (match points with
  | [ p10; _; p18 ] ->
    Alcotest.(check bool) "tighter costs energy" true (energy p18.Tradeoff.eas > energy p10.Tradeoff.eas);
    List.iter
      (fun (p : Tradeoff.point) ->
        Alcotest.(check bool) "EAS below EDF" true
          (energy p.Tradeoff.eas < energy p.Tradeoff.edf))
      points
  | _ -> Alcotest.fail "expected three points");
  Alcotest.(check bool) "render works" true
    (contains_substring (Tradeoff.render points) "performance ratio")

let test_energy_split_shape () =
  (* The paper's in-text claim: both energy components drop, and the
     average hop count drops. *)
  let r = Energy_split.run () in
  Alcotest.(check bool) "computation drops" true
    (r.Energy_split.eas.Noc_sched.Metrics.computation_energy
    < r.Energy_split.edf.Noc_sched.Metrics.computation_energy);
  Alcotest.(check bool) "communication drops" true
    (r.Energy_split.eas.Noc_sched.Metrics.communication_energy
    < r.Energy_split.edf.Noc_sched.Metrics.communication_energy);
  Alcotest.(check bool) "hops drop" true
    (r.Energy_split.eas.Noc_sched.Metrics.average_hops
    < r.Energy_split.edf.Noc_sched.Metrics.average_hops)

let test_ablation_shape () =
  let rows = Ablation.run ~seeds:[ 0; 2 ] () in
  List.iter
    (fun (r : Ablation.row) ->
      Alcotest.(check int) "aware replays without misses" 0 r.Ablation.aware_replay_misses;
      Alcotest.(check (float 1e-6)) "aware replays exactly" 0. r.Ablation.aware_max_deviation;
      Alcotest.(check bool) "fixed-delay blocks on links" true
        (r.Ablation.fixed_link_waiting > 0.))
    rows;
  Alcotest.(check bool) "some fixed replay misses deadlines" true
    (List.exists (fun (r : Ablation.row) -> r.Ablation.fixed_replay_misses > 0) rows);
  Alcotest.(check bool) "render works" true
    (contains_substring (Ablation.render rows) "Contention ablation")

let suite =
  [
    Alcotest.test_case "runner names" `Quick test_runner_names;
    Alcotest.test_case "runner savings" `Quick test_runner_savings;
    Alcotest.test_case "runner evaluate" `Quick test_runner_evaluate;
    Alcotest.test_case "fig5 shape (scaled)" `Slow test_fig5_shape_scaled;
    Alcotest.test_case "MSB table shape" `Slow test_msb_table_shape;
    Alcotest.test_case "tradeoff shape" `Slow test_tradeoff_shape;
    Alcotest.test_case "energy split shape" `Slow test_energy_split_shape;
    Alcotest.test_case "ablation shape" `Slow test_ablation_shape;
  ]
