(* Tests for Noc_util.Pool: the fan-out's determinism contract
   ([map_range ~n f] = [List.init n f] for every job count and chunk
   size) and its serial-equivalent exception semantics. *)

module Pool = Noc_util.Pool

(* A pure but index-sensitive payload: any dropped, duplicated or
   reordered index changes the result. *)
let payload i = (i, (i * 7919) lxor (i * i), float_of_int i /. 3.)

let qcheck_map_range_is_list_init =
  QCheck.Test.make ~name:"map_range = List.init for any jobs/chunk/n" ~count:200
    QCheck.(triple (int_range 0 40) (int_range 1 9) (int_range 1 8))
    (fun (n, jobs, chunk) ->
      Pool.map_range ~jobs ~chunk ~n payload = List.init n payload)

let qcheck_map_list_is_list_map =
  QCheck.Test.make ~name:"map_list = List.map for any jobs" ~count:100
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (items, jobs) ->
      Pool.map_list ~jobs payload items = List.map payload items)

let test_empty_range () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) "n = 0 gives []" []
        (Pool.map_range ~jobs ~n:0 Fun.id))
    [ 1; 2; 4 ]

let test_more_jobs_than_items () =
  (* 8 jobs over 3 items: at most 2 extra domains are spawned and the
     result is still positional. *)
  Alcotest.(check (list int)) "jobs > n" [ 0; 10; 20 ]
    (Pool.map_range ~jobs:8 ~n:3 (fun i -> 10 * i))

let test_chunk_larger_than_range () =
  Alcotest.(check (list int)) "chunk > n" [ 0; 1; 2; 3 ]
    (Pool.map_range ~jobs:4 ~chunk:64 ~n:4 Fun.id)

let test_invalid_arguments () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "jobs = 0 rejected" true
    (invalid (fun () -> Pool.map_range ~jobs:0 ~n:3 Fun.id));
  Alcotest.(check bool) "chunk = 0 rejected" true
    (invalid (fun () -> Pool.map_range ~chunk:0 ~jobs:2 ~n:3 Fun.id));
  Alcotest.(check bool) "negative n rejected" true
    (invalid (fun () -> Pool.map_range ~jobs:2 ~n:(-1) Fun.id))

exception Boom of int

let test_first_failure_wins () =
  (* Indices 3 and 7 both raise; whatever the interleaving, the caller
     must observe the exception a serial run would have surfaced —
     index 3's. Every index is still evaluated (witness array). *)
  List.iter
    (fun jobs ->
      let seen = Array.make 10 false in
      let raised =
        try
          ignore
            (Pool.map_range ~jobs ~n:10 (fun i ->
                 seen.(i) <- true;
                 if i = 3 || i = 7 then raise (Boom i);
                 i));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "smallest failing index at jobs=%d" jobs)
        (Some 3) raised;
      Alcotest.(check bool)
        (Printf.sprintf "no early abort at jobs=%d" jobs)
        true
        (Array.for_all Fun.id seen))
    [ 1; 2; 4 ]

let test_default_jobs_env () =
  (* NOCSCHED_JOBS overrides the machine's domain count; garbage is
     rejected loudly rather than silently serialised. *)
  let set v = Unix.putenv "NOCSCHED_JOBS" v in
  let finally =
    (* [putenv] cannot unset, so restore the original value when there
       was one (e.g. the CI job pinning NOCSCHED_JOBS=2) and fall back
       to the machine default otherwise. *)
    match Sys.getenv_opt "NOCSCHED_JOBS" with
    | Some original -> fun () -> set original
    | None -> fun () -> set (string_of_int (Domain.recommended_domain_count ()))
  in
  Fun.protect ~finally (fun () ->
      set "3";
      Alcotest.(check int) "env override" 3 (Pool.default_jobs ());
      set " 5 ";
      Alcotest.(check int) "whitespace tolerated" 5 (Pool.default_jobs ());
      List.iter
        (fun bad ->
          set bad;
          Alcotest.(check bool)
            (Printf.sprintf "NOCSCHED_JOBS=%S rejected" bad)
            true
            (try ignore (Pool.default_jobs ()); false
             with Invalid_argument _ -> true))
        [ "0"; "-2"; "many" ])

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_map_range_is_list_init;
    QCheck_alcotest.to_alcotest qcheck_map_list_is_list_map;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "chunk larger than range" `Quick test_chunk_larger_than_range;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
    Alcotest.test_case "first failure wins" `Quick test_first_failure_wins;
    Alcotest.test_case "NOCSCHED_JOBS" `Quick test_default_jobs_env;
  ]
