(* Edge cases across the stack: degenerate platforms, extreme graphs,
   renderer corner cases. *)

module Platform = Noc_noc.Platform
module Schedule = Noc_sched.Schedule
module Builder = Noc_ctg.Builder

let test_single_tile_platform () =
  (* A 1x1 "NoC": no links at all; everything must still work. *)
  let platform =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:1 ~rows:1)
      ~pes:[| Noc_noc.Pe.of_kind ~index:0 Noc_noc.Pe.Dsp |]
      ()
  in
  Alcotest.(check int) "no links" 0 (List.length (Platform.all_links platform));
  let b = Builder.create ~n_pes:1 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:5. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:5. ~deadline:100. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1_000.;
  let ctg = Builder.build_exn b in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check bool) "feasible" true (Noc_sched.Validate.is_feasible platform ctg s);
  let m = Noc_sched.Metrics.compute platform ctg s in
  Alcotest.(check (float 1e-9)) "no communication energy" 0.
    m.Noc_sched.Metrics.communication_energy;
  (* Serial execution forced. *)
  Alcotest.(check (float 1e-9)) "serial makespan" 20. m.Noc_sched.Metrics.makespan

let test_long_chain () =
  (* A 60-task chain: maximal dependency depth, no parallelism. *)
  let platform = Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let first = Builder.add_uniform_task b ~time:5. ~energy:1. () in
  let last =
    List.fold_left
      (fun prev _ ->
        let next = Builder.add_uniform_task b ~time:5. ~energy:1. () in
        Builder.connect b ~src:prev ~dst:next ~volume:100.;
        next)
      first
      (List.init 59 Fun.id)
  in
  ignore last;
  let ctg = Builder.build_exn b in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check bool) "chain feasible" true
    (Noc_sched.Validate.is_feasible platform ctg s);
  (* With zero heterogeneity and non-zero comm cost, the chain should
     stay on one tile: makespan = 300 exactly. *)
  Alcotest.(check (float 1e-6)) "clustered chain" 300. (Schedule.makespan s)

let test_wide_fan () =
  (* One source fanning out to 40 independent consumers. *)
  let platform = Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let src = Builder.add_uniform_task b ~time:5. ~energy:1. () in
  for _ = 1 to 40 do
    let c = Builder.add_uniform_task b ~time:20. ~energy:1. () in
    Builder.connect b ~src ~dst:c ~volume:10.
  done;
  let ctg = Builder.build_exn b in
  let s = (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule in
  Alcotest.(check bool) "fan feasible" true
    (Noc_sched.Validate.is_feasible platform ctg s);
  (* EDF spreads: the makespan must beat serial execution by far. *)
  Alcotest.(check bool) "parallelised" true (Schedule.makespan s < 5. +. (40. *. 20.))

let test_gantt_on_honeycomb () =
  let platform =
    Platform.heterogeneous ~seed:1 (Noc_noc.Topology.honeycomb ~cols:3 ~rows:3) ()
  in
  let params = { Noc_tgff.Params.default with n_tasks = 15 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check bool) "ascii gantt renders" true
    (String.length (Noc_sched.Gantt.render platform ctg s) > 0);
  Alcotest.(check bool) "svg gantt renders" true
    (String.length (Noc_sched.Svg_gantt.render platform ctg s) > 0)

let test_dvs_unit_stretch_is_noop () =
  let platform = Noc_tgff.Category.platform in
  let params = { Noc_tgff.Params.default with n_tasks = 30 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let report = Noc_eas.Dvs.plan ~max_stretch:1. ctg s in
  Alcotest.(check (float 1e-9)) "no saving at stretch cap 1" 0.
    (Noc_eas.Dvs.saving report)

let test_control_only_graph () =
  (* Every arc is control-only (volume 0): zero comm energy, but the
     ordering constraints still hold. *)
  let platform = Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let a = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let c = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let d = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  Builder.connect b ~src:a ~dst:c ~volume:0.;
  Builder.connect b ~src:c ~dst:d ~volume:0.;
  let ctg = Builder.build_exn b in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check bool) "feasible" true (Noc_sched.Validate.is_feasible platform ctg s);
  Alcotest.(check bool) "ordering respected" true
    ((Schedule.placement s c).Schedule.start
     >= (Schedule.placement s a).Schedule.finish -. 1e-9
    && (Schedule.placement s d).Schedule.start
       >= (Schedule.placement s c).Schedule.finish -. 1e-9);
  let m = Noc_sched.Metrics.compute platform ctg s in
  Alcotest.(check (float 0.)) "zero comm energy" 0.
    m.Noc_sched.Metrics.communication_energy

let test_saturated_deadlines_all_schedulers_terminate () =
  (* Impossible deadlines: every scheduler must still terminate and
     return a complete (infeasible) schedule rather than loop. *)
  let platform = Noc_tgff.Category.platform in
  let params =
    { Noc_tgff.Params.default with n_tasks = 40; deadline_tightness = 0.1 }
  in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let check name s =
    Alcotest.(check int) (name ^ " complete") 40 (Schedule.n_tasks s)
  in
  check "eas" (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule;
  check "edf" (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule;
  check "dls" (Noc_baselines.Dls.schedule platform ctg).Noc_baselines.Dls.schedule

let suite =
  [
    Alcotest.test_case "single-tile platform" `Quick test_single_tile_platform;
    Alcotest.test_case "long chain" `Quick test_long_chain;
    Alcotest.test_case "wide fan" `Quick test_wide_fan;
    Alcotest.test_case "gantt on honeycomb" `Quick test_gantt_on_honeycomb;
    Alcotest.test_case "dvs unit stretch" `Quick test_dvs_unit_stretch_is_noop;
    Alcotest.test_case "control-only graph" `Quick test_control_only_graph;
    Alcotest.test_case "impossible deadlines terminate" `Slow
      test_saturated_deadlines_all_schedulers_terminate;
  ]
