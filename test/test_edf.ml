(* Tests for the EDF baseline. *)

module Edf = Noc_edf.Edf
module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate
module Builder = Noc_ctg.Builder

let platform = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2

let test_effective_deadline_propagation () =
  (* Chain 0 -> 1 -> 2 with d(2) = 100, all min exec times 10:
     ed(2) = 100, ed(1) = 90, ed(0) = 80. *)
  let b = Builder.create ~n_pes:4 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t2 = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:100. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  Builder.connect b ~src:t1 ~dst:t2 ~volume:1.;
  let ctg = Builder.build_exn b in
  let ed = Edf.effective_deadlines ctg in
  Alcotest.(check (float 1e-9)) "sink" 100. ed.(2);
  Alcotest.(check (float 1e-9)) "middle" 90. ed.(1);
  Alcotest.(check (float 1e-9)) "source" 80. ed.(0)

let test_effective_deadline_own_vs_successor () =
  (* A task's own earlier deadline wins over a looser successor chain. *)
  let b = Builder.create ~n_pes:4 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:30. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:1_000. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  let ed = Edf.effective_deadlines (Builder.build_exn b) in
  Alcotest.(check (float 1e-9)) "own deadline binds" 30. ed.(0)

let test_unconstrained_infinite () =
  let b = Builder.create ~n_pes:4 in
  ignore (Builder.add_uniform_task b ~time:10. ~energy:1. ());
  let ed = Edf.effective_deadlines (Builder.build_exn b) in
  Alcotest.(check bool) "infinite" true (ed.(0) = infinity)

let test_urgent_task_scheduled_first () =
  (* Two independent tasks on one effective PE order: the one with the
     tighter deadline must start first when both are ready. *)
  let single_pe =
    Noc_noc.Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:1 ~rows:1)
      ~pes:[| Noc_noc.Pe.of_kind ~index:0 Noc_noc.Pe.Dsp |]
      ()
  in
  let b = Builder.create ~n_pes:1 in
  let relaxed = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:100. () in
  let urgent = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:25. () in
  let ctg = Builder.build_exn b in
  let s = (Edf.schedule single_pe ctg).Edf.schedule in
  Alcotest.(check bool) "urgent first" true
    ((Schedule.placement s urgent).Schedule.start
    < (Schedule.placement s relaxed).Schedule.start)

let test_picks_fastest_pe () =
  (* Heterogeneous pair: EDF takes the fast PE regardless of energy. *)
  let platform2 =
    Noc_noc.Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
      ~pes:
        [|
          Noc_noc.Pe.make ~index:0 ~kind:Noc_noc.Pe.Risc_lowpower ~time_factor:2.
            ~power_factor:0.2;
          Noc_noc.Pe.make ~index:1 ~kind:Noc_noc.Pe.Risc_fast ~time_factor:0.5
            ~power_factor:5.;
        |]
      ()
  in
  let b = Builder.create ~n_pes:2 in
  ignore (Builder.add_task b ~exec_times:[| 100.; 25. |] ~energies:[| 10.; 99. |] ());
  let ctg = Builder.build_exn b in
  let s = (Edf.schedule platform2 ctg).Edf.schedule in
  Alcotest.(check int) "fast PE regardless of energy" 1
    (Schedule.placement s 0).Schedule.pe

let test_deterministic () =
  let params = { Noc_tgff.Params.default with n_tasks = 50 } in
  let cat = Noc_tgff.Category.platform in
  let ctg = Noc_tgff.Generate.generate ~params ~platform:cat ~seed:4 in
  let s1 = (Edf.schedule cat ctg).Edf.schedule in
  let s2 = (Edf.schedule cat ctg).Edf.schedule in
  Alcotest.(check bool) "same schedule" true
    (Schedule.placements s1 = Schedule.placements s2)

let qcheck_edf_feasible =
  QCheck.Test.make ~name:"EDF schedules are always resource-feasible" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let params = { Noc_tgff.Params.default with n_tasks = 40 } in
      let cat = Noc_tgff.Category.platform in
      let ctg = Noc_tgff.Generate.generate ~params ~platform:cat ~seed in
      let s = (Edf.schedule cat ctg).Edf.schedule in
      Validate.check cat ctg s
      |> List.for_all (function Validate.Deadline_miss _ -> true | _ -> false))

let test_stats () =
  let params = { Noc_tgff.Params.default with n_tasks = 30 } in
  let cat = Noc_tgff.Category.platform in
  let ctg = Noc_tgff.Generate.generate ~params ~platform:cat ~seed:9 in
  let outcome = Edf.schedule cat ctg in
  let misses =
    (Noc_sched.Metrics.compute cat ctg outcome.Edf.schedule).Noc_sched.Metrics.deadline_misses
  in
  Alcotest.(check int) "stats match metrics" (List.length misses)
    outcome.Edf.stats.Edf.misses;
  Alcotest.(check string) "name" "EDF" Edf.name

let suite =
  [
    Alcotest.test_case "effective deadline propagation" `Quick
      test_effective_deadline_propagation;
    Alcotest.test_case "own vs successor deadline" `Quick
      test_effective_deadline_own_vs_successor;
    Alcotest.test_case "unconstrained infinite" `Quick test_unconstrained_infinite;
    Alcotest.test_case "urgent task first" `Quick test_urgent_task_scheduled_first;
    Alcotest.test_case "picks fastest PE" `Quick test_picks_fastest_pe;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    QCheck_alcotest.to_alcotest qcheck_edf_feasible;
    Alcotest.test_case "stats" `Quick test_stats;
  ]
