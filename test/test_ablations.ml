(* Tests for the ablation knobs (budget weighting, repair move sets) and
   the extension experiments built on them. *)

module Budget = Noc_eas.Budget
module Repair = Noc_eas.Repair
module Eas = Noc_eas.Eas
module Metrics = Noc_sched.Metrics

let platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 60) ?(tightness = 1.8) seed =
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let test_uniform_weights () =
  let ctg = random_ctg 0 in
  let budget = Budget.compute ~weighting:Budget.Uniform ctg in
  Array.iter
    (fun w -> Alcotest.(check (float 0.)) "all ones" 1. w)
    budget.Budget.weights

let test_mean_time_weights () =
  let ctg = random_ctg 0 in
  let budget = Budget.compute ~weighting:Budget.Mean_time ctg in
  Alcotest.(check (array (float 1e-9))) "weights are mean times"
    budget.Budget.mean_times budget.Budget.weights

let test_default_weighting_is_variance_product () =
  let ctg = random_ctg 0 in
  let a = Budget.compute ctg and b = Budget.compute ~weighting:Budget.Variance_product ctg in
  Alcotest.(check (array (float 0.))) "same budgets" a.Budget.budgeted_deadlines
    b.Budget.budgeted_deadlines

let test_weighting_changes_budgets () =
  let ctg = random_ctg 0 in
  let a = Budget.compute ~weighting:Budget.Variance_product ctg in
  let b = Budget.compute ~weighting:Budget.Uniform ctg in
  Alcotest.(check bool) "different budgets" true
    (a.Budget.budgeted_deadlines <> b.Budget.budgeted_deadlines)

let test_weighting_schedules_all_feasible () =
  let ctg = random_ctg 1 in
  List.iter
    (fun weighting ->
      let s = (Eas.schedule ~weighting platform ctg).Eas.schedule in
      let hard =
        Noc_sched.Validate.check platform ctg s
        |> List.filter (function
             | Noc_sched.Validate.Deadline_miss _ -> false
             | _ -> true)
      in
      Alcotest.(check int) "feasible under every weighting" 0 (List.length hard))
    [ Budget.Variance_product; Budget.Mean_time; Budget.Uniform ]

(* Repair move sets. Find a missing benchmark, repair under each mode. *)
let missing_case () =
  let rec search seed =
    if seed > 40 then Alcotest.fail "no missing seed found"
    else begin
      let ctg = random_ctg ~n_tasks:60 ~tightness:1.3 seed in
      let base = (Eas.schedule ~repair:false platform ctg).Eas.schedule in
      let misses = Metrics.miss_count (Metrics.compute platform ctg base) in
      if misses > 0 then (ctg, base, misses) else search (seed + 1)
    end
  in
  search 0

let test_lts_only_preserves_energy () =
  let ctg, base, _ = missing_case () in
  let repaired, stats = Repair.run ~moves:Repair.Lts_only platform ctg base in
  let e s = (Metrics.compute platform ctg s).Metrics.total_energy in
  (* The paper: LTS only reorders tasks on one PE, so Eq. 3 energy is
     untouched no matter how many swaps were accepted. *)
  Alcotest.(check (float 1e-6)) "energy unchanged" (e base) (e repaired);
  Alcotest.(check int) "no migrations in LTS mode" 0 stats.Repair.accepted_migrations

let test_gtm_only_never_swaps () =
  let ctg, base, _ = missing_case () in
  let _, stats = Repair.run ~moves:Repair.Gtm_only platform ctg base in
  Alcotest.(check int) "no swaps in GTM mode" 0 stats.Repair.accepted_swaps

let test_both_at_least_as_good () =
  let ctg, base, _ = missing_case () in
  let misses moves =
    let repaired, _ = Repair.run ~moves platform ctg base in
    Metrics.miss_count (Metrics.compute platform ctg repaired)
  in
  let both = misses Repair.Both in
  Alcotest.(check bool) "combined repair at least as effective" true
    (both <= misses Repair.Lts_only && both <= misses Repair.Gtm_only)

(* Extension experiments. *)

let test_topology_compare_shape () =
  let result = Noc_experiments.Topology_compare.run ~n_tasks:50 () in
  Alcotest.(check int) "three fabrics" 3
    (List.length result.Noc_experiments.Topology_compare.rows);
  (* Computation energy is fabric-independent up to PE jitter: the same
     PE array means identical cost tables, so totals differ only through
     assignment choices; communication energy must differ. *)
  let comm (r : Noc_experiments.Topology_compare.row) =
    r.Noc_experiments.Topology_compare.eas.Noc_experiments.Runner.metrics
      .Noc_sched.Metrics.communication_energy
  in
  (match result.Noc_experiments.Topology_compare.rows with
  | [ mesh; torus; honeycomb ] ->
    Alcotest.(check bool) "torus comm <= honeycomb comm" true
      (comm torus <= comm honeycomb);
    Alcotest.(check bool) "mesh comm <= honeycomb comm" true
      (comm mesh <= comm honeycomb)
  | _ -> Alcotest.fail "expected three rows");
  Alcotest.(check bool) "render works" true
    (String.length
       (Noc_experiments.Topology_compare.render result)
    > 0)

let test_weight_ablation_shape () =
  let rows = Noc_experiments.Weight_ablation.run ~seeds:[ 0; 1 ] ~n_tasks:60 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Noc_experiments.Weight_ablation.row) ->
      Alcotest.(check int) "three schemes" 3
        (List.length r.Noc_experiments.Weight_ablation.per_scheme))
    rows;
  Alcotest.(check bool) "render works" true
    (String.length (Noc_experiments.Weight_ablation.render rows) > 0)

let test_repair_ablation_shape () =
  let rows = Noc_experiments.Repair_ablation.run ~indices:[ 0; 1 ] ~scale:0.25 () in
  List.iter
    (fun (r : Noc_experiments.Repair_ablation.row) ->
      Alcotest.(check bool) "only missing benchmarks included" true
        (r.Noc_experiments.Repair_ablation.base_misses > 0);
      List.iter
        (fun (a : Noc_experiments.Repair_ablation.attempt) ->
          match a.Noc_experiments.Repair_ablation.moves with
          | Noc_eas.Repair.Lts_only ->
            Alcotest.(check (float 1e-9)) "LTS is free" 0.
              a.Noc_experiments.Repair_ablation.energy_increase
          | Noc_eas.Repair.Gtm_only | Noc_eas.Repair.Both -> ())
        r.Noc_experiments.Repair_ablation.attempts)
    rows;
  Alcotest.(check bool) "render works" true
    (String.length (Noc_experiments.Repair_ablation.render rows) > 0)

let suite =
  [
    Alcotest.test_case "uniform weights" `Quick test_uniform_weights;
    Alcotest.test_case "mean-time weights" `Quick test_mean_time_weights;
    Alcotest.test_case "default weighting" `Quick test_default_weighting_is_variance_product;
    Alcotest.test_case "weighting changes budgets" `Quick test_weighting_changes_budgets;
    Alcotest.test_case "all weightings feasible" `Slow test_weighting_schedules_all_feasible;
    Alcotest.test_case "LTS-only preserves energy" `Slow test_lts_only_preserves_energy;
    Alcotest.test_case "GTM-only never swaps" `Slow test_gtm_only_never_swaps;
    Alcotest.test_case "combined repair strongest" `Slow test_both_at_least_as_good;
    Alcotest.test_case "topology comparison shape" `Slow test_topology_compare_shape;
    Alcotest.test_case "weight ablation shape" `Slow test_weight_ablation_shape;
    Alcotest.test_case "repair ablation shape" `Slow test_repair_ablation_shape;
  ]
