(* Static-analysis layer tests: channel-dependency graphs and the
   deadlock analyzer, one minimal failing fixture per lint rule, and the
   independent schedule certifier exercised as a differential oracle
   against Noc_sched.Validate over the golden corpus. *)

module Cdg = Noc_analysis.Cdg
module Deadlock = Noc_analysis.Deadlock
module Qos = Noc_analysis.Qos
module Turn_model = Noc_noc.Turn_model
module Ctg_lint = Noc_analysis.Ctg_lint
module Platform_lint = Noc_analysis.Platform_lint
module Certify = Noc_analysis.Certify
module Diagnostic = Noc_analysis.Diagnostic
module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge
module Schedule = Noc_sched.Schedule

let rules ds = List.map (fun (d : Diagnostic.t) -> d.rule) ds

let count_rule rule ds =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.rule = rule) ds)

let check_rules = Alcotest.(check (list string))

let faults_exn specs =
  match Noc_fault.Fault_set.of_strings specs with
  | Ok f -> f
  | Error msg -> Alcotest.failf "fault specs rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Channel-dependency graphs                                           *)

let test_cdg_counts () =
  let cdg = Cdg.of_routes [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check int) "channels" 3 (Cdg.n_channels cdg);
  Alcotest.(check int) "dependencies" 2 (Cdg.n_dependencies cdg);
  Alcotest.(check bool) "acyclic" true (Cdg.is_acyclic cdg);
  (* Routes shorter than one channel contribute nothing. *)
  let empty = Cdg.of_routes [ []; [ 7 ] ] in
  Alcotest.(check int) "no channels" 0 (Cdg.n_channels empty);
  Alcotest.(check bool) "trivially acyclic" true (Cdg.is_acyclic empty)

(* Each consecutive pair of cycle channels must share the middle router
   (dependency a -> b means some route uses b immediately after a), and
   the last channel must chain back to the first. *)
let assert_closed_chain cycle =
  let open Noc_noc.Routing in
  let rec pairs = function
    | (a : link) :: (b :: _ as rest) ->
      Alcotest.(check int) "chained channels" a.to_node b.from_node;
      pairs rest
    | [ _ ] | [] -> ()
  in
  pairs cycle;
  match (cycle, List.rev cycle) with
  | first :: _, last :: _ ->
    Alcotest.(check int) "cycle closes" last.to_node first.from_node
  | [], _ | _, [] -> Alcotest.fail "empty cycle"

let test_cdg_hand_built_cycle () =
  (* Three routes chasing each other around a triangle. *)
  let routes = [ [ 0; 1; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ] ] in
  let cdg = Cdg.of_routes routes in
  Alcotest.(check bool) "cyclic" false (Cdg.is_acyclic cdg);
  match (Cdg.find_cycle cdg, Cdg.find_cycle (Cdg.of_routes routes)) with
  | Some c1, Some c2 ->
    Alcotest.(check bool) "deterministic cycle" true (c1 = c2);
    Alcotest.(check int) "three channels" 3 (List.length c1);
    assert_closed_chain c1
  | None, _ | _, None -> Alcotest.fail "cycle not found"

let test_mesh_xy_deadlock_free () =
  (* The acceptance sweep: XY on every mesh from 2x2 to 8x8 is provably
     deadlock-free. *)
  for cols = 2 to 8 do
    for rows = 2 to 8 do
      let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~cols ~rows () in
      check_rules (Printf.sprintf "mesh %dx%d" cols rows) []
        (rules (Deadlock.check_platform platform))
    done
  done

let qcheck_mesh_xy_acyclic =
  QCheck.Test.make ~name:"XY CDG on random meshes is acyclic" ~count:60
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (cols, rows) ->
      Cdg.is_acyclic
        (Deadlock.cdg_of_platform
           (Noc_noc.Platform.heterogeneous_mesh ~seed:7 ~cols ~rows ())))

let qcheck_torus_xy_cycle_law =
  (* Shorter-wrap XY on a torus is deadlock-free exactly when every ring
     is short enough (<= 3 tiles) that no route wraps: any ring of 4 or
     more creates a circular wait along that dimension. *)
  QCheck.Test.make ~name:"torus CDG cyclic iff some ring has >= 4 tiles" ~count:40
    QCheck.(pair (int_range 2 6) (int_range 2 6))
    (fun (cols, rows) ->
      let platform =
        Noc_noc.Platform.heterogeneous ~seed:7 (Noc_noc.Topology.torus ~cols ~rows) ()
      in
      let acyclic = Cdg.is_acyclic (Deadlock.cdg_of_platform platform) in
      acyclic = (max cols rows <= 3))

let test_degraded_cycle_under_faults () =
  (* Two link faults on the 4x4 mesh bend the BFS detours into a
     circular wait the healthy XY routes could never form. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let faults = faults_exn [ "link:5-6"; "link:9-5" ] in
  let diagnostics = Deadlock.check_degraded platform faults in
  check_rules "one cycle, no disconnection" [ "deadlock/cyclic-cdg" ]
    (rules diagnostics);
  match diagnostics with
  | [ { Diagnostic.location = Diagnostic.Channel_cycle cycle; severity; _ } ] ->
    Alcotest.(check bool) "error severity" true (severity = Diagnostic.Error);
    assert_closed_chain cycle
  | _ -> Alcotest.fail "expected a channel-cycle location"

let test_degraded_single_fault_stays_clean () =
  (* One failed link reroutes without creating a cycle on the 4x4 mesh —
     the Monte-Carlo campaign's 0-cyclic result in miniature. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  check_rules "single link fault" []
    (rules (Deadlock.check_degraded platform (faults_exn [ "link:5-6" ])))

let test_degraded_unreachable_pairs () =
  (* Failing both links into tile 3 of a 2x2 mesh cuts it off from every
     source while its own outgoing routes survive. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~cols:2 ~rows:2 () in
  let faults = faults_exn [ "link:1-3"; "link:2-3" ] in
  let diagnostics = Deadlock.check_degraded platform faults in
  Alcotest.(check int) "three unreachable pairs" 3
    (count_rule "deadlock/unreachable-pair" diagnostics);
  Alcotest.(check int) "nothing else" 3 (List.length diagnostics)

(* ------------------------------------------------------------------ *)
(* Turn-model route relations: the adaptive deadlock proofs and the
   two-fault regression the turn-legal detours solve.                  *)

let test_adaptive_relations_certified () =
  (* The acceptance sweep for the relation-level proof: west-first and
     odd-even on every mesh from 2x2 to 8x8 certify with zero
     diagnostics — every admissible route minimal, every composed turn
     legal by the model's own predicate, relation CDG acyclic. *)
  List.iter
    (fun routing ->
      for cols = 2 to 8 do
        for rows = 2 to 8 do
          let platform =
            Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~routing ~cols ~rows ()
          in
          check_rules
            (Printf.sprintf "%s mesh %dx%d" (Turn_model.name routing) cols rows)
            []
            (rules (Deadlock.check_platform platform))
        done
      done)
    [ Turn_model.West_first; Turn_model.Odd_even ]

let test_adaptive_unsupported_on_torus () =
  (* Torus wraparounds re-introduce the ring cycles the turn
     prohibitions break, so the adaptive models refuse the topology
     outright rather than emit an unsound proof. *)
  let platform =
    Noc_noc.Platform.heterogeneous ~seed:1 (Noc_noc.Topology.torus ~cols:4 ~rows:4) ()
  in
  List.iter
    (fun routing ->
      check_rules (Turn_model.name routing) [ "routing/unsupported-topology" ]
        (rules (Deadlock.check_routing ~routing platform)))
    [ Turn_model.West_first; Turn_model.Odd_even ]

let qcheck_relation_cdg_acyclic =
  QCheck.Test.make ~name:"relation CDG acyclic for all three turn models" ~count:30
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (cols, rows) ->
      let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:7 ~cols ~rows () in
      List.for_all
        (fun routing -> Cdg.is_acyclic (Deadlock.cdg_of_routing routing platform))
        Turn_model.all)

let manhattan ~cols src dst =
  abs ((src mod cols) - (dst mod cols)) + abs ((src / cols) - (dst / cols))

let qcheck_admissible_walks_minimal_and_legal =
  (* The route-relation laws, sampled over random hop choices: any walk
     that follows [next_hops] reaches the destination in exactly the
     Manhattan distance (minimality and totality — no stalls), and
     every turn it composes passes the model's own legality predicate.
     This covers west-first minimality up to 8x8 as a special case. *)
  QCheck.Test.make ~name:"every admissible walk is minimal and turn-legal"
    ~count:300
    QCheck.(
      triple (pair (int_range 2 8) (int_range 2 8)) (int_bound 10_000)
        (int_bound 10_000))
    (fun ((cols, rows), pair_pick, walk_pick) ->
      let topo = Noc_noc.Topology.mesh ~cols ~rows in
      let n = cols * rows in
      let src = pair_pick mod n in
      let dst = (src + 1 + (pair_pick / n mod (n - 1))) mod n in
      List.for_all
        (fun routing ->
          let dist = manhattan ~cols src dst in
          let rec walk prev node steps =
            if node = dst then steps = dist
            else if steps >= dist then false
            else
              match Turn_model.next_hops routing topo ~src ~node ~dst with
              | [] -> false
              | hops ->
                let next =
                  List.nth hops ((walk_pick + steps) mod List.length hops)
                in
                (match prev with
                | None -> true
                | Some p -> Turn_model.turn_legal routing topo ~prev:p ~via:node ~next)
                && walk (Some node) next (steps + 1)
          in
          walk None src 0)
        Turn_model.all)

let pr3_fault_specs = [ "link:5-6"; "link:9-5" ]

let test_two_fault_case_solved_by_west_first () =
  (* The regression pinned by test_degraded_cycle_under_faults: the
     exact fault pair that bends XY's unrestricted BFS detours into a
     circular wait. Under west-first the degraded view finds a
     turn-legal (possibly non-minimal) detour for every pair, so the
     degraded route set is certifiably acyclic — the two-fault case is
     solved, not merely detected. *)
  let platform =
    Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing:Turn_model.West_first
      ~cols:4 ~rows:4 ()
  in
  let faults = faults_exn pr3_fault_specs in
  check_rules "west-first survives the two-fault case" []
    (rules (Deadlock.check_degraded platform faults));
  (* The constructive reason: every degraded route stays inside the
     turn-legal walk set, so Glass & Ni applies route by route. *)
  let view = Noc_fault.Fault_set.degraded faults platform in
  let routes, unreachable = Deadlock.degraded_routes view in
  Alcotest.(check (list (pair int int))) "no disconnection" [] unreachable;
  let topo = Noc_noc.Platform.topology platform in
  List.iter
    (fun route ->
      let rec turns = function
        | prev :: (via :: next :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "turn %d->%d->%d legal" prev via next)
            true
            (Turn_model.turn_legal Turn_model.West_first topo ~prev ~via ~next);
          turns rest
        | _ -> ()
      in
      turns route)
    routes

let test_two_fault_case_odd_even_falls_back () =
  (* Odd-even provably cannot route 5 -> 6 once links 5-6 and 9-5 are
     gone: every surviving approach to tile 6 needs an EN/ES turn at an
     even column or an NW/SW turn at an odd one. The view falls back to
     an unrestricted BFS detour for that pair and the analyzer still
     reports the cycle — the honest negative the docs record. *)
  let platform =
    Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing:Turn_model.Odd_even
      ~cols:4 ~rows:4 ()
  in
  let diagnostics = Deadlock.check_degraded platform (faults_exn pr3_fault_specs) in
  Alcotest.(check bool) "cycle still reported" true
    (List.mem "deadlock/cyclic-cdg" (rules diagnostics))

(* ------------------------------------------------------------------ *)
(* CTG lint: one minimal failing fixture per rule.                     *)

let task ?release ?deadline ~id exec_times =
  Task.make ~id ~exec_times ~energies:(Array.map (fun _ -> 1.) exec_times) ?release
    ?deadline ()

let test_lint_empty_graph () =
  check_rules "empty graph" [ "ctg/empty-graph" ]
    (rules (Ctg_lint.check_raw ~n_pes:4 ~tasks:[||] ~edges:[||]))

let test_lint_pe_count_mismatch () =
  let tasks = [| task ~id:0 [| 1.; 1. |] |] in
  check_rules "pe count" [ "ctg/pe-count-mismatch" ]
    (rules (Ctg_lint.check_raw ~n_pes:4 ~tasks ~edges:[||]))

let test_lint_dangling_edge () =
  let tasks = [| task ~id:0 [| 1. |]; task ~id:1 [| 1. |] |] in
  let edges = [| Edge.make ~id:0 ~src:0 ~dst:5 ~volume:8. |] in
  check_rules "dangling" [ "ctg/dangling-edge" ]
    (rules (Ctg_lint.check_raw ~n_pes:1 ~tasks ~edges))

let test_lint_duplicate_edge () =
  let tasks = [| task ~id:0 [| 1. |]; task ~id:1 [| 1. |] |] in
  let edges =
    [| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:8.;
       Edge.make ~id:1 ~src:0 ~dst:1 ~volume:16. |]
  in
  let diagnostics = Ctg_lint.check_raw ~n_pes:1 ~tasks ~edges in
  check_rules "duplicate" [ "ctg/duplicate-edge" ] (rules diagnostics);
  match diagnostics with
  | [ { Diagnostic.location = Diagnostic.Edge 1; _ } ] -> ()
  | _ -> Alcotest.fail "the second arc is the duplicate"

let test_lint_cycle () =
  let tasks = [| task ~id:0 [| 1. |]; task ~id:1 [| 1. |] |] in
  let edges =
    [| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:0.;
       Edge.make ~id:1 ~src:1 ~dst:0 ~volume:0. |]
  in
  check_rules "cycle" [ "ctg/cycle" ]
    (rules (Ctg_lint.check_raw ~n_pes:1 ~tasks ~edges))

let test_lint_unreachable_task () =
  let tasks =
    [| task ~id:0 [| 1. |]; task ~id:1 [| 1. |]; task ~id:2 [| 1. |] |]
  in
  let edges = [| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:8. |] in
  let diagnostics = Ctg_lint.check_raw ~n_pes:1 ~tasks ~edges in
  check_rules "isolated task" [ "ctg/unreachable-task" ] (rules diagnostics);
  match diagnostics with
  | [ { Diagnostic.location = Diagnostic.Task 2; severity; _ } ] ->
    Alcotest.(check bool) "warning, not error" true (severity = Diagnostic.Warning)
  | _ -> Alcotest.fail "task 2 is the isolated one"

let test_lint_no_feasible_variant () =
  (* Fastest variant takes 10 against a 5-wide window: every placement
     misses, whatever the rest of the schedule does. *)
  let tasks = [| task ~id:0 [| 10.; 12. |] ~deadline:5. |] in
  check_rules "window too small" [ "ctg/no-feasible-variant" ]
    (rules (Ctg_lint.check_raw ~n_pes:2 ~tasks ~edges:[||]))

let test_lint_deadline_infeasible () =
  (* Each task fits its own window, but the chain's critical-path lower
     bound (10 + 10 = 20) proves the 15-deadline unreachable. *)
  let tasks = [| task ~id:0 [| 10. |]; task ~id:1 [| 10. |] ~deadline:15. |] in
  let edges = [| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:8. |] in
  check_rules "chain bound exceeds deadline" [ "ctg/deadline-infeasible" ]
    (rules (Ctg_lint.check_raw ~n_pes:1 ~tasks ~edges))

let test_lint_generated_graphs_error_free () =
  (* TGFF graphs must never trip an error-severity rule. Warnings are
     genuine findings the generator can legitimately produce — seed 4
     of the corpus params emits an isolated task, which the
     unreachable-task lint correctly surfaces. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:3 ~cols:3 ~rows:3 () in
  let params = { Noc_tgff.Params.default with n_tasks = 24; max_layer_width = 5 } in
  for seed = 0 to 4 do
    let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
    let diagnostics = Ctg_lint.check ctg in
    let errors, _, _ = Diagnostic.count diagnostics in
    Alcotest.(check int) (Printf.sprintf "tgff seed %d errors" seed) 0 errors;
    List.iter
      (fun (d : Diagnostic.t) ->
        Alcotest.(check string)
          (Printf.sprintf "tgff seed %d warning rule" seed)
          "ctg/unreachable-task" d.rule)
      diagnostics
  done

(* ------------------------------------------------------------------ *)
(* Platform lint                                                       *)

let test_platform_lint_clean_fabrics () =
  List.iter
    (fun (name, topology) ->
      let platform = Noc_noc.Platform.heterogeneous ~seed:5 topology () in
      check_rules name [] (rules (Platform_lint.check platform)))
    [
      ("mesh", Noc_noc.Topology.mesh ~cols:4 ~rows:4);
      ("torus", Noc_noc.Topology.torus ~cols:4 ~rows:4);
      ("honeycomb", Noc_noc.Topology.honeycomb ~cols:4 ~rows:4);
    ]

let test_platform_lint_bisection_bandwidth () =
  (* A gigabit of traffic against a 4-link bisection of a 2x2 mesh at
     default bandwidth needs ~78125 time units; the 10-unit deadline is
     hopeless for any placement that splits the two tasks across the
     midline. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~cols:2 ~rows:2 () in
  let ctg =
    Noc_ctg.Ctg.make_exn
      ~tasks:
        [| task ~id:0 [| 1.; 1.; 1.; 1. |];
           task ~id:1 [| 1.; 1.; 1.; 1. |] ~deadline:10. |]
      ~edges:[| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:1e9 |]
  in
  let diagnostics = Platform_lint.check ~ctg platform in
  check_rules "capacity smell" [ "platform/bisection-bandwidth" ] (rules diagnostics);
  Alcotest.(check int) "warning severity" 1
    (let _, warnings, _ = Diagnostic.count diagnostics in
     warnings);
  (* The same graph with a realistic volume passes. *)
  let light =
    Noc_ctg.Ctg.make_exn
      ~tasks:
        [| task ~id:0 [| 1.; 1.; 1.; 1. |];
           task ~id:1 [| 1.; 1.; 1.; 1. |] ~deadline:10. |]
      ~edges:[| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:64. |]
  in
  check_rules "light traffic" [] (rules (Platform_lint.check ~ctg:light platform))

(* ------------------------------------------------------------------ *)
(* Schedule certifier                                                  *)

(* The golden corpus of test_oracle.ml: 3x3 heterogeneous platform,
   24-task graphs, 50 seeds, all four schedulers. *)
let corpus_platform = Noc_noc.Platform.heterogeneous_mesh ~seed:3 ~cols:3 ~rows:3 ()

let corpus_params =
  { Noc_tgff.Params.default with n_tasks = 24; max_layer_width = 5 }

let corpus_ctg seed =
  Noc_tgff.Generate.generate ~params:corpus_params ~platform:corpus_platform ~seed

let corpus_schedulers =
  [
    ("EAS", fun ctg -> (Noc_eas.Eas.schedule corpus_platform ctg).Noc_eas.Eas.schedule);
    ("EDF", fun ctg -> (Noc_edf.Edf.schedule corpus_platform ctg).Noc_edf.Edf.schedule);
    ( "DLS",
      fun ctg -> (Noc_baselines.Dls.schedule corpus_platform ctg).Noc_baselines.Dls.schedule );
    ( "energy-greedy",
      fun ctg ->
        (Noc_baselines.Energy_greedy.schedule corpus_platform ctg)
          .Noc_baselines.Energy_greedy.schedule );
  ]

let test_golden_corpus_certifies () =
  (* Every scheduler output over all 50 seeds certifies: the only
     diagnostics the independent re-verification may raise are the
     deadline misses Metrics already reports, and exactly as many. The
     claimed energy must reproduce under the certifier's own Eq. 3
     derivation (diagnostic-free, hence no energy-mismatch warnings). *)
  for seed = 0 to 49 do
    let ctg = corpus_ctg seed in
    List.iter
      (fun (name, scheduler) ->
        let schedule = scheduler ctg in
        let metrics = Noc_sched.Metrics.compute corpus_platform ctg schedule in
        let diagnostics =
          Certify.check ~claimed_energy:metrics.Noc_sched.Metrics.total_energy
            corpus_platform ctg schedule
        in
        let off_rule =
          List.filter (fun (d : Diagnostic.t) -> d.rule <> "sched/deadline") diagnostics
        in
        if off_rule <> [] then
          Alcotest.failf "%s seed %d: unexpected diagnostics: %s" name seed
            (String.concat ", " (rules off_rule));
        Alcotest.(check int)
          (Printf.sprintf "%s seed %d: certifier misses = Metrics misses" name seed)
          (Noc_sched.Metrics.miss_count metrics)
          (count_rule "sched/deadline" diagnostics))
      corpus_schedulers
  done

let eas_schedule seed =
  let ctg = corpus_ctg seed in
  (ctg, (Noc_eas.Eas.schedule corpus_platform ctg).Noc_eas.Eas.schedule)

(* An edge whose transaction actually travels, so mutations below have a
   network leg to corrupt. *)
let multi_hop_edge schedule =
  let found = ref None in
  Array.iter
    (fun (tr : Schedule.transaction) ->
      if !found = None && List.length tr.route >= 2 then found := Some tr.edge)
    (Schedule.transactions schedule);
  match !found with
  | Some e -> e
  | None -> Alcotest.fail "corpus schedule has no multi-hop transaction"

let mutate_placement schedule ~task f =
  let placements = Array.copy (Schedule.placements schedule) in
  placements.(task) <- f placements.(task);
  Schedule.make ~placements ~transactions:(Schedule.transactions schedule)

let test_certifier_rejects_shifted_start () =
  let ctg, schedule = eas_schedule 0 in
  let edge = Noc_ctg.Ctg.edge ctg (multi_hop_edge schedule) in
  (* Slide the sender's whole window far past its recorded transaction:
     the placement itself stays well-formed, so the breakage is pure
     ordering — the data now departs before it is produced. *)
  let mutated =
    mutate_placement schedule ~task:edge.Edge.src (fun p ->
        { p with Schedule.start = p.start +. 1e4; finish = p.finish +. 1e4 })
  in
  let diagnostics = Certify.check corpus_platform ctg mutated in
  Alcotest.(check bool) "precedence violated" true
    (List.mem "sched/precedence" (rules diagnostics));
  Alcotest.(check bool) "not certified" false
    (Certify.certifies corpus_platform ctg mutated)

let test_certifier_rejects_swapped_pe () =
  let ctg, schedule = eas_schedule 0 in
  let edge = Noc_ctg.Ctg.edge ctg (multi_hop_edge schedule) in
  let n = Noc_noc.Platform.n_pes corpus_platform in
  let mutated =
    mutate_placement schedule ~task:edge.Edge.src (fun p ->
        { p with Schedule.pe = (p.pe + 1) mod n })
  in
  let diagnostics = Certify.check corpus_platform ctg mutated in
  Alcotest.(check bool) "transaction endpoint mismatch" true
    (List.mem "sched/endpoint-pe" (rules diagnostics));
  Alcotest.(check bool) "not certified" false
    (Certify.certifies corpus_platform ctg mutated)

let test_certifier_rejects_truncated_route () =
  let ctg, schedule = eas_schedule 0 in
  let target = multi_hop_edge schedule in
  let transactions = Array.copy (Schedule.transactions schedule) in
  let tr = transactions.(target) in
  let truncated = List.filteri (fun i _ -> i < List.length tr.route - 1) tr.route in
  transactions.(target) <- { tr with Schedule.route = truncated };
  let mutated =
    Schedule.make ~placements:(Schedule.placements schedule) ~transactions
  in
  let diagnostics = Certify.check corpus_platform ctg mutated in
  Alcotest.(check bool) "route walk broken" true
    (List.mem "sched/route-walk" (rules diagnostics));
  Alcotest.(check bool) "not certified" false
    (Certify.certifies corpus_platform ctg mutated)

(* ------------------------------------------------------------------ *)
(* Same-tile transfers: empty route and single-tile route are both
   legal, in the certifier, in Validate (the satellite bugfix) and
   through a Schedule_io round trip.                                   *)

let same_tile_fixture route =
  let platform = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let ctg =
    Noc_ctg.Ctg.make_exn
      ~tasks:
        [| task ~id:0 [| 2.; 2.; 2.; 2. |]; task ~id:1 [| 3.; 3.; 3.; 3. |] |]
      ~edges:[| Edge.make ~id:0 ~src:0 ~dst:1 ~volume:64. |]
  in
  let schedule =
    Schedule.make
      ~placements:
        [| { Schedule.task = 0; pe = 1; start = 0.; finish = 2. };
           { Schedule.task = 1; pe = 1; start = 2.; finish = 5. } |]
      ~transactions:
        [| { Schedule.edge = 0; src_pe = 1; dst_pe = 1; route; start = 2.; finish = 2. } |]
  in
  (platform, ctg, schedule)

let test_same_tile_routes_accepted () =
  List.iter
    (fun (name, route) ->
      let platform, ctg, schedule = same_tile_fixture route in
      check_rules (name ^ ": certifier") [] (rules (Certify.check platform ctg schedule));
      Alcotest.(check int)
        (name ^ ": Validate agrees")
        0
        (List.length (Noc_sched.Validate.check platform ctg schedule)))
    [ ("empty route", []); ("single shared tile", [ 1 ]) ]

let test_same_tile_wrong_tile_rejected () =
  let platform, ctg, schedule = same_tile_fixture [ 2 ] in
  check_rules "wrong tile" [ "sched/route-walk" ]
    (rules (Certify.check platform ctg schedule))

let test_same_tile_io_round_trip () =
  let platform, ctg, schedule = same_tile_fixture [] in
  let path = Filename.temp_file "nocsched_same_tile" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Noc_sched.Schedule_io.save ~path schedule;
      match Noc_sched.Schedule_io.load ~path platform ctg with
      | Error msg -> Alcotest.failf "round trip failed: %s" msg
      | Ok loaded ->
        (* The writer canonicalises the empty route to the shared tile. *)
        Alcotest.(check (list int))
          "canonical single-tile route" [ 1 ]
          (Schedule.transaction loaded 0).Schedule.route;
        check_rules "still certifies" [] (rules (Certify.check platform ctg loaded)))

(* ------------------------------------------------------------------ *)
(* QoS bandwidth-guarantee checker                                     *)

let test_qos_xy_rejects_oversubscribed_flow () =
  (* A flow at twice the link bandwidth cannot fit XY's single route
     0->1->2->3->7->11->15; the checker names the saturated links and
     charges the remainder back onto the canonical route, so all six of
     its links read 200%. *)
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let bw = Noc_noc.Platform.link_bandwidth platform in
  let report = Qos.check platform [ { Qos.id = 0; src = 0; dst = 15; rate = 2. *. bw } ] in
  Alcotest.(check int) "one infeasible flow" 1
    (count_rule "qos/infeasible-flow" report.Qos.diagnostics);
  Alcotest.(check int) "six overloaded links" 6
    (count_rule "qos/link-overload" report.Qos.diagnostics);
  Alcotest.(check int) "loads cover every directed link"
    (List.length (Noc_noc.Platform.all_links platform))
    (List.length report.Qos.loads);
  let worst =
    List.fold_left (fun acc l -> Float.max acc (Qos.utilization l)) 0. report.Qos.loads
  in
  Alcotest.(check (float 1e-9)) "200% on the canonical route" 2. worst

let test_qos_adaptive_splits_same_flow () =
  (* The same double-bandwidth flow fits once the routing relation
     offers disjoint minimal routes to water-fill: both adaptive models
     accept it with every link at or under 100%. *)
  List.iter
    (fun routing ->
      let platform =
        Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing ~cols:4 ~rows:4 ()
      in
      let bw = Noc_noc.Platform.link_bandwidth platform in
      let report =
        Qos.check platform [ { Qos.id = 0; src = 0; dst = 15; rate = 2. *. bw } ]
      in
      check_rules (Turn_model.name routing) [] (rules report.Qos.diagnostics);
      let worst =
        List.fold_left
          (fun acc l -> Float.max acc (Qos.utilization l))
          0. report.Qos.loads
      in
      Alcotest.(check (float 1e-9))
        (Turn_model.name routing ^ " saturates but never overloads")
        1. worst)
    [ Turn_model.West_first; Turn_model.Odd_even ]

let test_qos_flows_of_schedule () =
  let ctg, schedule = eas_schedule 0 in
  let flows = Qos.flows_of_schedule ctg schedule in
  Alcotest.(check bool) "corpus schedule has travelling flows" true (flows <> []);
  List.iter
    (fun (f : Qos.flow) ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d is a positive cross-tile rate" f.id)
        true
        (f.rate > 0. && f.src <> f.dst))
    flows;
  (* Rates scale inversely with the horizon. *)
  let short = Qos.flows_of_schedule ~horizon:10. ctg schedule in
  let long = Qos.flows_of_schedule ~horizon:20. ctg schedule in
  List.iter2
    (fun (a : Qos.flow) (b : Qos.flow) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "flow %d rate halves with doubled horizon" a.id)
        a.rate (2. *. b.rate))
    short long;
  Alcotest.check_raises "non-positive horizon rejected"
    (Invalid_argument "Qos.flows_of_schedule: horizon must be positive")
    (fun () -> ignore (Qos.flows_of_schedule ~horizon:0. ctg schedule))

(* ------------------------------------------------------------------ *)
(* Diagnostics: ordering, exit codes, JSON stability                   *)

let sample_diagnostics () =
  [
    Diagnostic.info ~rule:"platform/unused-link"
      (Diagnostic.Link { Noc_noc.Routing.from_node = 0; to_node = 1 })
      "idle channel";
    Diagnostic.error ~rule:"sched/precedence" (Diagnostic.Edge 3) "data before work";
    Diagnostic.warning ~rule:"sched/energy-mismatch" Diagnostic.Nowhere "off by 1";
    Diagnostic.error ~rule:"ctg/cycle" Diagnostic.Nowhere "loop";
  ]

let test_diagnostic_order_and_exit_codes () =
  let sorted = Diagnostic.sort (sample_diagnostics ()) in
  check_rules "errors first, then rule id"
    [ "ctg/cycle"; "sched/precedence"; "sched/energy-mismatch"; "platform/unused-link" ]
    (rules sorted);
  Alcotest.(check int) "errors exit 2" 2 (Diagnostic.exit_code sorted);
  Alcotest.(check int) "warnings exit 1" 1
    (Diagnostic.exit_code
       [ Diagnostic.warning ~rule:"w" Diagnostic.Nowhere "w" ]);
  Alcotest.(check int) "infos exit 0" 0
    (Diagnostic.exit_code [ Diagnostic.info ~rule:"i" Diagnostic.Nowhere "i" ]);
  Alcotest.(check int) "clean exit 0" 0 (Diagnostic.exit_code [])

let test_diagnostic_json_stable () =
  let a =
    Diagnostic.to_json ~routing:"odd-even" ~faults:[ "link:5-6"; "pe:1" ]
      (sample_diagnostics ())
  in
  let b =
    Diagnostic.to_json ~routing:"odd-even" ~faults:[ "link:5-6"; "pe:1" ]
      (List.rev (sample_diagnostics ()))
  in
  Alcotest.(check string) "order-independent report" a b;
  let contains_in haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  let contains = contains_in a in
  Alcotest.(check bool) "schema tag" true (contains "nocsched/analysis/v2");
  (* The v2 header records the analyzed routing function and the fault
     set; everything a v1 reader consumed is still present unchanged. *)
  Alcotest.(check bool) "routing header" true (contains "\"routing\": \"odd-even\"");
  Alcotest.(check bool) "fault summary" true
    (contains "\"faults\": {\"count\": 2, \"elements\": [\"link:5-6\", \"pe:1\"]}");
  Alcotest.(check bool) "summary counts" true
    (contains "\"errors\": 2, \"warnings\": 1, \"infos\": 1");
  let defaults = Diagnostic.to_json (sample_diagnostics ()) in
  Alcotest.(check bool) "default routing is xy" true
    (contains_in defaults "\"routing\": \"xy\"");
  Alcotest.(check bool) "default fault set is empty" true
    (contains_in defaults "\"faults\": {\"count\": 0, \"elements\": []}")

(* ------------------------------------------------------------------ *)
(* Fault-spec parse errors carry character positions (satellite).      *)

let test_fault_parse_positions () =
  let check_error spec expected =
    match Noc_fault.Fault.of_string spec with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" spec
    | Error msg -> Alcotest.(check string) spec expected msg
  in
  check_error "link:12-1x" {|bad link endpoint "1x" at character 8|};
  check_error "pe:2@1x:" {|bad fault onset time "1x" at character 5|};
  check_error "pe:2@10:9x" {|bad fault end time "9x" at character 8|};
  check_error "  pe:-3"
    {|bad PE index "-3" at character 5|};
  check_error "link:3-3" {|link endpoints must differ "3-3" at character 5|};
  check_error "pe:1@20:10"
    {|empty or negative fault window (need 0 <= FROM < UNTIL) "20:10" at character 5|};
  check_error "dma:4" {|bad fault element (want pe:N or link:A-B) "dma:4" at character 0|};
  match Noc_fault.Fault_set.of_strings [ "pe:0"; "link:7-7x" ] with
  | Ok _ -> Alcotest.fail "bad set unexpectedly parsed"
  | Error msg ->
    Alcotest.(check string) "set error names the spec"
      {|fault "link:7-7x": bad link endpoint "7x" at character 7|} msg

let suite =
  [
    Alcotest.test_case "CDG channel and dependency counts" `Quick test_cdg_counts;
    Alcotest.test_case "CDG finds a hand-built cycle deterministically" `Quick
      test_cdg_hand_built_cycle;
    Alcotest.test_case "XY on 2x2..8x8 meshes is deadlock-free" `Quick
      test_mesh_xy_deadlock_free;
    QCheck_alcotest.to_alcotest qcheck_mesh_xy_acyclic;
    QCheck_alcotest.to_alcotest qcheck_torus_xy_cycle_law;
    Alcotest.test_case "two link faults bend BFS detours into a cycle" `Quick
      test_degraded_cycle_under_faults;
    Alcotest.test_case "a single link fault detours without a cycle" `Quick
      test_degraded_single_fault_stays_clean;
    Alcotest.test_case "isolating faults report unreachable pairs" `Quick
      test_degraded_unreachable_pairs;
    Alcotest.test_case "adaptive relations certify on 2x2..8x8 meshes" `Quick
      test_adaptive_relations_certified;
    Alcotest.test_case "adaptive models refuse torus topologies" `Quick
      test_adaptive_unsupported_on_torus;
    QCheck_alcotest.to_alcotest qcheck_relation_cdg_acyclic;
    QCheck_alcotest.to_alcotest qcheck_admissible_walks_minimal_and_legal;
    Alcotest.test_case "west-first solves the two-fault detour cycle" `Quick
      test_two_fault_case_solved_by_west_first;
    Alcotest.test_case "odd-even falls back to BFS on the two-fault case" `Quick
      test_two_fault_case_odd_even_falls_back;
    Alcotest.test_case "qos: XY rejects an oversubscribed flow" `Quick
      test_qos_xy_rejects_oversubscribed_flow;
    Alcotest.test_case "qos: adaptive relations split the same flow" `Quick
      test_qos_adaptive_splits_same_flow;
    Alcotest.test_case "qos: flows derived from a schedule" `Quick
      test_qos_flows_of_schedule;
    Alcotest.test_case "lint: empty graph" `Quick test_lint_empty_graph;
    Alcotest.test_case "lint: PE count mismatch" `Quick test_lint_pe_count_mismatch;
    Alcotest.test_case "lint: dangling edge" `Quick test_lint_dangling_edge;
    Alcotest.test_case "lint: duplicate edge" `Quick test_lint_duplicate_edge;
    Alcotest.test_case "lint: dependency cycle" `Quick test_lint_cycle;
    Alcotest.test_case "lint: unreachable task" `Quick test_lint_unreachable_task;
    Alcotest.test_case "lint: no feasible variant" `Quick test_lint_no_feasible_variant;
    Alcotest.test_case "lint: deadline infeasible by critical path" `Quick
      test_lint_deadline_infeasible;
    Alcotest.test_case "lint: generated graphs are error-free" `Quick
      test_lint_generated_graphs_error_free;
    Alcotest.test_case "platform lint: healthy fabrics are clean" `Quick
      test_platform_lint_clean_fabrics;
    Alcotest.test_case "platform lint: bisection bandwidth smell" `Quick
      test_platform_lint_bisection_bandwidth;
    Alcotest.test_case "certifier: golden corpus certifies (50 seeds x 4)" `Quick
      test_golden_corpus_certifies;
    Alcotest.test_case "certifier: rejects a shifted start" `Quick
      test_certifier_rejects_shifted_start;
    Alcotest.test_case "certifier: rejects a swapped PE" `Quick
      test_certifier_rejects_swapped_pe;
    Alcotest.test_case "certifier: rejects a truncated route" `Quick
      test_certifier_rejects_truncated_route;
    Alcotest.test_case "same-tile routes accepted by both checkers" `Quick
      test_same_tile_routes_accepted;
    Alcotest.test_case "same-tile route naming the wrong tile rejected" `Quick
      test_same_tile_wrong_tile_rejected;
    Alcotest.test_case "same-tile schedule round-trips through IO" `Quick
      test_same_tile_io_round_trip;
    Alcotest.test_case "diagnostics sort and exit codes" `Quick
      test_diagnostic_order_and_exit_codes;
    Alcotest.test_case "JSON report is stable" `Quick test_diagnostic_json_stable;
    Alcotest.test_case "fault parse errors carry positions" `Quick
      test_fault_parse_positions;
  ]
