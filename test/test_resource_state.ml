(* Rollback edge cases of the journalled Resource_state.

   The EAS inner loop leans hard on mark/rollback; these tests pin the
   journal semantics the indexed substrate must preserve: empty marks,
   nested marks, empty-interval reserves that skip the journal, and
   marks invalidated by an enclosing rollback. *)

module Resource_state = Noc_sched.Resource_state
module Timeline = Noc_util.Timeline
module Interval = Noc_util.Interval

let platform = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2

let iv start stop = Interval.make ~start ~stop
let link = { Noc_noc.Routing.from_node = 0; to_node = 1 }

let busy_count state pe = List.length (Timeline.busy (Resource_state.pe_table state pe))

let test_rollback_to_empty_mark () =
  let state = Resource_state.create platform in
  let m = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 0. 5.);
  Resource_state.reserve_pe state ~pe:1 (iv 2. 4.);
  Resource_state.reserve_link state link (iv 0. 1.);
  Resource_state.rollback state m;
  Alcotest.(check int) "pe 0 empty" 0 (busy_count state 0);
  Alcotest.(check int) "pe 1 empty" 0 (busy_count state 1);
  Alcotest.(check int) "link empty" 0
    (List.length (Timeline.busy (Resource_state.link_table state link)))

let test_rollback_empty_mark_noop () =
  let state = Resource_state.create platform in
  let m = Resource_state.mark state in
  (* Nothing reserved since the mark: rollback must be a no-op. *)
  Resource_state.rollback state m;
  Resource_state.rollback state m;
  Alcotest.(check int) "still empty" 0 (busy_count state 0)

let test_nested_marks () =
  let state = Resource_state.create platform in
  Resource_state.reserve_pe state ~pe:0 (iv 0. 1.);
  let outer = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 1. 2.);
  let inner = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 2. 3.);
  Resource_state.reserve_pe state ~pe:0 (iv 3. 4.);
  Resource_state.rollback state inner;
  Alcotest.(check int) "inner rollback keeps outer reserves" 2 (busy_count state 0);
  Resource_state.rollback state outer;
  Alcotest.(check int) "outer rollback keeps pre-mark reserve" 1 (busy_count state 0);
  Alcotest.(check (float 0.)) "surviving slot is the first one" 1.
    (Timeline.span (Resource_state.pe_table state 0))

let test_empty_interval_reserves_skip_journal () =
  let state = Resource_state.create platform in
  let m = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 3. 3.);
  Resource_state.reserve_link state link (iv 7. 7.);
  (* Empty intervals are ignored by the tables and must not be
     journalled: the mark still compares equal and rollback is a no-op
     rather than an attempt to release a slot that was never stored. *)
  Resource_state.rollback state m;
  Resource_state.reserve_pe state ~pe:0 (iv 3. 3.);
  Resource_state.reserve_pe state ~pe:0 (iv 0. 5.);
  Resource_state.rollback state m;
  Alcotest.(check int) "only the real reserve was undone" 0 (busy_count state 0)

let test_rollback_after_outer_rollback_raises () =
  let state = Resource_state.create platform in
  let outer = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 0. 1.);
  let inner = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 1. 2.);
  Resource_state.rollback state outer;
  (* [inner] described a journal suffix that no longer exists; rolling
     back to it must raise rather than silently release foreign slots. *)
  Alcotest.(check bool) "stale inner mark raises" true
    (try
       Resource_state.rollback state inner;
       false
     with Invalid_argument _ -> true)

let test_unknown_mark_raises () =
  let state = Resource_state.create platform in
  let other = Resource_state.create platform in
  Resource_state.reserve_pe state ~pe:0 (iv 0. 1.);
  Resource_state.reserve_pe other ~pe:0 (iv 0. 1.);
  let foreign = Resource_state.mark other in
  Alcotest.(check bool) "foreign mark raises" true
    (try
       Resource_state.rollback state foreign;
       false
     with Invalid_argument _ -> true)

let test_rollback_interleaved_resources () =
  (* Rollback releases across PE and link tables in reverse reservation
     order; interleaving the two must not confuse the journal. *)
  let state = Resource_state.create platform in
  let m = Resource_state.mark state in
  Resource_state.reserve_pe state ~pe:0 (iv 0. 2.);
  Resource_state.reserve_link state link (iv 0. 2.);
  Resource_state.reserve_pe state ~pe:0 (iv 2. 4.);
  Resource_state.reserve_link state link (iv 2. 4.);
  Resource_state.rollback state m;
  Alcotest.(check int) "pe clean" 0 (busy_count state 0);
  Alcotest.(check int) "link clean" 0
    (List.length (Timeline.busy (Resource_state.link_table state link)));
  (* The state is reusable afterwards. *)
  Resource_state.reserve_pe state ~pe:0 (iv 0. 10.);
  Alcotest.(check (float 0.)) "gap after rollback" 10.
    (Resource_state.earliest_pe_gap state ~pe:0 ~after:0. ~duration:1.)

let suite =
  [
    Alcotest.test_case "rollback to empty mark" `Quick test_rollback_to_empty_mark;
    Alcotest.test_case "rollback of empty mark is no-op" `Quick
      test_rollback_empty_mark_noop;
    Alcotest.test_case "nested marks" `Quick test_nested_marks;
    Alcotest.test_case "empty-interval reserves skip journal" `Quick
      test_empty_interval_reserves_skip_journal;
    Alcotest.test_case "stale mark after outer rollback raises" `Quick
      test_rollback_after_outer_rollback_raises;
    Alcotest.test_case "unknown mark raises" `Quick test_unknown_mark_raises;
    Alcotest.test_case "interleaved PE/link rollback" `Quick
      test_rollback_interleaved_resources;
  ]
