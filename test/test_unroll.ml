(* Tests for release-time handling and the periodic unroller. *)

module Unroll = Noc_ctg.Unroll
module Ctg = Noc_ctg.Ctg
module Task = Noc_ctg.Task
module Builder = Noc_ctg.Builder
module Schedule = Noc_sched.Schedule

let platform2 = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:1

(* ------------------------------------------------------------------ *)
(* Release semantics *)

let test_release_validated () =
  let expect_invalid f =
    Alcotest.(check bool) "Invalid_argument" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () ->
      Task.make ~id:0 ~exec_times:[| 1. |] ~energies:[| 1. |] ~release:(-1.) ());
  expect_invalid (fun () ->
      Task.make ~id:0 ~exec_times:[| 1. |] ~energies:[| 1. |] ~release:10. ~deadline:5. ())

let test_schedulers_respect_release () =
  let b = Builder.create ~n_pes:2 in
  ignore
    (Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 1. |] ~release:50. ());
  let ctg = Builder.build_exn b in
  let check name s =
    Alcotest.(check bool) (name ^ " starts at or after release") true
      ((Schedule.placement s 0).Schedule.start >= 50.)
  in
  check "eas" (Noc_eas.Eas.schedule platform2 ctg).Noc_eas.Eas.schedule;
  check "edf" (Noc_edf.Edf.schedule platform2 ctg).Noc_edf.Edf.schedule;
  check "dls" (Noc_baselines.Dls.schedule platform2 ctg).Noc_baselines.Dls.schedule;
  check "greedy"
    (Noc_baselines.Energy_greedy.schedule platform2 ctg)
      .Noc_baselines.Energy_greedy.schedule

let test_validator_checks_release () =
  let b = Builder.create ~n_pes:2 in
  ignore
    (Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 1. |] ~release:50. ());
  let ctg = Builder.build_exn b in
  let early =
    Schedule.make
      ~placements:[| { Schedule.task = 0; pe = 0; start = 0.; finish = 10. } |]
      ~transactions:[||]
  in
  Alcotest.(check bool) "early start rejected" false
    (Noc_sched.Validate.is_feasible platform2 ctg early)

let test_release_roundtrips () =
  let b = Builder.create ~n_pes:2 in
  ignore
    (Builder.add_task b ~exec_times:[| 10.; 10. |] ~energies:[| 1.; 1. |] ~release:25.
       ~deadline:100. ());
  let ctg = Builder.build_exn b in
  match Noc_ctg.Ctg_io.of_string (Noc_ctg.Ctg_io.to_string ctg) with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
    Alcotest.(check (option (float 0.))) "release kept" (Some 25.)
      (Ctg.task g 0).Task.release

(* ------------------------------------------------------------------ *)
(* Unrolling *)

(* A two-task pipeline: produce -> consume, deadline 100, typical of one
   frame. *)
let frame () =
  let b = Builder.create ~n_pes:2 in
  let p = Builder.add_task b ~name:"produce" ~exec_times:[| 30.; 30. |]
      ~energies:[| 1.; 1. |] () in
  let c = Builder.add_task b ~name:"consume" ~exec_times:[| 30.; 30. |]
      ~energies:[| 1.; 1. |] ~deadline:100. () in
  Builder.connect b ~src:p ~dst:c ~volume:320.;
  Builder.build_exn b

let test_unroll_structure () =
  let base = frame () in
  let unrolled = Unroll.periodic base ~period:60. ~copies:3 in
  Alcotest.(check int) "3x tasks" 6 (Ctg.n_tasks unrolled);
  Alcotest.(check int) "3x edges" 3 (Ctg.n_edges unrolled);
  Alcotest.(check string) "instance names" "produce@2"
    (Ctg.task unrolled (Unroll.instance_of base 2 ~task:0)).Task.name;
  (* Instance k sources released at k * period, deadlines shifted. *)
  Alcotest.(check (option (float 0.))) "release of instance 1" (Some 60.)
    (Ctg.task unrolled 2).Task.release;
  Alcotest.(check (option (float 0.))) "first instance unshifted" None
    (Ctg.task unrolled 0).Task.release;
  Alcotest.(check (option (float 0.))) "deadline of instance 2" (Some 220.)
    (Ctg.task unrolled 5).Task.deadline

let test_unroll_carried () =
  let base = frame () in
  let unrolled =
    Unroll.periodic
      ~carried:[ { Unroll.from_task = 1; to_task = 0; volume = 64. } ]
      base ~period:60. ~copies:3
  in
  (* 3 intra-iteration arcs + 2 carried arcs. *)
  Alcotest.(check int) "carried arcs added" 5 (Ctg.n_edges unrolled);
  (* The carried arc connects consume@0 to produce@1. *)
  let e = Ctg.edge unrolled 3 in
  Alcotest.(check int) "from consume@0" 1 e.Noc_ctg.Edge.src;
  Alcotest.(check int) "to produce@1" 2 e.Noc_ctg.Edge.dst

let test_unroll_validation () =
  let base = frame () in
  let expect_invalid f =
    Alcotest.(check bool) "Invalid_argument" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Unroll.periodic base ~period:0. ~copies:2);
  expect_invalid (fun () -> Unroll.periodic base ~period:10. ~copies:0);
  expect_invalid (fun () ->
      Unroll.periodic
        ~carried:[ { Unroll.from_task = 9; to_task = 0; volume = 1. } ]
        base ~period:10. ~copies:2)

let test_pipelined_throughput () =
  (* One frame takes ~60+ time units of work, but the period is only 40:
     a single PE cannot sustain it; two PEs can, by pipelining frames.
     EAS on the unrolled graph must meet every per-frame deadline. *)
  let base = frame () in
  let unrolled = Unroll.periodic base ~period:40. ~copies:4 in
  let outcome = Noc_eas.Eas.schedule platform2 unrolled in
  Alcotest.(check int) "all frame deadlines met" 0
    outcome.Noc_eas.Eas.stats.Noc_eas.Eas.misses_after_repair;
  let s = outcome.Noc_eas.Eas.schedule in
  Alcotest.(check bool) "feasible" true
    (Noc_sched.Validate.is_feasible platform2 unrolled s);
  (* Pipelining must actually overlap some pair of consecutive frames:
     frame k+1 starts before frame k fully finishes. *)
  let frame_window k =
    let ids = [ 2 * k; (2 * k) + 1 ] in
    ( List.fold_left (fun acc i -> Float.min acc (Schedule.placement s i).Schedule.start)
        infinity ids,
      List.fold_left (fun acc i -> Float.max acc (Schedule.placement s i).Schedule.finish)
        0. ids )
  in
  let overlaps =
    List.exists
      (fun k ->
        let _, finish_k = frame_window k in
        let start_next, _ = frame_window (k + 1) in
        start_next < finish_k)
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "consecutive frames overlap" true overlaps

let test_unrolled_msb_sustains_rate () =
  (* The real encoder: one frame's EAS latency (~24.4 ms) is close to the
     25 ms period; unrolling 3 frames checks the pipeline sustains
     40 frames/s on the 2x2 platform. *)
  let platform = Noc_msb.Platforms.av_2x2 in
  let base = Noc_msb.Graphs.encoder ~platform ~clip:Noc_msb.Profile.Foreman () in
  let unrolled =
    Unroll.periodic base ~period:Noc_msb.Graphs.encoder_period ~copies:3
  in
  let outcome = Noc_eas.Eas.schedule platform unrolled in
  Alcotest.(check int) "sustains 40 frames/s" 0
    outcome.Noc_eas.Eas.stats.Noc_eas.Eas.misses_after_repair

let suite =
  [
    Alcotest.test_case "release validated" `Quick test_release_validated;
    Alcotest.test_case "schedulers respect release" `Quick test_schedulers_respect_release;
    Alcotest.test_case "validator checks release" `Quick test_validator_checks_release;
    Alcotest.test_case "release roundtrips" `Quick test_release_roundtrips;
    Alcotest.test_case "unroll structure" `Quick test_unroll_structure;
    Alcotest.test_case "carried arcs" `Quick test_unroll_carried;
    Alcotest.test_case "unroll validation" `Quick test_unroll_validation;
    Alcotest.test_case "pipelined throughput" `Quick test_pipelined_throughput;
    Alcotest.test_case "unrolled MSB sustains rate" `Slow test_unrolled_msb_sustains_rate;
  ]
