(* Tests for Noc_util.Timeline — the schedule-table substrate. *)

module Timeline = Noc_util.Timeline
module Interval = Noc_util.Interval

let iv start stop = Interval.make ~start ~stop

let test_empty_gap () =
  let tl = Timeline.create () in
  Alcotest.(check (float 0.)) "gap at origin" 0.
    (Timeline.earliest_gap tl ~after:0. ~duration:5.);
  Alcotest.(check (float 0.)) "gap after release" 7.
    (Timeline.earliest_gap tl ~after:7. ~duration:5.)

let test_gap_before_first_busy () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 10. 20.);
  Alcotest.(check (float 0.)) "fits before" 0.
    (Timeline.earliest_gap tl ~after:0. ~duration:10.);
  Alcotest.(check (float 0.)) "does not fit before" 20.
    (Timeline.earliest_gap tl ~after:0. ~duration:11.)

let test_gap_between_busy () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Timeline.reserve tl (iv 15. 25.);
  Alcotest.(check (float 0.)) "fits in hole" 10.
    (Timeline.earliest_gap tl ~after:0. ~duration:5.);
  Alcotest.(check (float 0.)) "too large for hole" 25.
    (Timeline.earliest_gap tl ~after:0. ~duration:6.)

let test_gap_respects_after () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Timeline.reserve tl (iv 15. 25.);
  Alcotest.(check (float 0.)) "after inside hole" 12.
    (Timeline.earliest_gap tl ~after:12. ~duration:3.);
  Alcotest.(check (float 0.)) "after pushes past hole" 25.
    (Timeline.earliest_gap tl ~after:12. ~duration:4.)

let test_zero_duration_gap () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Alcotest.(check (float 0.)) "zero duration returns after" 5.
    (Timeline.earliest_gap tl ~after:5. ~duration:0.)

let test_reserve_overlap_rejected () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Alcotest.(check bool) "overlap raises" true
    (try
       Timeline.reserve tl (iv 5. 15.);
       false
     with Invalid_argument _ -> true)

let test_reserve_touching_ok () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Timeline.reserve tl (iv 10. 20.);
  Alcotest.(check int) "both reserved" 2 (List.length (Timeline.busy tl))

let test_reserve_empty_ignored () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 5. 5.);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Timeline.busy tl))

let test_release () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Timeline.reserve tl (iv 20. 30.);
  Timeline.release tl (iv 0. 10.);
  Alcotest.(check int) "one left" 1 (List.length (Timeline.busy tl));
  Alcotest.(check (float 0.)) "freed slot usable" 0.
    (Timeline.earliest_gap tl ~after:0. ~duration:10.)

let test_release_unknown_rejected () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Alcotest.(check bool) "unknown release raises" true
    (try
       Timeline.release tl (iv 2. 4.);
       false
     with Invalid_argument _ -> true)

let test_is_free () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 5. 10.);
  Alcotest.(check bool) "free before" true (Timeline.is_free tl (iv 0. 5.));
  Alcotest.(check bool) "busy" false (Timeline.is_free tl (iv 7. 8.));
  Alcotest.(check bool) "empty always free" true (Timeline.is_free tl (iv 7. 7.))

let test_utilisation () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 25.);
  Timeline.reserve tl (iv 50. 75.);
  Alcotest.(check (float 1e-9)) "half busy" 0.5 (Timeline.utilisation tl ~horizon:100.);
  Alcotest.(check (float 1e-9)) "clipped to horizon" 1.
    (Timeline.utilisation tl ~horizon:20.)

let test_span () =
  let tl = Timeline.create () in
  Alcotest.(check (float 0.)) "empty span" 0. (Timeline.span tl);
  Timeline.reserve tl (iv 5. 12.);
  Timeline.reserve tl (iv 0. 3.);
  Alcotest.(check (float 0.)) "span" 12. (Timeline.span tl)

let test_snapshot_restore () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  let snap = Timeline.snapshot tl in
  Timeline.reserve tl (iv 20. 30.);
  Timeline.reserve tl (iv 40. 50.);
  Timeline.restore tl snap;
  Alcotest.(check int) "back to one slot" 1 (List.length (Timeline.busy tl));
  Alcotest.(check (float 0.)) "gap as before" 10.
    (Timeline.earliest_gap tl ~after:0. ~duration:15.)

let test_merged_busy () =
  let a = Timeline.create () and b = Timeline.create () in
  Timeline.reserve a (iv 0. 5.);
  Timeline.reserve a (iv 8. 12.);
  Timeline.reserve b (iv 4. 9.);
  let merged = Timeline.merged_busy [ a; b ] ~after:0. in
  (* 0-5, 4-9, 8-12 coalesce into a single 0-12 block. *)
  Alcotest.(check int) "coalesced" 1 (List.length merged);
  let block = List.hd merged in
  Alcotest.(check (float 0.)) "start" 0. block.Interval.start;
  Alcotest.(check (float 0.)) "stop" 12. block.Interval.stop

let test_merged_busy_filters_after () =
  let a = Timeline.create () in
  Timeline.reserve a (iv 0. 5.);
  Timeline.reserve a (iv 10. 15.);
  Alcotest.(check int) "early slots dropped" 1
    (List.length (Timeline.merged_busy [ a ] ~after:6.))

let test_multi_gap () =
  let a = Timeline.create () and b = Timeline.create () in
  Timeline.reserve a (iv 0. 10.);
  Timeline.reserve b (iv 12. 20.);
  (* Free on both only in [10, 12) and after 20. *)
  Alcotest.(check (float 0.)) "short fits between" 10.
    (Timeline.earliest_gap_multi [ a; b ] ~after:0. ~duration:2.);
  Alcotest.(check (float 0.)) "long goes after both" 20.
    (Timeline.earliest_gap_multi [ a; b ] ~after:0. ~duration:3.)

let test_multi_gap_empty_list () =
  Alcotest.(check (float 0.)) "no timelines: immediately" 4.
    (Timeline.earliest_gap_multi [] ~after:4. ~duration:100.)

(* Property: repeatedly reserving at the earliest gap never raises and
   leaves the timeline consistent (disjoint sorted slots). *)
let qcheck_greedy_reservations =
  let gen = QCheck.(pair small_int (list (pair (int_range 1 20) (int_range 0 30)))) in
  QCheck.Test.make ~name:"greedy earliest-gap reservations stay disjoint" ~count:200 gen
    (fun (_seed, jobs) ->
      let tl = Timeline.create () in
      List.iter
        (fun (dur, after) ->
          let dur = float_of_int dur and after = float_of_int after in
          let start = Timeline.earliest_gap tl ~after ~duration:dur in
          Timeline.reserve tl (iv start (start +. dur)))
        jobs;
      let rec disjoint_sorted = function
        | a :: (b :: _ as rest) ->
          a.Interval.stop <= b.Interval.start && disjoint_sorted rest
        | [ _ ] | [] -> true
      in
      disjoint_sorted (Timeline.busy tl))

(* Property: the earliest gap is minimal — no earlier feasible start at
   integer offsets. *)
let qcheck_gap_minimal =
  let gen = QCheck.(pair (list (pair (int_range 0 40) (int_range 1 10))) (int_range 1 10)) in
  QCheck.Test.make ~name:"earliest gap is locally minimal" ~count:200 gen
    (fun (slots, dur) ->
      let tl = Timeline.create () in
      List.iter
        (fun (start, len) ->
          let start = float_of_int start and len = float_of_int len in
          if Timeline.is_free tl (iv start (start +. len)) then
            Timeline.reserve tl (iv start (start +. len)))
        slots;
      let duration = float_of_int dur in
      let gap = Timeline.earliest_gap tl ~after:0. ~duration in
      (* The found slot itself is free... *)
      Timeline.is_free tl (iv gap (gap +. duration))
      (* ...and every integer point strictly before it fails. *)
      && (let ok = ref true in
          let p = ref 0. in
          while !p < gap && !ok do
            if Timeline.is_free tl (iv !p (!p +. duration)) then ok := false;
            p := !p +. 1.
          done;
          !ok))

let suite =
  [
    Alcotest.test_case "empty gap" `Quick test_empty_gap;
    Alcotest.test_case "gap before first busy" `Quick test_gap_before_first_busy;
    Alcotest.test_case "gap between busy" `Quick test_gap_between_busy;
    Alcotest.test_case "gap respects after" `Quick test_gap_respects_after;
    Alcotest.test_case "zero duration gap" `Quick test_zero_duration_gap;
    Alcotest.test_case "reserve overlap rejected" `Quick test_reserve_overlap_rejected;
    Alcotest.test_case "reserve touching ok" `Quick test_reserve_touching_ok;
    Alcotest.test_case "reserve empty ignored" `Quick test_reserve_empty_ignored;
    Alcotest.test_case "release" `Quick test_release;
    Alcotest.test_case "release unknown rejected" `Quick test_release_unknown_rejected;
    Alcotest.test_case "is_free" `Quick test_is_free;
    Alcotest.test_case "utilisation" `Quick test_utilisation;
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "merged busy coalesces" `Quick test_merged_busy;
    Alcotest.test_case "merged busy filters" `Quick test_merged_busy_filters_after;
    Alcotest.test_case "multi-timeline gap" `Quick test_multi_gap;
    Alcotest.test_case "multi gap, empty list" `Quick test_multi_gap_empty_list;
    QCheck_alcotest.to_alcotest qcheck_greedy_reservations;
    QCheck_alcotest.to_alcotest qcheck_gap_minimal;
  ]
