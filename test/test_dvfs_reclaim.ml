(* Tests for the DVFS power-management subsystem: the V/f ladder, the
   slack-reclamation pass and its certification rules. *)

module Vf_table = Noc_dvfs.Vf_table
module Reclaim = Noc_dvfs.Reclaim
module Schedule = Noc_sched.Schedule
module Schedule_io = Noc_sched.Schedule_io
module Metrics = Noc_sched.Metrics
module Certify = Noc_analysis.Certify
module Ctg = Noc_ctg.Ctg
module Category = Noc_tgff.Category

let platform = Category.platform

let category_ctg kind index =
  let params = Category.scaled_params kind ~scale:0.3 in
  Noc_tgff.Generate.generate ~params ~platform
    ~seed:(Category.seed_of kind index)

let eas ctg = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule

let certified_scaled ?(table = Vf_table.default) ctg base (r : Reclaim.result) =
  Certify.certifies_scaled ~ratios:(Vf_table.ratios table)
    ~annotations:r.annotations ~base platform ctg r.schedule

(* ------------------------------------------------------------------ *)
(* Vf_table *)

let contains msg fragment =
  let nh = String.length msg and nn = String.length fragment in
  let rec scan i = i + nn <= nh && (String.sub msg i nn = fragment || scan (i + 1)) in
  scan 0

let expect_table_error text fragment =
  match Vf_table.of_string text with
  | Ok _ -> Alcotest.failf "%S parsed; wanted error mentioning %S" text fragment
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg fragment)
      true (contains msg fragment)

let test_vf_table_parse () =
  (match Vf_table.of_string "1,0.8,0.6,0.5" with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
    Alcotest.(check int) "four levels" 4 (Vf_table.n_levels t);
    Alcotest.(check string) "canonical form" "1,0.8,0.6,0.5"
      (Vf_table.to_string t);
    Alcotest.(check (float 1e-12)) "level 0 is f_max" 1.
      (Vf_table.ratio t ~level:0);
    Alcotest.(check (float 1e-12)) "slowdown is 1/r" 2.
      (Vf_table.slowdown t ~level:3);
    Alcotest.(check (float 1e-12)) "energy scale is r^2" 0.25
      (Vf_table.energy_scale t ~level:3));
  (* Unsorted input is accepted and sorted descending. *)
  match Vf_table.of_string "0.5,1,0.8" with
  | Error msg -> Alcotest.fail msg
  | Ok t -> Alcotest.(check string) "sorted descending" "1,0.8,0.5"
              (Vf_table.to_string t)

let test_vf_table_errors () =
  (* Each error names the offending token — the CLI contract behind
     --vf-levels. *)
  expect_table_error "1,x,0.5" "\"x\"";
  expect_table_error "1,,0.5" "empty level";
  expect_table_error "1,0.8,0.8" "duplicate";
  expect_table_error "0.9,0.8" "fastest level must be 1";
  expect_table_error "1,0.8,0" "0";
  expect_table_error "1,1.5" "not in (0, 1]";
  expect_table_error "" "empty"

let test_vf_table_hex_roundtrip () =
  let t = Vf_table.default in
  (match Vf_table.of_string (Vf_table.to_string t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    Alcotest.(check string) "to_string/of_string closes" (Vf_table.hex t)
      (Vf_table.hex t'));
  Alcotest.(check bool) "hex distinguishes ladders" true
    (Vf_table.hex t
    <> Vf_table.hex (Result.get_ok (Vf_table.of_string "1,0.8,0.6")))

(* ------------------------------------------------------------------ *)
(* Reclaim laws *)

(* The three invariants the subsystem is built around, checked on random
   category-I/II instances: starts and communication windows frozen, no
   new deadline miss, computation energy monotone non-increasing. *)
let reclaim_law kind index =
  let ctg = category_ctg kind index in
  let base = eas ctg in
  let r = Reclaim.run ctg base in
  let bp = Schedule.placements base and sp = Schedule.placements r.schedule in
  let starts_frozen =
    Array.for_all2
      (fun (b : Schedule.placement) (s : Schedule.placement) ->
        b.task = s.task && b.pe = s.pe
        && Int64.bits_of_float b.start = Int64.bits_of_float s.start
        && s.finish >= b.finish -. 1e-9)
      bp sp
  in
  let windows_frozen =
    Array.for_all2
      (fun (b : Schedule.transaction) (s : Schedule.transaction) ->
        b = s)
      (Schedule.transactions base)
      (Schedule.transactions r.schedule)
  in
  let no_new_miss =
    Array.for_all
      (fun (s : Schedule.placement) ->
        match (Ctg.task ctg s.task).Noc_ctg.Task.deadline with
        | None -> true
        | Some d ->
          let b = bp.(s.task) in
          b.finish > d +. 1e-9 (* base already missed: anything goes *)
          || s.finish <= d +. 1e-9)
      sp
  in
  let energy_monotone =
    r.computation_energy_after <= r.computation_energy_before +. 1e-9
  in
  let annotations_consistent =
    Array.length r.annotations = Ctg.n_tasks ctg
    && Array.for_all
         (fun (a : Schedule_io.annotation) ->
           a.level >= 0 && a.freq > 0. && a.freq <= 1. && a.energy >= 0.)
         r.annotations
  in
  starts_frozen && windows_frozen && no_new_miss && energy_monotone
  && annotations_consistent
  && certified_scaled ctg base r

let qcheck_reclaim_cat1 =
  QCheck.Test.make ~name:"reclaim law holds on category-I instances" ~count:8
    QCheck.(int_range 0 50)
    (fun index -> reclaim_law Category.Category_i index)

let qcheck_reclaim_cat2 =
  QCheck.Test.make ~name:"reclaim law holds on category-II instances" ~count:8
    QCheck.(int_range 0 50)
    (fun index -> reclaim_law Category.Category_ii index)

let test_reclaim_reclaims () =
  (* The paper's sparse category-I suite leaves real slack; the pass
     must find some of it. *)
  let ctg = category_ctg Category.Category_i 0 in
  let base = eas ctg in
  let r = Reclaim.run ctg base in
  Alcotest.(check bool) "downclocks at least one task" true (r.downclocked > 0);
  Alcotest.(check bool) "reclaims energy" true (Reclaim.reclaimed r > 0.);
  Alcotest.(check bool) "certifies" true (certified_scaled ctg base r)

(* ------------------------------------------------------------------ *)
(* Zero slack => identity *)

let test_zero_slack_identity () =
  (* Rebuild the graph with every deadline pinned to the task's as-built
     finish: each slack bound collapses to the finish itself, no level
     below f_max fits, and the pass must return the base schedule
     bit-identically (level-0 placements are passed through verbatim). *)
  let ctg = category_ctg Category.Category_i 3 in
  let base = eas ctg in
  let bp = Schedule.placements base in
  let pinned_tasks =
    Array.map
      (fun (t : Noc_ctg.Task.t) -> { t with deadline = Some bp.(t.id).finish })
      (Ctg.tasks ctg)
  in
  let pinned = Ctg.make_exn ~tasks:pinned_tasks ~edges:(Ctg.edges ctg) in
  let r = Reclaim.run pinned base in
  Alcotest.(check int) "nothing downclocked" 0 r.downclocked;
  Alcotest.(check (float 0.)) "nothing reclaimed" 0. (Reclaim.reclaimed r);
  Alcotest.(check bool) "placements bit-identical" true
    (Schedule.placements r.schedule = bp);
  Alcotest.(check bool) "transactions bit-identical" true
    (Schedule.transactions r.schedule = Schedule.transactions base);
  Array.iter
    (fun (a : Schedule_io.annotation) ->
      Alcotest.(check int) "every task at f_max" 0 a.level)
    r.annotations

(* ------------------------------------------------------------------ *)
(* check_scaled rejects tampering *)

let test_check_scaled_rejects_mutations () =
  let ctg = category_ctg Category.Category_i 1 in
  let base = eas ctg in
  let r = Reclaim.run ctg base in
  let some_downclocked =
    match
      Array.find_opt (fun (a : Schedule_io.annotation) -> a.level > 0)
        r.annotations
    with
    | Some a -> a.task
    | None -> Alcotest.fail "fixture reclaimed nothing"
  in
  let rejects label mutate =
    let placements = Array.map Fun.id (Schedule.placements r.schedule) in
    let annotations = Array.map Fun.id r.annotations in
    let transactions = Array.map Fun.id (Schedule.transactions r.schedule) in
    mutate placements annotations transactions;
    let mutant = Schedule.make ~placements ~transactions in
    Alcotest.(check bool) label false
      (Certify.certifies_scaled
         ~ratios:(Vf_table.ratios Vf_table.default)
         ~annotations ~base platform ctg mutant)
  in
  let i = some_downclocked in
  rejects "duration disagreeing with level x base duration" (fun p _ _ ->
      p.(i) <- { p.(i) with finish = p.(i).finish +. 1. });
  rejects "start moved off the base schedule" (fun p _ _ ->
      p.(i) <- { p.(i) with start = p.(i).start +. 0.5 });
  rejects "annotation energy understated" (fun _ a _ ->
      a.(i) <- { a.(i) with energy = a.(i).energy /. 2. });
  rejects "annotation level out of ladder range" (fun _ a _ ->
      a.(i) <- { a.(i) with level = 99 });
  rejects "communication window shifted" (fun _ _ t ->
      t.(0) <- { t.(0) with start = t.(0).start +. 1.; finish = t.(0).finish +. 1. });
  (* And the untampered result certifies, so the rejections above are
     doing the work. *)
  Alcotest.(check bool) "untampered scaled schedule certifies" true
    (certified_scaled ctg base r)

(* ------------------------------------------------------------------ *)
(* Observability *)

let test_reclaim_records_decisions () =
  let ctg = category_ctg Category.Category_ii 2 in
  let base = eas ctg in
  Noc_obs.Decisions.reset ();
  Noc_obs.Decisions.set_enabled true;
  let r =
    Fun.protect
      ~finally:(fun () -> Noc_obs.Decisions.set_enabled false)
      (fun () -> Noc_obs.Decisions.with_run "" (fun () -> Reclaim.run ctg base))
  in
  let jsonl = Noc_obs.Decisions.export_jsonl () in
  Noc_obs.Decisions.reset ();
  Alcotest.(check bool) "log mentions dvfs/reclaim" true
    (contains jsonl "dvfs/reclaim");
  let lines =
    List.filter
      (fun l -> contains l "dvfs/reclaim")
      (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one decision per task" (Ctg.n_tasks ctg)
    (List.length lines);
  Alcotest.(check bool) "fixture downclocked something" true (r.downclocked > 0)

(* ------------------------------------------------------------------ *)
(* Campaign determinism *)

let test_campaign_jobs_invariant () =
  let module C = Noc_experiments.Dvfs_campaign in
  let digest rows =
    List.map
      (fun (r : C.row) ->
        ( r.name, r.eas_energy, r.dvfs_energy, r.downclocked, r.base_misses,
          r.scaled_misses, r.certified ))
      rows
  in
  let run jobs = C.run ~jobs ~indices:[ 0 ] ~scale:0.2 () in
  let r1 = digest (run 1) in
  Alcotest.(check bool) "rows identical at --jobs 1 and 2" true
    (digest (run 2) = r1);
  List.iter2
    (fun (_, eas_nj, dvfs_nj, _, base_m, scaled_m, certified)
         (r : C.row) ->
      ignore r;
      Alcotest.(check bool) "energy never grows" true (dvfs_nj <= eas_nj);
      Alcotest.(check bool) "no new misses" true (scaled_m <= base_m);
      Alcotest.(check bool) "certified" true certified)
    r1 (run 1)

let suite =
  [
    Alcotest.test_case "vf table parse" `Quick test_vf_table_parse;
    Alcotest.test_case "vf table errors" `Quick test_vf_table_errors;
    Alcotest.test_case "vf table hex" `Quick test_vf_table_hex_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_reclaim_cat1;
    QCheck_alcotest.to_alcotest qcheck_reclaim_cat2;
    Alcotest.test_case "category-I slack is reclaimed" `Quick test_reclaim_reclaims;
    Alcotest.test_case "zero slack is identity" `Quick test_zero_slack_identity;
    Alcotest.test_case "check_scaled rejects mutations" `Quick
      test_check_scaled_rejects_mutations;
    Alcotest.test_case "decisions recorded" `Quick test_reclaim_records_decisions;
    Alcotest.test_case "campaign jobs-invariant" `Quick test_campaign_jobs_invariant;
  ]
