(* Tests for the Communication Task Graph library (Task, Edge, Ctg,
   Builder). *)

module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge
module Ctg = Noc_ctg.Ctg
module Builder = Noc_ctg.Builder

let mk_task ?deadline id times energies =
  Task.make ~id ~exec_times:(Array.of_list times) ~energies:(Array.of_list energies)
    ?deadline ()

let simple_graph () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 *)
  let tasks =
    [|
      mk_task 0 [ 1.; 2. ] [ 10.; 5. ];
      mk_task 1 [ 3.; 1. ] [ 6.; 9. ];
      mk_task 2 [ 2.; 2. ] [ 4.; 4. ];
      mk_task ~deadline:100. 3 [ 1.; 1. ] [ 2.; 3. ];
    |]
  in
  let edges =
    [|
      Edge.make ~id:0 ~src:0 ~dst:1 ~volume:100.;
      Edge.make ~id:1 ~src:0 ~dst:2 ~volume:200.;
      Edge.make ~id:2 ~src:1 ~dst:3 ~volume:300.;
      Edge.make ~id:3 ~src:2 ~dst:3 ~volume:0.;
    |]
  in
  Ctg.make_exn ~tasks ~edges

(* ------------------------------------------------------------------ *)
(* Task *)

let test_task_accessors () =
  let t = mk_task 0 [ 1.; 3. ] [ 4.; 8. ] in
  Alcotest.(check int) "n_pes" 2 (Task.n_pes t);
  Alcotest.(check (float 1e-12)) "mean" 2. (Task.mean_exec_time t);
  Alcotest.(check (float 1e-12)) "time variance" 1. (Task.exec_time_variance t);
  Alcotest.(check (float 1e-12)) "energy variance" 4. (Task.energy_variance t);
  Alcotest.(check (float 1e-12)) "weight = product" 4. (Task.weight t)

let expect_invalid f =
  Alcotest.(check bool) "Invalid_argument" true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_task_validation () =
  expect_invalid (fun () -> mk_task 0 [] []);
  expect_invalid (fun () -> mk_task 0 [ 1. ] [ 1.; 2. ]);
  expect_invalid (fun () -> mk_task 0 [ 0. ] [ 1. ]);
  expect_invalid (fun () -> mk_task 0 [ 1. ] [ -1. ]);
  expect_invalid (fun () -> mk_task ~deadline:0. 0 [ 1. ] [ 1. ])

let test_task_default_name () =
  let t = mk_task 7 [ 1. ] [ 1. ] in
  Alcotest.(check string) "default name" "t7" t.Task.name

(* ------------------------------------------------------------------ *)
(* Edge *)

let test_edge_validation () =
  expect_invalid (fun () -> Edge.make ~id:0 ~src:1 ~dst:1 ~volume:1.);
  expect_invalid (fun () -> Edge.make ~id:0 ~src:0 ~dst:1 ~volume:(-1.));
  expect_invalid (fun () -> Edge.make ~id:0 ~src:(-1) ~dst:1 ~volume:1.)

let test_edge_control_only () =
  Alcotest.(check bool) "control" true
    (Edge.is_control_only (Edge.make ~id:0 ~src:0 ~dst:1 ~volume:0.));
  Alcotest.(check bool) "data" false
    (Edge.is_control_only (Edge.make ~id:0 ~src:0 ~dst:1 ~volume:5.))

(* ------------------------------------------------------------------ *)
(* Ctg *)

let test_graph_accessors () =
  let g = simple_graph () in
  Alcotest.(check int) "tasks" 4 (Ctg.n_tasks g);
  Alcotest.(check int) "edges" 4 (Ctg.n_edges g);
  Alcotest.(check int) "pes" 2 (Ctg.n_pes g);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Ctg.preds g 3);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Ctg.succs g 0);
  Alcotest.(check (list int)) "sources" [ 0 ] (Ctg.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Ctg.sinks g);
  Alcotest.(check (list int)) "deadline tasks" [ 3 ] (Ctg.deadline_tasks g);
  Alcotest.(check (float 1e-9)) "total volume" 600. (Ctg.total_volume g)

let test_topological_order () =
  let g = simple_graph () in
  let order = Ctg.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Array.iter
    (fun (e : Edge.t) ->
      Alcotest.(check bool) "edge forward" true (pos.(e.src) < pos.(e.dst)))
    (Ctg.edges g)

let test_cycle_rejected () =
  let tasks = [| mk_task 0 [ 1. ] [ 1. ]; mk_task 1 [ 1. ] [ 1. ] |] in
  let edges =
    [|
      Edge.make ~id:0 ~src:0 ~dst:1 ~volume:1.;
      Edge.make ~id:1 ~src:1 ~dst:0 ~volume:1.;
    |]
  in
  match Ctg.make ~tasks ~edges with
  | Ok _ -> Alcotest.fail "cycle must be rejected"
  | Error msg -> Alcotest.(check bool) "mentions cycle" true
                   (String.length msg > 0)

let test_duplicate_arc_rejected () =
  let tasks = [| mk_task 0 [ 1. ] [ 1. ]; mk_task 1 [ 1. ] [ 1. ] |] in
  let edges =
    [|
      Edge.make ~id:0 ~src:0 ~dst:1 ~volume:1.;
      Edge.make ~id:1 ~src:0 ~dst:1 ~volume:2.;
    |]
  in
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error (Ctg.make ~tasks ~edges))

let test_mixed_pe_counts_rejected () =
  let tasks = [| mk_task 0 [ 1. ] [ 1. ]; mk_task 1 [ 1.; 2. ] [ 1.; 2. ] |] in
  Alcotest.(check bool) "PE count mismatch rejected" true
    (Result.is_error (Ctg.make ~tasks ~edges:[||]))

let test_empty_graph_rejected () =
  Alcotest.(check bool) "no tasks rejected" true
    (Result.is_error (Ctg.make ~tasks:[||] ~edges:[||]))

let test_bad_edge_target_rejected () =
  let tasks = [| mk_task 0 [ 1. ] [ 1. ] |] in
  let edges = [| Edge.make ~id:0 ~src:0 ~dst:5 ~volume:1. |] in
  Alcotest.(check bool) "dangling edge rejected" true
    (Result.is_error (Ctg.make ~tasks ~edges))

let test_critical_paths () =
  let g = simple_graph () in
  (* Mean times: 1.5, 2, 2, 1. Longest mean path 0-1-3 or 0-2-3 = 4.5/4.5;
     0-2-3: 1.5 + 2 + 1 = 4.5; 0-1-3 the same. *)
  Alcotest.(check (float 1e-9)) "mean critical path" 4.5 (Ctg.mean_critical_path g);
  (* Min times: 1, 1, 2, 1: path 0-2-3 = 4. *)
  Alcotest.(check (float 1e-9)) "min critical path" 4. (Ctg.min_critical_path g);
  (* Min load: (1 + 1 + 2 + 1) / 2 PEs. *)
  Alcotest.(check (float 1e-9)) "load bound" 2.5 (Ctg.min_load_bound g)

let test_in_out_edges () =
  let g = simple_graph () in
  Alcotest.(check (list int)) "in edges of 3" [ 2; 3 ]
    (List.map (fun (e : Edge.t) -> e.id) (Ctg.in_edges g 3));
  Alcotest.(check (list int)) "out edges of 0" [ 0; 1 ]
    (List.map (fun (e : Edge.t) -> e.id) (Ctg.out_edges g 0))

let test_dot_output () =
  let g = simple_graph () in
  let dot = Format.asprintf "%a" Ctg.pp_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph")

(* ------------------------------------------------------------------ *)
(* Digest *)

let hex_digest_re c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let test_digest_stability () =
  let d = Ctg.digest (simple_graph ()) in
  Alcotest.(check int) "64-bit FNV as hex" 16 (String.length d);
  Alcotest.(check bool) "lowercase hex" true (String.for_all hex_digest_re d);
  Alcotest.(check string) "deterministic" d (Ctg.digest (simple_graph ()))

(* The digest covers graph content, not presentation: permuting the
   declaration (id) order of edges or renaming tasks changes nothing. *)
let test_digest_ignores_presentation () =
  let g = simple_graph () in
  let tasks =
    Array.map (fun (t : Task.t) ->
        Task.make ~id:t.Task.id ~name:("renamed_" ^ t.Task.name)
          ~exec_times:t.Task.exec_times ~energies:t.Task.energies
          ?deadline:t.Task.deadline ())
      (Array.init (Ctg.n_tasks g) (Ctg.task g))
  in
  let edges = Array.init (Ctg.n_edges g) (Ctg.edge g) in
  let n = Array.length edges in
  let permuted =
    (* Reverse the declaration order, re-assigning ids to stay valid. *)
    Array.init n (fun i ->
        let (e : Edge.t) = edges.(n - 1 - i) in
        Edge.make ~id:i ~src:e.Edge.src ~dst:e.Edge.dst ~volume:e.Edge.volume)
  in
  Alcotest.(check string) "task names excluded"
    (Ctg.digest g)
    (Ctg.digest (Ctg.make_exn ~tasks ~edges));
  Alcotest.(check string) "edge declaration order excluded"
    (Ctg.digest g)
    (Ctg.digest (Ctg.make_exn ~tasks:(Array.init (Ctg.n_tasks g) (Ctg.task g)) ~edges:permuted))

let test_digest_sensitivity () =
  let base = simple_graph () in
  let variant ~volume ~deadline ~cost =
    let tasks =
      [|
        mk_task 0 [ 1.; (if cost then 2.5 else 2.) ] [ 10.; 5. ];
        mk_task 1 [ 3.; 1. ] [ 6.; 9. ];
        mk_task 2 [ 2.; 2. ] [ 4.; 4. ];
        mk_task ~deadline:(if deadline then 99. else 100.) 3 [ 1.; 1. ] [ 2.; 3. ];
      |]
    in
    let edges =
      [|
        Edge.make ~id:0 ~src:0 ~dst:1 ~volume:(if volume then 101. else 100.);
        Edge.make ~id:1 ~src:0 ~dst:2 ~volume:200.;
        Edge.make ~id:2 ~src:1 ~dst:3 ~volume:300.;
        Edge.make ~id:3 ~src:2 ~dst:3 ~volume:0.;
      |]
    in
    Ctg.digest (Ctg.make_exn ~tasks ~edges)
  in
  let d = Ctg.digest base in
  Alcotest.(check string) "identity rebuild matches" d
    (variant ~volume:false ~deadline:false ~cost:false);
  Alcotest.(check bool) "volume changes digest" true
    (d <> variant ~volume:true ~deadline:false ~cost:false);
  Alcotest.(check bool) "deadline changes digest" true
    (d <> variant ~volume:false ~deadline:true ~cost:false);
  Alcotest.(check bool) "exec cost changes digest" true
    (d <> variant ~volume:false ~deadline:false ~cost:true)

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder_roundtrip () =
  let b = Builder.create ~n_pes:2 in
  let a = Builder.add_uniform_task b ~time:1. ~energy:2. () in
  let c = Builder.add_task b ~exec_times:[| 1.; 2. |] ~energies:[| 3.; 4. |] () in
  Builder.connect b ~src:a ~dst:c ~volume:42.;
  let g = Builder.build_exn b in
  Alcotest.(check int) "two tasks" 2 (Ctg.n_tasks g);
  Alcotest.(check int) "one edge" 1 (Ctg.n_edges g);
  Alcotest.(check (float 0.)) "volume kept" 42. (Ctg.edge g 0).Edge.volume

let test_builder_validations () =
  expect_invalid (fun () -> Builder.create ~n_pes:0);
  let b = Builder.create ~n_pes:2 in
  expect_invalid (fun () ->
      Builder.add_task b ~exec_times:[| 1. |] ~energies:[| 1. |] ());
  expect_invalid (fun () -> Builder.connect b ~src:0 ~dst:1 ~volume:1.)

let suite =
  [
    Alcotest.test_case "task accessors" `Quick test_task_accessors;
    Alcotest.test_case "task validation" `Quick test_task_validation;
    Alcotest.test_case "task default name" `Quick test_task_default_name;
    Alcotest.test_case "edge validation" `Quick test_edge_validation;
    Alcotest.test_case "edge control only" `Quick test_edge_control_only;
    Alcotest.test_case "graph accessors" `Quick test_graph_accessors;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "duplicate arc rejected" `Quick test_duplicate_arc_rejected;
    Alcotest.test_case "mixed PE counts rejected" `Quick test_mixed_pe_counts_rejected;
    Alcotest.test_case "empty graph rejected" `Quick test_empty_graph_rejected;
    Alcotest.test_case "bad edge target rejected" `Quick test_bad_edge_target_rejected;
    Alcotest.test_case "critical paths" `Quick test_critical_paths;
    Alcotest.test_case "in/out edges" `Quick test_in_out_edges;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "digest stability" `Quick test_digest_stability;
    Alcotest.test_case "digest ignores presentation" `Quick
      test_digest_ignores_presentation;
    Alcotest.test_case "digest sensitivity" `Quick test_digest_sensitivity;
    Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
    Alcotest.test_case "builder validations" `Quick test_builder_validations;
  ]
