(* Parallel determinism: the experiment campaigns must produce
   bit-for-bit identical results at every job count. Each campaign runs
   at --jobs 1 (the pre-pool serial semantics), 2 and 4, and the results
   are compared field by field — everything except the wall-clock
   runtimes, which are the only fields allowed to vary. *)

let job_counts = [ 1; 2; 4 ]

(* Exact (hex-float) rendering of an evaluation minus its runtime. *)
let evaluation_fingerprint (e : Noc_experiments.Runner.evaluation) =
  let m = e.Noc_experiments.Runner.metrics in
  Printf.sprintf "%s total=%h comp=%h comm=%h mk=%h hops=%h miss=%d rv=%d"
    (Noc_experiments.Runner.algo_name e.Noc_experiments.Runner.algo)
    m.Noc_sched.Metrics.total_energy m.Noc_sched.Metrics.computation_energy
    m.Noc_sched.Metrics.communication_energy m.Noc_sched.Metrics.makespan
    m.Noc_sched.Metrics.average_hops
    (Noc_sched.Metrics.miss_count m)
    e.Noc_experiments.Runner.resource_violations

let suite_fingerprint (r : Noc_experiments.Random_suite.result) =
  String.concat "\n"
    (Printf.sprintf "avg=%h" r.Noc_experiments.Random_suite.average_edf_excess
     :: List.map
          (fun (row : Noc_experiments.Random_suite.row) ->
            Printf.sprintf "%d | %s | %s | %s" row.index
              (evaluation_fingerprint row.eas_base)
              (evaluation_fingerprint row.eas)
              (evaluation_fingerprint row.edf))
          r.Noc_experiments.Random_suite.rows)

let test_random_suite_jobs_invariant () =
  (* The 50-seed corpus at a small scale: wide enough that the pool's
     chunk claiming actually interleaves, small enough for CI. *)
  let indices = List.init 50 Fun.id in
  let run jobs =
    suite_fingerprint
      (Noc_experiments.Random_suite.run ~jobs ~indices ~scale:0.1
         Noc_tgff.Category.Category_i)
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "random suite identical at jobs=%d" jobs)
        serial (run jobs))
    (List.tl job_counts)

let test_fault_campaign_jobs_invariant () =
  (* The campaign's JSON report carries no timing fields, so whole-string
     equality is the exact field-wise comparison. *)
  let run jobs =
    Noc_experiments.Fault_campaign.to_json
      (Noc_experiments.Fault_campaign.run ~jobs ~scale:0.08 ~n_graphs:2
         ~n_trials:3 ())
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fault campaign identical at jobs=%d" jobs)
        serial (run jobs))
    (List.tl job_counts)

let test_obs_jobs_invariant () =
  (* Observability must not break determinism: the counter totals and the
     sorted decision log captured around a campaign are bit-identical at
     every job count. Routes are warmed by an untracked run first so the
     shared route memo starts from the same state for every job count. *)
  let indices = List.init 20 Fun.id in
  let run jobs =
    ignore
      (Noc_experiments.Random_suite.run ~jobs ~indices ~scale:0.08
         Noc_tgff.Category.Category_i)
  in
  run 1;
  let capture jobs =
    Noc_obs.Counters.reset ();
    Noc_obs.Decisions.reset ();
    Noc_obs.Counters.set_enabled true;
    Noc_obs.Decisions.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Noc_obs.Counters.set_enabled false;
        Noc_obs.Decisions.set_enabled false)
      (fun () ->
        run jobs;
        let counters =
          String.concat "\n"
            (List.map
               (fun (name, v) -> Printf.sprintf "%s=%d" name v)
               (Noc_obs.Counters.snapshot ()))
        in
        (counters, Noc_obs.Decisions.export_jsonl ()))
  in
  let serial_counters, serial_decisions = capture 1 in
  Alcotest.(check bool) "counters were collected" true (serial_counters <> "");
  Alcotest.(check bool) "decisions were collected" true (serial_decisions <> "");
  List.iter
    (fun jobs ->
      let counters, decisions = capture jobs in
      Alcotest.(check string)
        (Printf.sprintf "counters identical at jobs=%d" jobs)
        serial_counters counters;
      Alcotest.(check string)
        (Printf.sprintf "decision log identical at jobs=%d" jobs)
        serial_decisions decisions)
    (List.tl job_counts)

let test_schedule_path_jobs_invariant () =
  (* The schedule path itself (nocsched schedule --jobs N): the inner
     candidate walks fan out over the pool, and the resulting schedule —
     placements and transactions down to the float bits — must not
     depend on the job count. *)
  let platform = Noc_tgff.Category.platform in
  let params =
    { (Noc_tgff.Category.params Noc_tgff.Category.Category_i) with
      Noc_tgff.Params.n_tasks = 120 }
  in
  let schedule_fingerprint (s : Noc_sched.Schedule.t) =
    String.concat " "
      (List.init (Noc_sched.Schedule.n_tasks s) (fun i ->
           let p = Noc_sched.Schedule.placement s i in
           Printf.sprintf "%d:%d:%h:%h" i p.Noc_sched.Schedule.pe
             p.Noc_sched.Schedule.start p.Noc_sched.Schedule.finish)
      @ Array.to_list
          (Array.map
             (fun (t : Noc_sched.Schedule.transaction) ->
               Printf.sprintf "e%d:%h:%h" t.Noc_sched.Schedule.edge
                 t.Noc_sched.Schedule.start t.Noc_sched.Schedule.finish)
             (Noc_sched.Schedule.transactions s)))
  in
  List.iter
    (fun seed ->
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let run jobs =
        schedule_fingerprint
          (Noc_experiments.Runner.schedule_of ~jobs Noc_experiments.Runner.Eas
             platform ctg)
      in
      let serial = run 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d schedule identical at jobs=%d" seed jobs)
            serial (run jobs))
        (List.tl job_counts))
    [ 0; 1; 2 ]

let suite =
  [
    Alcotest.test_case "schedule path invariant under --jobs" `Quick
      test_schedule_path_jobs_invariant;
    Alcotest.test_case "random suite invariant under --jobs" `Slow
      test_random_suite_jobs_invariant;
    Alcotest.test_case "fault campaign invariant under --jobs" `Slow
      test_fault_campaign_jobs_invariant;
    Alcotest.test_case "counters and decisions invariant under --jobs" `Slow
      test_obs_jobs_invariant;
  ]
