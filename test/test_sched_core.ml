(* Tests for the scheduling substrate: Schedule, Resource_state and
   Comm_sched (the Fig. 3 communication scheduler). *)

module Schedule = Noc_sched.Schedule
module Resource_state = Noc_sched.Resource_state
module Comm_sched = Noc_sched.Comm_sched
module Platform = Noc_noc.Platform
module Interval = Noc_util.Interval

(* Homogeneous 3x3 with bandwidth 100 bits per time unit. *)
let platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:3 ~rows:3)
    ~pes:(Array.init 9 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

let iv start stop = Interval.make ~start ~stop

(* ------------------------------------------------------------------ *)
(* Schedule *)

let placement task pe start finish = { Schedule.task; pe; start; finish }

let test_schedule_accessors () =
  let placements = [| placement 0 1 0. 5.; placement 1 1 5. 9. |] in
  let transactions =
    [|
      {
        Schedule.edge = 0;
        src_pe = 1;
        dst_pe = 1;
        route = [ 1 ];
        start = 5.;
        finish = 5.;
      };
    |]
  in
  let s = Schedule.make ~placements ~transactions in
  Alcotest.(check int) "n_tasks" 2 (Schedule.n_tasks s);
  Alcotest.(check (float 0.)) "makespan" 9. (Schedule.makespan s);
  Alcotest.(check int) "tasks on pe 1" 2 (List.length (Schedule.tasks_on_pe s ~pe:1));
  Alcotest.(check int) "tasks on pe 0" 0 (List.length (Schedule.tasks_on_pe s ~pe:0));
  Alcotest.(check int) "same-tile transaction has no links" 0
    (List.length (Schedule.links_of_transaction (Schedule.transaction s 0)))

let test_schedule_order_enforced () =
  Alcotest.(check bool) "misordered placements rejected" true
    (try
       ignore
         (Schedule.make
            ~placements:[| placement 1 0 0. 1. |]
            ~transactions:[||]);
       false
     with Invalid_argument _ -> true)

let test_tasks_on_pe_sorted () =
  let placements = [| placement 0 0 7. 9.; placement 1 0 0. 3.; placement 2 0 3. 7. |] in
  let s = Schedule.make ~placements ~transactions:[||] in
  Alcotest.(check (list int)) "sorted by start" [ 1; 2; 0 ]
    (List.map (fun (p : Schedule.placement) -> p.task) (Schedule.tasks_on_pe s ~pe:0))

(* ------------------------------------------------------------------ *)
(* Resource_state *)

let test_reserve_and_gap () =
  let st = Resource_state.create platform in
  Resource_state.reserve_pe st ~pe:0 (iv 0. 10.);
  Alcotest.(check (float 0.)) "gap after busy" 10.
    (Resource_state.earliest_pe_gap st ~pe:0 ~after:0. ~duration:5.);
  Alcotest.(check (float 0.)) "other PE free" 0.
    (Resource_state.earliest_pe_gap st ~pe:1 ~after:0. ~duration:5.)

let test_rollback_undoes_everything () =
  let st = Resource_state.create platform in
  Resource_state.reserve_pe st ~pe:0 (iv 0. 10.);
  let mark = Resource_state.mark st in
  Resource_state.reserve_pe st ~pe:0 (iv 10. 20.);
  Resource_state.reserve_link st { Noc_noc.Routing.from_node = 0; to_node = 1 } (iv 0. 5.);
  Resource_state.rollback st mark;
  Alcotest.(check (float 0.)) "pe reservation undone" 10.
    (Resource_state.earliest_pe_gap st ~pe:0 ~after:0. ~duration:1.);
  Alcotest.(check (float 0.)) "link reservation undone" 0.
    (Resource_state.earliest_route_gap st
       ~route:[ { Noc_noc.Routing.from_node = 0; to_node = 1 } ]
       ~after:0. ~duration:5.)

let test_nested_marks () =
  let st = Resource_state.create platform in
  let outer = Resource_state.mark st in
  Resource_state.reserve_pe st ~pe:2 (iv 0. 1.);
  let inner = Resource_state.mark st in
  Resource_state.reserve_pe st ~pe:2 (iv 1. 2.);
  Resource_state.rollback st inner;
  Alcotest.(check (float 0.)) "inner undone, outer kept" 1.
    (Resource_state.earliest_pe_gap st ~pe:2 ~after:0. ~duration:1.);
  Resource_state.rollback st outer;
  Alcotest.(check (float 0.)) "all undone" 0.
    (Resource_state.earliest_pe_gap st ~pe:2 ~after:0. ~duration:1.)

let test_route_gap_merges_links () =
  let st = Resource_state.create platform in
  let l01 = { Noc_noc.Routing.from_node = 0; to_node = 1 } in
  let l12 = { Noc_noc.Routing.from_node = 1; to_node = 2 } in
  Resource_state.reserve_link st l01 (iv 0. 4.);
  Resource_state.reserve_link st l12 (iv 6. 10.);
  (* The path is free only in [4, 6) and after 10. *)
  Alcotest.(check (float 0.)) "short window" 4.
    (Resource_state.earliest_route_gap st ~route:[ l01; l12 ] ~after:0. ~duration:2.);
  Alcotest.(check (float 0.)) "long window" 10.
    (Resource_state.earliest_route_gap st ~route:[ l01; l12 ] ~after:0. ~duration:3.)

(* ------------------------------------------------------------------ *)
(* Comm_sched *)

let pending edge src_pe sender_finish bits = { Comm_sched.edge; src_pe; sender_finish; bits }

let test_same_tile_transaction () =
  let st = Resource_state.create platform in
  let tr = Comm_sched.place st (pending 0 4 12. 1_000.) ~dst_pe:4 in
  Alcotest.(check (float 0.)) "instantaneous" 12. tr.Schedule.start;
  Alcotest.(check (float 0.)) "zero duration" 12. tr.Schedule.finish;
  Alcotest.(check (list int)) "route is the tile" [ 4 ] tr.Schedule.route

let test_transaction_duration () =
  let st = Resource_state.create platform in
  let tr = Comm_sched.place st (pending 0 0 5. 300.) ~dst_pe:2 in
  Alcotest.(check (float 1e-9)) "starts at sender finish" 5. tr.Schedule.start;
  Alcotest.(check (float 1e-9)) "duration = bits / bandwidth" 8. tr.Schedule.finish;
  Alcotest.(check (list int)) "xy route" [ 0; 1; 2 ] tr.Schedule.route

let test_contention_serialises () =
  let st = Resource_state.create platform in
  let tr1 = Comm_sched.place st (pending 0 0 0. 500.) ~dst_pe:2 in
  (* Second transaction shares link 1->2; must wait for the first. *)
  let tr2 = Comm_sched.place st (pending 1 1 0. 500.) ~dst_pe:2 in
  Alcotest.(check (float 1e-9)) "first at time 0" 0. tr1.Schedule.start;
  Alcotest.(check (float 1e-9)) "second serialised" 5. tr2.Schedule.start

let test_disjoint_routes_parallel () =
  let st = Resource_state.create platform in
  let tr1 = Comm_sched.place st (pending 0 0 0. 500.) ~dst_pe:1 in
  let tr2 = Comm_sched.place st (pending 1 3 0. 500.) ~dst_pe:4 in
  Alcotest.(check (float 0.)) "both at 0 (a)" 0. tr1.Schedule.start;
  Alcotest.(check (float 0.)) "both at 0 (b)" 0. tr2.Schedule.start

let test_fixed_delay_ignores_contention () =
  let st = Resource_state.create platform in
  let tr1 =
    Comm_sched.place ~model:Comm_sched.Fixed_delay st (pending 0 0 0. 500.) ~dst_pe:2
  in
  let tr2 =
    Comm_sched.place ~model:Comm_sched.Fixed_delay st (pending 1 1 0. 500.) ~dst_pe:2
  in
  Alcotest.(check (float 0.)) "first at 0" 0. tr1.Schedule.start;
  Alcotest.(check (float 0.)) "second also at 0 (conflict ignored)" 0. tr2.Schedule.start

let test_schedule_incoming_sorts_and_drt () =
  let st = Resource_state.create platform in
  (* Two senders finishing at 10 and 2; Fig. 3 sorts by sender finish. *)
  let lct = [ pending 0 0 10. 300.; pending 1 1 2. 300. ] in
  let transactions, drt = Comm_sched.schedule_incoming st lct ~dst_pe:2 in
  (match transactions with
  | [ first; second ] ->
    Alcotest.(check int) "earlier sender scheduled first" 1 first.Schedule.edge;
    Alcotest.(check (float 1e-9)) "first starts at its sender finish" 2.
      first.Schedule.start;
    (* Edge 0's route 0->1->2 shares link 1->2 with edge 1 (1->2), which
       occupies [2, 5); sender finish 10 >= 5 so no extra wait. *)
    Alcotest.(check (float 1e-9)) "second at sender finish" 10. second.Schedule.start
  | _ -> Alcotest.fail "expected two transactions");
  Alcotest.(check (float 1e-9)) "DRT is the latest arrival" 13. drt

let test_schedule_incoming_empty () =
  let st = Resource_state.create platform in
  let transactions, drt = Comm_sched.schedule_incoming st [] ~dst_pe:0 in
  Alcotest.(check int) "no transactions" 0 (List.length transactions);
  Alcotest.(check (float 0.)) "DRT zero" 0. drt

let test_zero_volume_transaction () =
  let st = Resource_state.create platform in
  let tr = Comm_sched.place st (pending 0 0 3. 0.) ~dst_pe:8 in
  Alcotest.(check (float 0.)) "instantaneous" 3. tr.Schedule.finish

let suite =
  [
    Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
    Alcotest.test_case "schedule order enforced" `Quick test_schedule_order_enforced;
    Alcotest.test_case "tasks_on_pe sorted" `Quick test_tasks_on_pe_sorted;
    Alcotest.test_case "reserve and gap" `Quick test_reserve_and_gap;
    Alcotest.test_case "rollback undoes everything" `Quick test_rollback_undoes_everything;
    Alcotest.test_case "nested marks" `Quick test_nested_marks;
    Alcotest.test_case "route gap merges links" `Quick test_route_gap_merges_links;
    Alcotest.test_case "same-tile transaction" `Quick test_same_tile_transaction;
    Alcotest.test_case "transaction duration" `Quick test_transaction_duration;
    Alcotest.test_case "contention serialises" `Quick test_contention_serialises;
    Alcotest.test_case "disjoint routes parallel" `Quick test_disjoint_routes_parallel;
    Alcotest.test_case "fixed delay ignores contention" `Quick
      test_fixed_delay_ignores_contention;
    Alcotest.test_case "incoming sorted, DRT" `Quick test_schedule_incoming_sorts_and_drt;
    Alcotest.test_case "incoming empty" `Quick test_schedule_incoming_empty;
    Alcotest.test_case "zero volume" `Quick test_zero_volume_transaction;
  ]
