(* Tests for Noc_sched.Metrics: Eq. (3) energy accounting. *)

module Schedule = Noc_sched.Schedule
module Metrics = Noc_sched.Metrics
module Platform = Noc_noc.Platform

(* 2x2 mesh, E_Sbit = 1, E_Lbit = 2, bandwidth 100. *)
let platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:2)
    ~pes:(Array.init 4 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~energy:(Noc_noc.Energy_model.make ~e_sbit:1. ~e_lbit:2.)
    ~link_bandwidth:100. ()

(* Task 0 (energy 5/7/9/11 across PEs) feeds task 1 (energy 2/4/6/8)
   through 100 bits; task 1 has deadline 50. *)
let ctg =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 =
    Noc_ctg.Builder.add_task b ~exec_times:[| 10.; 10.; 10.; 10. |]
      ~energies:[| 5.; 7.; 9.; 11. |] ()
  in
  let t1 =
    Noc_ctg.Builder.add_task b ~exec_times:[| 10.; 10.; 10.; 10. |]
      ~energies:[| 2.; 4.; 6.; 8. |] ~deadline:50. ()
  in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t1 ~volume:100.;
  Noc_ctg.Builder.build_exn b

let schedule ~pe0 ~pe1 ~t1_start =
  let same = pe0 = pe1 in
  let tr_start = 10. in
  let tr_finish = if same then 10. else 11. in
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = pe0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = pe1; start = t1_start; finish = t1_start +. 10. };
      |]
    ~transactions:
      [|
        {
          Schedule.edge = 0;
          src_pe = pe0;
          dst_pe = pe1;
          route = Platform.route platform ~src:pe0 ~dst:pe1;
          start = tr_start;
          finish = tr_finish;
        };
      |]

let test_energy_same_tile () =
  let m = Metrics.compute platform ctg (schedule ~pe0:0 ~pe1:0 ~t1_start:10.) in
  Alcotest.(check (float 1e-9)) "computation" 7. m.computation_energy;
  Alcotest.(check (float 1e-9)) "no communication" 0. m.communication_energy;
  Alcotest.(check (float 1e-9)) "total" 7. m.total_energy;
  Alcotest.(check (float 1e-9)) "avg hops zero" 0. m.average_hops

let test_energy_adjacent_tiles () =
  (* PE 0 -> PE 1: 2 routers, 1 link -> per bit 2*1 + 1*2 = 4; 100 bits ->
     400. Computation: 5 (t0 on pe0) + 4 (t1 on pe1). *)
  let m = Metrics.compute platform ctg (schedule ~pe0:0 ~pe1:1 ~t1_start:11.) in
  Alcotest.(check (float 1e-9)) "computation" 9. m.computation_energy;
  Alcotest.(check (float 1e-9)) "communication" 400. m.communication_energy;
  Alcotest.(check (float 1e-9)) "total is Eq. 3" 409. m.total_energy;
  Alcotest.(check (float 1e-9)) "avg hops" 2. m.average_hops

let test_energy_diagonal () =
  (* PE 0 -> PE 3: distance 2 -> 3 routers, 2 links -> 3 + 4 = 7/bit. *)
  let m = Metrics.compute platform ctg (schedule ~pe0:0 ~pe1:3 ~t1_start:11.) in
  Alcotest.(check (float 1e-9)) "communication" 700. m.communication_energy;
  Alcotest.(check (float 1e-9)) "avg hops" 3. m.average_hops

let test_makespan_and_misses () =
  let m = Metrics.compute platform ctg (schedule ~pe0:0 ~pe1:0 ~t1_start:45.) in
  Alcotest.(check (float 1e-9)) "makespan" 55. m.makespan;
  Alcotest.(check int) "one miss" 1 (Metrics.miss_count m);
  (match m.deadline_misses with
  | [ (task, lateness) ] ->
    Alcotest.(check int) "task 1" 1 task;
    Alcotest.(check (float 1e-9)) "lateness" 5. lateness
  | _ -> Alcotest.fail "expected one miss");
  let ok = Metrics.compute platform ctg (schedule ~pe0:0 ~pe1:0 ~t1_start:10.) in
  Alcotest.(check int) "no miss" 0 (Metrics.miss_count ok)

let test_energy_of_assignment_matches_compute () =
  let s = schedule ~pe0:0 ~pe1:3 ~t1_start:11. in
  let m = Metrics.compute platform ctg s in
  let by_assignment =
    Metrics.energy_of_assignment platform ctg (fun task ->
        (Schedule.placement s task).Schedule.pe)
  in
  Alcotest.(check (float 1e-9)) "Eq. 3 only depends on the assignment"
    m.total_energy by_assignment

let test_control_edges_excluded_from_hops () =
  (* A graph whose only arc is control (volume 0): average hops is 0. *)
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 = Noc_ctg.Builder.add_uniform_task b ~time:1. ~energy:1. () in
  let t1 = Noc_ctg.Builder.add_uniform_task b ~time:1. ~energy:1. () in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t1 ~volume:0.;
  let g = Noc_ctg.Builder.build_exn b in
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 1. };
          { Schedule.task = 1; pe = 3; start = 1.; finish = 2. };
        |]
      ~transactions:
        [|
          {
            Schedule.edge = 0;
            src_pe = 0;
            dst_pe = 3;
            route = Platform.route platform ~src:0 ~dst:3;
            start = 1.;
            finish = 1.;
          };
        |]
  in
  let m = Metrics.compute platform g s in
  Alcotest.(check (float 0.)) "no data packets" 0. m.average_hops;
  Alcotest.(check (float 0.)) "no communication energy" 0. m.communication_energy

let suite =
  [
    Alcotest.test_case "energy, same tile" `Quick test_energy_same_tile;
    Alcotest.test_case "energy, adjacent tiles" `Quick test_energy_adjacent_tiles;
    Alcotest.test_case "energy, diagonal" `Quick test_energy_diagonal;
    Alcotest.test_case "makespan and misses" `Quick test_makespan_and_misses;
    Alcotest.test_case "energy_of_assignment = compute" `Quick
      test_energy_of_assignment_matches_compute;
    Alcotest.test_case "control edges excluded from hops" `Quick
      test_control_edges_excluded_from_hops;
  ]
