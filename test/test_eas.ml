(* End-to-end tests for the EAS scheduler (Level_sched + Repair + Eas)
   and its Rebuild substrate. *)

module Eas = Noc_eas.Eas
module Budget = Noc_eas.Budget
module Level_sched = Noc_eas.Level_sched
module Rebuild = Noc_eas.Rebuild
module Repair = Noc_eas.Repair
module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate
module Metrics = Noc_sched.Metrics
module Platform = Noc_noc.Platform
module Builder = Noc_ctg.Builder

(* A 1x2 platform with a slow efficient PE 0 and a fast hungry PE 1. *)
let two_pe_platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
    ~pes:
      [|
        Noc_noc.Pe.make ~index:0 ~kind:Noc_noc.Pe.Risc_lowpower ~time_factor:2.
          ~power_factor:0.25;
        Noc_noc.Pe.make ~index:1 ~kind:Noc_noc.Pe.Risc_fast ~time_factor:0.5
          ~power_factor:4.;
      |]
    ~link_bandwidth:1_000. ()

(* One task: 100/25 time units, 10/40 energy on PEs 0/1. *)
let single_task ~deadline =
  let b = Builder.create ~n_pes:2 in
  ignore
    (Builder.add_task b ~exec_times:[| 100.; 25. |] ~energies:[| 10.; 40. |]
       ?deadline ());
  Builder.build_exn b

let test_loose_deadline_prefers_efficiency () =
  let ctg = single_task ~deadline:(Some 500.) in
  let s = (Eas.schedule two_pe_platform ctg).Eas.schedule in
  Alcotest.(check int) "efficient PE chosen" 0 (Schedule.placement s 0).Schedule.pe

let test_tight_deadline_forces_speed () =
  let ctg = single_task ~deadline:(Some 30.) in
  let s = (Eas.schedule two_pe_platform ctg).Eas.schedule in
  Alcotest.(check int) "fast PE forced" 1 (Schedule.placement s 0).Schedule.pe;
  Alcotest.(check int) "deadline met" 0
    (List.length (Metrics.compute two_pe_platform ctg s).Metrics.deadline_misses)

let test_no_deadline_is_pure_energy_minimisation () =
  let ctg = single_task ~deadline:None in
  let s = (Eas.schedule two_pe_platform ctg).Eas.schedule in
  Alcotest.(check int) "cheapest PE" 0 (Schedule.placement s 0).Schedule.pe

(* Communication-aware placement: two communicating tasks with equal
   computation costs everywhere must land on the same tile, because the
   arc is expensive. *)
let test_communication_clusters_tasks () =
  let platform = Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:5. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:5. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1_000_000.;
  let ctg = Builder.build_exn b in
  let s = (Eas.schedule platform ctg).Eas.schedule in
  Alcotest.(check int) "same tile"
    (Schedule.placement s 0).Schedule.pe
    (Schedule.placement s 1).Schedule.pe

let category_platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 60) ?(tightness = 1.8) seed =
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_tgff.Generate.generate ~params ~platform:category_platform ~seed

let test_deterministic () =
  let ctg = random_ctg 3 in
  let s1 = (Eas.schedule category_platform ctg).Eas.schedule in
  let s2 = (Eas.schedule category_platform ctg).Eas.schedule in
  Alcotest.(check bool) "same schedules" true
    (Schedule.placements s1 = Schedule.placements s2
    && Schedule.transactions s1 = Schedule.transactions s2)

let test_stats_consistency () =
  let ctg = random_ctg ~tightness:1.3 17 in
  let outcome = Eas.schedule category_platform ctg in
  let actual_misses =
    List.length
      (Metrics.compute category_platform ctg outcome.Eas.schedule).Metrics.deadline_misses
  in
  Alcotest.(check int) "misses_after_repair matches metrics"
    outcome.Eas.stats.Eas.misses_after_repair actual_misses;
  Alcotest.(check bool) "repair never hurts" true
    (outcome.Eas.stats.Eas.misses_after_repair
    <= outcome.Eas.stats.Eas.misses_before_repair)

let test_names () =
  Alcotest.(check string) "EAS" "EAS" (Eas.name ~repair:true);
  Alcotest.(check string) "EAS-base" "EAS-base" (Eas.name ~repair:false)

(* ------------------------------------------------------------------ *)
(* Rebuild *)

let test_rebuild_roundtrip () =
  let ctg = random_ctg 5 in
  let s = (Eas.schedule category_platform ctg).Eas.schedule in
  let assignment, rank = Rebuild.of_schedule s in
  let rebuilt = Rebuild.run category_platform ctg ~assignment ~rank in
  (* Same assignment... *)
  for i = 0 to Noc_ctg.Ctg.n_tasks ctg - 1 do
    Alcotest.(check int) "assignment preserved"
      (Schedule.placement s i).Schedule.pe
      (Schedule.placement rebuilt i).Schedule.pe
  done;
  (* ...and still resource-feasible (deadlines aside). *)
  let hard =
    Validate.check category_platform ctg rebuilt
    |> List.filter (function Validate.Deadline_miss _ -> false | _ -> true)
  in
  Alcotest.(check int) "rebuild feasible" 0 (List.length hard)

let test_rebuild_validates_input () =
  let ctg = random_ctg 5 in
  let n = Noc_ctg.Ctg.n_tasks ctg in
  Alcotest.(check bool) "bad PE rejected" true
    (try
       ignore
         (Rebuild.run category_platform ctg ~assignment:(Array.make n 99)
            ~rank:(Array.init n Fun.id));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Repair *)

let test_critical_tasks_marking () =
  (* Chain 0 -> 1 where 1 misses: both are critical (ancestors marked). *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:15. () in
  let t2 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:0.;
  ignore t2;
  let ctg = Builder.build_exn b in
  let s =
    Schedule.make
      ~placements:
        [|
          { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
          { Schedule.task = 1; pe = 0; start = 10.; finish = 20. };
          { Schedule.task = 2; pe = 1; start = 0.; finish = 10. };
        |]
      ~transactions:
        [|
          {
            Schedule.edge = 0;
            src_pe = 0;
            dst_pe = 0;
            route = [ 0 ];
            start = 10.;
            finish = 10.;
          };
        |]
  in
  let critical = Repair.critical_tasks ctg s in
  Alcotest.(check (array bool)) "chain critical, bystander not"
    [| true; true; false |] critical

let test_repair_fixes_misses () =
  (* Find a seed where EAS-base misses, then check repair clears it. *)
  let tightness = 1.25 in
  let found = ref None in
  for seed = 0 to 20 do
    if !found = None then begin
      let ctg = random_ctg ~n_tasks:50 ~tightness seed in
      let base = Eas.schedule ~repair:false category_platform ctg in
      if base.Eas.stats.Eas.misses_before_repair > 0 then found := Some (ctg, base)
    end
  done;
  match !found with
  | None -> Alcotest.fail "calibration: no missing seed found"
  | Some (ctg, base) ->
    let repaired, stats =
      Repair.run category_platform ctg base.Eas.schedule
    in
    let misses =
      List.length (Metrics.compute category_platform ctg repaired).Metrics.deadline_misses
    in
    Alcotest.(check bool) "missed fewer deadlines" true
      (misses < base.Eas.stats.Eas.misses_before_repair);
    Alcotest.(check bool) "did some work" true (stats.Repair.evaluations > 0);
    let hard =
      Validate.check category_platform ctg repaired
      |> List.filter (function Validate.Deadline_miss _ -> false | _ -> true)
    in
    Alcotest.(check int) "repaired schedule stays feasible" 0 (List.length hard)

let test_repair_noop_on_clean_schedule () =
  let ctg = random_ctg 1 in
  let s = (Eas.schedule ~repair:false category_platform ctg).Eas.schedule in
  let repaired, stats = Repair.run category_platform ctg s in
  Alcotest.(check int) "no evaluations" 0 stats.Repair.evaluations;
  Alcotest.(check bool) "schedule unchanged" true (repaired == s)

(* ------------------------------------------------------------------ *)
(* Feasibility properties *)

let qcheck_eas_schedules_feasible =
  QCheck.Test.make ~name:"EAS schedules are always resource-feasible" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctg = random_ctg ~n_tasks:40 seed in
      let s = (Eas.schedule category_platform ctg).Eas.schedule in
      Validate.check category_platform ctg s
      |> List.for_all (function Validate.Deadline_miss _ -> true | _ -> false))

let qcheck_eas_base_schedules_feasible =
  QCheck.Test.make ~name:"EAS-base schedules are always resource-feasible"
    ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctg = random_ctg ~n_tasks:40 ~tightness:1.2 seed in
      let s = (Eas.schedule ~repair:false category_platform ctg).Eas.schedule in
      Validate.check category_platform ctg s
      |> List.for_all (function Validate.Deadline_miss _ -> true | _ -> false))

let test_eas_beats_edf_on_energy () =
  (* Statistical, not per-seed: across 8 seeds EAS must win on average
     and on a clear majority. *)
  let wins = ref 0 and total_eas = ref 0. and total_edf = ref 0. in
  for seed = 0 to 7 do
    let ctg = random_ctg ~n_tasks:60 seed in
    let eas = (Eas.schedule category_platform ctg).Eas.schedule in
    let edf = (Noc_edf.Edf.schedule category_platform ctg).Noc_edf.Edf.schedule in
    let e s = (Metrics.compute category_platform ctg s).Metrics.total_energy in
    if e eas < e edf then incr wins;
    total_eas := !total_eas +. e eas;
    total_edf := !total_edf +. e edf
  done;
  Alcotest.(check bool) "wins a clear majority" true (!wins >= 6);
  Alcotest.(check bool) "wins on average" true (!total_eas < !total_edf)

let suite =
  [
    Alcotest.test_case "loose deadline prefers efficiency" `Quick
      test_loose_deadline_prefers_efficiency;
    Alcotest.test_case "tight deadline forces speed" `Quick
      test_tight_deadline_forces_speed;
    Alcotest.test_case "no deadline: energy minimisation" `Quick
      test_no_deadline_is_pure_energy_minimisation;
    Alcotest.test_case "communication clusters tasks" `Quick
      test_communication_clusters_tasks;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
    Alcotest.test_case "configuration names" `Quick test_names;
    Alcotest.test_case "rebuild roundtrip" `Quick test_rebuild_roundtrip;
    Alcotest.test_case "rebuild validates input" `Quick test_rebuild_validates_input;
    Alcotest.test_case "critical task marking" `Quick test_critical_tasks_marking;
    Alcotest.test_case "repair fixes misses" `Slow test_repair_fixes_misses;
    Alcotest.test_case "repair no-op when clean" `Quick test_repair_noop_on_clean_schedule;
    QCheck_alcotest.to_alcotest qcheck_eas_schedules_feasible;
    QCheck_alcotest.to_alcotest qcheck_eas_base_schedules_feasible;
    Alcotest.test_case "EAS beats EDF on energy" `Slow test_eas_beats_edf_on_energy;
  ]
