(* Tests for the buffering-energy measurement and the SVG exporter. *)

module Executor = Noc_sim.Executor
module Buffer_energy = Noc_sim.Buffer_energy
module Svg_gantt = Noc_sched.Svg_gantt

let platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 80) ?(tightness = 1.4) seed =
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let test_aware_buffering_zero () =
  for seed = 0 to 2 do
    let ctg = random_ctg seed in
    let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
    let replay = Executor.run platform ctg s in
    Alcotest.(check (float 1e-9)) "no buffering for aware schedules" 0.
      (Buffer_energy.estimate ctg replay)
  done

let test_fixed_buffering_positive () =
  let positive = ref false in
  for seed = 0 to 4 do
    let ctg = random_ctg ~n_tasks:120 seed in
    let s =
      (Noc_eas.Eas.schedule ~comm_model:Noc_sched.Comm_sched.Fixed_delay platform ctg)
        .Noc_eas.Eas.schedule
    in
    let replay = Executor.run platform ctg s in
    if Buffer_energy.estimate ctg replay > 0. then positive := true
  done;
  Alcotest.(check bool) "fixed-delay schedules buffer somewhere" true !positive

let test_per_edge_consistency () =
  let ctg = random_ctg ~n_tasks:120 2 in
  let s =
    (Noc_eas.Eas.schedule ~comm_model:Noc_sched.Comm_sched.Fixed_delay platform ctg)
      .Noc_eas.Eas.schedule
  in
  let replay = Executor.run platform ctg s in
  let per_edge = Buffer_energy.per_edge ctg replay in
  Alcotest.(check int) "one entry per edge" (Noc_ctg.Ctg.n_edges ctg)
    (Array.length per_edge);
  Alcotest.(check (float 1e-6)) "sum matches estimate"
    (Buffer_energy.estimate ctg replay)
    (Array.fold_left ( +. ) 0. per_edge);
  Array.iter
    (fun e -> Alcotest.(check bool) "non-negative" true (e >= 0.))
    per_edge;
  (* Edge waiting sums to the executor's global counter (scaled by
     volume in the energy, so compare the raw waits). *)
  Alcotest.(check (float 1e-6)) "edge waits sum to total"
    replay.Executor.waiting_time
    (Array.fold_left ( +. ) 0. replay.Executor.edge_waiting)

let test_scaling_with_e_bbit () =
  let ctg = random_ctg ~n_tasks:120 0 in
  let s =
    (Noc_eas.Eas.schedule ~comm_model:Noc_sched.Comm_sched.Fixed_delay platform ctg)
      .Noc_eas.Eas.schedule
  in
  let replay = Executor.run platform ctg s in
  let base = Buffer_energy.estimate ~e_bbit:1e-5 ctg replay in
  let double = Buffer_energy.estimate ~e_bbit:2e-5 ctg replay in
  Alcotest.(check (float 1e-6)) "linear in e_bbit" (2. *. base) double

let test_buffering_experiment_shape () =
  let rows = Noc_experiments.Buffering.run ~seeds:[ 0; 1 ] () in
  List.iter
    (fun (r : Noc_experiments.Buffering.row) ->
      Alcotest.(check (float 1e-9)) "aware is zero" 0.
        r.Noc_experiments.Buffering.aware_buffer_energy;
      Alcotest.(check bool) "comm energy positive" true
        (r.Noc_experiments.Buffering.comm_energy > 0.))
    rows;
  Alcotest.(check bool) "render works" true
    (String.length (Noc_experiments.Buffering.render rows) > 0)

(* ------------------------------------------------------------------ *)
(* SVG export *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_svg_well_formed () =
  let ctg = random_ctg ~n_tasks:20 1 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let svg = Svg_gantt.render platform ctg s in
  Alcotest.(check bool) "opens svg" true (contains svg "<svg ");
  Alcotest.(check bool) "closes svg" true (contains svg "</svg>");
  Alcotest.(check bool) "has PE lanes" true (contains svg "pe 0");
  Alcotest.(check bool) "has task rects" true (contains svg "<rect");
  (* Every '<' has a matching '>' count-wise (cheap well-formedness). *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 svg in
  Alcotest.(check int) "balanced angle brackets" (count '<') (count '>')

let test_svg_links_toggle () =
  let ctg = random_ctg ~n_tasks:20 1 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let with_links = Svg_gantt.render platform ctg s in
  let without = Svg_gantt.render ~show_links:false platform ctg s in
  Alcotest.(check bool) "links shown by default" true (contains with_links "link ");
  Alcotest.(check bool) "links hidden on demand" false (contains without "link ")

let test_svg_marks_misses () =
  (* Construct a certain miss and check the red outline appears. *)
  let b = Noc_ctg.Builder.create ~n_pes:2 in
  ignore
    (Noc_ctg.Builder.add_task b ~exec_times:[| 100.; 100. |]
       ~energies:[| 1.; 1. |] ~deadline:50. ());
  let ctg = Noc_ctg.Builder.build_exn b in
  let p2 = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:1 in
  let s = (Noc_eas.Eas.schedule p2 ctg).Noc_eas.Eas.schedule in
  let svg = Svg_gantt.render p2 ctg s in
  Alcotest.(check bool) "missed task outlined red" true (contains svg "#d00")

let test_svg_save () =
  let ctg = random_ctg ~n_tasks:10 2 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let path = Filename.temp_file "nocsched" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg_gantt.save ~path platform ctg s;
      let text = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "file written" true (contains text "</svg>"))

let test_svg_escapes_names () =
  let b = Noc_ctg.Builder.create ~n_pes:2 in
  ignore
    (Noc_ctg.Builder.add_task b ~name:"a<b&c" ~exec_times:[| 10.; 10. |]
       ~energies:[| 1.; 1. |] ());
  let ctg = Noc_ctg.Builder.build_exn b in
  let p2 = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:1 in
  let s = (Noc_eas.Eas.schedule p2 ctg).Noc_eas.Eas.schedule in
  let svg = Svg_gantt.render p2 ctg s in
  Alcotest.(check bool) "escaped" true (contains svg "a&lt;b&amp;c");
  Alcotest.(check bool) "raw name absent" false (contains svg ">a<b&c<")

let suite =
  [
    Alcotest.test_case "aware buffering is zero" `Slow test_aware_buffering_zero;
    Alcotest.test_case "fixed buffering positive" `Slow test_fixed_buffering_positive;
    Alcotest.test_case "per-edge consistency" `Quick test_per_edge_consistency;
    Alcotest.test_case "linear in e_bbit" `Quick test_scaling_with_e_bbit;
    Alcotest.test_case "buffering experiment shape" `Slow test_buffering_experiment_shape;
    Alcotest.test_case "svg well-formed" `Quick test_svg_well_formed;
    Alcotest.test_case "svg links toggle" `Quick test_svg_links_toggle;
    Alcotest.test_case "svg marks misses" `Quick test_svg_marks_misses;
    Alcotest.test_case "svg save" `Quick test_svg_save;
    Alcotest.test_case "svg escapes names" `Quick test_svg_escapes_names;
  ]
