(* Fault-aware execution semantics of Noc_sim.Executor: transient link
   faults stall transactions until recovery (exact timing), permanent PE
   faults lose work and miss deadlines, fault onsets kill in-flight
   tasks, and the empty fault set reproduces fault-free replay. *)

module Schedule = Noc_sched.Schedule
module Executor = Noc_sim.Executor
module Fault_set = Noc_fault.Fault_set
module Platform = Noc_noc.Platform

let platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:2)
    ~pes:(Array.init 4 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

(* One producer/consumer pair: t0 (pe 0, [0, 10]) sends 500 bits over
   route 0-1-3 ([10, 15]) to t1 (pe 3, [15, 25], deadline 100). *)
let ctg =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 =
    Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. ~deadline:100. ()
  in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t1 ~volume:500.;
  Noc_ctg.Builder.build_exn b

let schedule () =
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = 3; start = 15.; finish = 25. };
      |]
    ~transactions:
      [|
        {
          Schedule.edge = 0;
          src_pe = 0;
          dst_pe = 3;
          route = Platform.route platform ~src:0 ~dst:3;
          start = 10.;
          finish = 15.;
        };
      |]

let faults_of specs =
  match Fault_set.of_strings specs with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_strings: %s" msg

let check_float = Alcotest.(check (float 1e-9))

let test_transient_link_stalls_transaction () =
  (* Link 0->1 is down over [5, 18): the transaction is eligible at 10
     but may not enter its route until the recovery boundary, then runs
     to completion undisturbed. *)
  let faults = faults_of [ "link:0-1@5:18" ] in
  let outcome = Executor.run ~faults platform ctg (schedule ()) in
  let tr = Schedule.transaction outcome.realised 0 in
  check_float "stalled until recovery" 18. tr.Schedule.start;
  check_float "full occupancy after entry" 23. tr.Schedule.finish;
  let p1 = Schedule.placement outcome.realised 1 in
  check_float "consumer waits for data" 23. p1.Schedule.start;
  check_float "consumer finish" 33. p1.Schedule.finish;
  Alcotest.(check (list int)) "nothing lost" [] outcome.lost_tasks;
  Alcotest.(check (list int)) "deadline still met" [] outcome.deadline_misses;
  check_float "blocked time recorded" 8. outcome.waiting_time

let test_recovered_fault_is_harmless () =
  (* The fault clears before the transaction is released: replay is
     identical to the fault-free one. *)
  let faults = faults_of [ "link:0-1@2:8" ] in
  let outcome = Executor.run ~faults platform ctg (schedule ()) in
  let tr = Schedule.transaction outcome.realised 0 in
  check_float "undisturbed start" 10. tr.Schedule.start;
  check_float "undisturbed finish" 15. tr.Schedule.finish;
  Alcotest.(check (list int)) "no losses" [] outcome.lost_tasks

let test_permanent_pe_fault_loses_work () =
  let faults = faults_of [ "pe:3" ] in
  let outcome = Executor.run ~faults platform ctg (schedule ()) in
  Alcotest.(check (list int)) "consumer lost" [ 1 ] outcome.lost_tasks;
  Alcotest.(check (list int)) "its deadline missed" [ 1 ] outcome.deadline_misses;
  let p1 = Schedule.placement outcome.realised 1 in
  Alcotest.(check bool) "lost task carries infinity" true
    (p1.Schedule.finish = infinity);
  (* The producer and its transaction still run: only the consumer's
     core is down, not its router. *)
  let p0 = Schedule.placement outcome.realised 0 in
  check_float "producer unaffected" 10. p0.Schedule.finish;
  check_float "transaction delivered" 15.
    (Schedule.transaction outcome.realised 0).Schedule.finish

let test_fault_onset_kills_running_task () =
  (* PE 0 dies at t = 5, mid-way through t0: the execution is killed,
     the transaction never becomes eligible, t1 starves. *)
  let faults = faults_of [ "pe:0@5:" ] in
  let outcome = Executor.run ~faults platform ctg (schedule ()) in
  Alcotest.(check (list int)) "both tasks lost" [ 0; 1 ] outcome.lost_tasks;
  Alcotest.(check (list int)) "deadline task missed" [ 1 ]
    outcome.deadline_misses;
  Alcotest.(check bool) "killed task never finishes" true
    ((Schedule.placement outcome.realised 0).Schedule.finish = infinity);
  Alcotest.(check bool) "starved transaction never runs" true
    ((Schedule.transaction outcome.realised 0).Schedule.start = infinity)

let test_empty_fault_set_is_identity () =
  let s = schedule () in
  let plain = Executor.run platform ctg s in
  let faulted = Executor.run ~faults:Fault_set.empty platform ctg s in
  Alcotest.(check bool) "same realised placements" true
    (Schedule.placements plain.realised = Schedule.placements faulted.realised);
  Alcotest.(check bool) "same realised transactions" true
    (Schedule.transactions plain.realised
    = Schedule.transactions faulted.realised);
  Alcotest.(check (list int)) "no losses" [] faulted.lost_tasks;
  Alcotest.(check (list int)) "no misses" [] faulted.deadline_misses;
  (* Conflict-free time-triggered replay reproduces the table. *)
  Alcotest.(check bool) "table reproduced" true
    (Schedule.placements faulted.realised = Schedule.placements s)

let suite =
  [
    Alcotest.test_case "transient link fault stalls until recovery" `Quick
      test_transient_link_stalls_transaction;
    Alcotest.test_case "fault recovered before release is harmless" `Quick
      test_recovered_fault_is_harmless;
    Alcotest.test_case "permanent PE fault loses the consumer" `Quick
      test_permanent_pe_fault_loses_work;
    Alcotest.test_case "fault onset kills the running task" `Quick
      test_fault_onset_kills_running_task;
    Alcotest.test_case "empty fault set replays identically" `Quick
      test_empty_fault_set_is_identity;
  ]
