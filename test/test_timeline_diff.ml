(* Differential tests: the indexed Timeline against the naive
   Timeline_reference model.

   Random operation traces — reserve (possibly overlapping, possibly
   empty), release of a live slot, gap queries, snapshot/rollback,
   utilisation, span — are replayed against both implementations; every
   observation must agree, including which reserves raise. Values are
   drawn from a small integer grid so collisions, touching intervals and
   exact-duration fits all occur constantly. *)

module Timeline = Noc_util.Timeline
module Reference = Noc_util.Timeline_reference
module Interval = Noc_util.Interval

type op =
  | Reserve of int * int (* start, length (0 = empty interval) *)
  | Release_nth of int (* index into the live busy list, mod its size *)
  | Gap of int * int (* after, duration *)
  | Is_free of int * int
  | Snapshot
  | Restore
  | Utilisation of int (* horizon - 1 *)
  | Span

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun s l -> Reserve (s, l)) (int_bound 60) (int_bound 6));
        (2, map (fun i -> Release_nth i) (int_bound 1000));
        (4, map2 (fun a d -> Gap (a, d)) (int_bound 70) (int_bound 8));
        (2, map2 (fun a d -> Is_free (a, d)) (int_bound 70) (int_bound 8));
        (1, return Snapshot);
        (1, return Restore);
        (1, map (fun h -> Utilisation h) (int_bound 80));
        (1, return Span);
      ])

let pp_op = function
  | Reserve (s, l) -> Printf.sprintf "Reserve(%d,%d)" s l
  | Release_nth i -> Printf.sprintf "Release_nth(%d)" i
  | Gap (a, d) -> Printf.sprintf "Gap(%d,%d)" a d
  | Is_free (a, d) -> Printf.sprintf "Is_free(%d,%d)" a d
  | Snapshot -> "Snapshot"
  | Restore -> "Restore"
  | Utilisation h -> Printf.sprintf "Utilisation(%d)" h
  | Span -> "Span"

let trace_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 0 60) op_gen)

let iv start stop = Interval.make ~start ~stop

let same_busy tl rf =
  let a = Timeline.busy tl and b = Reference.busy rf in
  List.length a = List.length b && List.for_all2 Interval.equal a b

(* Replays [ops] on both implementations; returns false (qcheck failure)
   at the first disagreement. *)
let agree ops =
  let tl = Timeline.create () and rf = Reference.create () in
  let snap = ref None in
  let ok = ref true in
  List.iter
    (fun op ->
      if !ok then begin
        (match op with
        | Reserve (s, l) ->
          let interval = iv (float_of_int s) (float_of_int (s + l)) in
          let raised_tl =
            try
              Timeline.reserve tl interval;
              false
            with Invalid_argument _ -> true
          in
          let raised_rf =
            try
              Reference.reserve rf interval;
              false
            with Invalid_argument _ -> true
          in
          if raised_tl <> raised_rf then ok := false
        | Release_nth i ->
          let live = Reference.busy rf in
          (match live with
          | [] -> ()
          | _ ->
            let target = List.nth live (i mod List.length live) in
            Timeline.release tl target;
            Reference.release rf target)
        | Gap (a, d) ->
          let after = float_of_int a and duration = float_of_int d in
          if
            Timeline.earliest_gap tl ~after ~duration
            <> Reference.earliest_gap rf ~after ~duration
          then ok := false
        | Is_free (a, d) ->
          let interval = iv (float_of_int a) (float_of_int (a + d)) in
          if Timeline.is_free tl interval <> Reference.is_free rf interval then
            ok := false
        | Snapshot -> snap := Some (Timeline.snapshot tl, Reference.snapshot rf)
        | Restore ->
          (match !snap with
          | None -> ()
          | Some (st, sr) ->
            Timeline.restore tl st;
            Reference.restore rf sr)
        | Utilisation h ->
          let horizon = float_of_int (h + 1) in
          if
            Float.abs
              (Timeline.utilisation tl ~horizon
              -. Reference.utilisation rf ~horizon)
            > 1e-12
          then ok := false
        | Span -> if Timeline.span tl <> Reference.span rf then ok := false);
        if not (same_busy tl rf) then ok := false
      end)
    ops;
  !ok

let qcheck_traces =
  QCheck.Test.make ~name:"indexed Timeline ≡ reference on random traces"
    ~count:1000 trace_arb agree

(* Multi-timeline operations: reserve across several tables, then compare
   merged_busy and earliest_gap_multi. *)
let multi_arb =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 40)
           (triple (int_bound 2) (int_bound 60) (int_range 1 6)))
        (pair (int_bound 70) (int_bound 8)))

let qcheck_multi =
  QCheck.Test.make ~name:"merged_busy / earliest_gap_multi ≡ reference"
    ~count:1000 multi_arb (fun (reserves, (a, d)) ->
      let tls = Array.init 3 (fun _ -> Timeline.create ()) in
      let rfs = Array.init 3 (fun _ -> Reference.create ()) in
      List.iter
        (fun (which, s, l) ->
          let interval = iv (float_of_int s) (float_of_int (s + l)) in
          if Timeline.is_free tls.(which) interval then begin
            Timeline.reserve tls.(which) interval;
            Reference.reserve rfs.(which) interval
          end)
        reserves;
      let tls = Array.to_list tls and rfs = Array.to_list rfs in
      let after = float_of_int a and duration = float_of_int d in
      let merged_tl = Timeline.merged_busy tls ~after in
      let merged_rf = Reference.merged_busy rfs ~after in
      List.length merged_tl = List.length merged_rf
      && List.for_all2 Interval.equal merged_tl merged_rf
      && Timeline.earliest_gap_multi tls ~after ~duration
         = Reference.earliest_gap_multi rfs ~after ~duration)

(* Regression for the old non-tail-recursive coalesce: merging tables
   whose combined slot count would overflow the stack under non-tail
   recursion must succeed. *)
let test_merged_busy_large () =
  let tl = Timeline.create () in
  let n = 400_000 in
  for i = 0 to n - 1 do
    let start = float_of_int (2 * i) in
    Timeline.reserve tl (iv start (start +. 1.))
  done;
  Alcotest.(check int)
    "all slots survive the merge (none coalesce across unit gaps)" n
    (List.length (Timeline.merged_busy [ tl ] ~after:0.))

let test_release_error_reports_index () =
  let tl = Timeline.create () in
  Timeline.reserve tl (iv 0. 10.);
  Timeline.reserve tl (iv 20. 30.);
  match Timeline.release tl (iv 20. 25.) with
  | () -> Alcotest.fail "release of unknown interval must raise"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S names slot index 1" msg)
      true
      (let contains needle =
         let nl = String.length needle and ml = String.length msg in
         let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
         at 0
       in
       contains "index 1")

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_traces;
    QCheck_alcotest.to_alcotest qcheck_multi;
    Alcotest.test_case "merged_busy on 400k slots" `Quick test_merged_busy_large;
    Alcotest.test_case "release error reports index" `Quick
      test_release_error_reports_index;
  ]
