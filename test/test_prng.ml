(* Tests for Noc_util.Prng. *)

module Prng = Noc_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Prng.int64 a = Prng.int64 b)

let test_int_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1_000 do
    let v = Prng.int rng ~bound:13 in
    Alcotest.(check bool) "0 <= v < 13" true (v >= 0 && v < 13)
  done

let test_int_in_bounds () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in rng ~min:(-5) ~max:5 in
    Alcotest.(check bool) "-5 <= v <= 5" true (v >= -5 && v <= 5)
  done

let test_int_covers_range () =
  let rng = Prng.create ~seed:9 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int rng ~bound:4) <- true
  done;
  Alcotest.(check bool) "all 4 values appear" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Prng.create ~seed:10 in
  for _ = 1 to 1_000 do
    let v = Prng.float rng ~bound:2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_float_in_bounds () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 1_000 do
    let v = Prng.float_in rng ~min:(-1.) ~max:1. in
    Alcotest.(check bool) "in range" true (v >= -1. && v < 1.)
  done

let test_gaussian_moments () =
  let rng = Prng.create ~seed:12 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.gaussian rng ~mean:3. ~stddev:2.) in
  let mean = Noc_util.Stats.mean samples in
  let stddev = Noc_util.Stats.stddev samples in
  Alcotest.(check bool) "mean close to 3" true (Float.abs (mean -. 3.) < 0.1);
  Alcotest.(check bool) "stddev close to 2" true (Float.abs (stddev -. 2.) < 0.1)

let test_lognormal_positive () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "positive" true (Prng.lognormal_factor rng ~sigma:0.5 > 0.)
  done

let test_split_independent () =
  let a = Prng.create ~seed:5 in
  let b = Prng.split a in
  let x = Prng.int64 a and y = Prng.int64 b in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_copy_preserves_state () =
  let a = Prng.create ~seed:6 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.int64 a) (Prng.int64 b)

let test_choose () =
  let rng = Prng.create ~seed:14 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.choose rng arr in
    Alcotest.(check bool) "chosen from array" true (Array.mem v arr)
  done

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:15 in
  for _ = 1 to 50 do
    let sample = Prng.sample_without_replacement rng ~k:5 ~n:20 in
    Alcotest.(check int) "five elements" 5 (List.length sample);
    Alcotest.(check bool) "sorted" true (List.sort compare sample = sample);
    Alcotest.(check int) "distinct" 5
      (List.length (List.sort_uniq compare sample));
    List.iter
      (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20))
      sample
  done

let test_sample_full () =
  let rng = Prng.create ~seed:16 in
  let sample = Prng.sample_without_replacement rng ~k:10 ~n:10 in
  Alcotest.(check (list int)) "k = n samples everything" (List.init 10 Fun.id) sample

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:17 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"prng int never out of bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng ~bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float_in bounds" `Quick test_float_in_bounds;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves_state;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full range" `Quick test_sample_full;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest qcheck_int_uniformish;
  ]
