(* Tests for the serialisation modules (Ctg_io, Schedule_io) and the
   utilization reporter. *)

module Ctg = Noc_ctg.Ctg
module Ctg_io = Noc_ctg.Ctg_io
module Schedule_io = Noc_sched.Schedule_io
module Schedule = Noc_sched.Schedule
module Utilization = Noc_sched.Utilization

let platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 30) seed =
  let params = { Noc_tgff.Params.default with n_tasks } in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let graphs_equal a b =
  Ctg.n_tasks a = Ctg.n_tasks b
  && Ctg.n_edges a = Ctg.n_edges b
  && Array.for_all2
       (fun (x : Noc_ctg.Task.t) (y : Noc_ctg.Task.t) ->
         x.id = y.id && x.name = y.name && x.exec_times = y.exec_times
         && x.energies = y.energies && x.deadline = y.deadline)
       (Ctg.tasks a) (Ctg.tasks b)
  && Array.for_all2
       (fun (x : Noc_ctg.Edge.t) (y : Noc_ctg.Edge.t) ->
         x.id = y.id && x.src = y.src && x.dst = y.dst && x.volume = y.volume)
       (Ctg.edges a) (Ctg.edges b)

let test_ctg_roundtrip () =
  let g = random_ctg 0 in
  match Ctg_io.of_string (Ctg_io.to_string g) with
  | Error msg -> Alcotest.fail msg
  | Ok g' -> Alcotest.(check bool) "exact roundtrip" true (graphs_equal g g')

let qcheck_ctg_roundtrip =
  QCheck.Test.make ~name:"ctg text roundtrip is exact" ~count:30
    QCheck.(int_range 0 5000)
    (fun seed ->
      let g = random_ctg ~n_tasks:20 seed in
      match Ctg_io.of_string (Ctg_io.to_string g) with
      | Error _ -> false
      | Ok g' -> graphs_equal g g')

let test_ctg_file_roundtrip () =
  let g = random_ctg 7 in
  let path = Filename.temp_file "nocsched" ".ctg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ctg_io.save ~path g;
      match Ctg_io.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok g' -> Alcotest.(check bool) "file roundtrip" true (graphs_equal g g'))

let test_ctg_parse_tolerates_noise () =
  let text =
    "# a comment\n\nctg 1\n  pes 2\ntask 0 name a\n  times 1 2\n\
     \  energies 3 4   # trailing comment\ntask 1 name b deadline 10\n\
     \  times 1 1\n  energies 1 1\nedge 0 from 0 to 1 volume 5\n"
  in
  match Ctg_io.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok g ->
    Alcotest.(check int) "two tasks" 2 (Ctg.n_tasks g);
    Alcotest.(check (option (float 0.))) "deadline kept" (Some 10.)
      (Ctg.task g 1).Noc_ctg.Task.deadline

let expect_parse_error text fragment =
  match Ctg_io.of_string text with
  | Ok _ -> Alcotest.fail ("parse unexpectedly succeeded; wanted " ^ fragment)
  | Error msg ->
    let contains =
      let nh = String.length msg and nn = String.length fragment in
      let rec scan i = i + nn <= nh && (String.sub msg i nn = fragment || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true contains

let test_ctg_parse_errors () =
  expect_parse_error "pes 2\n" "ctg 1";
  expect_parse_error "ctg 2\n" "version";
  expect_parse_error "ctg 1\ntask 0 name a\n times 1\n energies 1\n" "pes";
  expect_parse_error "ctg 1\npes 2\ntask 5 name a\n" "dense";
  expect_parse_error "ctg 1\npes 2\ntask 0 name a\n  times 1 2\n" "energies";
  expect_parse_error
    "ctg 1\npes 2\ntask 0 name a\n  times 1\n  energies 1\n" "expected 2";
  expect_parse_error
    "ctg 1\npes 1\ntask 0 name a\n  times 1\n  energies 1\nedge 0 from 0 to 9 volume 1\n"
    "missing task";
  expect_parse_error "ctg 1\npes 1\nbogus line\n" "unknown keyword";
  expect_parse_error
    "ctg 1\npes 1\ntask 0 name a\n  times x\n  energies 1\n" "not a number"

let test_ctg_msb_roundtrip () =
  (* Real-ish content with names and control edges. *)
  let g =
    Noc_msb.Graphs.encoder ~platform:Noc_msb.Platforms.av_2x2
      ~clip:Noc_msb.Profile.Toybox ()
  in
  match Ctg_io.of_string (Ctg_io.to_string g) with
  | Error msg -> Alcotest.fail msg
  | Ok g' -> Alcotest.(check bool) "encoder roundtrip" true (graphs_equal g g')

(* ------------------------------------------------------------------ *)
(* Schedule_io *)

let schedules_equal a b =
  Schedule.placements a = Schedule.placements b
  && Schedule.transactions a = Schedule.transactions b

let test_schedule_roundtrip () =
  let g = random_ctg 3 in
  let s = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
  match Schedule_io.of_string platform g (Schedule_io.to_string s) with
  | Error msg -> Alcotest.fail msg
  | Ok s' ->
    Alcotest.(check bool) "exact roundtrip" true (schedules_equal s s');
    Alcotest.(check bool) "still feasible" true
      (Noc_sched.Validate.is_feasible platform g s')

let test_schedule_file_roundtrip () =
  let g = random_ctg 4 in
  let s = (Noc_edf.Edf.schedule platform g).Noc_edf.Edf.schedule in
  let path = Filename.temp_file "nocsched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule_io.save ~path s;
      match Schedule_io.load ~path platform g with
      | Error msg -> Alcotest.fail msg
      | Ok s' -> Alcotest.(check bool) "file roundtrip" true (schedules_equal s s'))

let test_schedule_parse_errors () =
  let g = random_ctg 5 in
  let s = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
  let text = Schedule_io.to_string s in
  let check_error mangled fragment =
    match Schedule_io.of_string platform g mangled with
    | Ok _ -> Alcotest.fail "expected parse error"
    | Error msg ->
      let contains =
        let nh = String.length msg and nn = String.length fragment in
        let rec scan i = i + nn <= nh && (String.sub msg i nn = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (msg ^ " mentions " ^ fragment) true contains
  in
  check_error (String.concat "\n" (List.tl (String.split_on_char '\n' text))) "header";
  check_error "schedule 1\nplace 0 pe 0 start 0 finish 1\n" "missing";
  check_error (text ^ "garbage\n") "unknown keyword"

(* A 2x2-mesh schedule whose transaction takes the YX detour [0; 2; 3]
   instead of the deterministic XY route. Version 2 must persist the
   detour verbatim. *)
let detour_platform =
  Noc_noc.Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:2)
    ~pes:(Array.init 4 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

let detour_ctg =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t1 ~volume:500.;
  Noc_ctg.Builder.build_exn b

let detour_schedule =
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = 3; start = 20.; finish = 30. };
      |]
    ~transactions:
      [|
        { Schedule.edge = 0; src_pe = 0; dst_pe = 3; route = [ 0; 2; 3 ];
          start = 10.; finish = 15. };
      |]

let test_detour_schedule_roundtrip () =
  match
    Schedule_io.of_string detour_platform detour_ctg
      (Schedule_io.to_string detour_schedule)
  with
  | Error msg -> Alcotest.fail msg
  | Ok s' ->
    Alcotest.(check bool) "detour route preserved verbatim" true
      (schedules_equal detour_schedule s');
    Alcotest.(check (list int)) "route is the detour" [ 0; 2; 3 ]
      (Schedule.transactions s').(0).Schedule.route

let test_legacy_v1_load () =
  (* A version-1 file has no [via] fields; routes come back as the
     platform's deterministic ones. *)
  let text =
    "schedule 1\n\
     place 0 pe 0 start 0 finish 10\n\
     place 1 pe 3 start 20 finish 30\n\
     trans 0 start 10 finish 15\n"
  in
  match Schedule_io.of_string detour_platform detour_ctg text with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    Alcotest.(check (list int)) "deterministic route re-derived"
      (Noc_noc.Platform.route detour_platform ~src:0 ~dst:3)
      (Schedule.transactions s).(0).Schedule.route

(* ------------------------------------------------------------------ *)
(* Version-3 (DVFS-annotated) schedules *)

let scaled_fixture seed =
  let g = random_ctg seed in
  let s = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
  let r = Noc_dvfs.Reclaim.run g s in
  (g, r.Noc_dvfs.Reclaim.schedule, r.Noc_dvfs.Reclaim.annotations)

let annotations_equal (a : Schedule_io.annotation array) b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Schedule_io.annotation) (y : Schedule_io.annotation) ->
         x.task = y.task && x.level = y.level
         && Int64.bits_of_float x.freq = Int64.bits_of_float y.freq
         && Int64.bits_of_float x.energy = Int64.bits_of_float y.energy)
       a b

let test_v3_roundtrip () =
  let g, s, annotations = scaled_fixture 9 in
  let text = Schedule_io.to_string ~dvfs:annotations s in
  Alcotest.(check bool) "v3 header" true
    (String.starts_with ~prefix:"schedule 3\n" text);
  match Schedule_io.of_string_full platform g text with
  | Error msg -> Alcotest.fail msg
  | Ok (_, None) -> Alcotest.fail "annotations dropped by the round-trip"
  | Ok (s', Some annotations') ->
    Alcotest.(check bool) "schedule round-trips exactly" true
      (schedules_equal s s');
    (* Hex floats in the dvfs lines make the round-trip bit-exact, not
       merely close. *)
    Alcotest.(check bool) "annotations round-trip bit-exactly" true
      (annotations_equal annotations annotations')

let test_v3_file_roundtrip () =
  let g, s, annotations = scaled_fixture 10 in
  let path = Filename.temp_file "nocsched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule_io.save ~dvfs:annotations ~path s;
      match Schedule_io.load_full ~path platform g with
      | Error msg -> Alcotest.fail msg
      | Ok (_, None) -> Alcotest.fail "annotations lost in the file"
      | Ok (s', Some annotations') ->
        Alcotest.(check bool) "file roundtrip" true
          (schedules_equal s s' && annotations_equal annotations annotations'))

let test_v2_loads_at_fmax () =
  (* A v2 file (what every earlier release wrote) still loads, with no
     annotations: every task implicitly at f_max. And without [~dvfs],
     to_string still writes v2, so old readers keep working. *)
  let g = random_ctg 11 in
  let s = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
  let text = Schedule_io.to_string s in
  Alcotest.(check bool) "still a v2 header" true
    (String.starts_with ~prefix:"schedule 2\n" text);
  match Schedule_io.of_string_full platform g text with
  | Error msg -> Alcotest.fail msg
  | Ok (s', annotations) ->
    Alcotest.(check bool) "no annotations" true (annotations = None);
    Alcotest.(check bool) "schedule intact" true (schedules_equal s s')

let test_v3_parse_errors () =
  let g, s, annotations = scaled_fixture 12 in
  let text = Schedule_io.to_string ~dvfs:annotations s in
  let check_error mangled fragment =
    match Schedule_io.of_string_full platform g mangled with
    | Ok _ -> Alcotest.fail ("parse unexpectedly succeeded; wanted " ^ fragment)
    | Error msg ->
      let contains =
        let nh = String.length msg and nn = String.length fragment in
        let rec scan i = i + nn <= nh && (String.sub msg i nn = fragment || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (msg ^ " mentions " ^ fragment) true contains
  in
  (* dvfs lines under a v2 header are an error, not silently dropped. *)
  check_error
    ("schedule 2\n"
    ^ String.concat "\n" (List.tl (String.split_on_char '\n' text)))
    "schedule 3 header";
  (* A missing annotation (mixed coverage) is named. *)
  let without_last_dvfs =
    let rec drop_last_dvfs acc = function
      | [] -> List.rev acc
      | l :: rest
        when String.starts_with ~prefix:"dvfs " l
             && not (List.exists (String.starts_with ~prefix:"dvfs ") rest) ->
        List.rev_append acc rest
      | l :: rest -> drop_last_dvfs (l :: acc) rest
    in
    String.concat "\n" (drop_last_dvfs [] (String.split_on_char '\n' text))
  in
  check_error without_last_dvfs "missing";
  (* Out-of-range frequency (re-annotating the dropped task, so the
     duplicate rule stays out of the way) and duplicate task. *)
  check_error
    (without_last_dvfs
    ^ Printf.sprintf "dvfs %d level 1 freq 0x1.8p+0 energy 0x1p+0\n"
        (Ctg.n_tasks g - 1))
    "freq";
  check_error
    (text ^ "dvfs 0 level 1 freq 0x1.999999999999ap-1 energy 0x1p+0\n")
    "duplicate"

(* ------------------------------------------------------------------ *)
(* Utilization *)

let test_utilization () =
  let g = random_ctg 6 in
  let s = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
  let u = Utilization.compute platform s in
  Alcotest.(check (float 1e-9)) "horizon is makespan" (Schedule.makespan s)
    u.Utilization.horizon;
  (* Busy time accounting: the sum over PEs equals the sum of exec
     durations of all tasks. *)
  let total_pe_busy =
    Array.fold_left
      (fun acc (l : Utilization.pe_load) -> acc +. l.Utilization.busy_time)
      0. u.Utilization.pe_loads
  in
  let total_exec =
    Array.fold_left
      (fun acc (p : Schedule.placement) -> acc +. (p.finish -. p.start))
      0. (Schedule.placements s)
  in
  Alcotest.(check (float 1e-6)) "busy time conserved" total_exec total_pe_busy;
  let task_count =
    Array.fold_left
      (fun acc (l : Utilization.pe_load) -> acc + l.Utilization.n_tasks)
      0 u.Utilization.pe_loads
  in
  Alcotest.(check int) "task count conserved" (Noc_ctg.Ctg.n_tasks g) task_count;
  Array.iter
    (fun (l : Utilization.pe_load) ->
      Alcotest.(check bool) "utilisation in [0,1]" true
        (l.Utilization.utilisation >= 0. && l.Utilization.utilisation <= 1. +. 1e-9))
    u.Utilization.pe_loads;
  let busiest = Utilization.busiest_pe u in
  Array.iter
    (fun (l : Utilization.pe_load) ->
      Alcotest.(check bool) "busiest is max" true
        (l.Utilization.busy_time <= busiest.Utilization.busy_time))
    u.Utilization.pe_loads

let test_utilization_links () =
  let g = random_ctg 8 in
  let s = (Noc_edf.Edf.schedule platform g).Noc_edf.Edf.schedule in
  let u = Utilization.compute platform s in
  (match Utilization.busiest_link u with
  | None -> Alcotest.fail "EDF on a random graph must use some link"
  | Some l ->
    Alcotest.(check bool) "busiest link has traffic" true
      (l.Utilization.busy_time > 0. && l.Utilization.n_transactions > 0));
  Alcotest.(check bool) "report prints" true
    (String.length (Format.asprintf "%a" Utilization.pp u) > 0)

let suite =
  [
    Alcotest.test_case "ctg roundtrip" `Quick test_ctg_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ctg_roundtrip;
    Alcotest.test_case "ctg file roundtrip" `Quick test_ctg_file_roundtrip;
    Alcotest.test_case "ctg parse tolerates noise" `Quick test_ctg_parse_tolerates_noise;
    Alcotest.test_case "ctg parse errors" `Quick test_ctg_parse_errors;
    Alcotest.test_case "msb encoder roundtrip" `Quick test_ctg_msb_roundtrip;
    Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule file roundtrip" `Quick test_schedule_file_roundtrip;
    Alcotest.test_case "schedule parse errors" `Quick test_schedule_parse_errors;
    Alcotest.test_case "detour schedule roundtrip" `Quick test_detour_schedule_roundtrip;
    Alcotest.test_case "legacy v1 schedule load" `Quick test_legacy_v1_load;
    Alcotest.test_case "v3 dvfs roundtrip" `Quick test_v3_roundtrip;
    Alcotest.test_case "v3 dvfs file roundtrip" `Quick test_v3_file_roundtrip;
    Alcotest.test_case "v2 loads at f_max" `Quick test_v2_loads_at_fmax;
    Alcotest.test_case "v3 parse errors" `Quick test_v3_parse_errors;
    Alcotest.test_case "utilization accounting" `Quick test_utilization;
    Alcotest.test_case "utilization links" `Quick test_utilization_links;
  ]
