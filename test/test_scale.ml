(* Big-mesh scale checks backing the category-III preset: generation
   must stay sub-second at ~2000 tasks, the turn-model relation proofs
   must stay clean (and tractable) on the 16x16 acceptance mesh, and a
   sustained-flow QoS check on that mesh must come back feasible. The
   runtime bounds are deliberately loose (CI machines vary); locally
   the proofs run in ~0.3-2 s and generation in ~0.03 s. *)

module Category = Noc_tgff.Category
module Deadlock = Noc_analysis.Deadlock
module Qos = Noc_analysis.Qos

let big_mesh () = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:16 ~rows:16 ()

let test_category_iii_generation () =
  let platform = big_mesh () in
  let t0 = Noc_util.Clock.wall_s () in
  let ctg = Category.benchmark ~platform Category.Category_iii ~index:1 in
  let elapsed = Noc_util.Clock.wall_s () -. t0 in
  Alcotest.(check int) "2000 tasks" 2_000 (Noc_ctg.Ctg.n_tasks ctg);
  (* Arc density: the preset documents ~2 arcs per task. *)
  let edges = Noc_ctg.Ctg.n_edges ctg in
  Alcotest.(check bool)
    (Printf.sprintf "%d edges within 1.5-2.5 per task" edges)
    true
    (edges >= 3_000 && edges <= 5_000);
  Alcotest.(check bool)
    (Printf.sprintf "generation took %.3f s (< 1 s)" elapsed)
    true (elapsed < 1.0)

let test_deadlock_proofs_16x16 () =
  let platform = big_mesh () in
  List.iter
    (fun routing ->
      let t0 = Noc_util.Clock.wall_s () in
      let diagnostics = Deadlock.check_routing ~routing platform in
      let elapsed = Noc_util.Clock.wall_s () -. t0 in
      Alcotest.(check int)
        (Printf.sprintf "%s relation proof clean on 16x16"
           (Noc_noc.Turn_model.name routing))
        0
        (List.length diagnostics);
      Alcotest.(check bool)
        (Printf.sprintf "%s proof took %.3f s (< 30 s)"
           (Noc_noc.Turn_model.name routing) elapsed)
        true (elapsed < 30.))
    [ Noc_noc.Turn_model.Xy; Noc_noc.Turn_model.West_first;
      Noc_noc.Turn_model.Odd_even ]

let test_qos_16x16 () =
  let platform = big_mesh () in
  let n_pes = Noc_noc.Platform.n_pes platform in
  (* A spread of long-haul sustained flows at modest rates: feasible,
     but only if the allocator actually routes all of them. *)
  let flows =
    List.init 300 (fun i ->
        { Qos.id = i; src = i mod n_pes; dst = (i * 37 + 11) mod n_pes; rate = 8. })
    |> List.filter (fun (f : Qos.flow) -> f.src <> f.dst)
  in
  let report = Qos.check platform flows in
  Alcotest.(check int) "no QoS diagnostics" 0 (List.length report.Qos.diagnostics);
  List.iter
    (fun load ->
      Alcotest.(check bool) "every link within capacity" true
        (Qos.utilization load <= 1.))
    report.Qos.loads

let suite =
  [
    Alcotest.test_case "category III generates sub-second" `Quick
      test_category_iii_generation;
    Alcotest.test_case "turn-model proofs clean on 16x16" `Quick
      test_deadlock_proofs_16x16;
    Alcotest.test_case "QoS feasibility on 16x16" `Quick test_qos_16x16;
  ]
