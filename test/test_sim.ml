(* Tests for the wormhole NoC executor (Noc_sim). *)

module Event_queue = Noc_sim.Event_queue
module Executor = Noc_sim.Executor
module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let drain () =
    let rec go acc =
      match Event_queue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (drain ())

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5. i
  done;
  let rec drain acc =
    match Event_queue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order on equal time" (List.init 10 Fun.id)
    (drain [])

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2. 2;
  Alcotest.(check (option (float 0.))) "peek" (Some 2.) (Event_queue.peek_time q);
  Event_queue.push q ~time:1. 1;
  Alcotest.(check (option (float 0.))) "peek updated" (Some 1.) (Event_queue.peek_time q);
  ignore (Event_queue.pop q);
  Event_queue.push q ~time:0.5 0;
  Alcotest.(check int) "two left" 2 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (t, v) ->
    Alcotest.(check (float 0.)) "earliest" 0.5 t;
    Alcotest.(check int) "payload" 0 v
  | None -> Alcotest.fail "queue not empty");
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "empty at the end" true (Event_queue.is_empty q)

let test_queue_random_sorts () =
  let q = Event_queue.create () in
  let rng = Noc_util.Prng.create ~seed:3 in
  let times = Array.init 500 (fun _ -> Noc_util.Prng.float rng ~bound:100.) in
  Array.iter (fun t -> Event_queue.push q ~time:t ()) times;
  let rec drain last =
    match Event_queue.pop q with
    | None -> true
    | Some (t, ()) -> t >= last && drain t
  in
  Alcotest.(check bool) "nondecreasing" true (drain neg_infinity)

(* ------------------------------------------------------------------ *)
(* Executor *)

let category_platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 60) ?(tightness = 1.8) seed =
  let params =
    { Noc_tgff.Params.default with n_tasks; deadline_tightness = tightness }
  in
  Noc_tgff.Generate.generate ~params ~platform:category_platform ~seed

let max_finish_deviation a b =
  let worst = ref 0. in
  for i = 0 to Schedule.n_tasks a - 1 do
    worst :=
      Float.max !worst
        (Float.abs
           ((Schedule.placement a i).Schedule.finish
           -. (Schedule.placement b i).Schedule.finish))
  done;
  !worst

let test_time_triggered_replays_exactly () =
  (* A contention-aware schedule is conflict-free, so the table-driven
     runtime reproduces it to the tick. *)
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let planned = (Noc_eas.Eas.schedule category_platform ctg).Noc_eas.Eas.schedule in
    let outcome = Executor.run category_platform ctg planned in
    Alcotest.(check (float 1e-6)) "zero deviation" 0.
      (max_finish_deviation planned outcome.Executor.realised);
    Alcotest.(check (float 1e-6)) "no blocking" 0. outcome.Executor.waiting_time
  done

let test_self_timed_is_feasible () =
  (* Work-conserving execution enforces resources by construction; the
     realised schedule must pass the independent validator (deadlines
     aside, which anomalies may cost). *)
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let planned = (Noc_eas.Eas.schedule category_platform ctg).Noc_eas.Eas.schedule in
    let outcome =
      Executor.run ~discipline:Executor.Self_timed category_platform ctg planned
    in
    let hard =
      Validate.check category_platform ctg outcome.Executor.realised
      |> List.filter (function Validate.Deadline_miss _ -> false | _ -> true)
    in
    Alcotest.(check int) "resource-feasible" 0 (List.length hard)
  done

let test_self_timed_never_slower_than_sequential () =
  let ctg = random_ctg 3 in
  let planned = (Noc_eas.Eas.schedule category_platform ctg).Noc_eas.Eas.schedule in
  let outcome =
    Executor.run ~discipline:Executor.Self_timed category_platform ctg planned
  in
  Alcotest.(check bool) "finite makespan" true
    (Float.is_finite (Schedule.makespan outcome.Executor.realised))

let test_fixed_delay_exposes_contention () =
  (* Across several seeds, at least one fixed-delay schedule must block
     on links during replay, and at least one must miss a deadline it
     thought it met (this is the ablation's point). *)
  let blocked = ref false and surprise_miss = ref false in
  List.iter
    (fun seed ->
      let ctg = random_ctg ~n_tasks:120 ~tightness:1.4 seed in
      let planned =
        (Noc_eas.Eas.schedule ~comm_model:Noc_sched.Comm_sched.Fixed_delay
           category_platform ctg)
          .Noc_eas.Eas.schedule
      in
      let outcome = Executor.run category_platform ctg planned in
      if outcome.Executor.waiting_time > 0. then blocked := true;
      let misses s =
        List.length
          (Noc_sched.Metrics.compute category_platform ctg s).Noc_sched.Metrics.deadline_misses
      in
      if misses outcome.Executor.realised > misses planned then surprise_miss := true)
    [ 0; 1; 2; 7; 8 ];
  Alcotest.(check bool) "some replay blocked on links" true !blocked;
  Alcotest.(check bool) "some replay missed an unplanned deadline" true !surprise_miss

let test_realised_schedule_structure () =
  let ctg = random_ctg 1 in
  let planned = (Noc_eas.Eas.schedule category_platform ctg).Noc_eas.Eas.schedule in
  let outcome = Executor.run category_platform ctg planned in
  let realised = outcome.Executor.realised in
  Alcotest.(check int) "all tasks placed" (Noc_ctg.Ctg.n_tasks ctg)
    (Schedule.n_tasks realised);
  (* Assignment preserved. *)
  for i = 0 to Noc_ctg.Ctg.n_tasks ctg - 1 do
    Alcotest.(check int) "same PE"
      (Schedule.placement planned i).Schedule.pe
      (Schedule.placement realised i).Schedule.pe
  done

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue FIFO on ties" `Quick test_queue_fifo_on_ties;
    Alcotest.test_case "queue interleaved ops" `Quick test_queue_interleaved;
    Alcotest.test_case "queue sorts random input" `Quick test_queue_random_sorts;
    Alcotest.test_case "time-triggered replay is exact" `Slow
      test_time_triggered_replays_exactly;
    Alcotest.test_case "self-timed replay feasible" `Slow test_self_timed_is_feasible;
    Alcotest.test_case "self-timed terminates" `Quick
      test_self_timed_never_slower_than_sequential;
    Alcotest.test_case "fixed delay exposes contention" `Slow
      test_fixed_delay_exposes_contention;
    Alcotest.test_case "realised schedule structure" `Quick
      test_realised_schedule_structure;
  ]
