(* Tests for Noc_util.Text_table. *)

module Text_table = Noc_util.Text_table

let test_basic_render () =
  let out =
    Text_table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + rows" 4 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "all lines equally wide"
        (String.length (List.nth lines 0))
        (String.length line))
    lines

let test_alignment () =
  let out = Text_table.render ~header:[ "k"; "v" ] [ [ "x"; "9" ] ] in
  (* Default: first column left-aligned, second right-aligned. *)
  Alcotest.(check bool) "left pad on numeric column" true
    (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  let row = List.nth lines 2 in
  Alcotest.(check string) "row rendering" "| x | 9 |" row

let test_short_rows_padded () =
  let out = Text_table.render ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "renders" 3 (List.length lines)

let test_float_cell () =
  Alcotest.(check string) "default decimals" "3.1" (Text_table.float_cell 3.14159);
  Alcotest.(check string) "custom decimals" "3.142"
    (Text_table.float_cell ~decimals:3 3.14159)

let test_percent_cell () =
  Alcotest.(check string) "percent" "44.3%" (Text_table.percent_cell 0.443);
  Alcotest.(check string) "decimals" "44%" (Text_table.percent_cell ~decimals:0 0.443)

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "short rows padded" `Quick test_short_rows_padded;
    Alcotest.test_case "float cell" `Quick test_float_cell;
    Alcotest.test_case "percent cell" `Quick test_percent_cell;
  ]
