(* Tests for the Multimedia System Benchmarks (Sec. 6.2). *)

module Graphs = Noc_msb.Graphs
module Profile = Noc_msb.Profile
module Platforms = Noc_msb.Platforms
module Ctg = Noc_ctg.Ctg

let test_task_counts () =
  (* The paper's partition sizes: 24 / 16 / 40 tasks. *)
  let enc = Graphs.encoder ~platform:Platforms.av_2x2 ~clip:Profile.Foreman () in
  let dec = Graphs.decoder ~platform:Platforms.av_2x2 ~clip:Profile.Foreman () in
  let int_ = Graphs.integrated ~platform:Platforms.av_3x3 ~clip:Profile.Foreman () in
  Alcotest.(check int) "encoder 24 tasks" 24 (Ctg.n_tasks enc);
  Alcotest.(check int) "decoder 16 tasks" 16 (Ctg.n_tasks dec);
  Alcotest.(check int) "integrated 40 tasks" 40 (Ctg.n_tasks int_)

let test_platform_sizes () =
  Alcotest.(check int) "2x2" 4 (Noc_noc.Platform.n_pes Platforms.av_2x2);
  Alcotest.(check int) "3x3" 9 (Noc_noc.Platform.n_pes Platforms.av_3x3)

let test_deadlines_from_frame_rates () =
  Alcotest.(check (float 1e-6)) "encoder period = 1/40 s" 25_000. Graphs.encoder_period;
  Alcotest.(check bool) "decoder period = 1/67 s" true
    (Float.abs (Graphs.decoder_period -. 14_925.37) < 1.);
  let enc = Graphs.encoder ~platform:Platforms.av_2x2 ~clip:Profile.Akiyo () in
  List.iter
    (fun i ->
      match (Ctg.task enc i).Noc_ctg.Task.deadline with
      | None -> ()
      | Some d -> Alcotest.(check (float 1e-6)) "deadline is the period" 25_000. d)
    (Ctg.deadline_tasks enc);
  Alcotest.(check bool) "encoder has deadline tasks" true
    (Ctg.deadline_tasks enc <> [])

let test_ratio_scales_deadlines () =
  let base = Graphs.decoder ~platform:Platforms.av_2x2 ~clip:Profile.Akiyo () in
  let faster = Graphs.decoder ~ratio:2.0 ~platform:Platforms.av_2x2 ~clip:Profile.Akiyo () in
  let deadline g =
    match Ctg.deadline_tasks g with
    | t :: _ -> Option.get (Ctg.task g t).Noc_ctg.Task.deadline
    | [] -> Alcotest.fail "no deadline"
  in
  Alcotest.(check (float 1e-6)) "halved deadline" (deadline base /. 2.) (deadline faster)

let test_invalid_ratio_rejected () =
  Alcotest.(check bool) "non-positive ratio" true
    (try
       ignore (Graphs.encoder ~ratio:0. ~platform:Platforms.av_2x2 ~clip:Profile.Akiyo ());
       false
     with Invalid_argument _ -> true)

let test_clip_scaling_monotone () =
  (* akiyo < foreman < toybox in both compute demand and volume. *)
  let total_time clip =
    let g = Graphs.encoder ~platform:Platforms.av_2x2 ~clip () in
    Array.fold_left
      (fun acc (t : Noc_ctg.Task.t) -> acc +. Noc_util.Stats.mean t.exec_times)
      0. (Ctg.tasks g)
  in
  let total_volume clip =
    Ctg.total_volume (Graphs.encoder ~platform:Platforms.av_2x2 ~clip ())
  in
  Alcotest.(check bool) "time ordering" true
    (total_time Profile.Akiyo < total_time Profile.Foreman
    && total_time Profile.Foreman < total_time Profile.Toybox);
  Alcotest.(check bool) "volume ordering" true
    (total_volume Profile.Akiyo < total_volume Profile.Foreman
    && total_volume Profile.Foreman < total_volume Profile.Toybox)

let test_graphs_schedulable () =
  (* Every MSB instance must be schedulable by EAS without misses at the
     baseline rates on its target platform. *)
  List.iter
    (fun clip ->
      let check name platform g =
        let outcome = Noc_eas.Eas.schedule platform g in
        Alcotest.(check int)
          (Printf.sprintf "%s/%s no misses" name (Profile.clip_name clip))
          0 outcome.Noc_eas.Eas.stats.Noc_eas.Eas.misses_after_repair;
        let hard =
          Noc_sched.Validate.check platform g outcome.Noc_eas.Eas.schedule
          |> List.filter (function
               | Noc_sched.Validate.Deadline_miss _ -> false
               | _ -> true)
        in
        Alcotest.(check int) "feasible" 0 (List.length hard)
      in
      check "encoder" Platforms.av_2x2 (Graphs.encoder ~platform:Platforms.av_2x2 ~clip ());
      check "decoder" Platforms.av_2x2 (Graphs.decoder ~platform:Platforms.av_2x2 ~clip ());
      check "integrated" Platforms.av_3x3
        (Graphs.integrated ~platform:Platforms.av_3x3 ~clip ()))
    Profile.all_clips

let test_eas_saves_energy_on_all_msb () =
  List.iter
    (fun clip ->
      let check name platform g =
        let eas = (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule in
        let edf = (Noc_edf.Edf.schedule platform g).Noc_edf.Edf.schedule in
        let e s = (Noc_sched.Metrics.compute platform g s).Noc_sched.Metrics.total_energy in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s saves energy" name (Profile.clip_name clip))
          true
          (e eas < e edf)
      in
      check "encoder" Platforms.av_2x2 (Graphs.encoder ~platform:Platforms.av_2x2 ~clip ());
      check "decoder" Platforms.av_2x2 (Graphs.decoder ~platform:Platforms.av_2x2 ~clip ());
      check "integrated" Platforms.av_3x3
        (Graphs.integrated ~platform:Platforms.av_3x3 ~clip ()))
    Profile.all_clips

let test_integrated_is_disjoint_union () =
  let g = Graphs.integrated ~platform:Platforms.av_3x3 ~clip:Profile.Foreman () in
  (* Two connected components: 2 of the sources feed the encoder side,
     the decoder side starts at av_demux. *)
  Alcotest.(check bool) "several sources" true (List.length (Ctg.sources g) >= 3);
  Alcotest.(check bool) "several deadline tasks" true
    (List.length (Ctg.deadline_tasks g) >= 4)

let test_profile_names () =
  Alcotest.(check (list string)) "clip names"
    [ "akiyo"; "foreman"; "toybox" ]
    (List.map Profile.clip_name Profile.all_clips)

let suite =
  [
    Alcotest.test_case "task counts (24/16/40)" `Quick test_task_counts;
    Alcotest.test_case "platform sizes" `Quick test_platform_sizes;
    Alcotest.test_case "deadlines from frame rates" `Quick test_deadlines_from_frame_rates;
    Alcotest.test_case "ratio scales deadlines" `Quick test_ratio_scales_deadlines;
    Alcotest.test_case "invalid ratio rejected" `Quick test_invalid_ratio_rejected;
    Alcotest.test_case "clip scaling monotone" `Quick test_clip_scaling_monotone;
    Alcotest.test_case "all MSB schedulable" `Slow test_graphs_schedulable;
    Alcotest.test_case "EAS saves energy on all MSB" `Slow test_eas_saves_energy_on_all_msb;
    Alcotest.test_case "integrated union" `Quick test_integrated_is_disjoint_union;
    Alcotest.test_case "profile names" `Quick test_profile_names;
  ]
