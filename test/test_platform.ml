(* Tests for Noc_noc.Platform — the ACG of Definition 2. *)

module Platform = Noc_noc.Platform
module Topology = Noc_noc.Topology
module Pe = Noc_noc.Pe
module Energy_model = Noc_noc.Energy_model

let platform =
  Platform.make
    ~topology:(Topology.mesh ~cols:3 ~rows:3)
    ~pes:(Array.init 9 (fun index -> Pe.of_kind ~index Pe.Dsp))
    ~energy:(Energy_model.make ~e_sbit:1. ~e_lbit:2.)
    ~link_bandwidth:100. ()

let expect_invalid f =
  Alcotest.(check bool) "Invalid_argument" true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_construction_checks () =
  expect_invalid (fun () ->
      Platform.make
        ~topology:(Topology.mesh ~cols:2 ~rows:2)
        ~pes:(Array.init 3 (fun index -> Pe.of_kind ~index Pe.Dsp))
        ());
  expect_invalid (fun () ->
      Platform.make
        ~topology:(Topology.mesh ~cols:2 ~rows:2)
        ~pes:(Array.init 4 (fun index -> Pe.of_kind ~index:(index + 1) Pe.Dsp))
        ());
  expect_invalid (fun () ->
      Platform.make
        ~topology:(Topology.mesh ~cols:2 ~rows:2)
        ~pes:(Array.init 4 (fun index -> Pe.of_kind ~index Pe.Dsp))
        ~link_bandwidth:0. ())

let test_bit_energy_matches_eq2 () =
  (* PE 0 to PE 2: distance 2 -> 3 routers, 2 links -> 3*1 + 2*2 = 7. *)
  Alcotest.(check (float 1e-12)) "eq2 over route" 7.
    (Platform.bit_energy platform ~src:0 ~dst:2);
  Alcotest.(check (float 1e-12)) "same tile free" 0.
    (Platform.bit_energy platform ~src:4 ~dst:4)

let test_comm_energy () =
  Alcotest.(check (float 1e-9)) "scales with bits" 700.
    (Platform.comm_energy platform ~src:0 ~dst:2 ~bits:100.)

let test_comm_duration () =
  Alcotest.(check (float 1e-12)) "serialisation latency" 2.
    (Platform.comm_duration platform ~src:0 ~dst:2 ~bits:200.);
  Alcotest.(check (float 0.)) "same tile instantaneous" 0.
    (Platform.comm_duration platform ~src:3 ~dst:3 ~bits:200.);
  (* Wormhole: duration independent of distance. *)
  Alcotest.(check (float 1e-12)) "distance independent"
    (Platform.comm_duration platform ~src:0 ~dst:1 ~bits:200.)
    (Platform.comm_duration platform ~src:0 ~dst:8 ~bits:200.)

let test_route_delegation () =
  Alcotest.(check (list int)) "route" [ 0; 1; 2 ] (Platform.route platform ~src:0 ~dst:2);
  Alcotest.(check int) "hops" 3 (Platform.hops platform ~src:0 ~dst:2);
  Alcotest.(check int) "route links" 2
    (List.length (Platform.route_links platform ~src:0 ~dst:2))

let test_heterogeneous_preset_deterministic () =
  let a = Platform.heterogeneous_mesh ~seed:5 ~cols:4 ~rows:4 () in
  let b = Platform.heterogeneous_mesh ~seed:5 ~cols:4 ~rows:4 () in
  for i = 0 to 15 do
    let pa = Platform.pe a i and pb = Platform.pe b i in
    Alcotest.(check (float 0.)) "same time factor" pa.Pe.time_factor pb.Pe.time_factor;
    Alcotest.(check (float 0.)) "same power factor" pa.Pe.power_factor pb.Pe.power_factor
  done;
  let c = Platform.heterogeneous_mesh ~seed:6 ~cols:4 ~rows:4 () in
  let differs = ref false in
  for i = 0 to 15 do
    if (Platform.pe a i).Pe.time_factor <> (Platform.pe c i).Pe.time_factor then
      differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_heterogeneous_preset_mixes_kinds () =
  let p = Platform.heterogeneous_mesh ~cols:4 ~rows:4 () in
  let kinds =
    Array.to_list (Platform.pes p)
    |> List.map (fun pe -> Pe.kind_name pe.Pe.kind)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all four kinds present" 4 (List.length kinds)

let test_homogeneous_preset () =
  let p = Platform.homogeneous_mesh ~cols:2 ~rows:3 in
  Alcotest.(check int) "6 PEs" 6 (Platform.n_pes p);
  Array.iter
    (fun pe ->
      Alcotest.(check (float 0.)) "unit time" 1. pe.Pe.time_factor;
      Alcotest.(check (float 0.)) "unit power" 1. pe.Pe.power_factor)
    (Platform.pes p)

let test_all_links () =
  Alcotest.(check int) "3x3 mesh directed links" 24
    (List.length (Platform.all_links platform))

let test_digest () =
  let fresh () = Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let d = Platform.digest (fresh ()) in
  Alcotest.(check int) "64-bit FNV as hex" 16 (String.length d);
  Alcotest.(check string) "deterministic" d (Platform.digest (fresh ()));
  (* Derived state is excluded: warming the route memo is invisible. *)
  let warmed = fresh () in
  Platform.warm_routes warmed;
  Alcotest.(check string) "route memo excluded" d (Platform.digest warmed);
  (* Content is not: another seed, bandwidth or energy model differs. *)
  Alcotest.(check bool) "seed changes digest" true
    (d <> Platform.digest (Platform.heterogeneous_mesh ~seed:43 ~cols:4 ~rows:4 ()));
  Alcotest.(check bool) "shape changes digest" true
    (d <> Platform.digest (Platform.heterogeneous_mesh ~seed:42 ~cols:2 ~rows:8 ()));
  let tweaked ~bandwidth ~e_lbit =
    Platform.make
      ~topology:(Topology.mesh ~cols:3 ~rows:3)
      ~pes:(Array.init 9 (fun index -> Pe.of_kind ~index Pe.Dsp))
      ~energy:(Energy_model.make ~e_sbit:1. ~e_lbit)
      ~link_bandwidth:bandwidth ()
  in
  let base = Platform.digest (tweaked ~bandwidth:100. ~e_lbit:2.) in
  Alcotest.(check string) "base platform digest matches module-level twin" base
    (Platform.digest platform);
  Alcotest.(check bool) "bandwidth changes digest" true
    (base <> Platform.digest (tweaked ~bandwidth:200. ~e_lbit:2.));
  Alcotest.(check bool) "bit-energy model changes digest" true
    (base <> Platform.digest (tweaked ~bandwidth:100. ~e_lbit:2.5))

let test_digest_covers_routing () =
  (* The routing function changes which schedules are valid (adaptive
     detours, QoS splitting), so it must separate serve-cache keys: the
     same mesh under XY and under an adaptive model may not collide. *)
  let with_routing routing =
    Platform.digest
      (Platform.heterogeneous_mesh ~seed:42 ~routing ~cols:4 ~rows:4 ())
  in
  let xy = with_routing Noc_noc.Turn_model.Xy in
  Alcotest.(check string) "explicit XY is the default" xy
    (Platform.digest (Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()));
  let odd_even = with_routing Noc_noc.Turn_model.Odd_even in
  let west_first = with_routing Noc_noc.Turn_model.West_first in
  Alcotest.(check bool) "odd-even differs from xy" true (odd_even <> xy);
  Alcotest.(check bool) "west-first differs from xy" true (west_first <> xy);
  Alcotest.(check bool) "the adaptive models differ" true (west_first <> odd_even)

let suite =
  [
    Alcotest.test_case "construction checks" `Quick test_construction_checks;
    Alcotest.test_case "bit energy matches Eq. 2" `Quick test_bit_energy_matches_eq2;
    Alcotest.test_case "comm energy" `Quick test_comm_energy;
    Alcotest.test_case "comm duration" `Quick test_comm_duration;
    Alcotest.test_case "route delegation" `Quick test_route_delegation;
    Alcotest.test_case "preset deterministic" `Quick test_heterogeneous_preset_deterministic;
    Alcotest.test_case "preset mixes kinds" `Quick test_heterogeneous_preset_mixes_kinds;
    Alcotest.test_case "homogeneous preset" `Quick test_homogeneous_preset;
    Alcotest.test_case "all links" `Quick test_all_links;
    Alcotest.test_case "digest" `Quick test_digest;
    Alcotest.test_case "digest covers the routing function" `Quick
      test_digest_covers_routing;
  ]
