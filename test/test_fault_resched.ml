(* Acceptance test for the reliability subsystem (ISSUE): on a 4x4
   category-I benchmark with one failed PE and one failed link, naive
   replay of the fault-free EAS schedule misses deadlines while the
   Fault_resched response produces a validator-accepted schedule that
   replays under the same faults with zero misses and zero losses. *)

module Ctg = Noc_ctg.Ctg
module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate
module Executor = Noc_sim.Executor
module Fault = Noc_fault.Fault
module Fault_set = Noc_fault.Fault_set
module Fault_resched = Noc_eas.Fault_resched
module Platform = Noc_noc.Platform

let platform = Noc_tgff.Category.platform

let ctg =
  let params =
    Noc_tgff.Category.scaled_params Noc_tgff.Category.Category_i ~scale:0.12
  in
  Noc_tgff.Generate.generate ~params ~platform ~seed:1_000

let eas_schedule = lazy ((Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule)

(* The fault set is derived from the schedule itself, so the scenario
   cannot rot: fail a PE that hosts deadline work and a link carried by
   a recorded route. *)
let fault_set () =
  let schedule = Lazy.force eas_schedule in
  let deadline_pe =
    let tasks = Ctg.tasks ctg in
    Array.to_list (Schedule.placements schedule)
    |> List.find_map (fun (p : Schedule.placement) ->
           match tasks.(p.task).Noc_ctg.Task.deadline with
           | Some _ -> Some p.pe
           | None -> None)
    |> Option.get
  in
  let used_link =
    Array.to_list (Schedule.transactions schedule)
    |> List.find_map (fun (tr : Schedule.transaction) ->
           match Schedule.links_of_transaction tr with
           | link :: _
             when link.Noc_noc.Routing.from_node <> deadline_pe
                  && link.to_node <> deadline_pe ->
             Some link
           | _ -> None)
    |> Option.get
  in
  ( deadline_pe,
    used_link,
    Fault_set.of_list
      [
        Fault.pe deadline_pe ();
        Fault.link ~from_node:used_link.Noc_noc.Routing.from_node
          ~to_node:used_link.to_node ();
      ] )

let structural_violations schedule =
  Validate.check platform ctg schedule
  |> List.filter (function Validate.Deadline_miss _ -> false | _ -> true)

let test_acceptance () =
  let schedule = Lazy.force eas_schedule in
  let _pe, _link, faults = fault_set () in
  (* Naive replay: keep executing the fault-free schedule. *)
  let naive = Executor.run ~faults platform ctg schedule in
  Alcotest.(check bool) "naive replay misses a deadline" true
    (List.length naive.deadline_misses >= 1);
  (* Reliability response: migrate + rebuild (+ repair) on the degraded
     platform. *)
  let { Fault_resched.schedule = rescheduled; stats } =
    Fault_resched.run platform ctg ~faults schedule
  in
  Alcotest.(check int) "validator accepts the rescheduled table" 0
    (List.length (structural_violations rescheduled));
  Alcotest.(check int) "no tabled deadline miss either" 0 stats.misses;
  let replay = Executor.run ~faults platform ctg rescheduled in
  Alcotest.(check (list int)) "fault-aware replay: zero misses" []
    replay.deadline_misses;
  Alcotest.(check (list int)) "fault-aware replay: zero lost tasks" []
    replay.lost_tasks;
  Alcotest.(check bool) "stranded work was migrated" true
    (stats.migrated_tasks >= 1)

let test_no_work_on_failed_elements () =
  let schedule = Lazy.force eas_schedule in
  let pe, link, faults = fault_set () in
  let { Fault_resched.schedule = rescheduled; _ } =
    Fault_resched.run platform ctg ~faults schedule
  in
  Array.iter
    (fun (p : Schedule.placement) ->
      if p.pe = pe then Alcotest.failf "task %d still on failed PE %d" p.task pe)
    (Schedule.placements rescheduled);
  Array.iter
    (fun (tr : Schedule.transaction) ->
      if
        List.exists
          (fun l -> Noc_noc.Routing.link_equal l link)
          (Schedule.links_of_transaction tr)
      then Alcotest.failf "edge %d still routed over the failed link" tr.edge)
    (Schedule.transactions rescheduled)

let test_trivial_fault_set_is_identity () =
  let schedule = Lazy.force eas_schedule in
  let { Fault_resched.schedule = same; stats } =
    Fault_resched.run platform ctg ~faults:Fault_set.empty schedule
  in
  Alcotest.(check bool) "unchanged schedule" true (same == schedule);
  Alcotest.(check int) "no migrations" 0 stats.migrated_tasks;
  Alcotest.(check int) "no reroutes" 0 stats.rerouted_transactions

let test_criticality_ranking () =
  let schedule = Lazy.force eas_schedule in
  let ranking = Fault_resched.criticality platform ctg schedule in
  let n_elements =
    Platform.n_pes platform + List.length (Platform.all_links platform)
  in
  Alcotest.(check int) "covers every PE and link" n_elements
    (List.length ranking);
  let score (c : Fault_resched.criticality) =
    (c.induced_misses, c.induced_losses)
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> score a >= score b && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted most critical first" true (sorted ranking);
  (* Killing the PE that hosts deadline work must rank strictly above a
     harmless element: the tail of the ranking is damage-free only if
     some element is. The head must do real damage here. *)
  let head = List.hd ranking in
  Alcotest.(check bool) "most critical element induces damage" true
    (head.induced_misses > 0 || head.induced_losses > 0)

let suite =
  [
    Alcotest.test_case "degraded reschedule beats naive replay" `Slow
      test_acceptance;
    Alcotest.test_case "rescheduled work avoids failed elements" `Slow
      test_no_work_on_failed_elements;
    Alcotest.test_case "trivial fault set returns the input" `Quick
      test_trivial_fault_set_is_identity;
    Alcotest.test_case "criticality ranks every element" `Slow
      test_criticality_ranking;
  ]
