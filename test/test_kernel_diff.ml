(* Differential harness: the flat-array kernel path (Level_sched) must
   reproduce the probing reference (Level_sched_reference) bit for bit —
   same PE assignments, same start/finish floats, same transactions and
   the same decision log — over a 50-case corpus spanning both TGFF
   categories, the MSB A/V benchmarks, a full-size graph and a degraded
   platform, at every job count. *)

module Level_sched = Noc_eas.Level_sched
module Reference = Noc_eas.Level_sched_reference
module Budget = Noc_eas.Budget
module Schedule = Noc_sched.Schedule
module Category = Noc_tgff.Category
module Params = Noc_tgff.Params
module Msb = Noc_experiments.Msb_tables
module Profile = Noc_msb.Profile
module Decisions = Noc_obs.Decisions
module Degraded = Noc_noc.Degraded

type case = {
  label : string;
  platform : Noc_noc.Platform.t;
  degraded : Degraded.t option;
  ctg : Noc_ctg.Ctg.t;
}

let tgff_case kind ~n_tasks ~seed =
  let platform = Category.platform in
  let params = { (Category.params kind) with Params.n_tasks } in
  {
    label =
      Printf.sprintf "%s/%d-tasks/seed-%d"
        (match kind with
        | Category.Category_i -> "cat-i"
        | Category.Category_ii -> "cat-ii"
        | Category.Category_iii -> "cat-iii")
        n_tasks seed;
    platform;
    degraded = None;
    ctg = Noc_tgff.Generate.generate ~params ~platform ~seed;
  }

let msb_case which clip =
  let platform = Msb.platform_of which in
  {
    label =
      Printf.sprintf "msb/%s/%s" (Msb.which_name which) (Profile.clip_name clip);
    platform;
    degraded = None;
    ctg = Msb.graph_of which ~clip;
  }

let degraded_case ~seed =
  let platform = Category.platform in
  let link = List.hd (Noc_noc.Platform.all_links platform) in
  let view = Degraded.make platform ~failed_pes:[ 5 ] ~failed_links:[ link ] in
  let params =
    { (Category.params Category.Category_i) with Params.n_tasks = 40 }
  in
  {
    label = Printf.sprintf "degraded/seed-%d" seed;
    platform;
    degraded = Some view;
    ctg = Noc_tgff.Generate.generate ~params ~platform ~seed;
  }

(* 20 + 20 + 9 + 2 + 1 = 52 cases. *)
let corpus =
  List.concat
    [
      List.init 20 (fun seed ->
          tgff_case Category.Category_i ~n_tasks:40 ~seed);
      List.init 20 (fun seed ->
          tgff_case Category.Category_ii ~n_tasks:40 ~seed);
      List.concat_map
        (fun which ->
          List.map (fun clip -> msb_case which clip) Profile.all_clips)
        [ Msb.Encoder; Msb.Decoder; Msb.Integrated ];
      (* Full-size category graphs: the configuration the wall-time
         benchmark and the paper's experiments run. *)
      [
        tgff_case Category.Category_i ~n_tasks:500 ~seed:1000;
        tgff_case Category.Category_ii ~n_tasks:500 ~seed:1000;
      ];
      [ degraded_case ~seed:4 ];
    ]

(* Hex-float fingerprints: [%h] prints the exact bit pattern, so string
   equality is float equality with no tolerance to hide behind. *)
let fingerprint s =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun (p : Schedule.placement) ->
      Buffer.add_string buf
        (Printf.sprintf "p%d:%d:%h:%h;" p.Schedule.task p.Schedule.pe
           p.Schedule.start p.Schedule.finish))
    (Schedule.placements s);
  Array.iter
    (fun (t : Schedule.transaction) ->
      Buffer.add_string buf
        (Printf.sprintf "t%d:%d:%d:[%s]:%h:%h;" t.Schedule.edge t.Schedule.src_pe
           t.Schedule.dst_pe
           (String.concat "," (List.map string_of_int t.Schedule.route))
           t.Schedule.start t.Schedule.finish))
    (Schedule.transactions s);
  Buffer.contents buf

let approx_fingerprint s =
  (* The issue's 1e-9 tolerance, as a second, weaker check that yields a
     readable diff if the exact one ever fails. *)
  String.concat " "
    (List.init (Schedule.n_tasks s) (fun i ->
         let p = Schedule.placement s i in
         Printf.sprintf "%d:%d:%.9f:%.9f" i p.Schedule.pe p.Schedule.start
           p.Schedule.finish))

let job_counts = [ 1; 2; 4 ]

let test_schedules_identical () =
  List.iter
    (fun { label; platform; degraded; ctg } ->
      let budget = Budget.compute ctg in
      let expected = Reference.run ?degraded platform ctg budget in
      let expected_fp = fingerprint expected in
      let expected_approx = approx_fingerprint expected in
      List.iter
        (fun jobs ->
          let actual = Level_sched.run ?degraded ~jobs platform ctg budget in
          Alcotest.(check string)
            (Printf.sprintf "%s: placements to 1e-9 (jobs=%d)" label jobs)
            expected_approx (approx_fingerprint actual);
          Alcotest.(check string)
            (Printf.sprintf "%s: bit-exact schedule (jobs=%d)" label jobs)
            expected_fp (fingerprint actual))
        job_counts)
    corpus

(* Decision-log equivalence: the kernel path must record the same
   candidate sets — same rules, same chosen PEs, same F rows — as the
   reference. Run on a slice of the corpus (the log pre-pass makes every
   probe exact, so this mode is slower by design). *)
let decision_corpus () =
  [
    tgff_case Category.Category_i ~n_tasks:40 ~seed:0;
    tgff_case Category.Category_i ~n_tasks:40 ~seed:7;
    tgff_case Category.Category_ii ~n_tasks:40 ~seed:3;
    msb_case Msb.Integrated Profile.Foreman;
    degraded_case ~seed:4;
  ]

let capture_log run =
  Decisions.reset ();
  Decisions.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Decisions.set_enabled false;
      Decisions.reset ())
    (fun () ->
      ignore (run ());
      Decisions.export_jsonl ())

let test_decision_logs_identical () =
  List.iter
    (fun { label; platform; degraded; ctg } ->
      let budget = Budget.compute ctg in
      let reference_log =
        capture_log (fun () ->
            Decisions.with_run label (fun () ->
                Reference.run ?degraded platform ctg budget))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: reference log non-empty" label)
        true
        (String.length reference_log > 0);
      List.iter
        (fun jobs ->
          let kernel_log =
            capture_log (fun () ->
                Decisions.with_run label (fun () ->
                    Level_sched.run ?degraded ~jobs platform ctg budget))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: decision log (jobs=%d)" label jobs)
            reference_log kernel_log)
        job_counts)
    (decision_corpus ())

let suite =
  [
    Alcotest.test_case "52-case corpus: kernel = reference, jobs 1/2/4" `Quick
      test_schedules_identical;
    Alcotest.test_case "decision logs identical" `Quick
      test_decision_logs_identical;
  ]
