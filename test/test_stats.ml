(* Tests for Noc_util.Stats. *)

module Stats = Noc_util.Stats

let test_mean () =
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-12)) "singleton" 7. (Stats.mean [| 7. |])

let test_variance () =
  (* Population variance of 2, 4, 4, 4, 5, 5, 7, 9 is 4 (classic). *)
  Alcotest.(check (float 1e-12)) "variance" 4.
    (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  Alcotest.(check (float 1e-12)) "constant data" 0. (Stats.variance [| 3.; 3.; 3. |])

let test_stddev () =
  Alcotest.(check (float 1e-12)) "stddev" 2.
    (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_min_max () =
  let arr = [| 3.; -1.; 7.; 0. |] in
  Alcotest.(check (float 0.)) "min" (-1.) (Stats.min_value arr);
  Alcotest.(check (float 0.)) "max" 7. (Stats.max_value arr)

let test_argmin () =
  Alcotest.(check int) "argmin" 1 (Stats.argmin [| 3.; -1.; 7.; 0. |]);
  Alcotest.(check int) "first on ties" 0 (Stats.argmin [| 2.; 2.; 2. |])

let test_two_smallest () =
  let best, second = Stats.two_smallest [| 5.; 1.; 3.; 2. |] in
  Alcotest.(check (float 0.)) "best" 1. best;
  Alcotest.(check (float 0.)) "second" 2. second

let test_two_smallest_duplicates () =
  let best, second = Stats.two_smallest [| 4.; 4.; 9. |] in
  Alcotest.(check (float 0.)) "best" 4. best;
  Alcotest.(check (float 0.)) "second equals best" 4. second

let test_two_smallest_singleton () =
  let best, second = Stats.two_smallest [| 6. |] in
  Alcotest.(check (float 0.)) "best" 6. best;
  Alcotest.(check (float 0.)) "second = best" 6. second

let test_sum () =
  Alcotest.(check (float 1e-12)) "sum" 10. (Stats.sum [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 0.)) "empty" 0. (Stats.sum [||])

let test_fequal () =
  Alcotest.(check bool) "exact" true (Stats.fequal 1. 1.);
  Alcotest.(check bool) "within absolute eps" true (Stats.fequal ~eps:1e-6 0. 1e-9);
  Alcotest.(check bool) "within relative eps" true
    (Stats.fequal ~eps:1e-6 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "different" false (Stats.fequal 1. 2.)

let qcheck_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-1000.) 1000.))
    (fun floats -> Stats.variance (Array.of_list floats) >= 0.)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "argmin" `Quick test_argmin;
    Alcotest.test_case "two smallest" `Quick test_two_smallest;
    Alcotest.test_case "two smallest with duplicates" `Quick test_two_smallest_duplicates;
    Alcotest.test_case "two smallest singleton" `Quick test_two_smallest_singleton;
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "fequal" `Quick test_fequal;
    QCheck_alcotest.to_alcotest qcheck_variance_nonneg;
  ]
