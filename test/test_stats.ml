(* Tests for Noc_util.Stats. *)

module Stats = Noc_util.Stats

let test_mean () =
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-12)) "singleton" 7. (Stats.mean [| 7. |])

let test_variance () =
  (* Population variance of 2, 4, 4, 4, 5, 5, 7, 9 is 4 (classic). *)
  Alcotest.(check (float 1e-12)) "variance" 4.
    (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  Alcotest.(check (float 1e-12)) "constant data" 0. (Stats.variance [| 3.; 3.; 3. |])

let test_stddev () =
  Alcotest.(check (float 1e-12)) "stddev" 2.
    (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_min_max () =
  let arr = [| 3.; -1.; 7.; 0. |] in
  Alcotest.(check (float 0.)) "min" (-1.) (Stats.min_value arr);
  Alcotest.(check (float 0.)) "max" 7. (Stats.max_value arr)

let test_argmin () =
  Alcotest.(check int) "argmin" 1 (Stats.argmin [| 3.; -1.; 7.; 0. |]);
  Alcotest.(check int) "first on ties" 0 (Stats.argmin [| 2.; 2.; 2. |])

let test_two_smallest () =
  let best, second = Stats.two_smallest [| 5.; 1.; 3.; 2. |] in
  Alcotest.(check (float 0.)) "best" 1. best;
  Alcotest.(check (float 0.)) "second" 2. second

let test_two_smallest_duplicates () =
  let best, second = Stats.two_smallest [| 4.; 4.; 9. |] in
  Alcotest.(check (float 0.)) "best" 4. best;
  Alcotest.(check (float 0.)) "second equals best" 4. second

let test_two_smallest_singleton () =
  let best, second = Stats.two_smallest [| 6. |] in
  Alcotest.(check (float 0.)) "best" 6. best;
  Alcotest.(check (float 0.)) "second = best" 6. second

let test_sum () =
  Alcotest.(check (float 1e-12)) "sum" 10. (Stats.sum [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 0.)) "empty" 0. (Stats.sum [||])

let test_fequal () =
  Alcotest.(check bool) "exact" true (Stats.fequal 1. 1.);
  Alcotest.(check bool) "within absolute eps" true (Stats.fequal ~eps:1e-6 0. 1e-9);
  Alcotest.(check bool) "within relative eps" true
    (Stats.fequal ~eps:1e-6 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "different" false (Stats.fequal 1. 2.)

let test_median () =
  Alcotest.(check (float 1e-12)) "odd length" 3. (Stats.median [| 5.; 3.; 1. |]);
  Alcotest.(check (float 1e-12)) "even length interpolates" 2.5
    (Stats.median [| 4.; 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-12)) "singleton" 9. (Stats.median [| 9. |])

let test_percentile () =
  let arr = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-12)) "p0 is min" 10. (Stats.percentile arr ~p:0.);
  Alcotest.(check (float 1e-12)) "p100 is max" 40. (Stats.percentile arr ~p:100.);
  (* rank = 0.95 * 3 = 2.85: interpolate between 30 and 40. *)
  Alcotest.(check (float 1e-9)) "p95 interpolates" 38.5 (Stats.percentile arr ~p:95.);
  Alcotest.(check (float 1e-12)) "input left unsorted" 38.5
    (Stats.percentile [| 40.; 10.; 30.; 20. |] ~p:95.);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p must lie in [0, 100]") (fun () ->
      ignore (Stats.percentile arr ~p:101.))

let test_percentile_sorted () =
  let sorted = [| 1.; 2.; 3. |] in
  Alcotest.(check (float 1e-12)) "p50 on sorted" 2.
    (Stats.percentile_sorted sorted ~p:50.);
  Alcotest.(check (float 1e-12)) "p25 interpolates" 1.5
    (Stats.percentile_sorted sorted ~p:25.)

let nonempty_floats =
  QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-1000.) 1000.))

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies between min and max" ~count:300
    QCheck.(pair nonempty_floats (float_range 0. 100.))
    (fun (floats, p) ->
      let arr = Array.of_list floats in
      let v = Stats.percentile arr ~p in
      Stats.min_value arr <= v && v <= Stats.max_value arr)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(triple nonempty_floats (float_range 0. 100.) (float_range 0. 100.))
    (fun (floats, p1, p2) ->
      let arr = Array.of_list floats in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile arr ~p:lo <= Stats.percentile arr ~p:hi)

let qcheck_percentile_endpoints =
  QCheck.Test.make ~name:"p0/p100 are the extremes, p50 the median" ~count:300
    nonempty_floats (fun floats ->
      let arr = Array.of_list floats in
      Stats.percentile arr ~p:0. = Stats.min_value arr
      && Stats.percentile arr ~p:100. = Stats.max_value arr
      && Stats.median arr = Stats.percentile arr ~p:50.)

let qcheck_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range (-1000.) 1000.))
    (fun floats -> Stats.variance (Array.of_list floats) >= 0.)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "argmin" `Quick test_argmin;
    Alcotest.test_case "two smallest" `Quick test_two_smallest;
    Alcotest.test_case "two smallest with duplicates" `Quick test_two_smallest_duplicates;
    Alcotest.test_case "two smallest singleton" `Quick test_two_smallest_singleton;
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "fequal" `Quick test_fequal;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile (pre-sorted)" `Quick test_percentile_sorted;
    QCheck_alcotest.to_alcotest qcheck_variance_nonneg;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_percentile_endpoints;
  ]
