(* Tests for Noc_noc.Routing: deterministic XY routing. *)

module Topology = Noc_noc.Topology
module Routing = Noc_noc.Routing

let mesh = Topology.mesh ~cols:4 ~rows:4
let torus = Topology.torus ~cols:4 ~rows:4

let test_route_same_tile () =
  Alcotest.(check (list int)) "self route" [ 5 ] (Routing.route mesh ~src:5 ~dst:5);
  Alcotest.(check int) "no hops" 0 (Routing.hops mesh ~src:5 ~dst:5)

let test_route_xy_order () =
  (* From (0,0) to (2,1): XY goes x first (0 -> 1 -> 2), then y (-> 6). *)
  Alcotest.(check (list int)) "x then y" [ 0; 1; 2; 6 ]
    (Routing.route mesh ~src:0 ~dst:6)

let test_route_negative_directions () =
  (* From (3,3)=15 to (1,2)=9: x back (15->14->13), then y up (13->9). *)
  Alcotest.(check (list int)) "negative xy" [ 15; 14; 13; 9 ]
    (Routing.route mesh ~src:15 ~dst:9)

let test_route_length () =
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let route = Routing.route mesh ~src ~dst in
      Alcotest.(check int) "length = distance + 1"
        (Topology.distance mesh src dst + 1)
        (List.length route)
    done
  done

let test_hops_eq2_convention () =
  (* n_hops counts routers traversed: distance + 1 for distinct tiles. *)
  Alcotest.(check int) "adjacent tiles: 2 routers" 2 (Routing.hops mesh ~src:0 ~dst:1);
  Alcotest.(check int) "corner to corner" 7 (Routing.hops mesh ~src:0 ~dst:15)

let test_links_of_route () =
  let links = Routing.links mesh ~src:0 ~dst:6 in
  Alcotest.(check int) "three links" 3 (List.length links);
  Alcotest.(check bool) "first link" true
    (Routing.link_equal (List.hd links) { Routing.from_node = 0; to_node = 1 })

let test_route_contiguous () =
  let check_route topo src dst =
    let route = Routing.route topo ~src ~dst in
    let rec ok = function
      | a :: (b :: _ as rest) -> Topology.are_neighbours topo a b && ok rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "hops between neighbours" true (ok route);
    Alcotest.(check int) "ends at dst" dst (List.nth route (List.length route - 1));
    Alcotest.(check int) "starts at src" src (List.hd route)
  in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      check_route mesh src dst;
      check_route torus src dst
    done
  done

let test_torus_route_wraps () =
  (* 0=(0,0) to 3=(3,0): shorter to wrap -x, one hop. *)
  Alcotest.(check (list int)) "wrap route" [ 0; 3 ] (Routing.route torus ~src:0 ~dst:3)

let test_all_links_mesh () =
  (* 4x4 mesh: 2 * (3*4 + 3*4) = 48 directed links. *)
  Alcotest.(check int) "48 directed links" 48 (List.length (Routing.all_links mesh))

let test_all_links_torus () =
  (* 4x4 torus: every tile has 4 neighbours -> 64 directed links. *)
  Alcotest.(check int) "64 directed links" 64 (List.length (Routing.all_links torus))

let test_route_deterministic () =
  Alcotest.(check (list int)) "same call same route"
    (Routing.route mesh ~src:2 ~dst:13)
    (Routing.route mesh ~src:2 ~dst:13)

let qcheck_route_minimal =
  QCheck.Test.make ~name:"routes are minimal" ~count:300
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (src, dst) ->
      List.length (Routing.route torus ~src ~dst) = Topology.distance torus src dst + 1)

let suite =
  [
    Alcotest.test_case "route to self" `Quick test_route_same_tile;
    Alcotest.test_case "XY order" `Quick test_route_xy_order;
    Alcotest.test_case "negative directions" `Quick test_route_negative_directions;
    Alcotest.test_case "route length" `Quick test_route_length;
    Alcotest.test_case "hops convention (Eq. 2)" `Quick test_hops_eq2_convention;
    Alcotest.test_case "links of route" `Quick test_links_of_route;
    Alcotest.test_case "routes contiguous" `Quick test_route_contiguous;
    Alcotest.test_case "torus route wraps" `Quick test_torus_route_wraps;
    Alcotest.test_case "all links (mesh)" `Quick test_all_links_mesh;
    Alcotest.test_case "all links (torus)" `Quick test_all_links_torus;
    Alcotest.test_case "deterministic" `Quick test_route_deterministic;
    QCheck_alcotest.to_alcotest qcheck_route_minimal;
  ]
