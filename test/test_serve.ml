(* Tests for the scheduling daemon (lib/serve): LRU cache semantics,
   protocol parsing and structured errors, cache-hit bit-identity
   (including relabelling for permuted edge declarations), certification
   of served schedules, concurrent clients against a live daemon, and a
   differential test against one-shot `nocsched schedule` output. *)

module Cache = Noc_serve.Cache
module Protocol = Noc_serve.Protocol
module Server = Noc_serve.Server
module Client = Noc_serve.Client
module Json = Noc_obs.Json
module Ctg = Noc_ctg.Ctg
module Ctg_io = Noc_ctg.Ctg_io
module Task = Noc_ctg.Task
module Edge = Noc_ctg.Edge
module Runner = Noc_experiments.Runner

let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()

let graph ?(tasks = 20) seed =
  let params = { Noc_tgff.Params.default with n_tasks = tasks } in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let mk_state ?(capacity = 64) ?jobs () =
  Server.make_state { Server.socket_path = "unused"; capacity; jobs }

let schedule_line ?(algo = Runner.Eas) ?(decisions = false) ?dvfs ?id ctg =
  Protocol.request_to_line ?id
    (Protocol.Schedule
       { ctg_text = Ctg_io.to_string ctg; mesh = (4, 4); algo; decisions; dvfs })

let reschedule_line ?(algo = Runner.Eas) ?id ~faults ctg =
  Protocol.request_to_line ?id
    (Protocol.Reschedule
       { ctg_text = Ctg_io.to_string ctg; mesh = (4, 4); algo; faults })

let parse_reply reply =
  match Json.parse reply with
  | Ok obj -> obj
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" reply msg

let is_ok obj = Json.member "ok" obj = Some (Json.Bool true)

let str_member name obj =
  match Json.member name obj with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "reply lacks string field %S" name

let bool_member name obj =
  match Json.member name obj with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "reply lacks bool field %S" name

let num_member name obj =
  match Json.member name obj with
  | Some (Json.Number n) -> n
  | _ -> Alcotest.failf "reply lacks number field %S" name

let expect_ok state line =
  let reply, stop = Server.handle_line state line in
  Alcotest.(check bool) "not a shutdown" false stop;
  let obj = parse_reply reply in
  if not (is_ok obj) then Alcotest.failf "request refused: %s" reply;
  obj

let expect_error state line =
  let reply, stop = Server.handle_line state line in
  Alcotest.(check bool) "not a shutdown" false stop;
  let obj = parse_reply reply in
  Alcotest.(check bool) "ok is false" false (is_ok obj);
  Alcotest.(check string) "schema present" Protocol.schema
    (str_member "schema" obj);
  str_member "error" obj

(* ------------------------------------------------------------------ *)
(* LRU cache *)

let test_cache_basics () =
  let c = Cache.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Cache.capacity c);
  Alcotest.(check bool) "miss on empty" true (Cache.find c "a" = None);
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check bool) "hit a" true (Cache.find c "a" = Some 1);
  (* b is now least recently used: inserting c evicts it. *)
  Cache.add c "c" 3;
  Alcotest.(check int) "still at capacity" 2 (Cache.length c);
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "a survived" true (Cache.find c "a" = Some 1);
  Alcotest.(check bool) "c present" true (Cache.find c "c" = Some 3);
  Alcotest.(check int) "evictions" 1 (Cache.evictions c);
  Alcotest.(check int) "hits" 3 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  (* Replacing an existing key never evicts. *)
  Cache.add c "c" 30;
  Alcotest.(check int) "replace keeps both" 2 (Cache.length c);
  Alcotest.(check int) "replace does not evict" 1 (Cache.evictions c);
  Alcotest.(check bool) "replaced value" true (Cache.find c "c" = Some 30);
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ] (Cache.keys c)

let test_cache_invalid_capacity () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Cache.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_roundtrip () =
  let requests =
    [
      Protocol.Schedule
        {
          ctg_text = "x\ny";
          mesh = (4, 4);
          algo = Runner.Eas;
          decisions = true;
          dvfs = None;
        };
      Protocol.Schedule
        {
          ctg_text = "x";
          mesh = (4, 4);
          algo = Runner.Eas;
          decisions = false;
          dvfs = Some Noc_dvfs.Vf_table.default;
        };
      Protocol.Simulate
        {
          ctg_text = "x";
          mesh = (3, 3);
          algo = Runner.Edf;
          faults = [ "pe:1"; "link:3-7" ];
          self_timed = true;
        };
      Protocol.Reschedule
        { ctg_text = "x"; mesh = (8, 8); algo = Runner.Eas_base; faults = [ "pe:2" ] };
      Protocol.Stats;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_request (Protocol.request_to_line ~id:"r1" r) with
      | Ok (r', id) ->
        Alcotest.(check bool)
          (Protocol.op_name r ^ " round-trips") true (r = r');
        Alcotest.(check (option string)) "id echoed" (Some "r1") id
      | Error msg -> Alcotest.failf "%s failed to re-parse: %s" (Protocol.op_name r) msg)
    requests

let test_protocol_errors () =
  let bad line =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error _ -> ()
  in
  bad "{oops";
  bad "42";
  bad {|{"op": "frobnicate"}|};
  bad {|{"op": "schedule"}|};
  (* a schedule without a ctg *)
  bad {|{"op": "schedule", "ctg": "x", "mesh": "4x"}|}

(* ------------------------------------------------------------------ *)
(* Server: structured errors *)

let test_malformed_requests () =
  let state = mk_state () in
  let err = expect_error state "{not json" in
  Alcotest.(check bool) "names the parse failure" true (String.length err > 0);
  ignore (expect_error state {|{"op": "teleport"}|});
  let err =
    expect_error state
      (Protocol.request_to_line
         (Protocol.Schedule
            {
              ctg_text = "garbage";
              mesh = (4, 4);
              algo = Runner.Eas;
              decisions = false;
              dvfs = None;
            }))
  in
  Alcotest.(check bool) "ctg error prefixed" true
    (String.length err >= 4 && String.sub err 0 4 = "ctg:");
  let err =
    expect_error state
      (Protocol.request_to_line
         (Protocol.Reschedule
            {
              ctg_text = Ctg_io.to_string (graph 0);
              mesh = (4, 4);
              algo = Runner.Eas;
              faults = [ "pe:bogus" ];
            }))
  in
  Alcotest.(check bool) "fault error prefixed" true
    (String.length err >= 7 && String.sub err 0 7 = "faults:");
  (* A mesh mismatch is an error reply, not a crash. *)
  ignore
    (expect_error state
       (Protocol.request_to_line
          (Protocol.Schedule
             {
               ctg_text = Ctg_io.to_string (graph 0);
               mesh = (3, 3);
               algo = Runner.Eas;
               decisions = false;
               dvfs = None;
             })))

(* ------------------------------------------------------------------ *)
(* Server: cache behaviour and bit-identity *)

let certify_reply_schedule ?ctg obj =
  let ctg =
    match ctg with
    | Some g -> g
    | None -> Alcotest.fail "certify_reply_schedule needs the graph"
  in
  match Noc_sched.Schedule_io.of_string platform ctg (str_member "schedule" obj) with
  | Error msg -> Alcotest.failf "reply schedule does not parse: %s" msg
  | Ok schedule ->
    let diags = Noc_analysis.Certify.check platform ctg schedule in
    let errors, _, _ = Noc_analysis.Diagnostic.count diags in
    Alcotest.(check int) "certifier errors" 0 errors

let test_cached_hit_bit_identity () =
  let state = mk_state () in
  let g = graph 1 in
  let line = schedule_line g in
  let first = expect_ok state line in
  let second = expect_ok state line in
  Alcotest.(check bool) "first is a miss" false (bool_member "cached" first);
  Alcotest.(check bool) "second is a hit" true (bool_member "cached" second);
  Alcotest.(check string) "schedules bit-identical"
    (str_member "schedule" first) (str_member "schedule" second);
  Alcotest.(check string) "same cache key" (str_member "key" first)
    (str_member "key" second);
  Alcotest.(check bool) "certified" true (bool_member "certified" second);
  (* The daemon's schedule is the one-shot scheduler's schedule. *)
  let direct = Runner.schedule_of Runner.Eas platform g in
  Alcotest.(check string) "identical to direct run"
    (Noc_sched.Schedule_io.to_string direct)
    (str_member "schedule" first);
  certify_reply_schedule ~ctg:g second

(* A graph whose edges are declared in a different order (with
   correspondingly different edge ids) digests identically — the
   scheduling problem is the same — but the cached schedule's
   transaction labels must be rewritten for the request's ids. *)
let pipeline_tasks () =
  let times = Array.init 16 (fun k -> 2. +. (0.25 *. float_of_int (k mod 4))) in
  let energies = Array.init 16 (fun k -> 8. +. float_of_int (k mod 5)) in
  [|
    Task.make ~id:0 ~exec_times:times ~energies ();
    Task.make ~id:1 ~exec_times:times ~energies ();
    Task.make ~id:2 ~exec_times:times ~energies ();
    Task.make ~id:3 ~exec_times:times ~energies ~deadline:200. ();
  |]

let test_permuted_edges_hit () =
  let tasks = pipeline_tasks () in
  let edges_a =
    [|
      Edge.make ~id:0 ~src:0 ~dst:1 ~volume:64.;
      Edge.make ~id:1 ~src:0 ~dst:2 ~volume:96.;
      Edge.make ~id:2 ~src:1 ~dst:3 ~volume:128.;
      Edge.make ~id:3 ~src:2 ~dst:3 ~volume:32.;
    |]
  in
  let edges_b =
    [|
      Edge.make ~id:0 ~src:2 ~dst:3 ~volume:32.;
      Edge.make ~id:1 ~src:1 ~dst:3 ~volume:128.;
      Edge.make ~id:2 ~src:0 ~dst:1 ~volume:64.;
      Edge.make ~id:3 ~src:0 ~dst:2 ~volume:96.;
    |]
  in
  let ga = Ctg.make_exn ~tasks ~edges:edges_a in
  let gb = Ctg.make_exn ~tasks ~edges:edges_b in
  Alcotest.(check string) "digest ignores edge declaration order"
    (Ctg.digest ga) (Ctg.digest gb);
  let state = mk_state () in
  let ra = expect_ok state (schedule_line ga) in
  let rb = expect_ok state (schedule_line gb) in
  Alcotest.(check bool) "permuted request served from cache" true
    (bool_member "cached" rb);
  (* The relabelled reply must be the right answer for gb, not ga: same
     placements, same arcs, gb's edge ids. *)
  let sa = str_member "schedule" ra and sb = str_member "schedule" rb in
  Alcotest.(check bool) "labels rewritten" true (sa <> sb);
  certify_reply_schedule ~ctg:gb rb;
  let direct = Runner.schedule_of Runner.Eas platform gb in
  Alcotest.(check string) "identical to scheduling gb directly"
    (Noc_sched.Schedule_io.to_string direct) sb

let test_eviction_at_capacity () =
  let state = mk_state ~capacity:1 () in
  let ga = graph 2 and gb = graph 3 in
  let r1 = expect_ok state (schedule_line ga) in
  Alcotest.(check bool) "miss" false (bool_member "cached" r1);
  let r2 = expect_ok state (schedule_line ga) in
  Alcotest.(check bool) "hit while resident" true (bool_member "cached" r2);
  ignore (expect_ok state (schedule_line gb));
  let r3 = expect_ok state (schedule_line ga) in
  Alcotest.(check bool) "evicted by gb, recomputed" false (bool_member "cached" r3);
  Alcotest.(check string) "recomputation is bit-identical"
    (str_member "schedule" r1) (str_member "schedule" r3);
  let stats = expect_ok state (Protocol.request_to_line Protocol.Stats) in
  match Json.member "cache" stats with
  | Some cache ->
    Alcotest.(check bool) "evictions counted" true (num_member "evictions" cache >= 2.)
  | None -> Alcotest.fail "stats reply lacks cache object"

let test_reschedule_incremental () =
  let state = mk_state () in
  let g = graph 4 in
  ignore (expect_ok state (schedule_line g));
  let line = reschedule_line ~faults:[ "pe:1" ] g in
  let r1 = expect_ok state line in
  Alcotest.(check bool) "fresh reschedule" false (bool_member "cached" r1);
  Alcotest.(check bool) "base came from the cache" true
    (bool_member "base_cached" r1);
  Alcotest.(check bool) "certified" true (bool_member "certified" r1);
  (* Stats of the incremental ladder are reported. *)
  ignore (num_member "migrated" r1);
  ignore (num_member "rerouted" r1);
  let r2 = expect_ok state line in
  Alcotest.(check bool) "repeat reschedule hits the cache" true
    (bool_member "cached" r2);
  Alcotest.(check string) "bit-identical on the hit" (str_member "schedule" r1)
    (str_member "schedule" r2);
  (* The served schedule equals running the ladder directly. *)
  let faults =
    match Noc_fault.Fault_set.of_strings [ "pe:1" ] with
    | Ok f -> f
    | Error msg -> Alcotest.fail msg
  in
  let base = Runner.schedule_of Runner.Eas platform g in
  let direct = (Noc_eas.Fault_resched.run platform g ~faults base).Noc_eas.Fault_resched.schedule in
  Alcotest.(check string) "identical to the direct ladder"
    (Noc_sched.Schedule_io.to_string direct)
    (str_member "schedule" r1)

let test_simulate_request () =
  let state = mk_state () in
  let g = graph 5 in
  let line =
    Protocol.request_to_line
      (Protocol.Simulate
         {
           ctg_text = Ctg_io.to_string g;
           mesh = (4, 4);
           algo = Runner.Eas;
           faults = [];
           self_timed = false;
         })
  in
  let r = expect_ok state line in
  ignore (num_member "sim_misses" r);
  ignore (num_member "lost_tasks" r);
  ignore (num_member "waiting_time" r);
  ignore (num_member "realised_makespan" r);
  (* The simulate request warms the schedule cache too. *)
  let r2 = expect_ok state (schedule_line g) in
  Alcotest.(check bool) "schedule after simulate is a hit" true
    (bool_member "cached" r2)

let test_stats_shape () =
  let state = mk_state () in
  ignore (expect_ok state (schedule_line (graph 6)));
  ignore (expect_error state "{broken");
  let stats = expect_ok state (Protocol.request_to_line Protocol.Stats) in
  Alcotest.(check bool) "requests counted" true (num_member "requests" stats >= 2.);
  Alcotest.(check bool) "errors counted" true (num_member "errors" stats >= 1.);
  (match Json.member "latency" stats with
  | Some (Json.Obj fields) ->
    let schedule_hist =
      match List.assoc_opt "serve/schedule" fields with
      | Some h -> h
      | None -> Alcotest.fail "no serve/schedule histogram"
    in
    Alcotest.(check bool) "histogram has samples" true
      (num_member "count" schedule_hist >= 1.);
    ignore (num_member "p50_ms" schedule_hist);
    ignore (num_member "p99_ms" schedule_hist)
  | _ -> Alcotest.fail "stats reply lacks latency object");
  match Json.member "parse_cache" stats with
  | Some _ -> ()
  | None -> Alcotest.fail "stats reply lacks parse_cache object"

(* ------------------------------------------------------------------ *)
(* Differential: the daemon's reply vs one-shot `nocsched schedule`.   *)

(* Resolved against the test executable, not the cwd, so the test also
   works under `dune exec` from the workspace root. *)
let binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "nocsched.exe"))

let test_one_shot_differential () =
  let ctg_file = Filename.temp_file "serve_diff" ".ctg" in
  let sched_file = Filename.temp_file "serve_diff" ".sched" in
  let dec_file = Filename.temp_file "serve_diff" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ ctg_file; sched_file; dec_file ])
    (fun () ->
      let g = graph ~tasks:18 7 in
      Ctg_io.save ~path:ctg_file g;
      let command =
        Printf.sprintf "%s schedule %s --save-schedule %s --decisions %s --quiet >/dev/null 2>&1"
          binary (Filename.quote ctg_file) (Filename.quote sched_file)
          (Filename.quote dec_file)
      in
      Alcotest.(check int) "one-shot run exits 0" 0 (Sys.command command);
      let read f = In_channel.with_open_bin f In_channel.input_all in
      let state = mk_state () in
      let reply = expect_ok state (schedule_line ~decisions:true g) in
      Alcotest.(check string) "daemon schedule = one-shot --save-schedule"
        (read sched_file) (str_member "schedule" reply);
      Alcotest.(check string) "daemon decision log = one-shot --decisions"
        (read dec_file) (str_member "decisions" reply))

(* ------------------------------------------------------------------ *)
(* Live daemon: concurrent clients over the Unix socket.               *)

let test_concurrent_clients () =
  let socket_path =
    Printf.sprintf "%s/nocsched-test-serve-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          { Server.socket_path; capacity = 16; jobs = Some 2 })
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (* Expected energies, computed directly. *)
  let energy_of g =
    let s = Runner.schedule_of Runner.Eas platform g in
    (Noc_sched.Metrics.compute platform g s).Noc_sched.Metrics.total_energy
  in
  let seeds_a = [ 10; 11; 12 ] and seeds_b = [ 13; 14; 15 ] in
  let client_loop name seeds =
    Client.with_connection ~retries:100 ~socket_path (fun c ->
        List.map
          (fun seed ->
            let id = Printf.sprintf "%s-%d" name seed in
            let reply = Client.request c (schedule_line ~id (graph seed)) in
            let obj = parse_reply reply in
            if not (is_ok obj) then Alcotest.failf "daemon refused: %s" reply;
            Alcotest.(check string) "reply routed to the right request" id
              (str_member "id" obj);
            (seed, num_member "energy" obj))
          seeds)
  in
  (* Two clients in parallel domains, interleaving requests. *)
  let da = Domain.spawn (fun () -> client_loop "a" seeds_a) in
  let db = Domain.spawn (fun () -> client_loop "b" seeds_b) in
  let ra = Domain.join da and rb = Domain.join db in
  List.iter
    (fun (seed, energy) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "energy for seed %d" seed)
        (energy_of (graph seed)) energy)
    (ra @ rb);
  (* Clean shutdown through the protocol; the socket file disappears. *)
  let reply =
    Client.one_shot ~retries:10 ~socket_path
      (Protocol.request_to_line Protocol.Shutdown)
  in
  Alcotest.(check bool) "shutdown acknowledged" true (is_ok (parse_reply reply));
  Domain.join daemon;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path)

(* A --dvfs request must never be answered from the unscaled cache (or
   vice versa): the V/f ladder is its own cache-key segment. *)
let test_dvfs_no_cache_aliasing () =
  let state = mk_state () in
  let g = graph 5 in
  let plain = expect_ok state (schedule_line g) in
  let scaled = expect_ok state (schedule_line ~dvfs:Noc_dvfs.Vf_table.default g) in
  Alcotest.(check bool) "keys differ" true
    (str_member "key" plain <> str_member "key" scaled);
  Alcotest.(check bool) "scaled reply is not the cached unscaled one" false
    (bool_member "cached" scaled);
  Alcotest.(check bool) "but its base schedule was reused" true
    (bool_member "base_cached" scaled);
  Alcotest.(check bool) "scaled schedule is format v3" true
    (String.starts_with ~prefix:"schedule 3\n" (str_member "schedule" scaled));
  Alcotest.(check bool) "unscaled schedule stays v2" true
    (String.starts_with ~prefix:"schedule 2\n" (str_member "schedule" plain));
  Alcotest.(check bool) "reclaims energy" true (num_member "reclaimed" scaled > 0.);
  Alcotest.(check bool) "energy drops accordingly" true
    (num_member "energy" scaled
     < num_member "energy" plain -. (num_member "reclaimed" scaled /. 2.));
  Alcotest.(check bool) "certified" true (bool_member "certified" scaled);
  (* Replays hit their own entries, bit-identically. *)
  let scaled2 = expect_ok state (schedule_line ~dvfs:Noc_dvfs.Vf_table.default g) in
  Alcotest.(check bool) "scaled replay is a hit" true (bool_member "cached" scaled2);
  Alcotest.(check string) "scaled replay bit-identical"
    (str_member "schedule" scaled) (str_member "schedule" scaled2);
  let plain2 = expect_ok state (schedule_line g) in
  Alcotest.(check bool) "plain replay is a hit" true (bool_member "cached" plain2);
  Alcotest.(check string) "plain replay still unscaled"
    (str_member "schedule" plain) (str_member "schedule" plain2);
  (* A different ladder is a different key. *)
  let table = Result.get_ok (Noc_dvfs.Vf_table.of_string "1,0.9") in
  let other = expect_ok state (schedule_line ~dvfs:table g) in
  Alcotest.(check bool) "other ladder misses" false (bool_member "cached" other);
  Alcotest.(check bool) "other ladder has its own key" true
    (str_member "key" other <> str_member "key" scaled)

let suite =
  [
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache invalid capacity" `Quick test_cache_invalid_capacity;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
    Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
    Alcotest.test_case "cached hit bit-identity" `Quick test_cached_hit_bit_identity;
    Alcotest.test_case "permuted edges hit" `Quick test_permuted_edges_hit;
    Alcotest.test_case "eviction at capacity" `Quick test_eviction_at_capacity;
    Alcotest.test_case "incremental reschedule" `Quick test_reschedule_incremental;
    Alcotest.test_case "simulate request" `Quick test_simulate_request;
    Alcotest.test_case "stats shape" `Quick test_stats_shape;
    Alcotest.test_case "one-shot differential" `Quick test_one_shot_differential;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "dvfs never aliases the unscaled cache" `Quick
      test_dvfs_no_cache_aliasing;
  ]
