(* Mapping search: the qcheck differential law pinning the O(incident
   arcs) delta evaluator bit-identical to a from-scratch recompute,
   search determinism across job counts and chain prefixes, the
   identity-energy guarantee of the pure-energy objective, and the
   pinned-EAS contract the survivors rely on. *)

module Objective = Noc_map.Objective
module Search = Noc_map.Search
module Prng = Noc_util.Prng
module Ctg = Noc_ctg.Ctg

let mesh_platform =
  Noc_noc.Platform.heterogeneous ~seed:42 (Noc_noc.Topology.mesh ~cols:4 ~rows:4) ()

let torus_platform =
  Noc_noc.Platform.heterogeneous ~seed:42 (Noc_noc.Topology.torus ~cols:4 ~rows:4) ()

let random_ctg platform ~n_tasks ~seed =
  let params = { Noc_tgff.Params.default with n_tasks } in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let tables ?weights platform ctg =
  let kernel = Noc_eas.Kernel.build platform ctg in
  Objective.lift ?weights platform kernel ctg

(* The differential law (the mli's advertised contract): after ANY
   sequence of random moves and swaps, the maintained value is
   bit-identical — Int64.bits_of_float, not within epsilon — to
   [full_value] of the current mapping, on meshes and tori and under
   random latency/balance weights. Each step also checks the returned
   delta against the oracle difference (a float subtraction, so only
   approximately). *)
let qcheck_delta_law =
  QCheck.Test.make ~name:"delta eval bit-identical to full recompute" ~count:30
    QCheck.(
      quad (int_range 0 1000) (int_range 10 60) (pair (int_range 0 20) (int_range 0 20))
        bool)
    (fun (seed, n_tasks, (lat10, bal10), on_torus) ->
      let platform = if on_torus then torus_platform else mesh_platform in
      let ctg = random_ctg platform ~n_tasks ~seed in
      let n_pes = Noc_noc.Platform.n_pes platform in
      let t = tables platform ctg in
      let weights =
        {
          Objective.latency = float_of_int lat10 /. 10.;
          balance = float_of_int bal10 /. 10. *. Objective.mean_exec_energy t;
        }
      in
      let t = tables ~weights platform ctg in
      let state = Objective.create t (Search.identity_mapping ~n_tasks ~n_pes) in
      let rng = Prng.create ~seed:(seed + 1) in
      let bits f = Int64.bits_of_float f in
      let steps = 200 in
      let ok = ref true in
      for _ = 1 to steps do
        let before = Objective.value state in
        let delta =
          if Prng.bool rng then begin
            let task = Prng.int rng ~bound:n_tasks in
            let to_ = Prng.int rng ~bound:n_pes in
            let d = Objective.move_delta state ~task ~to_ in
            Objective.apply_move state ~task ~to_;
            d
          end
          else begin
            let a = Prng.int rng ~bound:n_tasks in
            let b = Prng.int rng ~bound:n_tasks in
            let d = Objective.swap_delta state ~a ~b in
            Objective.apply_swap state ~a ~b;
            d
          end
        in
        let after = Objective.value state in
        let oracle = Objective.full_value t (Objective.mapping state) in
        if bits after <> bits oracle then ok := false;
        (* The delta itself only approximates [after - before]: both are
           differences of exact terms, but taken in different orders. *)
        if abs_float (before +. delta -. after) > 1e-6 *. (1. +. abs_float after)
        then ok := false
      done;
      !ok)

(* Tile counts and tile_of stay consistent with the mapping they
   summarise (the balance term depends on them being exact). *)
let qcheck_counts_consistent =
  QCheck.Test.make ~name:"state counts track the mapping" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n_tasks = 40 in
      let ctg = random_ctg mesh_platform ~n_tasks ~seed in
      let n_pes = Noc_noc.Platform.n_pes mesh_platform in
      let t = tables mesh_platform ctg in
      let state = Objective.create t (Search.identity_mapping ~n_tasks ~n_pes) in
      let rng = Prng.create ~seed in
      for _ = 1 to 100 do
        Objective.apply_move state ~task:(Prng.int rng ~bound:n_tasks)
          ~to_:(Prng.int rng ~bound:n_pes)
      done;
      let m = Objective.mapping state in
      let counts = Array.make n_pes 0 in
      Array.iter (fun k -> counts.(k) <- counts.(k) + 1) m;
      Array.for_all (fun x -> x) (Array.init n_pes (fun k -> Objective.count state k = counts.(k)))
      && Array.for_all (fun x -> x)
           (Array.init n_tasks (fun i -> Objective.tile_of state i = m.(i))))

(* Structural digest of everything a search run computed; float fields
   compare bitwise under (=), which is exactly the determinism the
   search promises. *)
let digest (r : Search.result) =
  ( List.map
      (fun (c : Search.chain_result) ->
        (c.chain, c.value, c.accepted, Array.to_list c.best_mapping))
      r.chain_results,
    List.map
      (fun (c : Search.candidate) ->
        ( Search.origin_name c.origin, c.static_value, c.energy, c.makespan,
          c.misses, c.cert_errors, Array.to_list c.mapping ))
      r.candidates,
    Array.to_list r.winner.mapping )

let small_params = { Search.default_params with iters = 3_000 }

let search_case () =
  let ctg = random_ctg mesh_platform ~n_tasks:60 ~seed:5 in
  (mesh_platform, ctg)

let test_jobs_invariance () =
  let platform, ctg = search_case () in
  let run jobs = Search.run ~jobs ~params:small_params platform ctg in
  let r1 = digest (run 1) in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (r1 = digest (run 2));
  Alcotest.(check bool) "jobs 1 = jobs 4" true (r1 = digest (run 4))

let test_chain_prefix () =
  let platform, ctg = search_case () in
  let chains c =
    (Search.run ~jobs:1 ~params:{ small_params with chains = c } platform ctg)
      .chain_results
  in
  let narrow = chains 2 and wide = chains 4 in
  let prefix = List.filteri (fun i _ -> i < List.length narrow) wide in
  Alcotest.(check bool) "first 2 of 4 chains = 2-chain run" true
    (List.map (fun (c : Search.chain_result) -> (c.chain, c.value, c.accepted))
       prefix
    = List.map (fun (c : Search.chain_result) -> (c.chain, c.value, c.accepted))
        narrow)

(* Under the pure-energy objective the best static survivor can never
   cost more pinned-EAS energy than the identity mapping: chain 0
   starts from the identity with best-so-far tracking, and the
   objective IS the (schedule-independent) Eq.-3 energy. *)
let test_never_loses_to_identity () =
  let platform, ctg = search_case () in
  let r = Search.run ~jobs:1 ~params:small_params platform ctg in
  let best = List.hd r.candidates in
  let identity =
    List.find (fun (c : Search.candidate) -> c.origin = Search.Identity)
      r.candidates
  in
  Alcotest.(check bool) "best static value <= identity energy" true
    (best.static_value <= identity.energy *. (1. +. 1e-9));
  Alcotest.(check bool) "best survivor energy <= identity energy" true
    (best.energy <= identity.energy *. (1. +. 1e-9));
  (* Energy-only static value = pinned-EAS Eq.-3 total, per candidate. *)
  List.iter
    (fun (c : Search.candidate) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s static value = schedule energy"
           (Search.origin_name c.origin))
        true
        (Noc_util.Stats.fequal ~eps:1e-6 c.static_value c.energy))
    r.candidates

let test_capacity_respected () =
  let platform, ctg = search_case () in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let cap = 5 in
  let r =
    Search.run ~jobs:1
      ~params:{ small_params with capacity = Some cap }
      platform ctg
  in
  List.iter
    (fun (c : Search.candidate) ->
      match c.origin with
      | Search.Identity -> ()
      | Search.Chain _ ->
        let counts = Array.make n_pes 0 in
        Array.iter (fun k -> counts.(k) <- counts.(k) + 1) c.mapping;
        Alcotest.(check bool) "per-tile count <= capacity" true
          (Array.for_all (fun n -> n <= cap) counts))
    r.candidates

let test_pinned_eas_respects_mapping () =
  let platform, ctg = search_case () in
  let n_tasks = Ctg.n_tasks ctg in
  let n_pes = Noc_noc.Platform.n_pes platform in
  let pinned = Array.init n_tasks (fun i -> (i * 7 + 3) mod n_pes) in
  let s = (Noc_eas.Eas.schedule ~pinned platform ctg).Noc_eas.Eas.schedule in
  for i = 0 to n_tasks - 1 do
    Alcotest.(check int)
      (Printf.sprintf "task %d placed on its pinned PE" i)
      pinned.(i)
      (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.pe
  done;
  let resource_violations =
    Noc_sched.Validate.check platform ctg s
    |> List.filter (function
         | Noc_sched.Validate.Deadline_miss _ -> false
         | _ -> true)
  in
  Alcotest.(check int) "pinned schedule has no resource violations" 0
    (List.length resource_violations)

let test_pinned_rejects_bad_mapping () =
  let platform, ctg = search_case () in
  let n_tasks = Ctg.n_tasks ctg in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Level_sched.run: pinned length <> task count")
    (fun () -> ignore (Noc_eas.Eas.schedule ~pinned:[| 0; 1; 2 |] platform ctg));
  Alcotest.check_raises "EDF refuses a mapping"
    (Invalid_argument "Runner.schedule_of: EDF does not take a pinned mapping")
    (fun () ->
      ignore
        (Noc_experiments.Runner.schedule_of
           ~pinned:(Array.make n_tasks 0)
           Noc_experiments.Runner.Edf platform ctg))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_delta_law;
    QCheck_alcotest.to_alcotest qcheck_counts_consistent;
    Alcotest.test_case "search is jobs-invariant" `Quick test_jobs_invariance;
    Alcotest.test_case "chain prefixes reproduce" `Quick test_chain_prefix;
    Alcotest.test_case "never loses to identity" `Quick test_never_loses_to_identity;
    Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
    Alcotest.test_case "pinned EAS respects the mapping" `Quick
      test_pinned_eas_respects_mapping;
    Alcotest.test_case "pinned validation" `Quick test_pinned_rejects_bad_mapping;
  ]
