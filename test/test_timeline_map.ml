(* Differential tests: Timeline_map must be observationally equivalent
   to Timeline under every operation sequence. *)

module A = Noc_util.Timeline
module B = Noc_util.Timeline_map
module Interval = Noc_util.Interval

let iv start stop = Interval.make ~start ~stop

(* Apply the same random mix of operations to both implementations and
   compare every observation. *)
let qcheck_differential =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun s d -> `Reserve_at (float_of_int s, float_of_int d)) (int_range 0 200) (int_range 1 20));
          (2, map2 (fun a d -> `Gap (float_of_int a, float_of_int d)) (int_range 0 200) (int_range 1 20));
          (1, return `Snapshot);
          (1, return `Restore);
          (1, map2 (fun a d -> `Is_free (float_of_int a, float_of_int d)) (int_range 0 200) (int_range 1 20));
        ])
  in
  QCheck.Test.make ~name:"map and list timelines are observationally equal" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun ops ->
      let a = A.create () and b = B.create () in
      let snap_a = ref (A.snapshot a) and snap_b = ref (B.snapshot b) in
      List.for_all
        (fun op ->
          match op with
          | `Reserve_at (start, dur) ->
            let slot = iv start (start +. dur) in
            let free_a = A.is_free a slot and free_b = B.is_free b slot in
            if free_a <> free_b then false
            else begin
              if free_a then begin
                A.reserve a slot;
                B.reserve b slot
              end;
              true
            end
          | `Gap (after, dur) ->
            A.earliest_gap a ~after ~duration:dur
            = B.earliest_gap b ~after ~duration:dur
          | `Is_free (after, dur) ->
            A.is_free a (iv after (after +. dur)) = B.is_free b (iv after (after +. dur))
          | `Snapshot ->
            snap_a := A.snapshot a;
            snap_b := B.snapshot b;
            true
          | `Restore ->
            A.restore a !snap_a;
            B.restore b !snap_b;
            true)
        ops
      && List.map (fun i -> (i.Interval.start, i.Interval.stop)) (A.busy a)
         = List.map (fun i -> (i.Interval.start, i.Interval.stop)) (B.busy b))

let qcheck_multi_gap_agrees =
  QCheck.Test.make ~name:"multi-timeline gaps agree across implementations" ~count:200
    QCheck.(pair (list (pair (int_range 0 100) (int_range 1 10))) (int_range 1 15))
    (fun (slots, dur) ->
      let a1 = A.create () and a2 = A.create () in
      let b1 = B.create () and b2 = B.create () in
      List.iteri
        (fun i (start, len) ->
          let slot = iv (float_of_int start) (float_of_int (start + len)) in
          let a, b = if i mod 2 = 0 then (a1, b1) else (a2, b2) in
          if A.is_free a slot then begin
            A.reserve a slot;
            B.reserve (if i mod 2 = 0 then b1 else b2) slot
          end;
          ignore b)
        slots;
      let dur = float_of_int dur in
      A.earliest_gap_multi [ a1; a2 ] ~after:0. ~duration:dur
      = B.earliest_gap_multi [ b1; b2 ] ~after:0. ~duration:dur)

let test_basic_map_operations () =
  let tl = B.create () in
  B.reserve tl (iv 0. 10.);
  B.reserve tl (iv 20. 30.);
  Alcotest.(check (float 0.)) "gap in hole" 10. (B.earliest_gap tl ~after:0. ~duration:5.);
  Alcotest.(check (float 0.)) "gap after all" 30. (B.earliest_gap tl ~after:0. ~duration:15.);
  Alcotest.(check bool) "overlap rejected" true
    (try
       B.reserve tl (iv 5. 6.);
       false
     with Invalid_argument _ -> true);
  B.release tl (iv 0. 10.);
  Alcotest.(check int) "one slot left" 1 (List.length (B.busy tl));
  Alcotest.(check (float 1e-9)) "utilisation" 0.25 (B.utilisation tl ~horizon:40.);
  Alcotest.(check (float 0.)) "span" 30. (B.span tl)

let test_map_snapshot () =
  let tl = B.create () in
  B.reserve tl (iv 0. 5.);
  let snap = B.snapshot tl in
  B.reserve tl (iv 10. 15.);
  B.restore tl snap;
  Alcotest.(check int) "restored" 1 (List.length (B.busy tl))

let suite =
  [
    Alcotest.test_case "basic map operations" `Quick test_basic_map_operations;
    Alcotest.test_case "map snapshot" `Quick test_map_snapshot;
    QCheck_alcotest.to_alcotest qcheck_differential;
    QCheck_alcotest.to_alcotest qcheck_multi_gap_agrees;
  ]
