(* Tests for Noc_util.Interval. *)

module Interval = Noc_util.Interval

let iv start stop = Interval.make ~start ~stop

let test_make_valid () =
  let i = iv 1. 3. in
  Alcotest.(check (float 0.)) "duration" 2. (Interval.duration i);
  Alcotest.(check bool) "not empty" false (Interval.is_empty i)

let test_make_empty () =
  let i = iv 2. 2. in
  Alcotest.(check bool) "empty" true (Interval.is_empty i);
  Alcotest.(check (float 0.)) "zero duration" 0. (Interval.duration i)

let test_overlaps_basic () =
  Alcotest.(check bool) "overlapping" true (Interval.overlaps (iv 0. 2.) (iv 1. 3.));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0. 1.) (iv 2. 3.));
  Alcotest.(check bool) "touching do not overlap" false
    (Interval.overlaps (iv 0. 1.) (iv 1. 2.));
  Alcotest.(check bool) "contained" true (Interval.overlaps (iv 0. 10.) (iv 4. 5.))

let test_empty_overlaps_nothing () =
  Alcotest.(check bool) "empty vs full" false (Interval.overlaps (iv 1. 1.) (iv 0. 2.));
  Alcotest.(check bool) "full vs empty" false (Interval.overlaps (iv 0. 2.) (iv 1. 1.))

let test_contains () =
  let i = iv 1. 3. in
  Alcotest.(check bool) "start included" true (Interval.contains i 1.);
  Alcotest.(check bool) "middle" true (Interval.contains i 2.);
  Alcotest.(check bool) "stop excluded" false (Interval.contains i 3.);
  Alcotest.(check bool) "before" false (Interval.contains i 0.5)

let test_shift () =
  let i = Interval.shift (iv 1. 3.) 10. in
  Alcotest.(check (float 0.)) "start" 11. i.Interval.start;
  Alcotest.(check (float 0.)) "stop" 13. i.Interval.stop

let test_merge () =
  let m = Interval.merge (iv 0. 2.) (iv 5. 7.) in
  Alcotest.(check (float 0.)) "start" 0. m.Interval.start;
  Alcotest.(check (float 0.)) "stop" 7. m.Interval.stop

let test_compare_start () =
  Alcotest.(check bool) "earlier first" true
    (Interval.compare_start (iv 0. 1.) (iv 1. 2.) < 0);
  Alcotest.(check bool) "same start, shorter first" true
    (Interval.compare_start (iv 0. 1.) (iv 0. 2.) < 0);
  Alcotest.(check int) "equal" 0 (Interval.compare_start (iv 0. 1.) (iv 0. 1.))

let test_equal () =
  Alcotest.(check bool) "equal" true (Interval.equal (iv 1. 2.) (iv 1. 2.));
  Alcotest.(check bool) "not equal" false (Interval.equal (iv 1. 2.) (iv 1. 3.))

let float_pair =
  QCheck.map
    (fun (a, b) ->
      let a = Float.of_int a /. 10. and b = Float.of_int b /. 10. in
      if a <= b then (a, b) else (b, a))
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))

let qcheck_overlap_symmetric =
  QCheck.Test.make ~name:"overlap is symmetric" ~count:500
    QCheck.(pair float_pair float_pair)
    (fun ((a1, a2), (b1, b2)) ->
      let a = iv a1 a2 and b = iv b1 b2 in
      Interval.overlaps a b = Interval.overlaps b a)

let qcheck_merge_covers =
  QCheck.Test.make ~name:"merge covers both intervals" ~count:500
    QCheck.(pair float_pair float_pair)
    (fun ((a1, a2), (b1, b2)) ->
      let a = iv a1 a2 and b = iv b1 b2 in
      let m = Interval.merge a b in
      m.Interval.start <= a1 && m.Interval.start <= b1 && m.Interval.stop >= a2
      && m.Interval.stop >= b2)

let suite =
  [
    Alcotest.test_case "make valid" `Quick test_make_valid;
    Alcotest.test_case "make empty" `Quick test_make_empty;
    Alcotest.test_case "overlaps basic" `Quick test_overlaps_basic;
    Alcotest.test_case "empty overlaps nothing" `Quick test_empty_overlaps_nothing;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "shift" `Quick test_shift;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "compare_start" `Quick test_compare_start;
    Alcotest.test_case "equal" `Quick test_equal;
    QCheck_alcotest.to_alcotest qcheck_overlap_symmetric;
    QCheck_alcotest.to_alcotest qcheck_merge_covers;
  ]
