(* Tests for the extended baseline schedulers (DLS, energy-greedy). *)

module Dls = Noc_baselines.Dls
module Energy_greedy = Noc_baselines.Energy_greedy
module Schedule = Noc_sched.Schedule
module Validate = Noc_sched.Validate
module Metrics = Noc_sched.Metrics
module Builder = Noc_ctg.Builder

let platform = Noc_tgff.Category.platform

let random_ctg ?(n_tasks = 50) seed =
  let params = { Noc_tgff.Params.default with n_tasks } in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let resource_feasible ctg s =
  Validate.check platform ctg s
  |> List.for_all (function Validate.Deadline_miss _ -> true | _ -> false)

let test_static_levels () =
  (* Chain with mean times 10, 20, 30: SL = 60, 50, 30. *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:20. ~energy:1. () in
  let t2 = Builder.add_uniform_task b ~time:30. ~energy:1. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  Builder.connect b ~src:t1 ~dst:t2 ~volume:1.;
  let sl = Dls.static_levels (Builder.build_exn b) in
  Alcotest.(check (array (float 1e-9))) "levels" [| 60.; 50.; 30. |] sl

let test_static_levels_branching () =
  (* 0 -> {1, 2}: SL(0) = mean(0) + max(SL(1), SL(2)). *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:5. ~energy:1. () in
  let t2 = Builder.add_uniform_task b ~time:50. ~energy:1. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  Builder.connect b ~src:t0 ~dst:t2 ~volume:1.;
  let sl = Dls.static_levels (Builder.build_exn b) in
  Alcotest.(check (float 1e-9)) "root level" 60. sl.(0)

let test_dls_feasible () =
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let outcome = Dls.schedule platform ctg in
    Alcotest.(check bool) "resource-feasible" true
      (resource_feasible ctg outcome.Dls.schedule)
  done

let test_dls_prefers_fast_pe () =
  (* A single task runs on the PE where it executes fastest. *)
  let p2 =
    Noc_noc.Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:1)
      ~pes:
        [|
          Noc_noc.Pe.make ~index:0 ~kind:Noc_noc.Pe.Risc_lowpower ~time_factor:1.
            ~power_factor:1.;
          Noc_noc.Pe.make ~index:1 ~kind:Noc_noc.Pe.Risc_fast ~time_factor:1.
            ~power_factor:1.;
        |]
      ()
  in
  let b = Builder.create ~n_pes:2 in
  let t = Builder.add_task b ~exec_times:[| 100.; 10. |] ~energies:[| 1.; 999. |] () in
  let ctg = Builder.build_exn b in
  let s = (Dls.schedule p2 ctg).Dls.schedule in
  Alcotest.(check int) "fastest PE wins" 1 (Schedule.placement s t).Schedule.pe

let test_dls_good_makespan () =
  (* DLS is the performance heuristic: its makespan must beat EAS's on
     graphs with slack (EAS trades time for energy). *)
  let better = ref 0 in
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let dls = (Dls.schedule platform ctg).Dls.schedule in
    let eas = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
    if Schedule.makespan dls < Schedule.makespan eas then incr better
  done;
  Alcotest.(check bool) "shorter makespan on most seeds" true (!better >= 4)

let test_dls_deterministic () =
  let ctg = random_ctg 3 in
  let a = (Dls.schedule platform ctg).Dls.schedule in
  let b = (Dls.schedule platform ctg).Dls.schedule in
  Alcotest.(check bool) "same schedule" true (Schedule.placements a = Schedule.placements b)

let test_greedy_feasible () =
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let outcome = Energy_greedy.schedule platform ctg in
    Alcotest.(check bool) "resource-feasible" true
      (resource_feasible ctg outcome.Energy_greedy.schedule)
  done

let test_greedy_is_energy_lower_bound_in_practice () =
  (* The greedy mapper ignores deadlines, so its energy must be at most
     EAS's (which optimises the same metric under constraints). *)
  for seed = 0 to 4 do
    let ctg = random_ctg seed in
    let greedy = (Energy_greedy.schedule platform ctg).Energy_greedy.schedule in
    let eas = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
    let e s = (Metrics.compute platform ctg s).Metrics.total_energy in
    Alcotest.(check bool) "greedy <= EAS energy" true (e greedy <= e eas +. 1e-6)
  done

let test_greedy_clusters_communication () =
  (* With heavy communication and uniform computation, everything lands
     on one tile. *)
  let p = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let prev = ref (Builder.add_uniform_task b ~time:10. ~energy:5. ()) in
  for _ = 1 to 5 do
    let next = Builder.add_uniform_task b ~time:10. ~energy:5. () in
    Builder.connect b ~src:!prev ~dst:next ~volume:1_000_000.;
    prev := next
  done;
  let ctg = Builder.build_exn b in
  let s = (Energy_greedy.schedule p ctg).Energy_greedy.schedule in
  let pes =
    Array.to_list (Schedule.placements s)
    |> List.map (fun (p : Schedule.placement) -> p.pe)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "single tile" 1 (List.length pes)

let test_compare_experiment_shape () =
  let rows = Noc_experiments.Baselines_compare.run ~seeds:[ 0 ] () in
  List.iter
    (fun (r : Noc_experiments.Baselines_compare.row) ->
      Alcotest.(check int) "four schedulers" 4
        (List.length r.Noc_experiments.Baselines_compare.entries);
      let find name =
        List.find
          (fun (e : Noc_experiments.Baselines_compare.entry) -> e.scheduler = name)
          r.Noc_experiments.Baselines_compare.entries
      in
      let eas = find "EAS" and greedy = find "Energy-greedy" in
      Alcotest.(check int) "EAS misses nothing" 0
        eas.Noc_experiments.Baselines_compare.misses;
      Alcotest.(check bool) "greedy energy is the floor" true
        (greedy.Noc_experiments.Baselines_compare.energy
        <= eas.Noc_experiments.Baselines_compare.energy +. 1e-6))
    rows;
  Alcotest.(check bool) "render works" true
    (String.length (Noc_experiments.Baselines_compare.render rows) > 0)

let suite =
  [
    Alcotest.test_case "static levels (chain)" `Quick test_static_levels;
    Alcotest.test_case "static levels (branching)" `Quick test_static_levels_branching;
    Alcotest.test_case "DLS feasible" `Slow test_dls_feasible;
    Alcotest.test_case "DLS prefers fast PE" `Quick test_dls_prefers_fast_pe;
    Alcotest.test_case "DLS good makespan" `Slow test_dls_good_makespan;
    Alcotest.test_case "DLS deterministic" `Quick test_dls_deterministic;
    Alcotest.test_case "greedy feasible" `Slow test_greedy_feasible;
    Alcotest.test_case "greedy is the energy floor" `Slow
      test_greedy_is_energy_lower_bound_in_practice;
    Alcotest.test_case "greedy clusters communication" `Quick
      test_greedy_clusters_communication;
    Alcotest.test_case "comparison experiment shape" `Slow test_compare_experiment_shape;
  ]
