(* Assorted cross-cutting tests: router latency, category suites, repair
   statistics, fixed-delay end-to-end behaviour. *)

module Platform = Noc_noc.Platform
module Metrics = Noc_sched.Metrics

let test_router_latency_duration () =
  let mk latency =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:3 ~rows:3)
      ~pes:(Array.init 9 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~link_bandwidth:100. ~router_latency:latency ()
  in
  let fast = mk 0. and slow = mk 2. in
  (* 0 -> 2 crosses 3 routers: 2 intermediate-hop delays. *)
  Alcotest.(check (float 1e-9)) "latency-free" 1.
    (Platform.comm_duration fast ~src:0 ~dst:2 ~bits:100.);
  Alcotest.(check (float 1e-9)) "with head latency" 5.
    (Platform.comm_duration slow ~src:0 ~dst:2 ~bits:100.);
  Alcotest.(check (float 0.)) "same tile still free" 0.
    (Platform.comm_duration slow ~src:4 ~dst:4 ~bits:100.);
  Alcotest.(check bool) "negative latency rejected" true
    (try
       ignore
         (Platform.make
            ~topology:(Noc_noc.Topology.mesh ~cols:2 ~rows:2)
            ~pes:(Array.init 4 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
            ~router_latency:(-1.) ());
       false
     with Invalid_argument _ -> true)

let test_router_latency_end_to_end () =
  (* The whole stack (scheduler, validator, executor) must agree on the
     latency-extended durations. *)
  let platform =
    Platform.make
      ~topology:(Noc_noc.Topology.mesh ~cols:4 ~rows:4)
      ~pes:(Array.init 16 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
      ~router_latency:1.5 ()
  in
  let params = { Noc_tgff.Params.default with n_tasks = 40 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:3 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check (list string)) "feasible with latency" []
    (List.map
       (Format.asprintf "%a" Noc_sched.Validate.pp_violation)
       (Noc_sched.Validate.check platform ctg s));
  let replay = Noc_sim.Executor.run platform ctg s in
  Alcotest.(check (float 1e-6)) "replays exactly with latency" 0.
    replay.Noc_sim.Executor.waiting_time

let test_category_suites () =
  (* The suite constructor mirrors per-index benchmarks. *)
  let by_suite = List.nth (Noc_tgff.Category.suite Noc_tgff.Category.Category_i) 2 in
  let by_index = Noc_tgff.Category.benchmark Noc_tgff.Category.Category_i ~index:2 in
  Alcotest.(check int) "same graph" (Noc_ctg.Ctg.n_edges by_suite)
    (Noc_ctg.Ctg.n_edges by_index);
  Alcotest.(check bool) "negative index rejected" true
    (try
       ignore (Noc_tgff.Category.benchmark Noc_tgff.Category.Category_i ~index:(-1));
       false
     with Invalid_argument _ -> true)

let test_repair_stats_counts () =
  let platform = Noc_tgff.Category.platform in
  let rec find_missing seed =
    if seed > 40 then Alcotest.fail "no missing seed"
    else begin
      let params =
        { Noc_tgff.Params.default with n_tasks = 60; deadline_tightness = 1.3 }
      in
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let base = Noc_eas.Eas.schedule ~repair:false platform ctg in
      if base.Noc_eas.Eas.stats.Noc_eas.Eas.misses_before_repair > 0 then (ctg, base)
      else find_missing (seed + 1)
    end
  in
  let ctg, base = find_missing 0 in
  let _, stats = Noc_eas.Repair.run platform ctg base.Noc_eas.Eas.schedule in
  Alcotest.(check bool) "evaluations bound accepted moves" true
    (stats.Noc_eas.Repair.evaluations
    >= stats.Noc_eas.Repair.accepted_swaps + stats.Noc_eas.Repair.accepted_migrations)

let test_fixed_delay_end_to_end () =
  (* An EAS run under the fixed-delay model may plan link conflicts; the
     validator must report them as Link_conflict (not crash), and the
     metrics must still compute. *)
  let platform = Noc_tgff.Category.platform in
  let params = { Noc_tgff.Params.default with n_tasks = 120 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let s =
    (Noc_eas.Eas.schedule ~comm_model:Noc_sched.Comm_sched.Fixed_delay platform ctg)
      .Noc_eas.Eas.schedule
  in
  let violations = Noc_sched.Validate.check platform ctg s in
  let only_expected =
    List.for_all
      (function
        | Noc_sched.Validate.Link_conflict _ | Noc_sched.Validate.Deadline_miss _ -> true
        | Noc_sched.Validate.Malformed _ | Noc_sched.Validate.Task_overlap _
        | Noc_sched.Validate.Dependency _ -> false)
      violations
  in
  Alcotest.(check bool) "only link conflicts / misses" true only_expected;
  Alcotest.(check bool) "metrics still computable" true
    ((Metrics.compute platform ctg s).Metrics.total_energy > 0.)

let test_text_table_explicit_align () =
  let out =
    Noc_util.Text_table.render
      ~align:[ Noc_util.Text_table.Right; Noc_util.Text_table.Left ]
      ~header:[ "n"; "name" ]
      [ [ "1"; "x" ]; [ "10"; "yy" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "right then left" "|  1 | x    |" (List.nth lines 2)

let test_torus_platform_schedules () =
  let platform =
    Platform.heterogeneous ~seed:9 (Noc_noc.Topology.torus ~cols:3 ~rows:3) ()
  in
  let params = { Noc_tgff.Params.default with n_tasks = 40 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:1 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check bool) "feasible on torus" true
    (Noc_sched.Validate.check platform ctg s
    |> List.for_all (function Noc_sched.Validate.Deadline_miss _ -> true | _ -> false))

let suite =
  [
    Alcotest.test_case "router latency durations" `Quick test_router_latency_duration;
    Alcotest.test_case "router latency end to end" `Quick test_router_latency_end_to_end;
    Alcotest.test_case "category suites" `Quick test_category_suites;
    Alcotest.test_case "repair stats counts" `Quick test_repair_stats_counts;
    Alcotest.test_case "fixed-delay end to end" `Quick test_fixed_delay_end_to_end;
    Alcotest.test_case "explicit table alignment" `Quick test_text_table_explicit_align;
    Alcotest.test_case "torus platform schedules" `Quick test_torus_platform_schedules;
  ]
