(* Tests for EAS Step 1 (Noc_eas.Budget), including the paper's Fig. 2
   worked example. *)

module Budget = Noc_eas.Budget
module Builder = Noc_ctg.Builder

(* Build a chain whose means and weights match Fig. 2: tasks t1, t2, t3
   with mean execution times 300, 200, 400 and weights 100, 200, 100,
   and d(t3) = 1300.

   With two PEs, mean (a + b) / 2 and weight VAR_e * VAR_r where each
   VAR is ((a - b) / 2)^2. Choose energies with variance 1 so the weight
   equals the time variance: times (290, 310) give mean 300, VAR_r 100;
   (185.86, 214.14) give mean 200, VAR_r ~200; (390, 410) give 400, 100. *)
let fig2_graph () =
  let b = Builder.create ~n_pes:2 in
  let spread mean var = (mean -. sqrt var, mean +. sqrt var) in
  let add ?deadline mean var =
    let lo, hi = spread mean var in
    Builder.add_task b ~exec_times:[| lo; hi |] ~energies:[| 10.; 12. |] ?deadline ()
  in
  (* Energies (10, 12): VAR_e = 1, so W = VAR_r. *)
  let t1 = add 300. 100. in
  let t2 = add 200. 200. in
  let t3 = add ~deadline:1300. 400. 100. in
  Builder.connect b ~src:t1 ~dst:t2 ~volume:1.;
  Builder.connect b ~src:t2 ~dst:t3 ~volume:1.;
  Builder.build_exn b

let test_fig2_example () =
  let g = fig2_graph () in
  let budget = Budget.compute g in
  Alcotest.(check (float 1e-6)) "mean t1" 300. budget.Budget.mean_times.(0);
  Alcotest.(check (float 1e-6)) "mean t2" 200. budget.Budget.mean_times.(1);
  Alcotest.(check (float 1e-6)) "weight t1" 100. budget.Budget.weights.(0);
  Alcotest.(check (float 1e-6)) "weight t2" 200. budget.Budget.weights.(1);
  Alcotest.(check (float 1e-6)) "weight t3" 100. budget.Budget.weights.(2);
  (* The paper's result: BD = 400, 800, 1300. *)
  Alcotest.(check (float 1e-6)) "BD t1" 400. budget.Budget.budgeted_deadlines.(0);
  Alcotest.(check (float 1e-6)) "BD t2" 800. budget.Budget.budgeted_deadlines.(1);
  Alcotest.(check (float 1e-6)) "BD t3" 1300. budget.Budget.budgeted_deadlines.(2)

let test_sink_budget_equals_deadline () =
  let g = fig2_graph () in
  let budget = Budget.compute g in
  Alcotest.(check (float 1e-6)) "sink BD = deadline" 1300.
    budget.Budget.budgeted_deadlines.(2)

let test_unconstrained_is_infinite () =
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:10. ~energy:1. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  let budget = Budget.compute (Builder.build_exn b) in
  Alcotest.(check bool) "no deadline -> infinite budget" true
    (budget.Budget.budgeted_deadlines.(0) = infinity
    && budget.Budget.budgeted_deadlines.(1) = infinity)

let test_zero_weight_uniform_distribution () =
  (* Uniform costs -> all weights 0 -> slack is split evenly. Chain of
     two tasks with mean 100 each, deadline 400: slack 200, BDs 200/400. *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:100. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:100. ~energy:1. ~deadline:400. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  let budget = Budget.compute (Builder.build_exn b) in
  Alcotest.(check (float 1e-9)) "uniform split, first" 200.
    budget.Budget.budgeted_deadlines.(0);
  Alcotest.(check (float 1e-9)) "uniform split, second" 400.
    budget.Budget.budgeted_deadlines.(1)

let test_negative_slack_tightens () =
  (* Deadline below the mean path: the sink still gets BD = deadline and
     upstream budgets shrink below their asap. *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:100. ~energy:1. () in
  let t1 = Builder.add_uniform_task b ~time:100. ~energy:1. ~deadline:150. () in
  Builder.connect b ~src:t0 ~dst:t1 ~volume:1.;
  let budget = Budget.compute (Builder.build_exn b) in
  Alcotest.(check (float 1e-9)) "sink pinned to deadline" 150.
    budget.Budget.budgeted_deadlines.(1);
  Alcotest.(check bool) "upstream tightened below asap" true
    (budget.Budget.budgeted_deadlines.(0) < budget.Budget.asap.(0))

let test_budget_monotone_along_chain () =
  let g = fig2_graph () in
  let budget = Budget.compute g in
  Alcotest.(check bool) "BDs increase along the chain" true
    (budget.Budget.budgeted_deadlines.(0) < budget.Budget.budgeted_deadlines.(1)
    && budget.Budget.budgeted_deadlines.(1) < budget.Budget.budgeted_deadlines.(2))

let test_tightest_deadline_chain_chosen () =
  (* A task with two downstream deadlines follows the tighter one. *)
  let b = Builder.create ~n_pes:2 in
  let t0 = Builder.add_uniform_task b ~time:100. ~energy:1. () in
  let loose = Builder.add_uniform_task b ~time:100. ~energy:1. ~deadline:10_000. () in
  let tight = Builder.add_uniform_task b ~time:100. ~energy:1. ~deadline:250. () in
  Builder.connect b ~src:t0 ~dst:loose ~volume:1.;
  Builder.connect b ~src:t0 ~dst:tight ~volume:1.;
  let budget = Budget.compute (Builder.build_exn b) in
  (* Through the tight sink: path mean 200, slack 50, even split -> BD(t0)
     = 100 + 25 = 125. *)
  Alcotest.(check (float 1e-9)) "follows the tight chain" 125.
    budget.Budget.budgeted_deadlines.(0)

let qcheck_budget_bounded_by_deadline =
  QCheck.Test.make ~name:"every BD is at most its chain deadline" ~count:100
    QCheck.small_int
    (fun seed ->
      let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~cols:3 ~rows:3 () in
      let params = { Noc_tgff.Params.default with n_tasks = 40 } in
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let budget = Budget.compute ctg in
      (* Sinks carry deadlines; their BD must equal the deadline. *)
      List.for_all
        (fun sink ->
          match (Noc_ctg.Ctg.task ctg sink).Noc_ctg.Task.deadline with
          | None -> true
          | Some d ->
            Noc_util.Stats.fequal ~eps:1e-6 budget.Budget.budgeted_deadlines.(sink) d)
        (Noc_ctg.Ctg.sinks ctg))

let qcheck_budget_positive =
  QCheck.Test.make ~name:"budgets are positive" ~count:100 QCheck.small_int
    (fun seed ->
      let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:1 ~cols:3 ~rows:3 () in
      let params = { Noc_tgff.Params.default with n_tasks = 40 } in
      let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
      let budget = Budget.compute ctg in
      Array.for_all (fun bd -> bd > 0.) budget.Budget.budgeted_deadlines)

let suite =
  [
    Alcotest.test_case "Fig. 2 worked example" `Quick test_fig2_example;
    Alcotest.test_case "sink BD = deadline" `Quick test_sink_budget_equals_deadline;
    Alcotest.test_case "unconstrained infinite" `Quick test_unconstrained_is_infinite;
    Alcotest.test_case "zero weights split evenly" `Quick
      test_zero_weight_uniform_distribution;
    Alcotest.test_case "negative slack tightens" `Quick test_negative_slack_tightens;
    Alcotest.test_case "monotone along chain" `Quick test_budget_monotone_along_chain;
    Alcotest.test_case "tightest chain chosen" `Quick test_tightest_deadline_chain_chosen;
    QCheck_alcotest.to_alcotest qcheck_budget_bounded_by_deadline;
    QCheck_alcotest.to_alcotest qcheck_budget_positive;
  ]
