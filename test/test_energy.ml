(* Tests for Noc_noc.Energy_model (Eqs. 1-2) and Noc_noc.Pe. *)

module Energy_model = Noc_noc.Energy_model
module Pe = Noc_noc.Pe

let model = Energy_model.make ~e_sbit:2. ~e_lbit:3.

let test_eq2 () =
  (* E_bit = n_hops * E_Sbit + (n_hops - 1) * E_Lbit. *)
  Alcotest.(check (float 1e-12)) "same tile" 0. (Energy_model.bit_energy model ~n_hops:0);
  Alcotest.(check (float 1e-12)) "one router" 2. (Energy_model.bit_energy model ~n_hops:1);
  Alcotest.(check (float 1e-12)) "two routers one link" 7.
    (Energy_model.bit_energy model ~n_hops:2);
  Alcotest.(check (float 1e-12)) "three routers two links" 12.
    (Energy_model.bit_energy model ~n_hops:3)

let test_monotone_in_hops () =
  let rec check prev h =
    if h <= 8 then begin
      let e = Energy_model.bit_energy model ~n_hops:h in
      Alcotest.(check bool) "monotone" true (e > prev);
      check e (h + 1)
    end
  in
  check (-1.) 0

let test_transfer_energy () =
  Alcotest.(check (float 1e-9)) "bits scale" 7_000.
    (Energy_model.transfer_energy model ~n_hops:2 ~bits:1_000.);
  Alcotest.(check (float 0.)) "zero bits" 0.
    (Energy_model.transfer_energy model ~n_hops:5 ~bits:0.)

let test_default_values () =
  let d = Energy_model.default in
  Alcotest.(check bool) "positive" true
    (d.Energy_model.e_sbit > 0. && d.Energy_model.e_lbit > 0.)

let test_validation () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Energy_model.make ~e_sbit:(-1.) ~e_lbit:0.);
       false
     with Invalid_argument _ -> true)

let test_pe_factors () =
  Array.iter
    (fun kind ->
      let tf, pf = Pe.default_factors kind in
      Alcotest.(check bool) "positive factors" true (tf > 0. && pf > 0.))
    Pe.all_kinds;
  (* The fast RISC is faster but hungrier than the low-power core. *)
  let fast_t, fast_p = Pe.default_factors Pe.Risc_fast in
  let low_t, low_p = Pe.default_factors Pe.Risc_lowpower in
  Alcotest.(check bool) "fast is faster" true (fast_t < low_t);
  Alcotest.(check bool) "fast is hungrier" true (fast_p > low_p);
  (* Energy per work unit (t * p) favours the low-power core. *)
  Alcotest.(check bool) "low-power is more efficient" true
    (low_t *. low_p < fast_t *. fast_p)

let test_pe_construction () =
  let pe = Pe.of_kind ~index:3 Pe.Dsp in
  Alcotest.(check int) "index" 3 pe.Pe.index;
  Alcotest.(check string) "kind name" "dsp" (Pe.kind_name pe.Pe.kind);
  Alcotest.(check bool) "make rejects bad factors" true
    (try
       ignore (Pe.make ~index:0 ~kind:Pe.Dsp ~time_factor:0. ~power_factor:1.);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "Eq. 2 values" `Quick test_eq2;
    Alcotest.test_case "monotone in hops" `Quick test_monotone_in_hops;
    Alcotest.test_case "transfer energy" `Quick test_transfer_energy;
    Alcotest.test_case "default values" `Quick test_default_values;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "PE factors" `Quick test_pe_factors;
    Alcotest.test_case "PE construction" `Quick test_pe_construction;
  ]
